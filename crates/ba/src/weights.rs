//! Per-round weight snapshots.
//!
//! BA⋆ verifies sortition proofs against the user weights of the round's
//! context (§7.1). Weights come from account balances in the look-back
//! block (§5.3); this crate only needs the resulting map, keeping BA⋆
//! independent of the ledger.

use algorand_crypto::PublicKey;
use std::collections::HashMap;

/// A snapshot of user weights for one round: `ctx.weight` and `ctx.W`.
#[derive(Clone, Debug, Default)]
pub struct RoundWeights {
    map: HashMap<[u8; 32], u64>,
    total: u64,
}

impl RoundWeights {
    /// Builds a snapshot from (public key, weight) pairs.
    ///
    /// Zero-weight entries are dropped; duplicate keys keep the last value.
    pub fn from_pairs<I: IntoIterator<Item = (PublicKey, u64)>>(pairs: I) -> RoundWeights {
        let mut map = HashMap::new();
        for (pk, w) in pairs {
            if w > 0 {
                map.insert(pk.to_bytes(), w);
            } else {
                map.remove(pk.as_bytes());
            }
        }
        let total = map.values().sum();
        RoundWeights { map, total }
    }

    /// Builds a snapshot from raw 32-byte key encodings.
    ///
    /// The ledger stores accounts by key bytes; this avoids decompressing
    /// every key just to build a weight table.
    pub fn from_raw<I: IntoIterator<Item = ([u8; 32], u64)>>(pairs: I) -> RoundWeights {
        let mut map = HashMap::new();
        for (pk, w) in pairs {
            if w > 0 {
                map.insert(pk, w);
            } else {
                map.remove(&pk);
            }
        }
        let total = map.values().sum();
        RoundWeights { map, total }
    }

    /// The weight of a public key (0 if unknown).
    pub fn weight_of(&self, pk: &PublicKey) -> u64 {
        self.map.get(pk.as_bytes()).copied().unwrap_or(0)
    }

    /// The total weight W of all users.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of users with nonzero weight.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no user has weight.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The element-wise minimum of two snapshots.
    ///
    /// §5.3's "nothing at stake" mitigation: weighing users by
    /// `min(current balance, look-back balance)` means money moved since
    /// the look-back block cannot vote, so a seller who has divested keeps
    /// no residual voting power.
    pub fn min_with(&self, other: &RoundWeights) -> RoundWeights {
        let mut map = HashMap::new();
        for (pk, w) in &self.map {
            let m = (*w).min(other.map.get(pk).copied().unwrap_or(0));
            if m > 0 {
                map.insert(*pk, m);
            }
        }
        let total = map.values().sum();
        RoundWeights { map, total }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algorand_crypto::Keypair;

    #[test]
    fn from_pairs_totals_and_lookup() {
        let a = Keypair::from_seed([1; 32]).pk;
        let b = Keypair::from_seed([2; 32]).pk;
        let c = Keypair::from_seed([3; 32]).pk;
        let w = RoundWeights::from_pairs([(a, 10), (b, 20), (c, 0)]);
        assert_eq!(w.total(), 30);
        assert_eq!(w.weight_of(&a), 10);
        assert_eq!(w.weight_of(&b), 20);
        assert_eq!(w.weight_of(&c), 0);
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
    }

    #[test]
    fn duplicate_keys_keep_last() {
        let a = Keypair::from_seed([4; 32]).pk;
        let w = RoundWeights::from_pairs([(a, 10), (a, 25)]);
        assert_eq!(w.weight_of(&a), 25);
        assert_eq!(w.total(), 25);
    }

    #[test]
    fn empty_snapshot() {
        let w = RoundWeights::from_pairs([]);
        assert!(w.is_empty());
        assert_eq!(w.total(), 0);
    }
}
