//! Block certificates (§8.3).
//!
//! A certificate aggregates enough votes from the concluding step of
//! BinaryBA⋆ to let any user — including one bootstrapping from the genesis
//! block — re-derive the consensus outcome without having observed the
//! round live. Validation re-runs ProcessMsg on every vote: sortition
//! proofs are checked against the round's seed and weights, all votes must
//! name the same round, step, and value, and the summed votes must exceed
//! the step threshold.

use crate::msg::{StepKind, Value, VoteMessage};
use crate::params::BaParams;
use crate::verify::{VoteContext, VoteVerifier};
use crate::weights::RoundWeights;
use algorand_crypto::codec::{DecodeError, Reader, WriteExt};
use std::collections::HashSet;

/// Why a certificate failed validation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CertificateError {
    /// A vote was for a different round, step, value, or previous block.
    InconsistentVotes,
    /// The same public key appears more than once.
    DuplicateVoter,
    /// A vote's signature or sortition proof is invalid.
    InvalidVote,
    /// The summed votes do not exceed the step threshold.
    InsufficientVotes,
    /// The certificate's step is not a valid certifying step.
    BadStep,
}

impl std::fmt::Display for CertificateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CertificateError::InconsistentVotes => "votes disagree on round/step/value/prev",
            CertificateError::DuplicateVoter => "duplicate voter in certificate",
            CertificateError::InvalidVote => "invalid signature or sortition proof",
            CertificateError::InsufficientVotes => "votes do not exceed the step threshold",
            CertificateError::BadStep => "not a certifying step",
        };
        f.write_str(s)
    }
}

impl std::error::Error for CertificateError {}

/// A certificate that BA⋆ concluded `value` in `round` (§8.3).
#[derive(Clone, Debug)]
pub struct Certificate {
    /// The certified round.
    pub round: u64,
    /// The concluding BinaryBA⋆ step (or [`StepKind::Final`] for a
    /// final-consensus certificate).
    pub step: StepKind,
    /// The certified block hash.
    pub value: Value,
    /// The aggregated votes.
    pub votes: Vec<VoteMessage>,
}

impl Certificate {
    /// Validates the certificate against a round context.
    ///
    /// `prev_hash` is the hash of the block preceding the certified one;
    /// `seed` and `weights` are the sortition context of the certified
    /// round — exactly what a bootstrapping user has after validating the
    /// chain up to `round − 1`.
    ///
    /// # Errors
    ///
    /// Returns the first [`CertificateError`] encountered; a certificate
    /// from an adversary (§8.3's forged-certificate attack) fails either
    /// [`CertificateError::InvalidVote`] or
    /// [`CertificateError::InsufficientVotes`].
    pub fn validate(
        &self,
        params: &BaParams,
        seed: &[u8; 32],
        prev_hash: &[u8; 32],
        weights: &RoundWeights,
        verifier: &dyn VoteVerifier,
    ) -> Result<(), CertificateError> {
        let is_final = self.step == StepKind::Final;
        match self.step {
            StepKind::Main(s) if s >= 1 && s <= params.max_steps => {}
            StepKind::Final => {}
            _ => return Err(CertificateError::BadStep),
        }
        let threshold = params.threshold_for(is_final);
        let ctx = VoteContext {
            round: self.round,
            seed: *seed,
            tau: params.tau_for(is_final),
        };
        let mut seen = HashSet::new();
        let mut total = 0u64;
        for vote in &self.votes {
            if vote.round != self.round
                || vote.step != self.step
                || vote.value != self.value
                || vote.prev_hash != *prev_hash
            {
                return Err(CertificateError::InconsistentVotes);
            }
            if !seen.insert(vote.sender.to_bytes()) {
                return Err(CertificateError::DuplicateVoter);
            }
            let votes = verifier
                .verify_vote(vote, &ctx, weights)
                .ok_or(CertificateError::InvalidVote)?;
            total += votes;
        }
        if (total as f64) > threshold {
            Ok(())
        } else {
            Err(CertificateError::InsufficientVotes)
        }
    }

    /// Serialized size in bytes (§10.3 reports ~300 KB per certificate at
    /// paper scale: ~1000 votes of ~300 bytes).
    pub fn wire_size(&self) -> usize {
        48 + self.votes.len() * VoteMessage::WIRE_SIZE
    }

    /// Appends the canonical wire encoding.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.put_u64(self.round);
        out.put_u32(self.step.code());
        out.put_bytes(&self.value);
        out.put_u32(self.votes.len() as u32);
        for v in &self.votes {
            v.encode(out);
        }
    }

    /// The canonical wire encoding as a fresh buffer.
    pub fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_size());
        self.encode(&mut out);
        out
    }

    /// Decodes a certificate from the wire.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncation, an absurd vote count, or a
    /// malformed vote. Semantic validity is checked by
    /// [`Certificate::validate`].
    pub fn decode(r: &mut Reader<'_>) -> Result<Certificate, DecodeError> {
        let round = r.u64()?;
        let step = StepKind::from_code(r.u32()?);
        let value = r.bytes32()?;
        let n = r.u32()? as usize;
        if n > 100_000 {
            return Err(DecodeError::Invalid);
        }
        let mut votes = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            votes.push(VoteMessage::decode(r)?);
        }
        Ok(Certificate {
            round,
            step,
            value,
            votes,
        })
    }
}
