//! Vote verification (ProcessMsg, Algorithm 6) and the shared cache.
//!
//! Verifying a vote costs one signature check plus one VRF verification
//! (four scalar multiplications). Real nodes verify each distinct message
//! once and relay it (§8.4); the simulator mirrors that with a process-wide
//! cache keyed by `(message id, selection seed)`, so simulating N observers
//! of the same vote costs one verification, not N.
//!
//! This module is the vote half of the staged pipeline's verification
//! stage: the only way to obtain a [`VerifiedVote`] — the sole input type
//! the tally and engine accept — is [`verify_vote_message`].

#[cfg(test)]
use crate::msg::StepKind;
use crate::msg::VoteMessage;
use crate::weights::RoundWeights;
use algorand_sortition::{Role, SortitionParams};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A vote that has passed the stateless verification stage: signature,
/// VRF sortition proof, and committee selection, all checked against a
/// [`VoteContext`].
///
/// This is the *only* input [`crate::tally::StepTally`] and the
/// tally-feeding paths of [`crate::engine::BaStar`] accept. The fields
/// and the constructor are private to this module, so no code outside
/// the verification stage can manufacture one — unverified votes cannot
/// reach consensus by construction.
#[derive(Clone, Debug)]
pub struct VerifiedVote {
    msg: VoteMessage,
    votes: u64,
}

impl VerifiedVote {
    /// The underlying wire message.
    pub fn message(&self) -> &VoteMessage {
        &self.msg
    }

    /// The number of selected sub-users this vote carries.
    pub fn votes(&self) -> u64 {
        self.votes
    }

    /// Test-only escape hatch for unit tests of downstream stages; does
    /// not exist in production builds.
    #[cfg(test)]
    pub(crate) fn for_test(msg: VoteMessage, votes: u64) -> VerifiedVote {
        VerifiedVote { msg, votes }
    }
}

/// Runs `msg` through the verification stage. This free function is the
/// single constructor of [`VerifiedVote`].
pub fn verify_vote_message(
    verifier: &dyn VoteVerifier,
    msg: &VoteMessage,
    ctx: &VoteContext,
    weights: &RoundWeights,
) -> Option<VerifiedVote> {
    let votes = verifier.verify_vote(msg, ctx, weights)?;
    Some(VerifiedVote {
        msg: msg.clone(),
        votes,
    })
}

/// The context a vote is verified against.
#[derive(Clone, Debug)]
pub struct VoteContext {
    /// The round being agreed on.
    pub round: u64,
    /// The sortition selection seed for this round.
    pub seed: [u8; 32],
    /// Expected committee size for the vote's step.
    pub tau: f64,
}

/// Verifies votes' cryptographic validity: signature plus sortition.
///
/// Implementations return `Some(votes)` — the number of selected sub-users
/// — when the message is a valid committee vote, and `None` when the
/// signature or sortition proof is invalid *or* the user simply was not
/// selected. Chain-context checks (`prev_hash` matching, Algorithm 6's
/// `hprev` comparison) are cheap and fork-dependent, so the BA⋆ engine
/// performs them separately.
pub trait VoteVerifier: Send + Sync {
    /// Verifies `msg` in `ctx` against `weights`.
    fn verify_vote(
        &self,
        msg: &VoteMessage,
        ctx: &VoteContext,
        weights: &RoundWeights,
    ) -> Option<u64>;
}

/// Performs full cryptographic verification on every call.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealVerifier;

impl VoteVerifier for RealVerifier {
    fn verify_vote(
        &self,
        msg: &VoteMessage,
        ctx: &VoteContext,
        weights: &RoundWeights,
    ) -> Option<u64> {
        if msg.round != ctx.round || !msg.signature_valid() {
            return None;
        }
        let role = Role::Committee {
            round: msg.round,
            step: msg.step.code(),
        };
        let params = SortitionParams {
            tau: ctx.tau,
            total_weight: weights.total(),
        };
        let weight = weights.weight_of(&msg.sender);
        if weight == 0 {
            return None;
        }
        // One VRF verification recovers the certified output; the sorthash
        // in the message must equal it, otherwise the common coin could be
        // biased by lying about the hash.
        let certified =
            algorand_sortition::verified_output(&msg.sender, &msg.sort_proof, &ctx.seed, role)
                .ok()?;
        if certified != msg.sorthash {
            return None;
        }
        let votes = algorand_sortition::sub_users_selected(&certified, weight, params.p());
        (votes > 0).then_some(votes)
    }
}

/// A process-wide verification cache wrapping [`RealVerifier`].
///
/// Keyed by `(message_id, seed)`. The id commits to every field
/// including the signature, so a cache hit is exactly as strong as
/// re-verifying; folding the selection seed into the key makes the
/// entry self-describing about its verification context, so a lookup
/// under a different seed (a diverged fork, a recovery sub-protocol
/// epoch, or an over-eager prefetch) misses instead of returning a
/// result computed for the wrong context.
#[derive(Default)]
pub struct CachedVerifier {
    inner: RealVerifier,
    cache: Mutex<HashMap<VerdictKey, Option<u64>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A cache key: `(message_id, selection_seed)`.
type VerdictKey = ([u8; 32], [u8; 32]);

impl CachedVerifier {
    /// Creates an empty cache.
    pub fn new() -> CachedVerifier {
        CachedVerifier::default()
    }

    /// Number of distinct messages verified so far (for cost accounting).
    pub fn unique_verifications(&self) -> usize {
        self.cache.lock().expect("cache poisoned").len()
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to run full verification.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The cached verdict for `(id, seed)`, if the message has already
    /// been through verification under that seed. `Some(None)` means
    /// "known invalid" — the relay layer uses this to stop forwarding
    /// junk without ever re-verifying.
    pub fn status(&self, id: [u8; 32], seed: [u8; 32]) -> Option<Option<u64>> {
        self.cache
            .lock()
            .expect("cache poisoned")
            .get(&(id, seed))
            .copied()
    }

    /// Drops cached entries (e.g., between rounds, to bound memory).
    pub fn clear(&self) {
        self.cache.lock().expect("cache poisoned").clear();
    }
}

impl VoteVerifier for CachedVerifier {
    fn verify_vote(
        &self,
        msg: &VoteMessage,
        ctx: &VoteContext,
        weights: &RoundWeights,
    ) -> Option<u64> {
        let key = (msg.message_id(), ctx.seed);
        if let Some(hit) = self.cache.lock().expect("cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *hit;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let result = self.inner.verify_vote(msg, ctx, weights);
        self.cache
            .lock()
            .expect("cache poisoned")
            .insert(key, result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algorand_crypto::Keypair;
    use algorand_sortition::select;

    fn setup() -> (Vec<Keypair>, RoundWeights, VoteContext) {
        let keypairs: Vec<Keypair> = (0..8u8).map(|i| Keypair::from_seed([i + 1; 32])).collect();
        let weights = RoundWeights::from_pairs(keypairs.iter().map(|k| (k.pk, 100u64)));
        let ctx = VoteContext {
            round: 1,
            seed: [5u8; 32],
            // τ = W selects every sub-user deterministically.
            tau: 800.0,
        };
        (keypairs, weights, ctx)
    }

    fn make_vote(kp: &Keypair, ctx: &VoteContext, weights: &RoundWeights) -> VoteMessage {
        let step = StepKind::Main(1);
        let sel = select(
            kp,
            &ctx.seed,
            Role::Committee {
                round: ctx.round,
                step: step.code(),
            },
            &SortitionParams {
                tau: ctx.tau,
                total_weight: weights.total(),
            },
            weights.weight_of(&kp.pk),
        )
        .expect("τ = W selects everyone");
        VoteMessage::sign(
            kp,
            ctx.round,
            step,
            sel.vrf_output,
            sel.proof,
            [7u8; 32],
            [9u8; 32],
        )
    }

    #[test]
    fn valid_vote_counts_weight() {
        let (kps, weights, ctx) = setup();
        let vote = make_vote(&kps[0], &ctx, &weights);
        let votes = RealVerifier.verify_vote(&vote, &ctx, &weights);
        assert_eq!(votes, Some(100));
    }

    #[test]
    fn unknown_sender_rejected() {
        let (kps, weights, ctx) = setup();
        let stranger = Keypair::from_seed([99; 32]);
        let mut vote = make_vote(&kps[0], &ctx, &weights);
        // Re-sign the same content under a key with zero weight.
        vote = VoteMessage::sign(
            &stranger,
            vote.round,
            vote.step,
            vote.sorthash,
            vote.sort_proof,
            vote.prev_hash,
            vote.value,
        );
        assert_eq!(RealVerifier.verify_vote(&vote, &ctx, &weights), None);
    }

    #[test]
    fn wrong_round_rejected() {
        let (kps, weights, ctx) = setup();
        let vote = make_vote(&kps[1], &ctx, &weights);
        let wrong_ctx = VoteContext { round: 2, ..ctx };
        assert_eq!(RealVerifier.verify_vote(&vote, &wrong_ctx, &weights), None);
    }

    #[test]
    fn forged_sorthash_rejected() {
        let (kps, weights, ctx) = setup();
        let mut vote = make_vote(&kps[2], &ctx, &weights);
        // Claim a different sortition hash than the proof certifies (this
        // would let an attacker bias the common coin); must re-sign so the
        // signature itself is valid.
        let kp = &kps[2];
        let mut forged = vote.sorthash;
        forged.0[0] ^= 0xff;
        vote = VoteMessage::sign(
            kp,
            vote.round,
            vote.step,
            forged,
            vote.sort_proof,
            vote.prev_hash,
            vote.value,
        );
        assert_eq!(RealVerifier.verify_vote(&vote, &ctx, &weights), None);
    }

    #[test]
    fn verified_vote_only_constructible_through_verification() {
        let (kps, weights, ctx) = setup();
        let vote = make_vote(&kps[5], &ctx, &weights);
        let vv =
            verify_vote_message(&RealVerifier, &vote, &ctx, &weights).expect("valid vote verifies");
        assert_eq!(vv.votes(), 100);
        assert_eq!(vv.message().message_id(), vote.message_id());
        // An invalid vote never yields a VerifiedVote.
        let stranger = Keypair::from_seed([98; 32]);
        let forged = VoteMessage::sign(
            &stranger,
            vote.round,
            vote.step,
            vote.sorthash,
            vote.sort_proof,
            vote.prev_hash,
            vote.value,
        );
        assert!(verify_vote_message(&RealVerifier, &forged, &ctx, &weights).is_none());
    }

    #[test]
    fn cache_status_reports_verdicts_and_is_seed_scoped() {
        let (kps, weights, ctx) = setup();
        let cache = CachedVerifier::new();
        let vote = make_vote(&kps[6], &ctx, &weights);
        let id = vote.message_id();
        assert_eq!(cache.status(id, ctx.seed), None);
        cache.verify_vote(&vote, &ctx, &weights);
        assert_eq!(cache.status(id, ctx.seed), Some(Some(100)));
        // A different seed is a different verification context: miss.
        assert_eq!(cache.status(id, [0u8; 32]), None);
        let wrong_ctx = VoteContext {
            seed: [0u8; 32],
            ..ctx.clone()
        };
        // Verifying under the wrong seed fails and caches independently.
        assert_eq!(cache.verify_vote(&vote, &wrong_ctx, &weights), None);
        assert_eq!(cache.status(id, [0u8; 32]), Some(None));
        assert_eq!(cache.status(id, ctx.seed), Some(Some(100)));
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 2);
        cache.verify_vote(&vote, &ctx, &weights);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn cache_returns_same_result_and_counts_uniques() {
        let (kps, weights, ctx) = setup();
        let cache = CachedVerifier::new();
        let vote = make_vote(&kps[3], &ctx, &weights);
        let first = cache.verify_vote(&vote, &ctx, &weights);
        let second = cache.verify_vote(&vote, &ctx, &weights);
        assert_eq!(first, Some(100));
        assert_eq!(first, second);
        assert_eq!(cache.unique_verifications(), 1);
        let other = make_vote(&kps[4], &ctx, &weights);
        cache.verify_vote(&other, &ctx, &weights);
        assert_eq!(cache.unique_verifications(), 2);
        cache.clear();
        assert_eq!(cache.unique_verifications(), 0);
    }
}
