//! Vote messages and step identifiers for BA⋆ (§7.2, Algorithm 4).
//!
//! A committee member's vote carries: the sender's public key, the round
//! and step, the sortition hash and proof (establishing committee
//! membership and vote multiplicity), the hash of the previous block
//! (binding the vote to a chain context), the value voted for, and a
//! signature over all of it.

use algorand_crypto::codec::{DecodeError, Reader, WriteExt};
use algorand_crypto::sig::{self, Signature};
use algorand_crypto::vrf::{VrfOutput, VrfProof, VRF_PROOF_LEN};
use algorand_crypto::{sha256_concat, Keypair, PublicKey};

/// A 32-byte block-hash value voted on by BA⋆.
pub type Value = [u8; 32];

/// Identifies a step within one round of BA⋆.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub enum StepKind {
    /// First reduction step: vote for the hash of the proposed block.
    ReductionOne,
    /// Second reduction step: re-vote for the popular hash.
    ReductionTwo,
    /// A step of BinaryBA⋆, numbered from 1.
    Main(u32),
    /// The special final step that upgrades tentative to final consensus.
    Final,
}

impl StepKind {
    /// Reserved code for the final step.
    const CODE_FINAL: u32 = 0;
    /// Reserved code for the first reduction step.
    const CODE_REDUCTION_ONE: u32 = 0xffff_fffe;
    /// Reserved code for the second reduction step.
    const CODE_REDUCTION_TWO: u32 = 0xffff_ffff;

    /// Encodes the step as the `u32` used in sortition roles and on the
    /// wire. Main steps map to their own number (1-based); the reduction
    /// and final steps use reserved codes outside the main range.
    pub fn code(self) -> u32 {
        match self {
            StepKind::Final => Self::CODE_FINAL,
            StepKind::ReductionOne => Self::CODE_REDUCTION_ONE,
            StepKind::ReductionTwo => Self::CODE_REDUCTION_TWO,
            StepKind::Main(s) => {
                debug_assert!((1..Self::CODE_REDUCTION_ONE).contains(&s));
                s
            }
        }
    }

    /// Decodes a wire code back into a step.
    pub fn from_code(code: u32) -> StepKind {
        match code {
            Self::CODE_FINAL => StepKind::Final,
            Self::CODE_REDUCTION_ONE => StepKind::ReductionOne,
            Self::CODE_REDUCTION_TWO => StepKind::ReductionTwo,
            s => StepKind::Main(s),
        }
    }
}

/// A signed committee vote (the message gossiped by Algorithm 4).
#[derive(Clone, Debug)]
pub struct VoteMessage {
    /// The voter's public key.
    pub sender: PublicKey,
    /// The Algorand round this vote belongs to.
    pub round: u64,
    /// The BA⋆ step this vote belongs to.
    pub step: StepKind,
    /// The voter's sortition VRF output (committee-membership hash).
    pub sorthash: VrfOutput,
    /// The sortition proof π.
    pub sort_proof: VrfProof,
    /// Hash of the previous block: votes only count on matching chains.
    pub prev_hash: [u8; 32],
    /// The value (block hash) voted for.
    pub value: Value,
    /// Signature over the digest of all fields above.
    pub sig: Signature,
}

impl VoteMessage {
    /// The digest that the sender signs.
    fn signing_digest(
        round: u64,
        step: StepKind,
        sorthash: &VrfOutput,
        sort_proof: &VrfProof,
        prev_hash: &[u8; 32],
        value: &Value,
    ) -> [u8; 32] {
        sha256_concat(&[
            b"algorand-repro/vote/v1",
            &round.to_le_bytes(),
            &step.code().to_le_bytes(),
            &sorthash.0,
            &sort_proof.to_bytes(),
            prev_hash,
            value,
        ])
    }

    /// Constructs and signs a vote.
    #[allow(clippy::too_many_arguments)]
    pub fn sign(
        keypair: &Keypair,
        round: u64,
        step: StepKind,
        sorthash: VrfOutput,
        sort_proof: VrfProof,
        prev_hash: [u8; 32],
        value: Value,
    ) -> VoteMessage {
        let digest = Self::signing_digest(round, step, &sorthash, &sort_proof, &prev_hash, &value);
        let sig = sig::sign(keypair, &digest);
        VoteMessage {
            sender: keypair.pk,
            round,
            step,
            sorthash,
            sort_proof,
            prev_hash,
            value,
            sig,
        }
    }

    /// Verifies only the signature (not sortition membership).
    pub fn signature_valid(&self) -> bool {
        let digest = Self::signing_digest(
            self.round,
            self.step,
            &self.sorthash,
            &self.sort_proof,
            &self.prev_hash,
            &self.value,
        );
        sig::verify(&self.sender, &digest, &self.sig).is_ok()
    }

    /// A content hash identifying this message (used for dedup and for the
    /// shared verification cache).
    pub fn message_id(&self) -> [u8; 32] {
        sha256_concat(&[
            self.sender.as_bytes(),
            &self.round.to_le_bytes(),
            &self.step.code().to_le_bytes(),
            &self.sorthash.0,
            &self.sort_proof.to_bytes(),
            &self.prev_hash,
            &self.value,
            &self.sig.to_bytes(),
        ])
    }

    /// Serialized size in bytes, for bandwidth accounting in the simulator.
    ///
    /// pk(32) + round(8) + step(4) + sorthash(32) + proof(96) +
    /// prev_hash(32) + value(32) + sig(64) = 300 bytes, close to the ~200
    /// bytes the paper cites for priority/vote messages.
    pub const WIRE_SIZE: usize = 300;

    /// Appends the canonical wire encoding.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.put_bytes(self.sender.as_bytes());
        out.put_u64(self.round);
        out.put_u32(self.step.code());
        out.put_bytes(&self.sorthash.0);
        out.put_bytes(&self.sort_proof.to_bytes());
        out.put_bytes(&self.prev_hash);
        out.put_bytes(&self.value);
        out.put_bytes(&self.sig.to_bytes());
    }

    /// The canonical wire encoding as a fresh buffer.
    pub fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::WIRE_SIZE);
        self.encode(&mut out);
        out
    }

    /// Decodes a vote from the wire.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for truncated input or malformed keys,
    /// proofs, or signatures. The result is structurally valid but not yet
    /// *verified* — callers still run ProcessMsg (Algorithm 6).
    pub fn decode(r: &mut Reader<'_>) -> Result<VoteMessage, DecodeError> {
        let sender = PublicKey::from_bytes(&r.bytes32()?).map_err(|_| DecodeError::Invalid)?;
        let round = r.u64()?;
        let step = StepKind::from_code(r.u32()?);
        if let StepKind::Main(s) = step {
            if s == 0 {
                return Err(DecodeError::Invalid);
            }
        }
        let sorthash = VrfOutput(r.bytes32()?);
        let mut proof_bytes = [0u8; VRF_PROOF_LEN];
        proof_bytes.copy_from_slice(r.bytes(VRF_PROOF_LEN)?);
        let sort_proof = VrfProof::from_bytes(&proof_bytes).map_err(|_| DecodeError::Invalid)?;
        let prev_hash = r.bytes32()?;
        let value = r.bytes32()?;
        let mut sig_bytes = [0u8; 64];
        sig_bytes.copy_from_slice(r.bytes(64)?);
        let sig = Signature::from_bytes(&sig_bytes).map_err(|_| DecodeError::Invalid)?;
        Ok(VoteMessage {
            sender,
            round,
            step,
            sorthash,
            sort_proof,
            prev_hash,
            value,
            sig,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algorand_crypto::vrf;

    fn sample_vote(seed: u8, round: u64, step: StepKind) -> VoteMessage {
        let keypair = Keypair::from_seed([seed; 32]);
        let (sorthash, proof) = vrf::prove(&keypair, b"sortition-input");
        VoteMessage::sign(&keypair, round, step, sorthash, proof, [7u8; 32], [9u8; 32])
    }

    #[test]
    fn step_codes_roundtrip() {
        let steps = [
            StepKind::Final,
            StepKind::ReductionOne,
            StepKind::ReductionTwo,
            StepKind::Main(1),
            StepKind::Main(150),
        ];
        for s in steps {
            assert_eq!(StepKind::from_code(s.code()), s);
        }
    }

    #[test]
    fn step_codes_distinct() {
        let codes = [
            StepKind::Final.code(),
            StepKind::ReductionOne.code(),
            StepKind::ReductionTwo.code(),
            StepKind::Main(1).code(),
            StepKind::Main(2).code(),
        ];
        for (i, a) in codes.iter().enumerate() {
            for (j, b) in codes.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b);
                }
            }
        }
    }

    #[test]
    fn signed_vote_verifies() {
        let vote = sample_vote(1, 5, StepKind::Main(2));
        assert!(vote.signature_valid());
    }

    #[test]
    fn tampered_vote_fails_signature() {
        let mut vote = sample_vote(2, 5, StepKind::Main(2));
        vote.value[0] ^= 1;
        assert!(!vote.signature_valid());
        let mut vote2 = sample_vote(2, 5, StepKind::Main(2));
        vote2.round += 1;
        assert!(!vote2.signature_valid());
        let mut vote3 = sample_vote(2, 5, StepKind::Main(2));
        vote3.step = StepKind::Main(3);
        assert!(!vote3.signature_valid());
    }

    #[test]
    fn wire_roundtrip() {
        use algorand_crypto::codec::Reader;
        for step in [StepKind::Final, StepKind::ReductionOne, StepKind::Main(7)] {
            let vote = sample_vote(5, 42, step);
            let bytes = vote.encoded();
            assert_eq!(bytes.len(), VoteMessage::WIRE_SIZE);
            let mut r = Reader::new(&bytes);
            let back = VoteMessage::decode(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(back.message_id(), vote.message_id());
            assert!(back.signature_valid());
        }
    }

    #[test]
    fn decode_rejects_truncation_and_garbage() {
        use algorand_crypto::codec::Reader;
        let vote = sample_vote(6, 1, StepKind::Main(1));
        let bytes = vote.encoded();
        for cut in [0usize, 10, 100, 299] {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(VoteMessage::decode(&mut r).is_err(), "cut at {cut}");
        }
        let mut corrupt = bytes.clone();
        corrupt[0] ^= 0xff; // Sender key no longer decompresses (usually).
        let mut r = Reader::new(&corrupt);
        // Either the key fails to parse or the signature is now invalid.
        if let Ok(v) = VoteMessage::decode(&mut r) {
            assert!(!v.signature_valid());
        }
    }

    #[test]
    fn message_ids_differ_by_content() {
        let a = sample_vote(3, 1, StepKind::Main(1));
        let b = sample_vote(3, 2, StepKind::Main(1));
        let c = sample_vote(4, 1, StepKind::Main(1));
        assert_ne!(a.message_id(), b.message_id());
        assert_ne!(a.message_id(), c.message_id());
        assert_eq!(a.message_id(), a.clone().message_id());
    }
}
