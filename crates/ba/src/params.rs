//! BA⋆ protocol parameters (the consensus-relevant subset of Figure 4).

/// Microseconds since the start of the simulation (or UNIX epoch, for a
/// real deployment). All protocol timing uses this unit.
pub type Micros = u64;

/// One second in [`Micros`].
pub const SECOND: Micros = 1_000_000;

/// Parameters governing one execution of BA⋆.
#[derive(Clone, Copy, Debug)]
pub struct BaParams {
    /// Expected committee size per step (τ_step; paper: 2000).
    pub tau_step: f64,
    /// Vote threshold fraction per step (T_step; paper: 0.685).
    pub t_step: f64,
    /// Expected committee size for the final step (τ_final; paper: 10000).
    pub tau_final: f64,
    /// Vote threshold fraction for the final step (T_final; paper: 0.74).
    pub t_final: f64,
    /// Maximum BinaryBA⋆ steps before hanging (MaxSteps; paper: 150).
    pub max_steps: u32,
    /// Timeout for one BA⋆ step (λ_step; paper: 20 s).
    pub lambda_step: Micros,
    /// Timeout for receiving a block (λ_block; paper: 1 min); the first
    /// reduction step waits λ_block + λ_step because other users may still
    /// be waiting for block proposals (Algorithm 7).
    pub lambda_block: Micros,
    /// Test-only: disable §8.2's consecutive-timeout doubling of λ_step
    /// (and the node layer's λ_stepvar doubling). Production is always
    /// `false`; the schedule-space fuzzer flips it to prove its oracle
    /// catches the resulting liveness regressions.
    pub disable_backoff: bool,
}

impl BaParams {
    /// The paper's production parameters (Figure 4).
    pub fn paper() -> BaParams {
        BaParams {
            tau_step: 2000.0,
            t_step: 0.685,
            tau_final: 10_000.0,
            t_final: 0.74,
            max_steps: 150,
            lambda_step: 20 * SECOND,
            lambda_block: 60 * SECOND,
            disable_backoff: false,
        }
    }

    /// The number of votes needed to conclude a non-final step: > T·τ.
    pub fn step_vote_threshold(&self) -> f64 {
        self.t_step * self.tau_step
    }

    /// The number of votes needed to conclude the final step.
    pub fn final_vote_threshold(&self) -> f64 {
        self.t_final * self.tau_final
    }

    /// τ for a given step (the final step uses the larger committee).
    pub fn tau_for(&self, is_final: bool) -> f64 {
        if is_final {
            self.tau_final
        } else {
            self.tau_step
        }
    }

    /// The vote threshold for a given step.
    pub fn threshold_for(&self, is_final: bool) -> f64 {
        if is_final {
            self.final_vote_threshold()
        } else {
            self.step_vote_threshold()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_match_figure4() {
        let p = BaParams::paper();
        assert_eq!(p.tau_step, 2000.0);
        assert_eq!(p.t_step, 0.685);
        assert_eq!(p.tau_final, 10_000.0);
        assert_eq!(p.t_final, 0.74);
        assert_eq!(p.max_steps, 150);
        assert_eq!(p.lambda_step, 20 * SECOND);
        assert_eq!(p.lambda_block, 60 * SECOND);
    }

    #[test]
    fn thresholds_are_supermajorities() {
        let p = BaParams::paper();
        assert!(p.step_vote_threshold() > p.tau_step * 2.0 / 3.0);
        assert!(p.final_vote_threshold() > p.tau_final * 2.0 / 3.0);
        assert_eq!(p.tau_for(true), p.tau_final);
        assert_eq!(p.tau_for(false), p.tau_step);
        assert!(p.threshold_for(true) > p.threshold_for(false));
    }
}
