//! Per-step vote tallies (the stateful half of CountVotes, Algorithm 5).
//!
//! The engine keeps one tally per step it has seen votes for. Votes for
//! future steps accumulate here until the engine reaches that step — the
//! `incomingMsgs` buffer of the paper's pseudocode.

use crate::msg::{Value, VoteMessage};
use crate::verify::VerifiedVote;
use algorand_crypto::sha256_concat;
use std::collections::{HashMap, HashSet};

/// Accumulated votes for one (round, step).
#[derive(Default)]
pub struct StepTally {
    counts: HashMap<Value, u64>,
    voters: HashSet<[u8; 32]>,
    /// Lowest `H(sorthash ‖ j)` over all sub-user indices of all counted
    /// votes — the committee-member hash minimum that drives the common
    /// coin (Algorithm 9).
    min_subhash: Option<[u8; 32]>,
    /// Retained messages, for certificate assembly (§8.3).
    messages: Vec<(VoteMessage, u64)>,
}

impl StepTally {
    /// Creates an empty tally.
    pub fn new() -> StepTally {
        StepTally::default()
    }

    /// Records a vote that passed the verification stage.
    ///
    /// Accepting only [`VerifiedVote`] — whose constructor is private to
    /// `crate::verify` — makes it impossible for an unverified message to
    /// enter a tally. Returns false (and records nothing) if this sender
    /// already voted in this step — the one-message-per-⟨round,step⟩ rule
    /// of §8.4.
    pub fn add(&mut self, vote: &VerifiedVote) -> bool {
        let (msg, votes) = (vote.message(), vote.votes());
        debug_assert!(votes > 0);
        if !self.voters.insert(msg.sender.to_bytes()) {
            return false;
        }
        *self.counts.entry(msg.value).or_insert(0) += votes;
        // Fold this member's sub-user hashes into the coin minimum.
        for j in 0..votes {
            let h = sha256_concat(&[&msg.sorthash.0, &j.to_le_bytes()]);
            match &self.min_subhash {
                Some(cur) if *cur <= h => {}
                _ => self.min_subhash = Some(h),
            }
        }
        self.messages.push((msg.clone(), votes));
        true
    }

    /// The vote count for a specific value.
    pub fn count_for(&self, value: &Value) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Total votes across all values.
    pub fn total_votes(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of distinct voters recorded.
    pub fn num_voters(&self) -> usize {
        self.voters.len()
    }

    /// The first value whose count strictly exceeds `threshold`, preferring
    /// the highest count (ties broken by value bytes for determinism).
    pub fn over_threshold(&self, threshold: f64) -> Option<Value> {
        self.counts
            .iter()
            .filter(|(_, &c)| (c as f64) > threshold)
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| a.0.cmp(b.0)))
            .map(|(v, _)| *v)
    }

    /// The common coin for this step (Algorithm 9): the least-significant
    /// bit of the lowest committee-member sub-hash observed.
    ///
    /// With no votes at all the initial `minhash = 2^hashlen` of the paper
    /// is even, giving coin 0.
    pub fn common_coin(&self) -> u8 {
        match &self.min_subhash {
            Some(h) => h[31] & 1,
            None => 0,
        }
    }

    /// The most recently counted message voting for `value` — when a step
    /// concludes on votes, this is (an upper bound on) the gating vote
    /// that pushed the value over its threshold, used for causal trace
    /// links. Batch ingestion (catch-up replay) may overshoot the exact
    /// threshold-crosser, but the returned vote was in the tally at
    /// conclusion time, so the causal chain stays valid.
    pub fn last_message_for(&self, value: &Value) -> Option<&VoteMessage> {
        self.messages
            .iter()
            .rev()
            .find(|(m, _)| m.value == *value)
            .map(|(m, _)| m)
    }

    /// Messages voting for `value`, with their vote counts — certificate
    /// raw material.
    pub fn messages_for(&self, value: Value) -> impl Iterator<Item = (&VoteMessage, u64)> + '_ {
        self.messages
            .iter()
            .filter(move |(m, _)| m.value == value)
            .map(|(m, v)| (m, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::StepKind;
    use algorand_crypto::{vrf, Keypair};

    fn vote(seed: u8, value: u8, votes: u64) -> VerifiedVote {
        let kp = Keypair::from_seed([seed; 32]);
        let (sorthash, proof) = vrf::prove(&kp, b"t");
        let msg = VoteMessage::sign(
            &kp,
            1,
            StepKind::Main(1),
            sorthash,
            proof,
            [0u8; 32],
            [value; 32],
        );
        VerifiedVote::for_test(msg, votes)
    }

    #[test]
    fn counts_accumulate_by_value() {
        let mut t = StepTally::new();
        assert!(t.add(&vote(1, 7, 3)));
        assert!(t.add(&vote(2, 7, 2)));
        assert!(t.add(&vote(3, 8, 4)));
        assert_eq!(t.count_for(&[7u8; 32]), 5);
        assert_eq!(t.count_for(&[8u8; 32]), 4);
        assert_eq!(t.total_votes(), 9);
        assert_eq!(t.num_voters(), 3);
    }

    #[test]
    fn duplicate_sender_rejected() {
        let mut t = StepTally::new();
        assert!(t.add(&vote(1, 7, 3)));
        // Same sender, even voting a different value, is dropped.
        assert!(!t.add(&vote(1, 9, 5)));
        assert_eq!(t.total_votes(), 3);
    }

    #[test]
    fn over_threshold_picks_heaviest() {
        let mut t = StepTally::new();
        t.add(&vote(1, 7, 10));
        t.add(&vote(2, 8, 12));
        assert_eq!(t.over_threshold(9.0), Some([8u8; 32]));
        assert_eq!(t.over_threshold(11.5), Some([8u8; 32]));
        assert_eq!(t.over_threshold(12.0), None);
        // Strict inequality: count must exceed, not equal, the threshold.
        assert_eq!(t.over_threshold(12.0 - 1e-9), Some([8u8; 32]));
    }

    #[test]
    fn coin_is_deterministic_in_messages() {
        let mut a = StepTally::new();
        let mut b = StepTally::new();
        for (seed, val, votes) in [(1u8, 7u8, 2u64), (2, 7, 1), (3, 8, 3)] {
            a.add(&vote(seed, val, votes));
            b.add(&vote(seed, val, votes));
        }
        assert_eq!(a.common_coin(), b.common_coin());
        // Empty tally defaults to 0.
        assert_eq!(StepTally::new().common_coin(), 0);
    }

    #[test]
    fn messages_for_filters_by_value() {
        let mut t = StepTally::new();
        t.add(&vote(1, 7, 2));
        t.add(&vote(2, 8, 1));
        t.add(&vote(3, 7, 4));
        let sevens: Vec<u64> = t.messages_for([7u8; 32]).map(|(_, v)| v).collect();
        assert_eq!(sevens.iter().sum::<u64>(), 6);
        assert_eq!(sevens.len(), 2);
    }
}
