//! The BA⋆ engine: Algorithms 3, 7 and 8 as a sans-io state machine.
//!
//! One [`BaStar`] instance runs one round of Byzantine agreement for one
//! user. It is driven by a caller (a full node or the simulator) that
//! delivers incoming votes ([`BaStar::on_vote`]) and clock ticks
//! ([`BaStar::on_tick`]); it emits [`Output`]s: votes to gossip and,
//! eventually, a decision. It keeps no secrets besides the user's private
//! key (§7's participant-replacement property): all tallying state can be
//! reconstructed by any passive observer of the message stream.
//!
//! Phase structure (Algorithm 3):
//!
//! ```text
//! Reduction step 1 ─► Reduction step 2 ─► BinaryBA⋆ steps 1.. ─► final count
//!       (λblock+λstep)      (λstep)           (λstep each)         (λstep)
//! ```

use crate::msg::{StepKind, Value, VoteMessage};
use crate::params::{BaParams, Micros};
use crate::tally::StepTally;
use crate::verify::{verify_vote_message, VerifiedVote, VoteContext, VoteVerifier};
use crate::weights::RoundWeights;
use crate::Certificate;
use algorand_crypto::Keypair;
use algorand_obs::{causal, stable_id, SpanKind, Tracer};
use algorand_sortition::{select, Role, SortitionParams};
use std::collections::HashMap;
use std::sync::Arc;

/// Whether BA⋆ reached final or tentative consensus (§4, §7.4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConsensusKind {
    /// No other block can have reached consensus this round.
    Final,
    /// Safety could not be confirmed; another tentative block may exist.
    Tentative,
}

/// The completed result of one BA⋆ round for this user.
#[derive(Clone, Debug)]
pub struct Decision {
    /// Final or tentative.
    pub kind: ConsensusKind,
    /// The agreed block hash (possibly the empty block's hash).
    pub value: Value,
    /// The BinaryBA⋆ step at which agreement was reached (1 in the common
    /// case of an honest highest-priority proposer).
    pub binary_step: u32,
    /// The certificate assembled from the concluding step's votes (§8.3).
    pub certificate: Certificate,
    /// For final consensus: the final-step vote aggregate — the
    /// "certificate proving the safety of a block" of §8.3. Since final
    /// blocks are totally ordered, a user need only check the most recent
    /// one. `None` for tentative consensus.
    pub final_certificate: Option<Certificate>,
}

/// An event emitted by the engine for its driver to act on.
///
/// Variant sizes differ widely (a vote is ~500 bytes); outputs are moved
/// once and never stored in bulk, so boxing would only add indirection.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum Output {
    /// Gossip this vote to the network.
    Gossip(VoteMessage),
    /// BinaryBA⋆ concluded on a value; the final count is still running.
    /// (Figure 7 separates "BA⋆ w/o final step" from the final step using
    /// this event.)
    BinaryDecided {
        /// The agreed hash.
        value: Value,
        /// The concluding BinaryBA⋆ step.
        step: u32,
    },
    /// BA⋆ completed; this is the last output the engine produces.
    Decided(Decision),
    /// MaxSteps was exceeded: the engine hangs and relies on the recovery
    /// protocol (§8.2) for liveness.
    Hung,
}

enum Phase {
    Reduction1,
    Reduction2,
    Binary { step: u32 },
    FinalCount { value: Value, binary_step: u32 },
    Done,
    Hung,
}

/// Switches that disable individual protocol mechanisms, for ablation
/// studies only (`bench/ablation_*`). Production paths never set these.
#[derive(Clone, Copy, Debug, Default)]
pub struct AblationFlags {
    /// Replace the common coin (Algorithm 9) with the deterministic rule
    /// "timeout → vote block_hash": re-enables the network-scheduler split
    /// attack of §7.4.
    pub disable_common_coin: bool,
    /// Skip the three extra votes cast after reaching consensus: stragglers
    /// may then starve below the threshold.
    pub disable_extra_votes: bool,
}

/// The BA⋆ state machine for one user in one round.
pub struct BaStar {
    params: BaParams,
    round: u64,
    seed: [u8; 32],
    prev_hash: [u8; 32],
    empty_hash: Value,
    /// The hash BinaryBA⋆ was invoked with (reduction output).
    binary_input: Value,
    keypair: Keypair,
    weights: Arc<RoundWeights>,
    verifier: Arc<dyn VoteVerifier>,
    tallies: HashMap<u32, StepTally>,
    ablation: AblationFlags,
    phase: Phase,
    /// When the current phase's CountVotes window opened.
    phase_started: Micros,
    /// Consecutive steps that concluded by timeout rather than votes.
    /// Each one doubles the effective λ_step (§8.2's retry doubling),
    /// capped at [`BaStar::MAX_TIMEOUT_DOUBLINGS`]; a step that
    /// concludes on votes resets the streak.
    timeout_streak: u32,
    /// Total timeout-fired steps over this engine's lifetime.
    timeout_escalations: u64,
    /// Timestamps for metrics: when reduction / binary / final concluded.
    reduction_done: Option<Micros>,
    binary_done: Option<Micros>,
    finished: Option<Micros>,
    started: Micros,
    /// Trace sink ([`Tracer::disabled`] until the driver attaches one) and
    /// the node id stamped on emitted spans.
    tracer: Tracer,
    trace_node: u32,
    /// Span id of the most recently concluded phase (0 = still in the
    /// proposal phase) — the causal predecessor of emitted votes.
    last_concluded: u64,
    /// Whether to stamp causal ids and emit tally events. Recovery-
    /// protocol engines re-run fork rounds and would collide with the
    /// normal round's id namespace, so the driver suppresses them.
    causal_ids: bool,
    /// The reduction-one emission of [`BaStar::start`] predates the
    /// tracer attach; it is parked here and flushed by
    /// [`BaStar::set_tracer`].
    pending_emission: Option<PendingEmission>,
}

/// A vote emission recorded before a tracer was attached.
struct PendingEmission {
    step_code: u32,
    msg_id: u64,
    voter: u64,
    j: u64,
    at: Micros,
}

impl BaStar {
    /// Creates the engine and casts the first reduction vote.
    ///
    /// `block_hash` is the hash of the highest-priority proposed block the
    /// user received (or the empty block's hash); `empty_hash` is
    /// `H(Empty(round, prev_hash))`. Returned outputs must be acted on.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        params: BaParams,
        keypair: Keypair,
        round: u64,
        seed: [u8; 32],
        prev_hash: [u8; 32],
        block_hash: Value,
        empty_hash: Value,
        weights: Arc<RoundWeights>,
        verifier: Arc<dyn VoteVerifier>,
        now: Micros,
    ) -> (BaStar, Vec<Output>) {
        let mut engine = BaStar {
            params,
            round,
            seed,
            prev_hash,
            empty_hash,
            binary_input: empty_hash,
            keypair,
            weights,
            verifier,
            tallies: HashMap::new(),
            ablation: AblationFlags::default(),
            phase: Phase::Reduction1,
            phase_started: now,
            timeout_streak: 0,
            timeout_escalations: 0,
            reduction_done: None,
            binary_done: None,
            finished: None,
            started: now,
            tracer: Tracer::disabled(),
            trace_node: 0,
            last_concluded: 0,
            causal_ids: true,
            pending_emission: None,
        };
        let mut out = Vec::new();
        engine.committee_vote(StepKind::ReductionOne, block_hash, now, &mut out);
        (engine, out)
    }

    /// Attaches a trace sink; subsequent spans are stamped with `node`.
    /// The reduction-one sortition of [`BaStar::start`] predates the
    /// attach; it was parked and is flushed here so the causal chain
    /// reaches back to the proposal that seeded the vote.
    pub fn set_tracer(&mut self, tracer: Tracer, node: u32) {
        self.tracer = tracer;
        self.trace_node = node;
        let Some(p) = self.pending_emission.take() else {
            return;
        };
        if !self.tracer.is_enabled() || !self.causal_ids {
            return;
        }
        self.tracer
            .span(SpanKind::Sortition, node, self.round, p.at)
            .step(p.step_code)
            .label("committee")
            .value(p.j)
            .id(p.msg_id)
            .cause(causal::proposal_span_id(node, self.round))
            .instant();
        self.tracer
            .span(SpanKind::Tally, node, self.round, p.at)
            .step(p.step_code)
            .label("add")
            .id(p.msg_id)
            .cause(p.voter)
            .value(p.j)
            .instant();
    }

    /// Disables causal id stamping and tally events for this engine.
    /// Recovery-protocol engines re-run fork rounds and would collide
    /// with the normal round's causal id namespace, so the driver
    /// suppresses them. Plain spans still record.
    pub fn suppress_causal_ids(&mut self) {
        self.causal_ids = false;
    }

    /// The span id of the most recently concluded BA⋆ phase (0 before the
    /// first conclusion) — the round span's causal link to the final
    /// count that produced its certificate.
    pub fn last_concluded_span(&self) -> u64 {
        self.last_concluded
    }

    /// Starts the engine directly at BinaryBA⋆ step 1, skipping reduction —
    /// the `ablation_reduction` experiment. With multi-valued inputs and no
    /// reduction, honest votes split and BA⋆ cannot make progress.
    #[allow(clippy::too_many_arguments)]
    pub fn start_without_reduction(
        params: BaParams,
        keypair: Keypair,
        round: u64,
        seed: [u8; 32],
        prev_hash: [u8; 32],
        block_hash: Value,
        empty_hash: Value,
        weights: Arc<RoundWeights>,
        verifier: Arc<dyn VoteVerifier>,
        now: Micros,
    ) -> (BaStar, Vec<Output>) {
        let (mut engine, mut out) = BaStar::start(
            params, keypair, round, seed, prev_hash, block_hash, empty_hash, weights, verifier, now,
        );
        // Discard the reduction-one vote and jump straight to binary.
        out.clear();
        engine.binary_input = block_hash;
        engine.reduction_done = Some(now);
        engine.enter_binary_step(1, block_hash, now, &mut out);
        (engine, out)
    }

    /// Sets ablation switches (see [`AblationFlags`]); benches only.
    pub fn set_ablation(&mut self, flags: AblationFlags) {
        self.ablation = flags;
    }

    /// Delivers an incoming raw vote: runs it through the verification
    /// stage, then the tallies. Returns any resulting outputs.
    pub fn on_vote(&mut self, msg: &VoteMessage, now: Micros) -> Vec<Output> {
        let mut out = Vec::new();
        self.ingest(msg, now);
        self.advance(now, &mut out);
        out
    }

    /// Delivers a vote that already passed the verification stage (the
    /// staged pipeline's path: the node verifies against
    /// [`BaStar::vote_context`] and feeds the wrapper straight in).
    pub fn on_verified_vote(&mut self, vote: &VerifiedVote, now: Micros) -> Vec<Output> {
        let mut out = Vec::new();
        self.ingest_verified(vote, now);
        self.advance(now, &mut out);
        out
    }

    /// Verifies and records a raw vote without advancing clock-dependent
    /// state (used when replaying buffered messages). `now` only stamps
    /// the trace.
    pub fn ingest(&mut self, msg: &VoteMessage, now: Micros) {
        if matches!(self.phase, Phase::Done | Phase::Hung) {
            return;
        }
        // Algorithm 6's cheap chain-context checks: round and prev-hash.
        if msg.round != self.round || msg.prev_hash != self.prev_hash {
            return;
        }
        let ctx = self.vote_context(msg.step);
        let Some(vote) = verify_vote_message(self.verifier.as_ref(), msg, &ctx, &self.weights)
        else {
            return;
        };
        self.ingest_verified(&vote, now);
    }

    /// Records an already-verified vote without advancing clock-dependent
    /// state. Chain-context checks (round, prev-hash) still run here: a
    /// [`VerifiedVote`] is cryptographically sound but may belong to a
    /// different fork or round than this engine. `now` only stamps the
    /// trace.
    pub fn ingest_verified(&mut self, vote: &VerifiedVote, now: Micros) {
        if matches!(self.phase, Phase::Done | Phase::Hung) {
            return;
        }
        let msg = vote.message();
        if msg.round != self.round || msg.prev_hash != self.prev_hash {
            return;
        }
        if self.tallies.entry(msg.step.code()).or_default().add(vote) {
            self.record_tally_add(vote, now);
        }
    }

    /// Emits the vote-accounting trace event for a successful tally add
    /// — the stream the invariant monitor checks §8.4's one-vote rule
    /// and the §7.5 committee bounds against.
    fn record_tally_add(&self, vote: &VerifiedVote, now: Micros) {
        if !self.tracer.is_enabled() || !self.causal_ids {
            return;
        }
        let msg = vote.message();
        self.tracer
            .span(SpanKind::Tally, self.trace_node, self.round, now)
            .step(msg.step.code())
            .label("add")
            .id(stable_id(&msg.message_id()))
            .cause(stable_id(&msg.sender.to_bytes()))
            .value(vote.votes())
            .instant();
    }

    /// The verification context votes for `step` must be checked against.
    pub fn vote_context(&self, step: StepKind) -> VoteContext {
        VoteContext {
            round: self.round,
            seed: self.seed,
            tau: self.params.tau_for(step == StepKind::Final),
        }
    }

    /// The round this engine is agreeing on.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The previous block hash this engine extends.
    pub fn prev_hash(&self) -> [u8; 32] {
        self.prev_hash
    }

    /// The weight snapshot this engine verifies against.
    pub fn weights(&self) -> &Arc<RoundWeights> {
        &self.weights
    }

    /// Notifies the engine that time has passed; fires timeouts if due.
    pub fn on_tick(&mut self, now: Micros) -> Vec<Output> {
        let mut out = Vec::new();
        self.advance(now, &mut out);
        out
    }

    /// Upper bound on consecutive-timeout doublings of λ_step, so the
    /// backoff tops out at 16× rather than growing without limit.
    pub const MAX_TIMEOUT_DOUBLINGS: u32 = 4;

    /// The effective step timeout: λ_step doubled once per consecutive
    /// timeout-fired step (§8.2's retry doubling), capped. During a
    /// partition this stops nodes from spinning through committee-less
    /// steps; the first vote-concluded step resets it.
    pub fn effective_lambda_step(&self) -> Micros {
        if self.params.disable_backoff {
            return self.params.lambda_step;
        }
        self.params.lambda_step << self.timeout_streak.min(Self::MAX_TIMEOUT_DOUBLINGS)
    }

    /// Total steps this engine concluded by timeout (backoff escalations).
    pub fn timeout_escalations(&self) -> u64 {
        self.timeout_escalations
    }

    /// The current consecutive-timeout streak.
    pub fn timeout_streak(&self) -> u32 {
        self.timeout_streak
    }

    /// The next instant at which [`BaStar::on_tick`] must be called, if any.
    pub fn next_deadline(&self) -> Option<Micros> {
        let lambda = match self.phase {
            Phase::Reduction1 => self.params.lambda_block + self.effective_lambda_step(),
            Phase::Reduction2 | Phase::Binary { .. } | Phase::FinalCount { .. } => {
                self.effective_lambda_step()
            }
            Phase::Done | Phase::Hung => return None,
        };
        Some(self.phase_started + lambda)
    }

    /// True once a decision (or hang) has been emitted.
    pub fn is_finished(&self) -> bool {
        matches!(self.phase, Phase::Done | Phase::Hung)
    }

    /// The BinaryBA⋆ step currently being voted, if in the binary phase
    /// (used by adversarial test harnesses to target deliveries).
    pub fn current_binary_step(&self) -> Option<u32> {
        match &self.phase {
            Phase::Binary { step } => Some(*step),
            _ => None,
        }
    }

    /// When reduction concluded (for step-breakdown metrics).
    pub fn reduction_done_at(&self) -> Option<Micros> {
        self.reduction_done
    }

    /// When BinaryBA⋆ concluded.
    pub fn binary_done_at(&self) -> Option<Micros> {
        self.binary_done
    }

    /// When the whole of BA⋆ (including the final count) concluded.
    pub fn finished_at(&self) -> Option<Micros> {
        self.finished
    }

    /// When this engine started.
    pub fn started_at(&self) -> Micros {
        self.started
    }

    // --- Internals ---------------------------------------------------------

    /// Runs sortition for `step`; if selected, signs, self-tallies, and
    /// emits a vote (CommitteeVote, Algorithm 4).
    fn committee_vote(&mut self, step: StepKind, value: Value, now: Micros, out: &mut Vec<Output>) {
        let is_final = step == StepKind::Final;
        let role = Role::Committee {
            round: self.round,
            step: step.code(),
        };
        let params = SortitionParams {
            tau: self.params.tau_for(is_final),
            total_weight: self.weights.total(),
        };
        let my_weight = self.weights.weight_of(&self.keypair.pk);
        let Some(sel) = select(&self.keypair, &self.seed, role, &params, my_weight) else {
            return; // Not on this step's committee.
        };
        let msg = VoteMessage::sign(
            &self.keypair,
            self.round,
            step,
            sel.vrf_output,
            sel.proof,
            self.prev_hash,
            value,
        );
        // The emission span carries the vote's message id and links back
        // to the phase whose conclusion triggered the vote (the proposal
        // phase for reduction one) — the backward edge the critical-path
        // walker follows from a tally to the voter's own history.
        let msg_id = stable_id(&msg.message_id());
        if self.tracer.is_enabled() {
            let mut span = self
                .tracer
                .span(SpanKind::Sortition, self.trace_node, self.round, now)
                .step(step.code())
                .label("committee")
                .value(sel.j);
            if self.causal_ids {
                let cause = if self.last_concluded != 0 {
                    self.last_concluded
                } else {
                    causal::proposal_span_id(self.trace_node, self.round)
                };
                span = span.id(msg_id).cause(cause);
            }
            span.instant();
        } else if self.causal_ids {
            self.pending_emission = Some(PendingEmission {
                step_code: step.code(),
                msg_id,
                voter: stable_id(&self.keypair.pk.to_bytes()),
                j: sel.j,
                at: now,
            });
        }
        // Count our own vote immediately; the gossip layer will not echo
        // our own message back to us. Even our own vote goes through the
        // verification stage — the only path into a tally — which also
        // pre-warms the shared cache for every other simulated observer.
        let ctx = self.vote_context(step);
        if let Some(vote) = verify_vote_message(self.verifier.as_ref(), &msg, &ctx, &self.weights) {
            debug_assert_eq!(vote.votes(), sel.j);
            if self.tallies.entry(step.code()).or_default().add(&vote) {
                self.record_tally_add(&vote, now);
            }
        } else {
            debug_assert!(false, "own freshly signed vote must verify");
        }
        out.push(Output::Gossip(msg));
    }

    /// The CountVotes outcome for the current phase, if it can conclude.
    fn current_outcome(&self, now: Micros) -> Option<Result<Value, ()>> {
        let (step_code, lambda, threshold) = match &self.phase {
            Phase::Reduction1 => (
                StepKind::ReductionOne.code(),
                self.params.lambda_block + self.effective_lambda_step(),
                self.params.step_vote_threshold(),
            ),
            Phase::Reduction2 => (
                StepKind::ReductionTwo.code(),
                self.effective_lambda_step(),
                self.params.step_vote_threshold(),
            ),
            Phase::Binary { step } => (
                StepKind::Main(*step).code(),
                self.effective_lambda_step(),
                self.params.step_vote_threshold(),
            ),
            Phase::FinalCount { .. } => (
                StepKind::Final.code(),
                self.effective_lambda_step(),
                self.params.final_vote_threshold(),
            ),
            Phase::Done | Phase::Hung => return None,
        };
        if let Some(tally) = self.tallies.get(&step_code) {
            if let Some(v) = tally.over_threshold(threshold) {
                return Some(Ok(v));
            }
        }
        if now >= self.phase_started + lambda {
            return Some(Err(())); // Timeout.
        }
        None
    }

    /// Advances phases as long as outcomes are available.
    fn advance(&mut self, now: Micros, out: &mut Vec<Output>) {
        while let Some(outcome) = self.current_outcome(now) {
            if self.tracer.is_enabled() {
                let (label, step_code) = match &self.phase {
                    Phase::Reduction1 => ("reduction1", StepKind::ReductionOne.code()),
                    Phase::Reduction2 => ("reduction2", StepKind::ReductionTwo.code()),
                    Phase::Binary { step } => ("binary", StepKind::Main(*step).code()),
                    Phase::FinalCount { .. } => ("final", StepKind::Final.code()),
                    Phase::Done | Phase::Hung => unreachable!("no outcomes when finished"),
                };
                let mut span = self
                    .tracer
                    .span(
                        SpanKind::BaStep,
                        self.trace_node,
                        self.round,
                        self.phase_started,
                    )
                    .step(step_code)
                    .label(label)
                    .ok(outcome.is_ok());
                if self.causal_ids {
                    // A vote-concluded step is caused by its gating vote;
                    // a timeout conclusion has no gate (cause 0).
                    let gate = match &outcome {
                        Ok(v) => self
                            .tallies
                            .get(&step_code)
                            .and_then(|t| t.last_message_for(v))
                            .map(|m| stable_id(&m.message_id()))
                            .unwrap_or(0),
                        Err(()) => 0,
                    };
                    let sid = causal::step_span_id(self.trace_node, self.round, step_code);
                    span = span.id(sid).cause(gate);
                    self.last_concluded = sid;
                }
                span.end_at(now);
            }
            // §8.2 retry doubling: a timeout-fired step grows the next
            // step's window; a vote-concluded step resets it.
            match &outcome {
                Ok(_) => self.timeout_streak = 0,
                Err(()) => {
                    self.timeout_streak += 1;
                    self.timeout_escalations += 1;
                }
            }
            match &self.phase {
                Phase::Reduction1 => {
                    // Algorithm 7 step 2: re-gossip the popular hash, or
                    // the empty hash on timeout.
                    let vote_value = outcome.unwrap_or(self.empty_hash);
                    self.phase = Phase::Reduction2;
                    self.phase_started = now;
                    self.committee_vote(StepKind::ReductionTwo, vote_value, now, out);
                }
                Phase::Reduction2 => {
                    let hblock2 = outcome.unwrap_or(self.empty_hash);
                    self.reduction_done = Some(now);
                    self.binary_input = hblock2;
                    self.enter_binary_step(1, hblock2, now, out);
                }
                Phase::Binary { step } => {
                    let step = *step;
                    match step % 3 {
                        1 => match outcome {
                            Err(()) => {
                                self.enter_binary_step(step + 1, self.binary_input, now, out)
                            }
                            Ok(v) if v != self.empty_hash => self.decide(v, step, now, out),
                            Ok(v) => self.enter_binary_step(step + 1, v, now, out),
                        },
                        2 => match outcome {
                            Err(()) => self.enter_binary_step(step + 1, self.empty_hash, now, out),
                            Ok(v) if v == self.empty_hash => self.decide(v, step, now, out),
                            Ok(v) => self.enter_binary_step(step + 1, v, now, out),
                        },
                        _ => {
                            // The common-coin step (Algorithm 8's third
                            // block): never decides; a timeout consults
                            // the coin.
                            let next = match outcome {
                                Ok(v) => v,
                                Err(()) if self.ablation.disable_common_coin => {
                                    // Ablation: a predictable fallback the
                                    // adversary can exploit indefinitely.
                                    self.binary_input
                                }
                                Err(()) => {
                                    let coin = self
                                        .tallies
                                        .get(&StepKind::Main(step).code())
                                        .map(|t| t.common_coin())
                                        .unwrap_or(0);
                                    if coin == 0 {
                                        self.binary_input
                                    } else {
                                        self.empty_hash
                                    }
                                }
                            };
                            self.enter_binary_step(step + 1, next, now, out);
                        }
                    }
                }
                Phase::FinalCount { value, binary_step } => {
                    let (value, binary_step) = (*value, *binary_step);
                    let kind = match outcome {
                        Ok(v) if v == value => ConsensusKind::Final,
                        _ => ConsensusKind::Tentative,
                    };
                    let certificate = self.build_certificate(binary_step, value);
                    let final_certificate =
                        (kind == ConsensusKind::Final).then(|| self.build_final_certificate(value));
                    self.phase = Phase::Done;
                    self.finished = Some(now);
                    out.push(Output::Decided(Decision {
                        kind,
                        value,
                        binary_step,
                        certificate,
                        final_certificate,
                    }));
                }
                Phase::Done | Phase::Hung => unreachable!("no outcomes when finished"),
            }
        }
    }

    /// Starts BinaryBA⋆ step `step`, voting `r` (the loop head of
    /// Algorithm 8). Hangs if MaxSteps is exceeded.
    fn enter_binary_step(&mut self, step: u32, r: Value, now: Micros, out: &mut Vec<Output>) {
        if step > self.params.max_steps {
            self.phase = Phase::Hung;
            out.push(Output::Hung);
            return;
        }
        self.phase = Phase::Binary { step };
        self.phase_started = now;
        self.committee_vote(StepKind::Main(step), r, now, out);
    }

    /// BinaryBA⋆ reached consensus on `v` at `step`: vote the next three
    /// steps with `v` (so stragglers can cross their thresholds), vote the
    /// special final step if this was step 1, and begin the final count.
    fn decide(&mut self, v: Value, step: u32, now: Micros, out: &mut Vec<Output>) {
        if !self.ablation.disable_extra_votes {
            for s in step + 1..=step + 3 {
                self.committee_vote(StepKind::Main(s), v, now, out);
            }
        }
        if step == 1 {
            self.committee_vote(StepKind::Final, v, now, out);
        }
        self.binary_done = Some(now);
        out.push(Output::BinaryDecided { value: v, step });
        self.phase = Phase::FinalCount {
            value: v,
            binary_step: step,
        };
        self.phase_started = now;
        // Final-step votes may already be buffered; the advance loop will
        // re-check immediately.
    }

    /// Assembles the §8.3 safety certificate from final-step votes.
    fn build_final_certificate(&self, value: Value) -> Certificate {
        let threshold = self.params.final_vote_threshold();
        let mut votes = Vec::new();
        let mut total = 0u64;
        if let Some(tally) = self.tallies.get(&StepKind::Final.code()) {
            for (msg, v) in tally.messages_for(value) {
                votes.push(msg.clone());
                total += v;
                if (total as f64) > threshold {
                    break;
                }
            }
        }
        Certificate {
            round: self.round,
            step: StepKind::Final,
            value,
            votes,
        }
    }

    /// Assembles the §8.3 certificate from the concluding step's votes.
    fn build_certificate(&self, binary_step: u32, value: Value) -> Certificate {
        let threshold = self.params.step_vote_threshold();
        let mut votes = Vec::new();
        let mut total = 0u64;
        if let Some(tally) = self.tallies.get(&StepKind::Main(binary_step).code()) {
            for (msg, v) in tally.messages_for(value) {
                votes.push(msg.clone());
                total += v;
                if (total as f64) > threshold {
                    break;
                }
            }
        }
        Certificate {
            round: self.round,
            step: StepKind::Main(binary_step),
            value,
            votes,
        }
    }
}
