//! BA⋆: the Byzantine agreement protocol at the heart of Algorand (§7).
//!
//! BA⋆ reaches consensus among an open population of money-weighted users
//! on a 32-byte block hash, in repeated committee-voted steps:
//!
//! 1. **Reduction** (Algorithm 7) converts agreement on an arbitrary hash
//!    into agreement on one of two values — a specific block hash or the
//!    empty block's hash.
//! 2. **BinaryBA⋆** (Algorithm 8) decides between those two, using a
//!    VRF-derived common coin (Algorithm 9) to defeat network-scheduling
//!    adversaries.
//! 3. A special **final** step upgrades the result to *final* consensus
//!    when safety is assured even under network asynchrony; otherwise the
//!    result is *tentative*.
//!
//! Committees are re-drawn by cryptographic sortition at every step, and
//! members speak exactly once, so targeting a revealed member gains the
//! adversary nothing (participant replacement). The engine here is
//! deliberately sans-io: it consumes votes and clock ticks and emits votes
//! and decisions, making it drivable by the discrete-event simulator, by
//! integration tests, or by a real network runtime.
//!
//! This crate is ledger-independent: it agrees on opaque 32-byte values,
//! with user weights supplied as a [`RoundWeights`] snapshot.

pub mod certificate;
pub mod engine;
pub mod msg;
pub mod params;
pub mod tally;
pub mod verify;
pub mod weights;

pub use certificate::{Certificate, CertificateError};
pub use engine::{AblationFlags, BaStar, ConsensusKind, Decision, Output};
pub use msg::{StepKind, Value, VoteMessage};
pub use params::{BaParams, Micros, SECOND};
pub use verify::{
    verify_vote_message, CachedVerifier, RealVerifier, VerifiedVote, VoteContext, VoteVerifier,
};
pub use weights::RoundWeights;
