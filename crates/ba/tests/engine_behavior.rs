//! Behavioural tests for the BA⋆ engine: multi-user clusters driven over an
//! instantaneous in-memory network.
//!
//! These exercise the protocol logic end to end — reduction, BinaryBA⋆,
//! final/tentative classification, certificates, hangs — without the
//! discrete-event simulator. Committee parameters are chosen with τ = W so
//! that every sub-user is selected deterministically, making outcomes exact
//! rather than probabilistic.

use algorand_ba::{
    BaParams, BaStar, CachedVerifier, ConsensusKind, Decision, Output, RoundWeights, VoteMessage,
    SECOND,
};
use algorand_crypto::Keypair;
use std::sync::Arc;

const EMPTY_HASH: [u8; 32] = [0xee; 32];
const PREV_HASH: [u8; 32] = [0x11; 32];
const SEED: [u8; 32] = [0x22; 32];

fn test_params(total_weight: u64) -> BaParams {
    BaParams {
        // τ = W: every sub-user selected, fully deterministic committees.
        tau_step: total_weight as f64,
        t_step: 0.685,
        tau_final: total_weight as f64,
        t_final: 0.74,
        max_steps: 30,
        lambda_step: 20 * SECOND,
        lambda_block: 60 * SECOND,
        disable_backoff: false,
    }
}

/// A cluster of BA⋆ engines joined by an instantaneous reliable network.
struct Cluster {
    engines: Vec<BaStar>,
    decisions: Vec<Option<Decision>>,
    hung: Vec<bool>,
    now: u64,
}

impl Cluster {
    /// Starts `n` equal-weight users; user `i` starts BA⋆ with
    /// `initial_hashes[i]`.
    fn start(n: usize, initial_hashes: impl Fn(usize) -> [u8; 32]) -> Cluster {
        Self::start_with_params(n, initial_hashes, test_params(n as u64 * 10))
    }

    fn start_with_params(
        n: usize,
        initial_hashes: impl Fn(usize) -> [u8; 32],
        params: BaParams,
    ) -> Cluster {
        let keypairs: Vec<Keypair> = (0..n).map(|i| Keypair::from_seed(seed32(i))).collect();
        let weights = Arc::new(RoundWeights::from_pairs(
            keypairs.iter().map(|k| (k.pk, 10u64)),
        ));
        let verifier = Arc::new(CachedVerifier::new());
        let mut engines = Vec::new();
        let mut pending: Vec<VoteMessage> = Vec::new();
        let now = 0u64;
        let mut decisions = vec![None; n];
        let mut hung = vec![false; n];
        for (i, kp) in keypairs.iter().enumerate() {
            let (engine, outputs) = BaStar::start(
                params,
                kp.clone(),
                1,
                SEED,
                PREV_HASH,
                initial_hashes(i),
                EMPTY_HASH,
                weights.clone(),
                verifier.clone(),
                now,
            );
            engines.push(engine);
            collect(i, outputs, &mut pending, &mut decisions, &mut hung);
        }
        let mut cluster = Cluster {
            engines,
            decisions,
            hung,
            now,
        };
        cluster.deliver_all(pending);
        cluster
    }

    /// Delivers queued messages to every engine until quiescent.
    fn deliver_all(&mut self, mut queue: Vec<VoteMessage>) {
        while let Some(msg) = queue.pop() {
            for (i, engine) in self.engines.iter_mut().enumerate() {
                let outputs = engine.on_vote(&msg, self.now);
                collect(i, outputs, &mut queue, &mut self.decisions, &mut self.hung);
            }
        }
    }

    /// Advances virtual time to the earliest engine deadline and fires it.
    fn advance_time(&mut self) -> bool {
        let Some(next) = self.engines.iter().filter_map(|e| e.next_deadline()).min() else {
            return false;
        };
        self.now = next;
        let mut queue = Vec::new();
        for (i, engine) in self.engines.iter_mut().enumerate() {
            let outputs = engine.on_tick(self.now);
            collect(i, outputs, &mut queue, &mut self.decisions, &mut self.hung);
        }
        self.deliver_all(queue);
        true
    }

    /// Runs until every engine decided or hung (or time stops moving).
    fn run_to_completion(&mut self) {
        for _ in 0..1000 {
            if self
                .engines
                .iter()
                .enumerate()
                .all(|(i, e)| e.is_finished() || self.decisions[i].is_some() || self.hung[i])
            {
                return;
            }
            if !self.advance_time() {
                return;
            }
        }
        panic!("cluster did not complete within the step budget");
    }
}

fn collect(
    from: usize,
    outputs: Vec<Output>,
    queue: &mut Vec<VoteMessage>,
    decisions: &mut [Option<Decision>],
    hung: &mut [bool],
) {
    for out in outputs {
        match out {
            Output::Gossip(msg) => queue.push(msg),
            Output::Decided(d) => {
                assert!(decisions[from].is_none(), "double decision from {from}");
                decisions[from] = Some(d);
            }
            Output::BinaryDecided { .. } => {}
            Output::Hung => hung[from] = true,
        }
    }
}

fn seed32(i: usize) -> [u8; 32] {
    let mut s = [0u8; 32];
    s[..8].copy_from_slice(&(i as u64 + 1).to_le_bytes());
    s
}

// --- Tests -------------------------------------------------------------------

#[test]
fn unanimous_start_reaches_final_consensus_in_first_step() {
    let block = [0xabu8; 32];
    let mut cluster = Cluster::start(12, |_| block);
    cluster.run_to_completion();
    for d in cluster.decisions.iter().map(|d| d.as_ref().unwrap()) {
        assert_eq!(d.kind, ConsensusKind::Final);
        assert_eq!(d.value, block);
        assert_eq!(d.binary_step, 1, "common case concludes in step 1");
    }
    // The whole round concluded without any timeout firing: with an
    // instantaneous network every phase concludes on votes, so virtual time
    // never needed to advance past the first deadline set.
    assert!(cluster.now <= 80 * SECOND);
}

#[test]
fn split_start_converges_on_empty_block_tentatively() {
    // Half the users start with block A, half with block B — the malicious
    // highest-priority proposer scenario of §6. Reduction cannot certify
    // either, so all users converge on the empty block; since consensus is
    // not reached in BinaryBA⋆ step 1, it stays tentative.
    let a = [0xaau8; 32];
    let b = [0xbbu8; 32];
    let mut cluster = Cluster::start(12, |i| if i % 2 == 0 { a } else { b });
    cluster.run_to_completion();
    for d in cluster.decisions.iter().map(|d| d.as_ref().unwrap()) {
        assert_eq!(d.value, EMPTY_HASH);
        assert_eq!(d.kind, ConsensusKind::Tentative);
        assert_eq!(d.binary_step, 2, "empty consensus lands in step 2");
        assert!(d.final_certificate.is_none(), "tentative has no final cert");
    }
}

#[test]
fn near_unanimous_majority_still_wins_reduction() {
    // 10 of 12 users start with block A: A has 100 of 120 votes > 0.685·120
    // = 82.2, so reduction certifies A and consensus is final.
    let a = [0xaau8; 32];
    let b = [0xbbu8; 32];
    let mut cluster = Cluster::start(12, |i| if i < 10 { a } else { b });
    cluster.run_to_completion();
    for d in cluster.decisions.iter().map(|d| d.as_ref().unwrap()) {
        assert_eq!(d.value, a);
        assert_eq!(d.kind, ConsensusKind::Final);
    }
}

#[test]
fn decisions_are_identical_across_users_and_runs() {
    let block = [0x77u8; 32];
    let run = || {
        let mut cluster = Cluster::start(8, |_| block);
        cluster.run_to_completion();
        cluster
            .decisions
            .iter()
            .map(|d| {
                let d = d.as_ref().unwrap();
                (d.kind, d.value, d.binary_step)
            })
            .collect::<Vec<_>>()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second);
    assert!(first.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn certificates_from_decisions_validate() {
    let block = [0xcdu8; 32];
    let n = 10;
    let mut cluster = Cluster::start(n, |_| block);
    cluster.run_to_completion();
    let params = test_params(n as u64 * 10);
    let weights =
        RoundWeights::from_pairs((0..n).map(|i| (Keypair::from_seed(seed32(i)).pk, 10u64)));
    let verifier = algorand_ba::RealVerifier;
    for d in cluster.decisions.iter().map(|d| d.as_ref().unwrap()) {
        d.certificate
            .validate(&params, &SEED, &PREV_HASH, &weights, &verifier)
            .expect("certificate must validate");
        assert_eq!(d.certificate.value, block);
        assert_eq!(d.certificate.round, 1);
        assert!(d.certificate.wire_size() > 0);
        // Final consensus carries the §8.3 safety certificate too, and it
        // validates against the larger final-step threshold.
        let final_cert = d
            .final_certificate
            .as_ref()
            .expect("final consensus has a final certificate");
        assert_eq!(final_cert.step, algorand_ba::StepKind::Final);
        final_cert
            .validate(&params, &SEED, &PREV_HASH, &weights, &verifier)
            .expect("final certificate must validate");
    }
}

#[test]
fn tampered_certificate_rejected() {
    let block = [0xcdu8; 32];
    let n = 10;
    let mut cluster = Cluster::start(n, |_| block);
    cluster.run_to_completion();
    let params = test_params(n as u64 * 10);
    let weights =
        RoundWeights::from_pairs((0..n).map(|i| (Keypair::from_seed(seed32(i)).pk, 10u64)));
    let d = cluster.decisions[0].as_ref().unwrap();

    // Claiming a different value: every vote disagrees.
    let mut cert = d.certificate.clone();
    cert.value = [0x99; 32];
    assert!(cert
        .validate(
            &params,
            &SEED,
            &PREV_HASH,
            &weights,
            &algorand_ba::RealVerifier
        )
        .is_err());

    // Dropping votes below the threshold.
    let mut cert = d.certificate.clone();
    cert.votes.truncate(1);
    assert!(cert
        .validate(
            &params,
            &SEED,
            &PREV_HASH,
            &weights,
            &algorand_ba::RealVerifier
        )
        .is_err());

    // Duplicating a vote to inflate the count.
    let mut cert = d.certificate.clone();
    let dup = cert.votes[0].clone();
    cert.votes.push(dup);
    assert!(cert
        .validate(
            &params,
            &SEED,
            &PREV_HASH,
            &weights,
            &algorand_ba::RealVerifier
        )
        .is_err());
}

#[test]
fn isolated_users_hang_at_max_steps() {
    // Two users whose committee threshold can never be crossed (threshold
    // computed against a much larger τ than their joint weight): every step
    // times out, and after MaxSteps the engine hangs for recovery (§8.2).
    let params = BaParams {
        tau_step: 1000.0,
        t_step: 0.685,
        tau_final: 1000.0,
        t_final: 0.74,
        max_steps: 7,
        lambda_step: SECOND,
        lambda_block: SECOND,
        disable_backoff: false,
    };
    let mut cluster = Cluster::start_with_params(2, |_| [0xabu8; 32], params);
    cluster.run_to_completion();
    assert!(cluster.hung.iter().all(|&h| h), "both users must hang");
    assert!(cluster.decisions.iter().all(|d| d.is_none()));
}

#[test]
fn late_votes_buffered_for_future_steps_are_counted() {
    // Start one engine, feed it the other users' reduction-step votes
    // *before* it reaches those steps: they must be tallied when it gets
    // there (the incomingMsgs buffer of Algorithm 5).
    let n = 8usize;
    let block = [0x55u8; 32];
    let keypairs: Vec<Keypair> = (0..n).map(|i| Keypair::from_seed(seed32(i))).collect();
    let weights = Arc::new(RoundWeights::from_pairs(
        keypairs.iter().map(|k| (k.pk, 10u64)),
    ));
    let verifier = Arc::new(CachedVerifier::new());
    let params = test_params(n as u64 * 10);

    // Run a full cluster to harvest all its votes.
    let mut cluster = Cluster::start(n, |_| block);
    let mut all_votes: Vec<VoteMessage> = Vec::new();
    {
        // Re-run message collection: replay a fresh cluster, capturing votes.
        let mut queue: Vec<VoteMessage> = Vec::new();
        let mut engines = Vec::new();
        let mut decisions = vec![None; n];
        let mut hung = vec![false; n];
        for (i, kp) in keypairs.iter().enumerate() {
            let (engine, outputs) = BaStar::start(
                params,
                kp.clone(),
                1,
                SEED,
                PREV_HASH,
                block,
                EMPTY_HASH,
                weights.clone(),
                verifier.clone(),
                0,
            );
            engines.push(engine);
            collect(i, outputs, &mut queue, &mut decisions, &mut hung);
        }
        while let Some(msg) = queue.pop() {
            all_votes.push(msg.clone());
            for (i, engine) in engines.iter_mut().enumerate() {
                let outputs = engine.on_vote(&msg, 0);
                collect(i, outputs, &mut queue, &mut decisions, &mut hung);
            }
        }
    }
    cluster.run_to_completion();
    assert!(!all_votes.is_empty());

    // A ninth observer (weight 0 ⇒ never on a committee) replays the votes
    // in arbitrary order and reaches the same decision purely passively —
    // the "passive participation" property of §7.
    let observer_kp = Keypair::from_seed([0xfe; 32]);
    let (mut observer, outputs) = BaStar::start(
        params,
        observer_kp,
        1,
        SEED,
        PREV_HASH,
        block,
        EMPTY_HASH,
        weights.clone(),
        verifier.clone(),
        0,
    );
    assert!(outputs.is_empty(), "weight-0 user is never selected");
    all_votes.reverse();
    let mut decided = None;
    for msg in &all_votes {
        for out in observer.on_vote(msg, 0) {
            if let Output::Decided(d) = out {
                decided = Some(d);
            }
        }
    }
    let d = decided.expect("observer decides from replayed votes alone");
    assert_eq!(d.value, block);
    assert_eq!(d.kind, ConsensusKind::Final);
}
