//! The final/tentative consensus boundary (§7.1, §7.4).
//!
//! BA⋆ declares *final* consensus only when BinaryBA⋆ concluded in its
//! very first step AND enough final-committee votes confirm it. These
//! tests drive engines with selective delivery to hit each side of the
//! boundary.

use algorand_ba::{
    BaParams, BaStar, CachedVerifier, ConsensusKind, Output, RoundWeights, StepKind, VoteMessage,
    SECOND,
};
use algorand_crypto::Keypair;
use std::sync::Arc;

const EMPTY: [u8; 32] = [0xee; 32];
const BLOCK: [u8; 32] = [0xbb; 32];
const PREV: [u8; 32] = [0x11; 32];
const SEED: [u8; 32] = [0x22; 32];

fn setup(n: usize) -> (Vec<BaStar>, Vec<VoteMessage>, BaParams) {
    let keypairs: Vec<Keypair> = (0..n)
        .map(|i| {
            let mut s = [0u8; 32];
            s[..8].copy_from_slice(&(i as u64 + 1).to_le_bytes());
            Keypair::from_seed(s)
        })
        .collect();
    let weights = Arc::new(RoundWeights::from_pairs(
        keypairs.iter().map(|k| (k.pk, 10u64)),
    ));
    let params = BaParams {
        tau_step: n as f64 * 10.0,
        t_step: 0.685,
        tau_final: n as f64 * 10.0,
        t_final: 0.74,
        max_steps: 15,
        lambda_step: SECOND,
        lambda_block: SECOND,
        disable_backoff: false,
    };
    let verifier = Arc::new(CachedVerifier::new());
    let mut engines = Vec::new();
    let mut pending = Vec::new();
    for kp in &keypairs {
        let (e, out) = BaStar::start(
            params,
            kp.clone(),
            1,
            SEED,
            PREV,
            BLOCK,
            EMPTY,
            weights.clone(),
            verifier.clone(),
            0,
        );
        for o in out {
            if let Output::Gossip(v) = o {
                pending.push(v);
            }
        }
        engines.push(e);
    }
    (engines, pending, params)
}

/// Delivers votes (filtered) until quiescent; returns decisions observed.
fn drive(
    engines: &mut [BaStar],
    pending: &mut Vec<VoteMessage>,
    now: u64,
    mut allow: impl FnMut(&VoteMessage) -> bool,
) -> Vec<(usize, ConsensusKind, [u8; 32])> {
    let mut decisions = Vec::new();
    while !pending.is_empty() {
        let batch: Vec<VoteMessage> = std::mem::take(pending);
        for (i, e) in engines.iter_mut().enumerate() {
            for v in &batch {
                if !allow(v) {
                    continue;
                }
                for o in e.on_vote(v, now) {
                    match o {
                        Output::Gossip(nv) => pending.push(nv),
                        Output::Decided(d) => decisions.push((i, d.kind, d.value)),
                        _ => {}
                    }
                }
            }
        }
    }
    decisions
}

fn tick_all(
    engines: &mut [BaStar],
    pending: &mut Vec<VoteMessage>,
    now: u64,
) -> Vec<(usize, ConsensusKind, [u8; 32])> {
    let mut decisions = Vec::new();
    for (i, e) in engines.iter_mut().enumerate() {
        for o in e.on_tick(now) {
            match o {
                Output::Gossip(nv) => pending.push(nv),
                Output::Decided(d) => decisions.push((i, d.kind, d.value)),
                _ => {}
            }
        }
    }
    decisions
}

#[test]
fn full_delivery_gives_final_consensus() {
    let (mut engines, mut pending, _) = setup(12);
    let mut decisions = drive(&mut engines, &mut pending, 0, |_| true);
    // The final count may need its timeout even on full delivery only if
    // votes fall short; with unanimity it concludes on votes.
    if decisions.is_empty() {
        decisions = tick_all(&mut engines, &mut pending, 2_000_000);
        decisions.extend(drive(&mut engines, &mut pending, 2_000_000, |_| true));
    }
    assert_eq!(decisions.len(), 12);
    for (i, kind, value) in decisions {
        assert_eq!(kind, ConsensusKind::Final, "engine {i}");
        assert_eq!(value, BLOCK, "engine {i}");
    }
}

#[test]
fn withholding_final_votes_downgrades_to_tentative() {
    // Deliver everything except the special final-step votes: BinaryBA⋆
    // still concludes at step 1, but the final count times out and the
    // decision must be Tentative (§7.4: "BA⋆ was unable to guarantee
    // safety").
    let (mut engines, mut pending, params) = setup(12);
    let mut decisions = drive(&mut engines, &mut pending, 0, |v| v.step != StepKind::Final);
    assert!(decisions.is_empty(), "no decision before the final timeout");
    // Fire the final-count timeout.
    let after = params.lambda_step + 1;
    decisions.extend(tick_all(&mut engines, &mut pending, after));
    decisions.extend(drive(&mut engines, &mut pending, after, |v| {
        v.step != StepKind::Final
    }));
    assert_eq!(decisions.len(), 12);
    for (i, kind, value) in decisions {
        assert_eq!(kind, ConsensusKind::Tentative, "engine {i}");
        assert_eq!(value, BLOCK, "engine {i}");
    }
}

#[test]
fn late_final_votes_still_upgrade_if_within_timeout() {
    // Hold the final votes back briefly (within λ_step), then release:
    // consensus must still be Final.
    let (mut engines, mut pending, params) = setup(12);
    let mut held: Vec<VoteMessage> = Vec::new();
    let decisions = {
        let held_ref = &mut held;
        drive(&mut engines, &mut pending, 0, |v| {
            if v.step == StepKind::Final {
                held_ref.push(v.clone());
                false
            } else {
                true
            }
        })
    };
    assert!(decisions.is_empty());
    assert!(!held.is_empty(), "final votes were cast");
    // Release the held votes before the timeout.
    let t = params.lambda_step / 2;
    let mut decisions = Vec::new();
    for (i, e) in engines.iter_mut().enumerate() {
        for v in &held {
            for o in e.on_vote(v, t) {
                if let Output::Decided(d) = o {
                    decisions.push((i, d.kind, d.value));
                }
            }
        }
    }
    assert_eq!(decisions.len(), 12);
    for (_, kind, value) in decisions {
        assert_eq!(kind, ConsensusKind::Final);
        assert_eq!(value, BLOCK);
    }
}
