//! Randomized property tests on BA⋆'s vote accounting and message
//! invariants, driven by the in-repo deterministic RNG so failures replay.

use algorand_ba::tally::StepTally;
use algorand_ba::{StepKind, VoteMessage};
use algorand_crypto::rng::Rng;
use algorand_crypto::{vrf, Keypair};

const CASES: usize = 16;

fn rng(test_tag: u64) -> Rng {
    Rng::seed_from_u64(0xBA5E ^ test_tag)
}

/// A deterministic vote from user `seed` for `value`, any fixed context.
fn vote(seed: u8, round: u64, step: u32, value: u8) -> VoteMessage {
    let kp = Keypair::from_seed([seed.max(1); 32]);
    let (sorthash, proof) = vrf::prove(&kp, b"prop-test");
    VoteMessage::sign(
        &kp,
        round,
        StepKind::Main(step.max(1)),
        sorthash,
        proof,
        [0u8; 32],
        [value; 32],
    )
}

/// Tally totals are permutation-invariant and replay-proof: any order and
/// any number of repetitions of the same vote set yields the same counts.
#[test]
fn tally_is_order_and_replay_invariant() {
    let mut rng = rng(1);
    for _ in 0..CASES {
        // One vote per sender: with equivocation, "first vote wins" makes
        // outcomes inherently order-dependent (tested separately below).
        let n = 1 + rng.gen_range_usize(15);
        let mut seen = std::collections::HashSet::new();
        let msgs: Vec<(VoteMessage, u64)> = (0..n)
            .map(|_| {
                (
                    1 + rng.gen_range_u64(9) as u8,
                    rng.gen_range_u64(3) as u8,
                    1 + rng.gen_range_u64(4),
                )
            })
            .filter(|(who, _, _)| seen.insert(*who))
            .map(|(who, val, weight)| (vote(who, 1, 1, val), weight))
            .collect();
        // Reference tally: in order, each once.
        let mut reference = StepTally::new();
        for (m, w) in &msgs {
            reference.add(m, *w);
        }
        // Shuffled + replayed tally.
        let mut order: Vec<usize> = (0..msgs.len()).collect();
        rng.shuffle(&mut order);
        let mut shuffled = StepTally::new();
        for &i in &order {
            let (m, w) = &msgs[i];
            shuffled.add(m, *w);
            shuffled.add(m, *w); // Replay: must not double count.
        }
        for val in 0u8..3 {
            assert_eq!(
                reference.count_for(&[val; 32]),
                shuffled.count_for(&[val; 32]),
                "value {val}"
            );
        }
        assert_eq!(reference.common_coin(), shuffled.common_coin());
    }
}

/// A sender contributes to exactly one value per step, no matter how many
/// conflicting votes it sends (equivocation cannot double-count).
#[test]
fn equivocating_sender_counts_once() {
    let mut rng = rng(2);
    for _ in 0..CASES {
        let who = 1 + rng.gen_range_u64(19) as u8;
        let weight = 1 + rng.gen_range_u64(9);
        let n_values = 2 + rng.gen_range_usize(4);
        let mut tally = StepTally::new();
        for _ in 0..n_values {
            let v = rng.gen_range_u64(5) as u8;
            tally.add(&vote(who, 1, 1, v), weight);
        }
        assert_eq!(tally.total_votes(), weight);
        assert_eq!(tally.num_voters(), 1);
    }
}

/// Over-threshold detection is exact: just below never fires, just above
/// always does.
#[test]
fn threshold_boundary_is_strict() {
    let mut rng = rng(3);
    for _ in 0..CASES {
        let n = 1 + rng.gen_range_usize(7);
        let weights: Vec<u64> = (0..n).map(|_| 1 + rng.gen_range_u64(49)).collect();
        let mut tally = StepTally::new();
        for (i, w) in weights.iter().enumerate() {
            tally.add(&vote(i as u8 + 1, 1, 1, 7), *w);
        }
        let total: u64 = weights.iter().sum();
        assert_eq!(tally.over_threshold(total as f64), None);
        assert_eq!(tally.over_threshold(total as f64 - 0.5), Some([7u8; 32]));
    }
}

/// Vote signatures bind every field: any single-field change breaks
/// verification.
#[test]
fn vote_signature_binds_fields() {
    let mut rng = rng(4);
    for _ in 0..CASES {
        let who = 1 + rng.gen_range_u64(19) as u8;
        let round = 1 + rng.gen_range_u64(999);
        let step = 1 + rng.gen_range_u64(49) as u32;
        let value = rng.gen_range_u64(256) as u8;
        let v = vote(who, round, step, value);
        assert!(v.signature_valid());
        let mut wrong_round = v.clone();
        wrong_round.round += 1;
        assert!(!wrong_round.signature_valid());
        let mut wrong_step = v.clone();
        wrong_step.step = StepKind::Main(step + 1);
        assert!(!wrong_step.signature_valid());
        let mut wrong_value = v.clone();
        wrong_value.value[0] ^= 0xff;
        assert!(!wrong_value.signature_valid());
        let mut wrong_prev = v.clone();
        wrong_prev.prev_hash[0] ^= 1;
        assert!(!wrong_prev.signature_valid());
    }
}

/// Message ids are injective over the varied fields (no accidental dedup
/// collisions between distinct votes).
#[test]
fn message_ids_unique() {
    let mut rng = rng(5);
    for _ in 0..4 * CASES {
        let pick = |rng: &mut Rng| {
            (
                1 + rng.gen_range_u64(9) as u8,
                1 + rng.gen_range_u64(4),
                1 + rng.gen_range_u64(4) as u32,
                rng.gen_range_u64(3) as u8,
            )
        };
        let a = pick(&mut rng);
        let b = pick(&mut rng);
        let va = vote(a.0, a.1, a.2, a.3);
        let vb = vote(b.0, b.1, b.2, b.3);
        if a == b {
            assert_eq!(va.message_id(), vb.message_id());
        } else {
            assert_ne!(va.message_id(), vb.message_id());
        }
    }
}
