//! Randomized property tests on BA⋆'s vote accounting and message
//! invariants, driven by the in-repo deterministic RNG so failures replay.

use algorand_ba::tally::StepTally;
use algorand_ba::{
    verify_vote_message, RealVerifier, RoundWeights, StepKind, VerifiedVote, VoteContext,
    VoteMessage,
};
use algorand_crypto::rng::Rng;
use algorand_crypto::{vrf, Keypair};
use algorand_sortition::{select, Role, SortitionParams};

const CASES: usize = 16;

const SEED: [u8; 32] = [0x5e; 32];

fn rng(test_tag: u64) -> Rng {
    Rng::seed_from_u64(0xBA5E ^ test_tag)
}

fn keypair(seed: u8) -> Keypair {
    Keypair::from_seed([seed.max(1); 32])
}

/// A deterministic vote from user `seed` for `value`, any fixed context.
fn vote(seed: u8, round: u64, step: u32, value: u8) -> VoteMessage {
    let kp = keypair(seed);
    let (sorthash, proof) = vrf::prove(&kp, b"prop-test");
    VoteMessage::sign(
        &kp,
        round,
        StepKind::Main(step.max(1)),
        sorthash,
        proof,
        [0u8; 32],
        [value; 32],
    )
}

/// A tally only accepts votes that went through the verification stage,
/// so property tests build real committee votes: with τ = W every
/// sub-user is selected deterministically and a sender of weight `w`
/// carries exactly `w` votes.
fn verified_vote(seed: u8, value: u8, weights: &RoundWeights) -> VerifiedVote {
    let kp = keypair(seed);
    let step = StepKind::Main(1);
    let tau = weights.total() as f64;
    let sel = select(
        &kp,
        &SEED,
        Role::Committee {
            round: 1,
            step: step.code(),
        },
        &SortitionParams {
            tau,
            total_weight: weights.total(),
        },
        weights.weight_of(&kp.pk),
    )
    .expect("τ = W selects everyone");
    let msg = VoteMessage::sign(
        &kp,
        1,
        step,
        sel.vrf_output,
        sel.proof,
        [0u8; 32],
        [value; 32],
    );
    verify_vote_message(
        &RealVerifier,
        &msg,
        &VoteContext {
            round: 1,
            seed: SEED,
            tau,
        },
        weights,
    )
    .expect("honestly built vote verifies")
}

/// Tally totals are permutation-invariant and replay-proof: any order and
/// any number of repetitions of the same vote set yields the same counts.
#[test]
fn tally_is_order_and_replay_invariant() {
    let mut rng = rng(1);
    for _ in 0..CASES {
        // One vote per sender: with equivocation, "first vote wins" makes
        // outcomes inherently order-dependent (tested separately below).
        let n = 1 + rng.gen_range_usize(15);
        let mut seen = std::collections::HashSet::new();
        let picks: Vec<(u8, u8, u64)> = (0..n)
            .map(|_| {
                (
                    1 + rng.gen_range_u64(9) as u8,
                    rng.gen_range_u64(3) as u8,
                    1 + rng.gen_range_u64(4),
                )
            })
            .filter(|(who, _, _)| seen.insert(*who))
            .collect();
        let weights =
            RoundWeights::from_pairs(picks.iter().map(|(who, _, w)| (keypair(*who).pk, *w)));
        let msgs: Vec<VerifiedVote> = picks
            .iter()
            .map(|(who, val, _)| verified_vote(*who, *val, &weights))
            .collect();
        // Reference tally: in order, each once.
        let mut reference = StepTally::new();
        for m in &msgs {
            reference.add(m);
        }
        // Shuffled + replayed tally.
        let mut order: Vec<usize> = (0..msgs.len()).collect();
        rng.shuffle(&mut order);
        let mut shuffled = StepTally::new();
        for &i in &order {
            shuffled.add(&msgs[i]);
            shuffled.add(&msgs[i]); // Replay: must not double count.
        }
        for val in 0u8..3 {
            assert_eq!(
                reference.count_for(&[val; 32]),
                shuffled.count_for(&[val; 32]),
                "value {val}"
            );
        }
        assert_eq!(reference.common_coin(), shuffled.common_coin());
    }
}

/// A sender contributes to exactly one value per step, no matter how many
/// conflicting votes it sends (equivocation cannot double-count).
#[test]
fn equivocating_sender_counts_once() {
    let mut rng = rng(2);
    for _ in 0..CASES {
        let who = 1 + rng.gen_range_u64(19) as u8;
        let weight = 1 + rng.gen_range_u64(9);
        let n_values = 2 + rng.gen_range_usize(4);
        let weights = RoundWeights::from_pairs([(keypair(who).pk, weight)]);
        let mut tally = StepTally::new();
        for _ in 0..n_values {
            let v = rng.gen_range_u64(5) as u8;
            tally.add(&verified_vote(who, v, &weights));
        }
        assert_eq!(tally.total_votes(), weight);
        assert_eq!(tally.num_voters(), 1);
    }
}

/// Over-threshold detection is exact: just below never fires, just above
/// always does.
#[test]
fn threshold_boundary_is_strict() {
    let mut rng = rng(3);
    for _ in 0..CASES {
        let n = 1 + rng.gen_range_usize(7);
        let weights: Vec<u64> = (0..n).map(|_| 1 + rng.gen_range_u64(49)).collect();
        let snapshot = RoundWeights::from_pairs(
            weights
                .iter()
                .enumerate()
                .map(|(i, w)| (keypair(i as u8 + 1).pk, *w)),
        );
        let mut tally = StepTally::new();
        for i in 0..n {
            tally.add(&verified_vote(i as u8 + 1, 7, &snapshot));
        }
        let total: u64 = weights.iter().sum();
        assert_eq!(tally.over_threshold(total as f64), None);
        assert_eq!(tally.over_threshold(total as f64 - 0.5), Some([7u8; 32]));
    }
}

/// Vote signatures bind every field: any single-field change breaks
/// verification.
#[test]
fn vote_signature_binds_fields() {
    let mut rng = rng(4);
    for _ in 0..CASES {
        let who = 1 + rng.gen_range_u64(19) as u8;
        let round = 1 + rng.gen_range_u64(999);
        let step = 1 + rng.gen_range_u64(49) as u32;
        let value = rng.gen_range_u64(256) as u8;
        let v = vote(who, round, step, value);
        assert!(v.signature_valid());
        let mut wrong_round = v.clone();
        wrong_round.round += 1;
        assert!(!wrong_round.signature_valid());
        let mut wrong_step = v.clone();
        wrong_step.step = StepKind::Main(step + 1);
        assert!(!wrong_step.signature_valid());
        let mut wrong_value = v.clone();
        wrong_value.value[0] ^= 0xff;
        assert!(!wrong_value.signature_valid());
        let mut wrong_prev = v.clone();
        wrong_prev.prev_hash[0] ^= 1;
        assert!(!wrong_prev.signature_valid());
    }
}

/// Message ids are injective over the varied fields (no accidental dedup
/// collisions between distinct votes).
#[test]
fn message_ids_unique() {
    let mut rng = rng(5);
    for _ in 0..4 * CASES {
        let pick = |rng: &mut Rng| {
            (
                1 + rng.gen_range_u64(9) as u8,
                1 + rng.gen_range_u64(4),
                1 + rng.gen_range_u64(4) as u32,
                rng.gen_range_u64(3) as u8,
            )
        };
        let a = pick(&mut rng);
        let b = pick(&mut rng);
        let va = vote(a.0, a.1, a.2, a.3);
        let vb = vote(b.0, b.1, b.2, b.3);
        if a == b {
            assert_eq!(va.message_id(), vb.message_id());
        } else {
            assert_ne!(va.message_id(), vb.message_id());
        }
    }
}
