//! Property-based tests on BA⋆'s vote accounting and message invariants.

use algorand_ba::tally::StepTally;
use algorand_ba::{StepKind, VoteMessage};
use algorand_crypto::{vrf, Keypair};
use proptest::prelude::*;

/// A deterministic vote from user `seed` for `value`, any fixed context.
fn vote(seed: u8, round: u64, step: u32, value: u8) -> VoteMessage {
    let kp = Keypair::from_seed([seed.max(1); 32]);
    let (sorthash, proof) = vrf::prove(&kp, b"prop-test");
    VoteMessage::sign(
        &kp,
        round,
        StepKind::Main(step.max(1)),
        sorthash,
        proof,
        [0u8; 32],
        [value; 32],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tally totals are permutation-invariant and replay-proof: any order
    /// and any number of repetitions of the same vote set yields the same
    /// counts.
    #[test]
    fn tally_is_order_and_replay_invariant(
        votes in proptest::collection::vec((1u8..10, 0u8..3, 1u64..5), 1..16),
        shuffle_seed in any::<u64>(),
    ) {
        // One vote per sender: with equivocation, "first vote wins" makes
        // outcomes inherently order-dependent (tested separately below).
        let mut seen = std::collections::HashSet::new();
        let msgs: Vec<(VoteMessage, u64)> = votes
            .iter()
            .filter(|(who, _, _)| seen.insert(*who))
            .map(|(who, val, weight)| (vote(*who, 1, 1, *val), *weight))
            .collect();
        // Reference tally: in order, each once.
        let mut reference = StepTally::new();
        for (m, w) in &msgs {
            reference.add(m, *w);
        }
        // Shuffled + replayed tally.
        let mut order: Vec<usize> = (0..msgs.len()).collect();
        // Cheap deterministic shuffle.
        let mut state = shuffle_seed | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let mut shuffled = StepTally::new();
        for &i in &order {
            let (m, w) = &msgs[i];
            shuffled.add(m, *w);
            shuffled.add(m, *w); // Replay: must not double count.
        }
        for val in 0u8..3 {
            prop_assert_eq!(
                reference.count_for(&[val; 32]),
                shuffled.count_for(&[val; 32]),
                "value {}", val
            );
        }
        prop_assert_eq!(reference.common_coin(), shuffled.common_coin());
    }

    /// A sender contributes to exactly one value per step, no matter how
    /// many conflicting votes it sends (equivocation cannot double-count).
    #[test]
    fn equivocating_sender_counts_once(
        who in 1u8..20,
        values in proptest::collection::vec(0u8..5, 2..6),
        weight in 1u64..10,
    ) {
        let mut tally = StepTally::new();
        for v in &values {
            tally.add(&vote(who, 1, 1, *v), weight);
        }
        prop_assert_eq!(tally.total_votes(), weight);
        prop_assert_eq!(tally.num_voters(), 1);
    }

    /// Over-threshold detection is exact: just below never fires, just
    /// above always does.
    #[test]
    fn threshold_boundary_is_strict(
        weights in proptest::collection::vec(1u64..50, 1..8),
    ) {
        let mut tally = StepTally::new();
        for (i, w) in weights.iter().enumerate() {
            tally.add(&vote(i as u8 + 1, 1, 1, 7), *w);
        }
        let total: u64 = weights.iter().sum();
        prop_assert_eq!(tally.over_threshold(total as f64), None);
        prop_assert_eq!(
            tally.over_threshold(total as f64 - 0.5),
            Some([7u8; 32])
        );
    }

    /// Vote signatures bind every field: any single-field change breaks
    /// verification.
    #[test]
    fn vote_signature_binds_fields(
        who in 1u8..20,
        round in 1u64..1000,
        step in 1u32..50,
        value in any::<u8>(),
    ) {
        let v = vote(who, round, step, value);
        prop_assert!(v.signature_valid());
        let mut wrong_round = v.clone();
        wrong_round.round += 1;
        prop_assert!(!wrong_round.signature_valid());
        let mut wrong_step = v.clone();
        wrong_step.step = StepKind::Main(step + 1);
        prop_assert!(!wrong_step.signature_valid());
        let mut wrong_value = v.clone();
        wrong_value.value[0] ^= 0xff;
        prop_assert!(!wrong_value.signature_valid());
        let mut wrong_prev = v.clone();
        wrong_prev.prev_hash[0] ^= 1;
        prop_assert!(!wrong_prev.signature_valid());
    }

    /// Message ids are injective over the varied fields (no accidental
    /// dedup collisions between distinct votes).
    #[test]
    fn message_ids_unique(
        a in (1u8..10, 1u64..5, 1u32..5, 0u8..3),
        b in (1u8..10, 1u64..5, 1u32..5, 0u8..3),
    ) {
        let va = vote(a.0, a.1, a.2, a.3);
        let vb = vote(b.0, b.1, b.2, b.3);
        if a == b {
            prop_assert_eq!(va.message_id(), vb.message_id());
        } else {
            prop_assert_ne!(va.message_id(), vb.message_id());
        }
    }
}
