//! The transaction pool: the mempool every Algorand user keeps between
//! gossip and block assembly.
//!
//! "Each user collects a block of pending transactions that they hear
//! about" (§5); this crate is that collection. It admits transactions
//! arriving out of order from gossip, buffers per-sender nonce chains,
//! rejects duplicates and replays, pre-verifies signatures once (with a
//! cache, so a transaction gossiped along many paths is checked once),
//! evicts the lowest-priority traffic under byte/count caps, and hands a
//! proposer a balance- and nonce-consistent prefix via [`TxPool::take_block`].
//! Transactions from proposals that lose BA⋆ are fed back with
//! [`TxPool::reinsert`] so they are not lost, and [`TxPool::prune`] drops
//! whatever a newly finalized block made stale.
//!
//! Priority is the transferred amount — a stand-in for a fee market the
//! paper leaves out ("we expect that [incentives] can be provided using
//! the cryptocurrency itself", §2). Ties break on the transaction hash so
//! every node evicts identically.

use algorand_ledger::{Accounts, Transaction};
use algorand_obs::{Counter, Registry};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Size and shape limits for a [`TxPool`].
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Total wire bytes of queued transactions before eviction kicks in.
    pub max_bytes: usize,
    /// Total queued transaction count before eviction kicks in.
    pub max_txs: usize,
    /// Longest nonce run buffered per sender (also bounds how far ahead
    /// of the committed nonce a transaction may be).
    pub max_per_sender: usize,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            max_bytes: 4 << 20,
            max_txs: 16_384,
            max_per_sender: 256,
        }
    }
}

/// Why [`TxPool::admit`] refused a transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AdmitError {
    /// Same transaction hash already queued.
    Duplicate,
    /// Signature does not verify under the claimed sender.
    BadSignature,
    /// Nonce at or below the sender's committed nonce: a replay (the
    /// ledger already consumed this sequence number).
    Replay,
    /// Nonce further ahead of the committed nonce than the pool will
    /// buffer.
    NonceTooFar,
    /// A different transaction already occupies this sender/nonce slot at
    /// equal or higher priority.
    Underpriced,
    /// Sender's amount exceeds its current balance.
    InsufficientBalance,
    /// The pool is full and this transaction lost the eviction contest.
    Evicted,
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AdmitError::Duplicate => "duplicate transaction",
            AdmitError::BadSignature => "bad signature",
            AdmitError::Replay => "nonce already committed",
            AdmitError::NonceTooFar => "nonce too far ahead",
            AdmitError::Underpriced => "slot held by higher priority",
            AdmitError::InsufficientBalance => "amount exceeds balance",
            AdmitError::Evicted => "pool full",
        };
        f.write_str(s)
    }
}

impl std::error::Error for AdmitError {}

/// Upper bound on the signature-verification cache before it resets.
const SIG_CACHE_MAX: usize = 1 << 16;

/// Fleet-wide mempool counters, shared across nodes via a [`Registry`].
/// The default (unregistered) metrics are inert no-ops on plain atomics.
#[derive(Clone, Debug, Default)]
pub struct PoolMetrics {
    /// Transactions accepted into a pool.
    pub admitted: Counter,
    /// Transactions refused by [`TxPool::admit`] (any [`AdmitError`]).
    pub rejected: Counter,
    /// Transactions taken into proposed blocks.
    pub taken: Counter,
}

impl PoolMetrics {
    /// Metrics registered under the standard `txpool.*` names.
    pub fn registered(reg: &Registry) -> PoolMetrics {
        PoolMetrics {
            admitted: reg.counter("txpool.admitted"),
            rejected: reg.counter("txpool.rejected"),
            taken: reg.counter("txpool.taken"),
        }
    }
}

/// A size-bounded mempool of signed payments, ordered per sender by nonce.
#[derive(Clone, Debug, Default)]
pub struct TxPool {
    cfg: PoolConfig,
    /// Per-sender nonce chain. The `BTreeMap` may have gaps; only the
    /// contiguous run starting at the committed nonce is proposable.
    by_sender: HashMap<[u8; 32], BTreeMap<u64, Transaction>>,
    /// Hashes of every queued transaction, for duplicate rejection.
    ids: HashSet<[u8; 32]>,
    /// Hashes whose signature already verified (survives removal from the
    /// pool, so re-gossiped copies skip the expensive check).
    sig_ok: HashSet<[u8; 32]>,
    /// Total wire bytes queued.
    bytes: usize,
    /// Shared admit/take counters (inert unless registered).
    metrics: PoolMetrics,
}

impl TxPool {
    /// An empty pool with the given limits.
    pub fn new(cfg: PoolConfig) -> TxPool {
        TxPool {
            cfg,
            by_sender: HashMap::new(),
            ids: HashSet::new(),
            sig_ok: HashSet::new(),
            bytes: 0,
            metrics: PoolMetrics::default(),
        }
    }

    /// Attaches shared counters; subsequent admits and takes tick them.
    pub fn set_metrics(&mut self, metrics: PoolMetrics) {
        self.metrics = metrics;
    }

    /// Number of queued transactions.
    pub fn len(&self) -> usize {
        self.by_sender.values().map(BTreeMap::len).sum()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.by_sender.is_empty()
    }

    /// Total wire bytes queued.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// True if a transaction with this hash is queued.
    pub fn contains(&self, id: &[u8; 32]) -> bool {
        self.ids.contains(id)
    }

    /// Verifies the signature, consulting and filling the cache.
    fn signature_ok(&mut self, id: &[u8; 32], tx: &Transaction) -> bool {
        if self.sig_ok.contains(id) {
            return true;
        }
        if !tx.signature_valid() {
            return false;
        }
        if self.sig_ok.len() >= SIG_CACHE_MAX {
            self.sig_ok.clear();
        }
        self.sig_ok.insert(*id);
        true
    }

    /// Admits a transaction heard from gossip (or submitted locally).
    ///
    /// `accounts` is the node's current committed state; it anchors the
    /// replay check (nonces at or below the committed nonce are dead) and
    /// the balance screen. Out-of-order nonces within
    /// [`PoolConfig::max_per_sender`] of the committed nonce are buffered
    /// so gossip reordering does not drop traffic.
    ///
    /// # Errors
    ///
    /// Returns the [`AdmitError`] describing the rejection; the pool is
    /// unchanged except possibly for evictions of *other* transactions
    /// when the pool was over capacity.
    pub fn admit(&mut self, tx: Transaction, accounts: &Accounts) -> Result<(), AdmitError> {
        let res = self.admit_inner(tx, accounts);
        match res {
            Ok(()) => self.metrics.admitted.inc(),
            Err(_) => self.metrics.rejected.inc(),
        }
        res
    }

    fn admit_inner(&mut self, tx: Transaction, accounts: &Accounts) -> Result<(), AdmitError> {
        let id = tx.id();
        if self.ids.contains(&id) {
            return Err(AdmitError::Duplicate);
        }
        let committed = accounts.nonce(&tx.from);
        if tx.nonce <= committed {
            return Err(AdmitError::Replay);
        }
        if tx.nonce > committed + self.cfg.max_per_sender as u64 {
            return Err(AdmitError::NonceTooFar);
        }
        if tx.amount > accounts.balance(&tx.from) {
            return Err(AdmitError::InsufficientBalance);
        }
        if !self.signature_ok(&id, &tx) {
            return Err(AdmitError::BadSignature);
        }
        let sender = tx.from.to_bytes();
        let chain = self.by_sender.entry(sender).or_default();
        if let Some(held) = chain.get(&tx.nonce) {
            // Same sender/nonce slot: replace-by-priority, strict.
            if priority_key(held) >= priority_key(&tx) {
                return Err(AdmitError::Underpriced);
            }
            let old = chain.insert(tx.nonce, tx).expect("slot occupied");
            self.ids.remove(&old.id());
            self.ids.insert(id);
            return Ok(());
        }
        chain.insert(tx.nonce, tx);
        self.ids.insert(id);
        self.bytes += Transaction::WIRE_SIZE;
        self.evict_overflow();
        if self.ids.contains(&id) {
            Ok(())
        } else {
            Err(AdmitError::Evicted)
        }
    }

    /// Evicts chain-tail transactions, lowest priority first, until the
    /// pool fits its byte and count caps.
    ///
    /// Only each sender's highest nonce is a candidate, so surviving
    /// chains stay contiguous and proposable.
    fn evict_overflow(&mut self) {
        while self.bytes > self.cfg.max_bytes || self.len() > self.cfg.max_txs {
            let victim = self
                .by_sender
                .values()
                .filter_map(|chain| chain.values().next_back())
                .min_by_key(|tx| priority_key(tx))
                .map(|tx| (tx.from.to_bytes(), tx.nonce));
            let Some((sender, nonce)) = victim else { break };
            self.remove(&sender, nonce);
        }
    }

    /// Removes one queued transaction, updating all indexes.
    fn remove(&mut self, sender: &[u8; 32], nonce: u64) -> Option<Transaction> {
        let chain = self.by_sender.get_mut(sender)?;
        let tx = chain.remove(&nonce)?;
        if chain.is_empty() {
            self.by_sender.remove(sender);
        }
        self.ids.remove(&tx.id());
        self.bytes -= Transaction::WIRE_SIZE;
        Some(tx)
    }

    /// Assembles the transaction list for a block proposal.
    ///
    /// Repeatedly takes the highest-priority *ready* transaction — one
    /// whose nonce is exactly the next for its sender under `accounts`
    /// plus whatever this call already took — applies it to a scratch
    /// ledger so balances (including transfers received earlier in the
    /// same block) stay consistent, and stops at `max_bytes` of
    /// transaction wire data. Taken transactions leave the pool; if the
    /// proposal loses, hand them back via [`TxPool::reinsert`].
    pub fn take_block(&mut self, accounts: &Accounts, max_bytes: usize) -> Vec<Transaction> {
        let mut scratch = accounts.clone();
        let mut taken = Vec::new();
        let budget = max_bytes / Transaction::WIRE_SIZE;
        while taken.len() < budget {
            // Best ready head across all senders. The sender count is
            // modest in our deployments; a linear scan keeps the pool
            // index-free. (A heap of heads would drop this to log n.)
            let best = self
                .by_sender
                .iter()
                .filter_map(|(sender, chain)| {
                    let next = scratch.nonce(&chain.values().next().expect("non-empty").from) + 1;
                    chain.get(&next).map(|tx| (*sender, next, priority_key(tx)))
                })
                .max_by_key(|(_, _, key)| *key);
            let Some((sender, nonce, _)) = best else {
                break;
            };
            let tx = self.remove(&sender, nonce).expect("head exists");
            if scratch.apply(&tx).is_ok() {
                taken.push(tx);
            }
            // On failure (balance ran dry) the transaction is dropped from
            // the pool: with its chain head unspendable the whole chain is
            // stuck, and the sender must re-issue.
        }
        self.metrics.taken.add(taken.len() as u64);
        taken
    }

    /// Returns transactions from a losing or forked proposal to the pool.
    ///
    /// Transactions the chain meanwhile committed (or that conflict with
    /// better-priced queued ones) are silently dropped.
    pub fn reinsert<I: IntoIterator<Item = Transaction>>(&mut self, txs: I, accounts: &Accounts) {
        for tx in txs {
            // Bypasses the admit counters: a reinserted transaction was
            // already counted when first admitted.
            let _ = self.admit_inner(tx, accounts);
        }
    }

    /// Drops every transaction made stale by newly committed state: any
    /// nonce at or below the sender's committed nonce.
    ///
    /// Call after appending a block, finishing catch-up, or switching
    /// forks.
    pub fn prune(&mut self, accounts: &Accounts) {
        let stale: Vec<([u8; 32], u64)> = self
            .by_sender
            .values()
            .flat_map(|chain| {
                let committed = accounts.nonce(&chain.values().next().expect("non-empty").from);
                chain
                    .range(..=committed)
                    .map(|(n, tx)| (tx.from.to_bytes(), *n))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (sender, nonce) in stale {
            self.remove(&sender, nonce);
        }
    }
}

/// Eviction/selection order: higher amount wins, transaction hash breaks
/// ties so all nodes order identically.
fn priority_key(tx: &Transaction) -> (u64, [u8; 32]) {
    (tx.amount, tx.id())
}

#[cfg(test)]
mod tests {
    use super::*;
    use algorand_crypto::Keypair;

    fn kp(seed: u8) -> Keypair {
        Keypair::from_seed([seed.max(1); 32])
    }

    fn small_pool() -> TxPool {
        TxPool::new(PoolConfig {
            max_bytes: 4 * Transaction::WIRE_SIZE,
            max_txs: 4,
            max_per_sender: 8,
        })
    }

    #[test]
    fn nonce_gap_buffers_until_filled_out_of_order() {
        let a = kp(1);
        let b = kp(2);
        let accounts = Accounts::genesis([(a.pk, 100)]);
        let mut pool = TxPool::new(PoolConfig::default());
        // Nonces arrive 3, 1, 2 — gossip reordering.
        pool.admit(Transaction::payment(&a, b.pk, 1, 3), &accounts)
            .unwrap();
        assert!(
            pool.take_block(&accounts, 1 << 20).is_empty(),
            "gap blocks proposal"
        );
        pool.admit(Transaction::payment(&a, b.pk, 1, 1), &accounts)
            .unwrap();
        pool.admit(Transaction::payment(&a, b.pk, 1, 2), &accounts)
            .unwrap();
        let block = pool.take_block(&accounts, 1 << 20);
        assert_eq!(
            block.iter().map(|t| t.nonce).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "contiguous run proposed in order"
        );
        assert!(pool.is_empty());
    }

    #[test]
    fn duplicate_hash_rejected() {
        let a = kp(1);
        let accounts = Accounts::genesis([(a.pk, 100)]);
        let mut pool = TxPool::new(PoolConfig::default());
        let tx = Transaction::payment(&a, kp(2).pk, 5, 1);
        pool.admit(tx.clone(), &accounts).unwrap();
        assert_eq!(pool.admit(tx, &accounts), Err(AdmitError::Duplicate));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn committed_nonce_is_replay() {
        let a = kp(1);
        let b = kp(2);
        let mut accounts = Accounts::genesis([(a.pk, 100)]);
        let tx = Transaction::payment(&a, b.pk, 5, 1);
        accounts.apply(&tx).unwrap();
        let mut pool = TxPool::new(PoolConfig::default());
        assert_eq!(pool.admit(tx, &accounts), Err(AdmitError::Replay));
    }

    #[test]
    fn bad_signature_rejected_and_not_cached() {
        let a = kp(1);
        let accounts = Accounts::genesis([(a.pk, 100)]);
        let mut pool = TxPool::new(PoolConfig::default());
        let mut tx = Transaction::payment(&kp(3), kp(2).pk, 5, 1);
        tx.from = a.pk; // Forged sender.
        let id = tx.id();
        assert_eq!(pool.admit(tx, &accounts), Err(AdmitError::BadSignature));
        assert!(!pool.sig_ok.contains(&id));
    }

    #[test]
    fn eviction_at_cap_keeps_highest_priority() {
        let accounts = Accounts::genesis((1..=6u8).map(|i| (kp(i).pk, 100)));
        let mut pool = small_pool();
        // Five senders, amounts 10..50; cap is 4 txs.
        for (i, amount) in (1..=5u8).zip([10u64, 20, 30, 40, 50]) {
            let tx = Transaction::payment(&kp(i), kp(6).pk, amount, 1);
            let res = pool.admit(tx, &accounts);
            if i == 1 || pool.len() < 4 {
                // First four fit; the fifth triggers eviction of amount 10.
                assert!(res.is_ok() || i == 5);
            }
        }
        assert_eq!(pool.len(), 4);
        let block = pool.take_block(&accounts, 1 << 20);
        let mut amounts: Vec<u64> = block.iter().map(|t| t.amount).collect();
        amounts.sort_unstable();
        assert_eq!(amounts, vec![20, 30, 40, 50], "lowest priority evicted");
    }

    #[test]
    fn incoming_lowest_priority_is_the_eviction_victim() {
        let accounts = Accounts::genesis((1..=6u8).map(|i| (kp(i).pk, 100)));
        let mut pool = small_pool();
        for (i, amount) in (1..=4u8).zip([20u64, 30, 40, 50]) {
            pool.admit(Transaction::payment(&kp(i), kp(6).pk, amount, 1), &accounts)
                .unwrap();
        }
        let cheap = Transaction::payment(&kp(5), kp(6).pk, 5, 1);
        assert_eq!(pool.admit(cheap, &accounts), Err(AdmitError::Evicted));
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn eviction_takes_chain_tails_first() {
        let a = kp(1);
        let b = kp(2);
        let accounts = Accounts::genesis([(a.pk, 100), (b.pk, 100)]);
        let mut pool = small_pool();
        // Sender a queues a 4-long cheap chain, then b adds a pricey tx.
        for n in 1..=4u64 {
            pool.admit(Transaction::payment(&a, b.pk, 1, n), &accounts)
                .unwrap();
        }
        pool.admit(Transaction::payment(&b, a.pk, 99, 1), &accounts)
            .unwrap();
        // a's tail (nonce 4) was evicted; the head of the chain survives,
        // so the remaining run is still contiguous and proposable.
        let block = pool.take_block(&accounts, 1 << 20);
        assert_eq!(block.len(), 4);
        let a_nonces: Vec<u64> = block
            .iter()
            .filter(|t| t.from == a.pk)
            .map(|t| t.nonce)
            .collect();
        assert_eq!(a_nonces, vec![1, 2, 3]);
    }

    #[test]
    fn take_block_respects_byte_budget_and_priority() {
        let accounts = Accounts::genesis((1..=5u8).map(|i| (kp(i).pk, 100)));
        let mut pool = TxPool::new(PoolConfig::default());
        for (i, amount) in (1..=4u8).zip([10u64, 40, 20, 30]) {
            pool.admit(Transaction::payment(&kp(i), kp(5).pk, amount, 1), &accounts)
                .unwrap();
        }
        let block = pool.take_block(&accounts, 2 * Transaction::WIRE_SIZE);
        let amounts: Vec<u64> = block.iter().map(|t| t.amount).collect();
        assert_eq!(amounts, vec![40, 30], "two best fit the budget");
        assert_eq!(pool.len(), 2, "rest stays queued");
    }

    #[test]
    fn take_block_respects_balances_within_the_block() {
        let a = kp(1);
        let b = kp(2);
        // b starts broke; a's payment inside the block funds b's payment.
        let accounts = Accounts::genesis([(a.pk, 50)]);
        let mut pool = TxPool::new(PoolConfig::default());
        pool.admit(Transaction::payment(&a, b.pk, 50, 1), &accounts)
            .unwrap();
        // b's spend of the incoming 50 is admitted only once funded, so
        // craft it directly into the pool path via reinsert after funding:
        let spend = Transaction::payment(&b, a.pk, 30, 1);
        assert_eq!(
            pool.admit(spend.clone(), &accounts),
            Err(AdmitError::InsufficientBalance)
        );
        let mut funded = accounts.clone();
        funded
            .apply(&Transaction::payment(&a, b.pk, 50, 1))
            .unwrap();
        // Once the ledger shows the funding, the spend is admissible.
        let mut pool2 = TxPool::new(PoolConfig::default());
        pool2.admit(spend, &funded).unwrap();
        assert_eq!(pool2.take_block(&funded, 1 << 20).len(), 1);
        // And the original pool proposes just the funding payment.
        assert_eq!(pool.take_block(&accounts, 1 << 20).len(), 1);
    }

    #[test]
    fn overdraft_chain_head_is_dropped_not_looped() {
        let a = kp(1);
        let b = kp(2);
        let accounts = Accounts::genesis([(a.pk, 10)]);
        let mut pool = TxPool::new(PoolConfig::default());
        pool.admit(Transaction::payment(&a, b.pk, 7, 1), &accounts)
            .unwrap();
        pool.admit(Transaction::payment(&a, b.pk, 7, 2), &accounts)
            .unwrap();
        let block = pool.take_block(&accounts, 1 << 20);
        assert_eq!(block.len(), 1, "second 7 overdraws after the first");
        assert!(pool.is_empty(), "unspendable head dropped");
    }

    #[test]
    fn reinsert_after_losing_proposal_restores_pool() {
        let a = kp(1);
        let b = kp(2);
        let accounts = Accounts::genesis([(a.pk, 100)]);
        let mut pool = TxPool::new(PoolConfig::default());
        for n in 1..=3u64 {
            pool.admit(Transaction::payment(&a, b.pk, 1, n), &accounts)
                .unwrap();
        }
        let proposed = pool.take_block(&accounts, 1 << 20);
        assert_eq!(proposed.len(), 3);
        assert!(pool.is_empty());
        // The proposal loses; everything comes back and re-proposes.
        pool.reinsert(proposed.clone(), &accounts);
        assert_eq!(pool.len(), 3);
        let again = pool.take_block(&accounts, 1 << 20);
        assert_eq!(
            again.iter().map(Transaction::id).collect::<Vec<_>>(),
            proposed.iter().map(Transaction::id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn reinsert_after_partial_commit_keeps_only_live_txs() {
        let a = kp(1);
        let b = kp(2);
        let accounts = Accounts::genesis([(a.pk, 100)]);
        let mut pool = TxPool::new(PoolConfig::default());
        for n in 1..=3u64 {
            pool.admit(Transaction::payment(&a, b.pk, 1, n), &accounts)
                .unwrap();
        }
        let proposed = pool.take_block(&accounts, 1 << 20);
        // A competing winning block committed nonce 1 meanwhile.
        let mut after = accounts.clone();
        after.apply(&proposed[0]).unwrap();
        pool.reinsert(proposed, &after);
        assert_eq!(pool.len(), 2, "committed nonce 1 dropped as replay");
        let nonces: Vec<u64> = pool
            .take_block(&after, 1 << 20)
            .iter()
            .map(|t| t.nonce)
            .collect();
        assert_eq!(nonces, vec![2, 3]);
    }

    #[test]
    fn prune_drops_committed_prefix() {
        let a = kp(1);
        let b = kp(2);
        let accounts = Accounts::genesis([(a.pk, 100)]);
        let mut pool = TxPool::new(PoolConfig::default());
        let txs: Vec<Transaction> = (1..=3u64)
            .map(|n| Transaction::payment(&a, b.pk, 1, n))
            .collect();
        for tx in &txs {
            pool.admit(tx.clone(), &accounts).unwrap();
        }
        let mut after = accounts.clone();
        after.apply(&txs[0]).unwrap();
        after.apply(&txs[1]).unwrap();
        pool.prune(&after);
        assert_eq!(pool.len(), 1);
        assert!(pool.contains(&txs[2].id()));
        assert_eq!(pool.bytes(), Transaction::WIRE_SIZE);
    }

    #[test]
    fn replace_by_priority_is_strict() {
        let a = kp(1);
        let b = kp(2);
        let accounts = Accounts::genesis([(a.pk, 100)]);
        let mut pool = TxPool::new(PoolConfig::default());
        let cheap = Transaction::payment(&a, b.pk, 5, 1);
        let rich = Transaction::payment(&a, b.pk, 9, 1);
        pool.admit(cheap.clone(), &accounts).unwrap();
        assert_eq!(
            pool.admit(cheap.clone(), &accounts),
            Err(AdmitError::Duplicate)
        );
        pool.admit(rich.clone(), &accounts).unwrap();
        assert!(!pool.contains(&cheap.id()), "replaced");
        assert!(pool.contains(&rich.id()));
        assert_eq!(pool.len(), 1);
        assert_eq!(
            pool.admit(cheap, &accounts),
            Err(AdmitError::Underpriced),
            "cannot replace downward"
        );
    }

    #[test]
    fn nonce_too_far_ahead_rejected() {
        let a = kp(1);
        let accounts = Accounts::genesis([(a.pk, 100)]);
        let mut pool = small_pool(); // max_per_sender: 8
        assert_eq!(
            pool.admit(Transaction::payment(&a, kp(2).pk, 1, 9), &accounts),
            Err(AdmitError::NonceTooFar)
        );
        pool.admit(Transaction::payment(&a, kp(2).pk, 1, 8), &accounts)
            .unwrap();
    }

    #[test]
    fn sig_cache_skips_reverification_after_removal() {
        let a = kp(1);
        let b = kp(2);
        let accounts = Accounts::genesis([(a.pk, 100)]);
        let mut pool = TxPool::new(PoolConfig::default());
        let tx = Transaction::payment(&a, b.pk, 1, 1);
        pool.admit(tx.clone(), &accounts).unwrap();
        let taken = pool.take_block(&accounts, 1 << 20);
        assert!(
            pool.sig_ok.contains(&tx.id()),
            "verification outlives removal"
        );
        pool.reinsert(taken, &accounts);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn byte_accounting_is_exact() {
        let accounts = Accounts::genesis((1..=4u8).map(|i| (kp(i).pk, 100)));
        let mut pool = TxPool::new(PoolConfig::default());
        for i in 1..=3u8 {
            pool.admit(Transaction::payment(&kp(i), kp(4).pk, 1, 1), &accounts)
                .unwrap();
        }
        assert_eq!(pool.bytes(), 3 * Transaction::WIRE_SIZE);
        pool.take_block(&accounts, Transaction::WIRE_SIZE);
        assert_eq!(pool.bytes(), 2 * Transaction::WIRE_SIZE);
        pool.prune(&accounts);
        assert_eq!(
            pool.bytes(),
            2 * Transaction::WIRE_SIZE,
            "nothing committed yet"
        );
    }
}
