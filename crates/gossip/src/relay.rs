//! Per-node relay policy (§4, §8.4).
//!
//! Before relaying, a node (1) never forwards the same message twice, and
//! (2) forwards at most one message per public key per ⟨round, step⟩ — the
//! anti-equivocation and anti-spam rules that keep the gossip network from
//! being overwhelmed by an adversary. Cryptographic validation happens
//! before this policy is consulted (invalid messages are dropped outright).
//!
//! Memory is bounded by generational pruning: the seen sets live in two
//! generations, and [`RelayState::prune`] rotates them when the node's
//! round advances. An entry therefore survives at least one full round
//! after it was recorded — far longer than any in-flight duplicate —
//! while a long-running node's relay state stays O(messages per round)
//! instead of growing without bound.
//!
//! Rotation also fires on wall-clock time when the round stops advancing
//! (the `stall_horizon` argument). Without this, a liveness stall froze
//! the one-message-per-key slots forever: recovery-vote retries for the
//! same ⟨round, step⟩ classified as equivocations and were never
//! forwarded, so §8.2 recovery could strangle itself. Re-admitting a
//! sender's slot after a quiet horizon cannot break safety — BA⋆ vote
//! tallies deduplicate by sender key — it only restores gossip flooding
//! for retried messages.

use algorand_obs::{Counter, Registry};
use std::collections::HashSet;

/// What to do with an incoming, already-validated message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RelayDecision {
    /// First sighting: process and forward to peers.
    Relay,
    /// Seen before (by content): ignore.
    Duplicate,
    /// A *different* message from the same key for the same ⟨round, step⟩:
    /// process locally if desired, but do not forward (§8.4's
    /// one-message-per-key rule; blunts equivocation).
    Equivocation,
}

/// Fleet-wide relay counters, shared across nodes via a [`Registry`].
/// The default (unregistered) metrics are inert no-ops on plain atomics.
#[derive(Clone, Default)]
pub struct RelayMetrics {
    /// First sightings forwarded to peers.
    pub relayed: Counter,
    /// Messages dropped as exact duplicates.
    pub duplicates: Counter,
    /// Messages dropped by the one-message-per-key rule.
    pub equivocations: Counter,
}

impl RelayMetrics {
    /// Metrics registered under the standard `gossip.*` names.
    pub fn registered(reg: &Registry) -> RelayMetrics {
        RelayMetrics {
            relayed: reg.counter("gossip.relayed"),
            duplicates: reg.counter("gossip.duplicates"),
            equivocations: reg.counter("gossip.equivocations"),
        }
    }
}

/// Relay bookkeeping for one node.
#[derive(Default)]
pub struct RelayState {
    seen_cur: HashSet<[u8; 32]>,
    seen_old: HashSet<[u8; 32]>,
    slots_cur: HashSet<([u8; 32], u64, u32)>,
    slots_old: HashSet<([u8; 32], u64, u32)>,
    /// The round [`RelayState::prune`] last rotated at.
    pruned_round: u64,
    /// The timestamp of the last rotation (whatever clock the caller
    /// passes to [`RelayState::prune`]; µs in the simulator).
    last_rotation_at: u64,
    metrics: RelayMetrics,
}

impl RelayState {
    /// Creates empty relay state.
    pub fn new() -> RelayState {
        RelayState::default()
    }

    /// Creates empty relay state ticking the given shared counters.
    pub fn with_metrics(metrics: RelayMetrics) -> RelayState {
        RelayState {
            metrics,
            ..RelayState::default()
        }
    }

    /// Classifies a message by content id and optional per-sender slot.
    ///
    /// `slot` is `(sender_pk, round, step)` for vote-like messages; pass
    /// `None` for messages without per-step semantics (e.g. block bodies,
    /// which are deduplicated by content only).
    pub fn classify(
        &mut self,
        message_id: [u8; 32],
        slot: Option<([u8; 32], u64, u32)>,
    ) -> RelayDecision {
        if self.seen_old.contains(&message_id) || !self.seen_cur.insert(message_id) {
            self.metrics.duplicates.inc();
            return RelayDecision::Duplicate;
        }
        if let Some(slot) = slot {
            if self.slots_old.contains(&slot) || !self.slots_cur.insert(slot) {
                self.metrics.equivocations.inc();
                return RelayDecision::Equivocation;
            }
        }
        self.metrics.relayed.inc();
        RelayDecision::Relay
    }

    /// Whether a message id has been seen (without recording it).
    ///
    /// The simulator uses this to model pull-based body transfer: a relay
    /// that knows its peer already holds a block sends only the
    /// announcement, not the body.
    pub fn has_seen(&self, message_id: &[u8; 32]) -> bool {
        self.seen_cur.contains(message_id) || self.seen_old.contains(message_id)
    }

    /// Number of distinct messages seen and not yet pruned (for metrics).
    ///
    /// Inserts only ever go to the current generation and only when absent
    /// from both, so the generations are disjoint.
    pub fn seen_count(&self) -> usize {
        self.seen_cur.len() + self.seen_old.len()
    }

    /// Rotates the generations when `round` has advanced past the last
    /// rotation — or, if `stall_horizon > 0`, when more than that much
    /// time has passed since the last rotation with no round progress.
    /// Entries recorded two rotations ago are dropped.
    ///
    /// Call with the node's current round and clock whenever convenient
    /// (every message is fine — rotation only happens on a round change
    /// or a stall-horizon expiry). Vote and priority traffic is only
    /// valid near the current round, and in-flight duplicates are
    /// milliseconds old, so anything older than a full round is safe to
    /// forget: a re-delivered antique is simply re-classified, and the
    /// node's own validation still rejects it.
    ///
    /// The stall horizon exists for §8.2: during a stall the round never
    /// advances, so without it the per-⟨key, round, step⟩ slots pin the
    /// *first* message forever and recovery-vote retries are dropped as
    /// equivocations network-wide. Pick a horizon of several λ_step so
    /// rotation never fires during healthy rounds. Pass `0` to disable.
    pub fn prune(&mut self, round: u64, now: u64, stall_horizon: u64) {
        let stalled =
            stall_horizon > 0 && now.saturating_sub(self.last_rotation_at) > stall_horizon;
        if round <= self.pruned_round && !stalled {
            return;
        }
        self.pruned_round = self.pruned_round.max(round);
        self.last_rotation_at = now;
        self.seen_old = std::mem::take(&mut self.seen_cur);
        self.slots_old = std::mem::take(&mut self.slots_cur);
    }

    /// Clears state entirely.
    pub fn clear(&mut self) {
        self.seen_cur.clear();
        self.seen_old.clear();
        self.slots_cur.clear();
        self.slots_old.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sighting_relays() {
        let mut r = RelayState::new();
        assert_eq!(
            r.classify([1u8; 32], Some(([9u8; 32], 1, 1))),
            RelayDecision::Relay
        );
        assert_eq!(r.seen_count(), 1);
    }

    #[test]
    fn same_content_is_duplicate() {
        let mut r = RelayState::new();
        r.classify([1u8; 32], Some(([9u8; 32], 1, 1)));
        assert_eq!(
            r.classify([1u8; 32], Some(([9u8; 32], 1, 1))),
            RelayDecision::Duplicate
        );
    }

    #[test]
    fn different_content_same_slot_is_equivocation() {
        let mut r = RelayState::new();
        r.classify([1u8; 32], Some(([9u8; 32], 1, 1)));
        assert_eq!(
            r.classify([2u8; 32], Some(([9u8; 32], 1, 1))),
            RelayDecision::Equivocation
        );
    }

    #[test]
    fn same_key_different_step_relays() {
        let mut r = RelayState::new();
        r.classify([1u8; 32], Some(([9u8; 32], 1, 1)));
        assert_eq!(
            r.classify([2u8; 32], Some(([9u8; 32], 1, 2))),
            RelayDecision::Relay
        );
        assert_eq!(
            r.classify([3u8; 32], Some(([9u8; 32], 2, 1))),
            RelayDecision::Relay
        );
    }

    #[test]
    fn slotless_messages_dedup_by_content_only() {
        let mut r = RelayState::new();
        assert_eq!(r.classify([1u8; 32], None), RelayDecision::Relay);
        assert_eq!(r.classify([1u8; 32], None), RelayDecision::Duplicate);
        assert_eq!(r.classify([2u8; 32], None), RelayDecision::Relay);
    }

    #[test]
    fn clear_resets() {
        let mut r = RelayState::new();
        r.classify([1u8; 32], Some(([9u8; 32], 1, 1)));
        r.clear();
        assert_eq!(
            r.classify([1u8; 32], Some(([9u8; 32], 1, 1))),
            RelayDecision::Relay
        );
    }

    #[test]
    fn pruning_bounds_memory_but_keeps_recent_rounds() {
        let mut r = RelayState::new();
        r.prune(1, 0, 0); // node enters round 1
                          // Round 1 traffic.
        r.classify([1u8; 32], Some(([9u8; 32], 1, 1)));
        r.prune(1, 0, 0); // still round 1: no rotation
        assert_eq!(r.classify([1u8; 32], None), RelayDecision::Duplicate);
        r.prune(2, 0, 0); // rotate: round-1 entries now old
                          // Still deduplicated one round later (in-flight stragglers).
        assert_eq!(r.classify([1u8; 32], None), RelayDecision::Duplicate);
        assert!(r.has_seen(&[1u8; 32]));
        r.classify([2u8; 32], Some(([9u8; 32], 2, 1)));
        assert_eq!(r.seen_count(), 2);
        r.prune(3, 0, 0); // second rotation: round-1 entries dropped
        assert!(!r.has_seen(&[1u8; 32]), "two rounds old: forgotten");
        assert!(r.has_seen(&[2u8; 32]), "one round old: kept");
        assert_eq!(r.seen_count(), 1);
        // The forgotten id re-classifies as fresh; bounded memory trades
        // this (harmless for round-scoped traffic) for O(rounds) growth.
        assert_eq!(r.classify([1u8; 32], None), RelayDecision::Relay);
    }

    #[test]
    fn prune_is_monotonic_and_idempotent_within_a_round() {
        let mut r = RelayState::new();
        r.classify([1u8; 32], None);
        r.prune(5, 0, 0);
        r.prune(5, 0, 0); // same round: must not rotate again
        r.prune(4, 0, 0); // going backwards: ignored
        assert!(r.has_seen(&[1u8; 32]));
        assert_eq!(r.classify([1u8; 32], None), RelayDecision::Duplicate);
    }

    #[test]
    fn stall_horizon_reopens_slots_without_round_progress() {
        let mut r = RelayState::new();
        const H: u64 = 16_000_000; // 16 s horizon, µs clock
        r.prune(3, 0, H);
        r.classify([1u8; 32], Some(([9u8; 32], 3, 1)));
        // Within the horizon, a retry in the same slot is still an
        // equivocation and rotation never fires.
        r.prune(3, H, H);
        assert_eq!(
            r.classify([2u8; 32], Some(([9u8; 32], 3, 1))),
            RelayDecision::Equivocation
        );
        // One horizon past the last rotation the slot moves to the old
        // generation (still guarded)…
        r.prune(3, H + 1, H);
        assert_eq!(
            r.classify([3u8; 32], Some(([9u8; 32], 3, 1))),
            RelayDecision::Equivocation
        );
        // …and after a second expiry it is forgotten: the stalled node
        // relays the retried message again.
        r.prune(3, 2 * H + 2, H);
        assert_eq!(
            r.classify([4u8; 32], Some(([9u8; 32], 3, 1))),
            RelayDecision::Relay,
            "stall rotation must re-admit retried slots"
        );
        // Round-based rotation still works afterwards.
        r.prune(4, 2 * H + 3, H);
        assert!(r.has_seen(&[4u8; 32]));
    }

    #[test]
    fn equivocation_detection_survives_one_rotation() {
        let mut r = RelayState::new();
        r.classify([1u8; 32], Some(([9u8; 32], 7, 1)));
        r.prune(8, 0, 0);
        assert_eq!(
            r.classify([2u8; 32], Some(([9u8; 32], 7, 1))),
            RelayDecision::Equivocation,
            "slot guard still active one round later"
        );
    }
}
