//! Per-node relay policy (§4, §8.4).
//!
//! Before relaying, a node (1) never forwards the same message twice, and
//! (2) forwards at most one message per public key per ⟨round, step⟩ — the
//! anti-equivocation and anti-spam rules that keep the gossip network from
//! being overwhelmed by an adversary. Cryptographic validation happens
//! before this policy is consulted (invalid messages are dropped outright).

use std::collections::HashSet;

/// What to do with an incoming, already-validated message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RelayDecision {
    /// First sighting: process and forward to peers.
    Relay,
    /// Seen before (by content): ignore.
    Duplicate,
    /// A *different* message from the same key for the same ⟨round, step⟩:
    /// process locally if desired, but do not forward (§8.4's
    /// one-message-per-key rule; blunts equivocation).
    Equivocation,
}

/// Relay bookkeeping for one node.
#[derive(Default)]
pub struct RelayState {
    seen_ids: HashSet<[u8; 32]>,
    sender_slots: HashSet<([u8; 32], u64, u32)>,
}

impl RelayState {
    /// Creates empty relay state.
    pub fn new() -> RelayState {
        RelayState::default()
    }

    /// Classifies a message by content id and optional per-sender slot.
    ///
    /// `slot` is `(sender_pk, round, step)` for vote-like messages; pass
    /// `None` for messages without per-step semantics (e.g. block bodies,
    /// which are deduplicated by content only).
    pub fn classify(
        &mut self,
        message_id: [u8; 32],
        slot: Option<([u8; 32], u64, u32)>,
    ) -> RelayDecision {
        if !self.seen_ids.insert(message_id) {
            return RelayDecision::Duplicate;
        }
        if let Some(slot) = slot {
            if !self.sender_slots.insert(slot) {
                return RelayDecision::Equivocation;
            }
        }
        RelayDecision::Relay
    }

    /// Whether a message id has been seen (without recording it).
    ///
    /// The simulator uses this to model pull-based body transfer: a relay
    /// that knows its peer already holds a block sends only the
    /// announcement, not the body.
    pub fn has_seen(&self, message_id: &[u8; 32]) -> bool {
        self.seen_ids.contains(message_id)
    }

    /// Number of distinct messages seen (for metrics).
    pub fn seen_count(&self) -> usize {
        self.seen_ids.len()
    }

    /// Clears state (e.g. between rounds, to bound memory).
    pub fn clear(&mut self) {
        self.seen_ids.clear();
        self.sender_slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sighting_relays() {
        let mut r = RelayState::new();
        assert_eq!(
            r.classify([1u8; 32], Some(([9u8; 32], 1, 1))),
            RelayDecision::Relay
        );
        assert_eq!(r.seen_count(), 1);
    }

    #[test]
    fn same_content_is_duplicate() {
        let mut r = RelayState::new();
        r.classify([1u8; 32], Some(([9u8; 32], 1, 1)));
        assert_eq!(
            r.classify([1u8; 32], Some(([9u8; 32], 1, 1))),
            RelayDecision::Duplicate
        );
    }

    #[test]
    fn different_content_same_slot_is_equivocation() {
        let mut r = RelayState::new();
        r.classify([1u8; 32], Some(([9u8; 32], 1, 1)));
        assert_eq!(
            r.classify([2u8; 32], Some(([9u8; 32], 1, 1))),
            RelayDecision::Equivocation
        );
    }

    #[test]
    fn same_key_different_step_relays() {
        let mut r = RelayState::new();
        r.classify([1u8; 32], Some(([9u8; 32], 1, 1)));
        assert_eq!(
            r.classify([2u8; 32], Some(([9u8; 32], 1, 2))),
            RelayDecision::Relay
        );
        assert_eq!(
            r.classify([3u8; 32], Some(([9u8; 32], 2, 1))),
            RelayDecision::Relay
        );
    }

    #[test]
    fn slotless_messages_dedup_by_content_only() {
        let mut r = RelayState::new();
        assert_eq!(r.classify([1u8; 32], None), RelayDecision::Relay);
        assert_eq!(r.classify([1u8; 32], None), RelayDecision::Duplicate);
        assert_eq!(r.classify([2u8; 32], None), RelayDecision::Relay);
    }

    #[test]
    fn clear_resets() {
        let mut r = RelayState::new();
        r.classify([1u8; 32], Some(([9u8; 32], 1, 1)));
        r.clear();
        assert_eq!(
            r.classify([1u8; 32], Some(([9u8; 32], 1, 1))),
            RelayDecision::Relay
        );
    }
}
