//! The gossip substrate (§4, §8.4).
//!
//! Algorand disseminates every protocol message over a peer-to-peer gossip
//! network: each user dials a few random, money-weighted peers, validates
//! messages before relaying, never forwards a message twice, and forwards
//! at most one message per key per ⟨round, step⟩. This crate provides the
//! transport-independent pieces — topology construction/analysis and the
//! relay policy — which the discrete-event simulator (and, in a real
//! deployment, a TCP runtime) drives.

pub mod relay;
pub mod topology;

pub use relay::{RelayDecision, RelayMetrics, RelayState};
pub use topology::{NodeId, Topology};
