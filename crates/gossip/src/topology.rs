//! Gossip network topology (§4, §8.4, §9).
//!
//! Each user connects to a small number of random peers (4 in the paper's
//! prototype) and accepts incoming connections, giving ~8 neighbours on
//! average; messages are gossiped to all neighbours. Peer selection is
//! weighted by money to mitigate pollution attacks (§4). The resulting
//! random graph is connected with high probability and has logarithmic
//! diameter (§8.4), which is what makes dissemination time grow only
//! logarithmically in the number of users.

use algorand_crypto::rng::Rng;
use std::collections::VecDeque;

/// A node index within one simulation.
pub type NodeId = usize;

/// An undirected gossip graph: out-edges chosen by each node, plus the
/// incoming edges it accepted.
#[derive(Clone, Debug)]
pub struct Topology {
    neighbors: Vec<Vec<NodeId>>,
}

impl Topology {
    /// Builds a uniform random topology: each node dials `out_degree`
    /// distinct random peers.
    pub fn random(n: usize, out_degree: usize, rng: &mut Rng) -> Topology {
        Self::weighted(n, out_degree, &vec![1u64; n], rng)
    }

    /// Builds a money-weighted topology: each node dials `out_degree`
    /// distinct peers sampled proportionally to their weight (§4).
    pub fn weighted(n: usize, out_degree: usize, weights: &[u64], rng: &mut Rng) -> Topology {
        assert_eq!(weights.len(), n);
        let mut neighbors: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        if n <= 1 {
            return Topology { neighbors };
        }
        let total: u64 = weights.iter().sum();
        for u in 0..n {
            let mut dialed: Vec<NodeId> = Vec::new();
            let want = out_degree.min(n - 1);
            let mut guard = 0;
            while dialed.len() < want && guard < 50 * want {
                guard += 1;
                let v = if total == 0 {
                    rng.gen_range_usize(n)
                } else {
                    // Weighted sample by cumulative walk.
                    let mut target = rng.gen_range_u64(total);
                    let mut pick = n - 1;
                    for (i, &w) in weights.iter().enumerate() {
                        if target < w {
                            pick = i;
                            break;
                        }
                        target -= w;
                    }
                    pick
                };
                if v != u && !dialed.contains(&v) {
                    dialed.push(v);
                }
            }
            // Fall back to uniform fill if weighted sampling kept colliding
            // (e.g. one node holds nearly all weight).
            if dialed.len() < want {
                let mut rest: Vec<NodeId> = (0..n).filter(|&v| v != u).collect();
                rng.shuffle(&mut rest);
                for v in rest {
                    if dialed.len() >= want {
                        break;
                    }
                    if !dialed.contains(&v) {
                        dialed.push(v);
                    }
                }
            }
            for v in dialed {
                if !neighbors[u].contains(&v) {
                    neighbors[u].push(v);
                }
                if !neighbors[v].contains(&u) {
                    neighbors[v].push(u);
                }
            }
        }
        Topology { neighbors }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// True for the empty graph.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// The neighbours a node gossips to.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.neighbors[node]
    }

    /// Average neighbour count (the paper reports ~8 for out-degree 4).
    pub fn mean_degree(&self) -> f64 {
        if self.neighbors.is_empty() {
            return 0.0;
        }
        let total: usize = self.neighbors.iter().map(|v| v.len()).sum();
        total as f64 / self.neighbors.len() as f64
    }

    /// Size of the largest connected component.
    pub fn largest_component(&self) -> usize {
        let n = self.len();
        let mut visited = vec![false; n];
        let mut best = 0;
        for start in 0..n {
            if visited[start] {
                continue;
            }
            let mut size = 0;
            let mut queue = VecDeque::from([start]);
            visited[start] = true;
            while let Some(u) = queue.pop_front() {
                size += 1;
                for &v in &self.neighbors[u] {
                    if !visited[v] {
                        visited[v] = true;
                        queue.push_back(v);
                    }
                }
            }
            best = best.max(size);
        }
        best
    }

    /// True when every node can reach every other.
    pub fn is_connected(&self) -> bool {
        self.largest_component() == self.len()
    }

    /// Eccentricity of `start`: BFS distance to the farthest reachable node.
    pub fn eccentricity(&self, start: NodeId) -> usize {
        let n = self.len();
        let mut dist = vec![usize::MAX; n];
        dist[start] = 0;
        let mut queue = VecDeque::from([start]);
        let mut far = 0;
        while let Some(u) = queue.pop_front() {
            for &v in &self.neighbors[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    far = far.max(dist[v]);
                    queue.push_back(v);
                }
            }
        }
        far
    }

    /// An estimate of the graph diameter: the maximum eccentricity over a
    /// deterministic sample of nodes (exact on small graphs).
    pub fn diameter_estimate(&self) -> usize {
        let n = self.len();
        if n == 0 {
            return 0;
        }
        let samples = if n <= 64 {
            (0..n).collect::<Vec<_>>()
        } else {
            (0..64).map(|i| i * n / 64).collect()
        };
        samples
            .into_iter()
            .map(|s| self.eccentricity(s))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_graph_with_degree_4_is_connected() {
        // §8.4: almost all users end up in one connected component.
        let mut rng = Rng::seed_from_u64(7);
        for n in [10, 100, 500] {
            let t = Topology::random(n, 4, &mut rng);
            assert_eq!(t.len(), n);
            assert!(
                t.largest_component() >= n * 99 / 100,
                "n = {n}: component {} of {n}",
                t.largest_component()
            );
        }
    }

    #[test]
    fn mean_degree_is_about_twice_out_degree() {
        let mut rng = Rng::seed_from_u64(8);
        let t = Topology::random(500, 4, &mut rng);
        let d = t.mean_degree();
        assert!((6.0..10.5).contains(&d), "mean degree {d}");
    }

    #[test]
    fn diameter_grows_slowly() {
        let mut rng = Rng::seed_from_u64(9);
        let d100 = Topology::random(100, 4, &mut rng).diameter_estimate();
        let d1000 = Topology::random(1000, 4, &mut rng).diameter_estimate();
        // Logarithmic growth: 10× the nodes should not even double the
        // diameter of a degree-8 random graph.
        assert!(d1000 <= d100 * 2 + 2, "d100={d100} d1000={d1000}");
        assert!(d1000 >= d100, "d100={d100} d1000={d1000}");
    }

    #[test]
    fn weighted_selection_favours_heavy_nodes() {
        let mut rng = Rng::seed_from_u64(10);
        let n = 200;
        let mut weights = vec![1u64; n];
        weights[0] = 1000; // One node holds most of the money.
        let t = Topology::weighted(n, 4, &weights, &mut rng);
        let heavy_degree = t.neighbors(0).len();
        let mean = t.mean_degree();
        assert!(
            (heavy_degree as f64) > mean * 3.0,
            "heavy node degree {heavy_degree} vs mean {mean}"
        );
    }

    #[test]
    fn no_self_loops_or_duplicate_edges() {
        let mut rng = Rng::seed_from_u64(11);
        let t = Topology::random(100, 4, &mut rng);
        for u in 0..t.len() {
            let neigh = t.neighbors(u);
            assert!(!neigh.contains(&u), "self loop at {u}");
            let mut sorted = neigh.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), neigh.len(), "duplicate edge at {u}");
        }
    }

    #[test]
    fn degenerate_sizes() {
        let mut rng = Rng::seed_from_u64(12);
        let t0 = Topology::random(0, 4, &mut rng);
        assert!(t0.is_empty());
        let t1 = Topology::random(1, 4, &mut rng);
        assert_eq!(t1.largest_component(), 1);
        assert!(t1.is_connected());
        let t2 = Topology::random(2, 4, &mut rng);
        assert!(t2.is_connected());
    }

    #[test]
    fn edges_are_symmetric() {
        let mut rng = Rng::seed_from_u64(13);
        let t = Topology::random(50, 4, &mut rng);
        for u in 0..t.len() {
            for &v in t.neighbors(u) {
                assert!(t.neighbors(v).contains(&u), "asymmetric edge {u}->{v}");
            }
        }
    }
}
