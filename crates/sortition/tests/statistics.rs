//! Statistical behaviour of sortition: empirical selection frequencies
//! against the binomial model (§5.1).
//!
//! These are distributional smoke tests with seeded determinism — wide
//! tolerances, no flakiness — complementing the exact unit tests.

use algorand_crypto::Keypair;
use algorand_sortition::{select, Role, SortitionParams};

fn kp(i: u64) -> Keypair {
    let mut s = [0u8; 32];
    s[..8].copy_from_slice(&i.to_le_bytes());
    Keypair::from_seed(s)
}

#[test]
fn expected_committee_size_matches_tau() {
    // Sum of selected sub-users over many rounds ≈ τ per round.
    let n_users = 40;
    let weight = 25u64;
    let tau = 100.0;
    let params = SortitionParams {
        tau,
        total_weight: n_users as u64 * weight,
    };
    let keypairs: Vec<Keypair> = (0..n_users).map(|i| kp(i as u64 + 1)).collect();
    let rounds = 50u64;
    let mut total = 0u64;
    for round in 0..rounds {
        let role = Role::Committee { round, step: 1 };
        let seed = [round as u8; 32];
        for k in &keypairs {
            if let Some(sel) = select(k, &seed, role, &params, weight) {
                total += sel.j;
            }
        }
    }
    let mean = total as f64 / rounds as f64;
    // σ per round ≈ √(τ(1−p)) ≈ 9.5; the mean of 50 rounds has σ ≈ 1.35.
    assert!(
        (mean - tau).abs() < 8.0,
        "mean committee size {mean} vs τ {tau}"
    );
}

#[test]
fn selection_probability_proportional_to_weight() {
    // User A with 3× the weight of user B must accumulate ≈3× the selected
    // sub-users.
    let params = SortitionParams {
        tau: 60.0,
        total_weight: 400,
    };
    let heavy = kp(100);
    let light = kp(101);
    let mut heavy_total = 0u64;
    let mut light_total = 0u64;
    for round in 0..120u64 {
        let role = Role::Committee { round, step: 2 };
        let seed = [(round % 251) as u8; 32];
        if let Some(sel) = select(&heavy, &seed, role, &params, 300) {
            heavy_total += sel.j;
        }
        if let Some(sel) = select(&light, &seed, role, &params, 100) {
            light_total += sel.j;
        }
    }
    let ratio = heavy_total as f64 / light_total.max(1) as f64;
    assert!(
        (2.2..4.0).contains(&ratio),
        "weight ratio 3 gave selection ratio {ratio} ({heavy_total}/{light_total})"
    );
}

#[test]
fn proposer_count_distribution_matches_poisson_tail() {
    // With τ_proposer = 6 over 30 users, the no-proposer probability is
    // e^{-6} ≈ 0.25%; over 200 rounds we should essentially never see a
    // proposer-less round, and the mean count should be near 6.
    let n_users = 30;
    let weight = 10u64;
    let params = SortitionParams {
        tau: 6.0,
        total_weight: n_users as u64 * weight,
    };
    let keypairs: Vec<Keypair> = (0..n_users).map(|i| kp(i as u64 + 500)).collect();
    let mut counts = Vec::new();
    for round in 0..200u64 {
        let role = Role::BlockProposer { round };
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&round.to_le_bytes());
        let mut c = 0;
        for k in &keypairs {
            if select(k, &seed, role, &params, weight).is_some() {
                c += 1;
            }
        }
        counts.push(c);
    }
    let zero_rounds = counts.iter().filter(|&&c| c == 0).count();
    let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
    assert!(zero_rounds <= 2, "{zero_rounds} rounds without a proposer");
    assert!((4.0..8.0).contains(&mean), "mean proposer count {mean}");
}

#[test]
fn different_roles_select_independent_committees() {
    // The same seed and round must yield different committees for
    // different steps; overlap should look like independent draws, not
    // identical sets.
    let n_users = 60;
    let weight = 10u64;
    let params = SortitionParams {
        tau: 120.0,
        total_weight: n_users as u64 * weight,
    };
    let keypairs: Vec<Keypair> = (0..n_users).map(|i| kp(i as u64 + 900)).collect();
    let seed = [77u8; 32];
    let committee = |step: u32| -> Vec<bool> {
        keypairs
            .iter()
            .map(|k| {
                select(
                    k,
                    &seed,
                    Role::Committee { round: 9, step },
                    &params,
                    weight,
                )
                .is_some()
            })
            .collect()
    };
    let c1 = committee(1);
    let c2 = committee(2);
    assert_ne!(c1, c2, "steps 1 and 2 drew identical committees");
    // Each committee selects a majority of users (p ≈ 0.86 of being chosen
    // at least once with w=10, p_sub=0.2), but not everyone.
    for (label, c) in [("step1", &c1), ("step2", &c2)] {
        let members = c.iter().filter(|&&b| b).count();
        assert!(
            (30..60).contains(&members),
            "{label}: {members} members of 60"
        );
    }
}
