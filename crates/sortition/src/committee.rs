//! Committee-size analysis (§7.5, Figure 3).
//!
//! BA⋆ needs its per-step committee to satisfy two constraints with
//! overwhelming probability, where `g` and `b` are the honest and malicious
//! selected sub-user counts:
//!
//! * **liveness**: `g > T·τ` — honest members alone can cross the vote
//!   threshold;
//! * **safety**: `½·g + b ≤ T·τ` — the adversary, even replaying honest
//!   votes to half the network, cannot push two different values past the
//!   threshold.
//!
//! Sortition selects each of the W sub-users independently with probability
//! τ/W, so for large W the counts are Poisson: `g ~ Poisson(h·τ)` and
//! `b ~ Poisson((1−h)·τ)`. This module computes the violation probability
//! for a given (τ, T, h), finds the optimal threshold T, and solves for the
//! minimal committee size τ achieving a target violation probability — the
//! computation behind Figure 3, where h = 80% yields τ ≈ 2000 with
//! T ≈ 0.685.

use crate::binomial::{poisson_cdf, poisson_ln_pmf, poisson_sf};

/// The violation probability of the BA⋆ step constraints for one step.
///
/// Returns `P[g ≤ T·τ] + P[½·g + b > T·τ]` (union bound over the liveness
/// and safety failure events).
pub fn violation_probability(tau: f64, threshold: f64, honest_fraction: f64) -> f64 {
    let lambda_g = honest_fraction * tau;
    let lambda_b = (1.0 - honest_fraction) * tau;
    let vote_threshold = threshold * tau;
    // Liveness failure: honest votes alone do not exceed the threshold.
    let p_liveness = poisson_cdf(vote_threshold.floor() as u64, lambda_g);
    // Safety failure: P[g/2 + b > T·τ] = Σ_b pmf(b) · P[g > 2(T·τ − b)].
    // Precompute the g survival function as suffix sums over the pmf so the
    // b loop is O(1) per term.
    let g_hi = ((2.0 * vote_threshold).ceil() as u64).max(1) + 2;
    let g_sf = {
        // sf[k] = P[g > k]; build pmf by the multiplicative recurrence then
        // take suffix sums, using the exact tail beyond the table edge.
        let mut pmf = vec![0.0f64; g_hi as usize + 1];
        for (k, v) in pmf.iter_mut().enumerate() {
            *v = poisson_ln_pmf(k as u64, lambda_g).exp();
        }
        let mut sf = vec![0.0f64; g_hi as usize + 2];
        sf[g_hi as usize + 1] = poisson_sf(g_hi, lambda_g);
        for k in (0..=g_hi as usize).rev() {
            sf[k] = sf[k + 1] + pmf[k];
        }
        // sf[k] currently holds P[g ≥ k]; shift to P[g > k] on lookup.
        sf
    };
    let g_tail = |k: u64| -> f64 {
        // P[g > k] = P[g ≥ k+1].
        let idx = (k + 1).min(g_hi + 1) as usize;
        g_sf[idx]
    };
    // Truncate the b sum where the pmf mass becomes negligible.
    let b_hi = (lambda_b + 20.0 * lambda_b.sqrt().max(3.0)).ceil() as u64;
    let mut p_safety = 0.0f64;
    for b in 0..=b_hi {
        let pb = poisson_ln_pmf(b, lambda_b).exp();
        let tail = if (b as f64) > vote_threshold {
            // Even g = 0 violates safety for this b.
            1.0
        } else {
            let g_needed = 2.0 * (vote_threshold - b as f64);
            g_tail(g_needed.floor() as u64)
        };
        p_safety += pb * tail;
    }
    // Mass of b beyond the truncation point (violates safety almost surely
    // there, but the pmf is already below ~1e-60; include it as a bound).
    p_safety += poisson_sf(b_hi, lambda_b);
    (p_liveness + p_safety).min(1.0)
}

/// The best threshold T and its violation probability for a given (τ, h).
///
/// Scans T over (2/3, 0.95); the optimum balances the liveness tail
/// (favours small T) against the safety tail (favours large T).
pub fn best_threshold(tau: f64, honest_fraction: f64) -> (f64, f64) {
    let mut best = (0.7, 1.0f64);
    let mut t = 0.667;
    while t <= 0.95 {
        let p = violation_probability(tau, t, honest_fraction);
        if p < best.1 {
            best = (t, p);
        }
        t += 0.0025;
    }
    best
}

/// Minimal committee size τ meeting a violation-probability target.
///
/// Returns `(τ, T)` — the Figure 3 y-value for `x = honest_fraction` — or
/// `None` if no committee up to `max_tau` suffices (h too close to 2/3).
pub fn solve_committee_size(
    honest_fraction: f64,
    target_violation: f64,
    max_tau: u64,
) -> Option<(u64, f64)> {
    // The violation probability is monotone decreasing in τ once feasible;
    // binary search over integers.
    let feasible = |tau: u64| -> Option<f64> {
        let (t, p) = best_threshold(tau as f64, honest_fraction);
        (p <= target_violation).then_some(t)
    };
    feasible(max_tau)?;
    let (mut lo, mut hi) = (1u64, max_tau);
    // Invariant: feasible(hi) holds; feasible(lo) unknown/false.
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if feasible(mid).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let t = feasible(hi)?;
    Some((hi, t))
}

/// One row of the Figure 3 curve.
#[derive(Clone, Copy, Debug)]
pub struct CommitteeSizePoint {
    /// The weighted fraction of honest users (x-axis).
    pub honest_fraction: f64,
    /// The sufficient committee size τ (y-axis).
    pub tau: u64,
    /// The vote threshold T at which τ suffices.
    pub threshold: f64,
}

/// Computes the Figure 3 curve: τ versus h at the paper's violation target
/// of 5×10⁻⁹.
pub fn figure3_curve(h_values: &[f64]) -> Vec<CommitteeSizePoint> {
    h_values
        .iter()
        .filter_map(|&h| {
            solve_committee_size(h, 5e-9, 100_000).map(|(tau, threshold)| CommitteeSizePoint {
                honest_fraction: h,
                tau,
                threshold,
            })
        })
        .collect()
}

/// Violation probability for the *final*-step committee (§C.1 regime).
///
/// The final step uses a larger committee (τ_final = 10,000, T_final =
/// 0.74) so that safety holds under weak synchrony across all MaxSteps
/// steps of a round. This helper exposes the per-step probability at those
/// parameters so benches can confirm the margin.
pub fn final_step_violation(tau_final: f64, t_final: f64, honest_fraction: f64) -> f64 {
    violation_probability(tau_final, t_final, honest_fraction)
}

/// Log₁₀ upper bound on the probability that the adversary alone crosses a
/// step's vote threshold — the §8.3 certificate-forgery attack.
///
/// An adversary holding a `1 − h` weight fraction draws
/// `b ~ Poisson((1−h)·τ)` committee seats per step; forging a certificate
/// for some step needs `b > T·τ`. The paper: "For τ_step > 1000, the
/// probability of this attack is less than 2⁻¹⁶⁶ at every step". The tail
/// is far below `f64` range, so we bound it in log space by the largest
/// term times a geometric factor:
/// `P[X ≥ k] ≤ pmf(k) / (1 − λ/k)` for `k > λ`.
pub fn certificate_forgery_log10_bound(tau: f64, threshold: f64, honest_fraction: f64) -> f64 {
    let lambda = (1.0 - honest_fraction) * tau;
    let k = (threshold * tau).floor() + 1.0;
    debug_assert!(k > lambda, "threshold must exceed the adversary's mean");
    // ln pmf(k; λ) = −λ + k ln λ − lnΓ(k+1).
    let ln_pmf = -lambda + k * lambda.ln() - ln_gamma(k + 1.0);
    let ln_tail = ln_pmf - (1.0 - lambda / k).ln();
    ln_tail / std::f64::consts::LN_10
}

use crate::binomial::ln_gamma;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forgery_bound_matches_paper_claim() {
        // Paper (§8.3): for τ_step > 1000 the per-step forgery probability
        // is below 2⁻¹⁶⁶ ≈ 10⁻⁴⁹·⁹. At the chosen τ_step = 2000 the bound
        // is much smaller still.
        let log10 = certificate_forgery_log10_bound(2000.0, 0.685, 0.80);
        assert!(log10 < -50.0, "log10 bound {log10} (paper: < -49.9)");
        // Even over MaxSteps = 150 steps the union bound stays negligible.
        let with_steps = log10 + (150.0f64).log10();
        assert!(with_steps < -45.0);
    }

    #[test]
    fn forgery_bound_weakens_with_smaller_committees() {
        let big = certificate_forgery_log10_bound(2000.0, 0.685, 0.80);
        let small = certificate_forgery_log10_bound(200.0, 0.685, 0.80);
        assert!(small > big, "small committee must be easier to forge");
    }

    #[test]
    fn paper_point_h80_tau2000() {
        // §7.5: at h = 80%, τ_step = 2000 with T_step = 0.685 achieves a
        // violation probability below 5×10⁻⁹.
        let p = violation_probability(2000.0, 0.685, 0.80);
        assert!(p < 5e-9, "violation probability at paper params: {p:e}");
    }

    #[test]
    fn smaller_committee_at_h80_fails_harder() {
        let p_2000 = violation_probability(2000.0, 0.685, 0.80);
        let p_500 = violation_probability(500.0, 0.685, 0.80);
        assert!(p_500 > p_2000 * 100.0, "p_500={p_500:e} p_2000={p_2000:e}");
    }

    #[test]
    fn violation_probability_decreases_with_h() {
        let p_77 = best_threshold(2000.0, 0.77).1;
        let p_80 = best_threshold(2000.0, 0.80).1;
        let p_85 = best_threshold(2000.0, 0.85).1;
        assert!(p_77 > p_80, "p77={p_77:e} p80={p_80:e}");
        assert!(p_80 > p_85, "p80={p_80:e} p85={p_85:e}");
    }

    #[test]
    fn solved_committee_size_near_paper_value_at_h80() {
        let (tau, t) = solve_committee_size(0.80, 5e-9, 20_000).expect("feasible");
        // The paper reports τ_step = 2000 at h = 80%; our solver must land
        // in the same regime (the paper rounds τ and T).
        assert!(
            (1200..=2600).contains(&tau),
            "solved τ = {tau} (paper: 2000)"
        );
        assert!((0.6..0.8).contains(&t), "solved T = {t} (paper: 0.685)");
    }

    #[test]
    fn committee_size_grows_as_h_approaches_two_thirds() {
        let tau_78 = solve_committee_size(0.78, 5e-9, 100_000).unwrap().0;
        let tau_82 = solve_committee_size(0.82, 5e-9, 100_000).unwrap().0;
        let tau_90 = solve_committee_size(0.90, 5e-9, 100_000).unwrap().0;
        assert!(tau_78 > tau_82, "τ(78)={tau_78} τ(82)={tau_82}");
        assert!(tau_82 > tau_90, "τ(82)={tau_82} τ(90)={tau_90}");
        // Figure 3 shows the curve rising steeply below 80%: τ(78%) should
        // be well above τ(90%).
        assert!(tau_78 > 2 * tau_90, "τ(78)={tau_78} τ(90)={tau_90}");
    }

    #[test]
    fn infeasible_when_h_too_close_to_two_thirds() {
        // Just above 2/3 the required committee exceeds any practical bound.
        assert!(solve_committee_size(0.667, 5e-9, 5_000).is_none());
    }

    #[test]
    fn final_step_params_have_margin() {
        // τ_final = 10,000 with T_final = 0.74 must give a much smaller
        // violation probability than the per-step parameters, since it has
        // to hold across up to MaxSteps = 150 steps.
        let p_final = final_step_violation(10_000.0, 0.74, 0.80);
        let p_step = violation_probability(2000.0, 0.685, 0.80);
        assert!(p_final < p_step, "final {p_final:e} vs step {p_step:e}");
        assert!(
            p_final * 150.0 < 5e-9,
            "final-step margin too small: {p_final:e}"
        );
    }

    #[test]
    fn figure3_curve_is_monotone_decreasing() {
        let hs = [0.78, 0.80, 0.84, 0.88];
        let curve = figure3_curve(&hs);
        assert_eq!(curve.len(), hs.len());
        for pair in curve.windows(2) {
            assert!(
                pair[0].tau >= pair[1].tau,
                "τ must not increase with h: {:?}",
                curve
            );
        }
    }
}
