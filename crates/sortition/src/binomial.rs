//! Numerics for sortition: binomial and Poisson distributions in log space.
//!
//! Sortition (Algorithm 1) walks the binomial CDF
//! `B(k; w, p)` with `p = τ/W` tiny and `w` potentially in the millions, so
//! probabilities are computed via logarithms to avoid underflow. The same
//! machinery powers the committee-size solver for Figure 3, which needs
//! Poisson tail probabilities down to 5×10⁻⁹.

/// Natural log of the gamma function, by the Lanczos approximation.
///
/// Accurate to ~1e-13 relative error for x > 0, which is far tighter than
/// anything the probability computations here require.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7, n = 9.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Natural log of the binomial coefficient C(n, k).
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// The binomial probability mass `B(k; n, p)` from §5.1.
pub fn binomial_pmf(k: u64, n: u64, p: f64) -> f64 {
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    if k > n {
        return 0.0;
    }
    let ln_pmf = ln_choose(n, k) + (k as f64) * p.ln() + ((n - k) as f64) * (1.0 - p).ln();
    ln_pmf.exp()
}

/// An iterator over binomial masses `B(0;n,p), B(1;n,p), …` computed by the
/// stable multiplicative recurrence.
///
/// `pmf(k+1) = pmf(k) · (n−k)/(k+1) · p/(1−p)`, seeded with
/// `pmf(0) = exp(n·ln(1−p))`. This is how sortition walks the CDF without
/// recomputing factorials at every step.
pub struct BinomialPmfIter {
    n: u64,
    k: u64,
    ratio: f64,
    current: f64,
    done: bool,
}

impl BinomialPmfIter {
    /// Starts the iterator at k = 0.
    pub fn new(n: u64, p: f64) -> BinomialPmfIter {
        let p = p.clamp(0.0, 1.0);
        let (current, ratio) = if p >= 1.0 {
            // Degenerate: all mass at k = n; emit zeros until then.
            (if n == 0 { 1.0 } else { 0.0 }, 0.0)
        } else {
            (((n as f64) * (1.0 - p).ln()).exp(), p / (1.0 - p))
        };
        BinomialPmfIter {
            n,
            k: 0,
            ratio,
            current,
            done: false,
        }
    }
}

impl Iterator for BinomialPmfIter {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        if self.done {
            return None;
        }
        let out = self.current;
        if self.k >= self.n {
            self.done = true;
        } else {
            self.current *= self.ratio * ((self.n - self.k) as f64) / ((self.k + 1) as f64);
            self.k += 1;
        }
        Some(out)
    }
}

/// The binomial CDF `P[X ≤ k]` for X ~ Binomial(n, p).
pub fn binomial_cdf(k: u64, n: u64, p: f64) -> f64 {
    BinomialPmfIter::new(n, p)
        .take((k + 1).min(n + 1) as usize)
        .sum::<f64>()
        .min(1.0)
}

/// Log of the Poisson probability mass `P[X = k]` for X ~ Poisson(λ).
pub fn poisson_ln_pmf(k: u64, lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    -lambda + (k as f64) * lambda.ln() - ln_gamma(k as f64 + 1.0)
}

/// The lower Poisson tail `P[X ≤ k]`, summed in linear space from the mode
/// outward so that tiny tails retain relative accuracy.
pub fn poisson_cdf(k: u64, lambda: f64) -> f64 {
    let mut acc = 0.0f64;
    for i in 0..=k {
        acc += poisson_ln_pmf(i, lambda).exp();
    }
    acc.min(1.0)
}

/// The upper Poisson tail `P[X > k]`.
///
/// Computed by direct summation of the pmf above `k` (accurate for tiny
/// tails, where `1 − cdf` would lose everything to cancellation).
pub fn poisson_sf(k: u64, lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 0.0;
    }
    if (k as f64) < lambda {
        // Left of the mode the survival probability is large; computing it
        // as a complement is accurate, and the direct sum below would
        // underflow term-by-term for large λ.
        return (1.0 - poisson_cdf(k, lambda)).max(0.0);
    }
    // Sum from k+1 upward; past the mode the terms decay geometrically.
    let mut acc = 0.0f64;
    let mut i = k + 1;
    let mut ln_term = poisson_ln_pmf(i, lambda);
    let mut term = ln_term.exp();
    loop {
        acc += term;
        i += 1;
        ln_term += lambda.ln() - (i as f64).ln();
        term = ln_term.exp();
        if (term < acc * 1e-18 && (i as f64) > lambda) || term == 0.0 {
            break;
        }
    }
    acc.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1e-300)
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!(close(ln_gamma(5.0), 24.0f64.ln(), 1e-12));
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-12
        ));
    }

    #[test]
    fn ln_choose_small_values() {
        assert!(close(ln_choose(5, 2), 10.0f64.ln(), 1e-12));
        assert!(close(ln_choose(10, 5), 252.0f64.ln(), 1e-12));
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for (n, p) in [(10u64, 0.3), (100, 0.01), (1000, 0.5)] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(k, n, p)).sum();
            assert!(close(total, 1.0, 1e-9), "n={n} p={p} total={total}");
        }
    }

    #[test]
    fn binomial_iter_matches_direct_pmf() {
        let n = 50;
        let p = 0.07;
        for (k, iter_pmf) in BinomialPmfIter::new(n, p).enumerate() {
            let direct = binomial_pmf(k as u64, n, p);
            assert!(
                close(iter_pmf, direct, 1e-9),
                "k={k} iter={iter_pmf} direct={direct}"
            );
        }
    }

    #[test]
    fn binomial_iter_handles_degenerate_p() {
        let all: Vec<f64> = BinomialPmfIter::new(3, 0.0).collect();
        assert_eq!(all, vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn binomial_cdf_monotone_and_bounded() {
        let n = 200;
        let p = 0.02;
        let mut prev = 0.0;
        for k in 0..=n {
            let c = binomial_cdf(k, n, p);
            assert!(c >= prev - 1e-15);
            assert!(c <= 1.0);
            prev = c;
        }
        assert!(close(binomial_cdf(n, n, p), 1.0, 1e-9));
    }

    #[test]
    fn binomial_splitting_identity() {
        // §5.1: splitting weight across Sybils does not change the selected
        // count distribution: Binomial(n1,p) + Binomial(n2,p) =
        // Binomial(n1+n2,p). Check the convolution directly.
        let (n1, n2, p) = (30u64, 50u64, 0.04);
        for k in 0..=20u64 {
            let convolved: f64 = (0..=k)
                .map(|j| binomial_pmf(j, n1, p) * binomial_pmf(k - j, n2, p))
                .sum();
            let direct = binomial_pmf(k, n1 + n2, p);
            assert!(
                close(convolved, direct, 1e-9),
                "k={k} conv={convolved} direct={direct}"
            );
        }
    }

    #[test]
    fn poisson_pmf_sums_to_one() {
        let lambda = 20.0;
        let total: f64 = (0..200).map(|k| poisson_ln_pmf(k, lambda).exp()).sum();
        assert!(close(total, 1.0, 1e-9));
    }

    #[test]
    fn poisson_cdf_plus_sf_is_one() {
        for lambda in [1.0f64, 50.0, 2000.0] {
            for k in [0u64, 10, (lambda as u64), (2.0 * lambda) as u64] {
                let total = poisson_cdf(k, lambda) + poisson_sf(k, lambda);
                assert!(close(total, 1.0, 1e-6), "λ={lambda} k={k} total={total}");
            }
        }
    }

    #[test]
    fn poisson_sf_deep_tail_is_positive_and_tiny() {
        // P[X > λ + 10σ] for λ = 1600 is around 1e-23; it must be computed
        // as a positive number, not rounded to zero by cancellation.
        let lambda = 1600.0f64;
        let k = (lambda + 10.0 * lambda.sqrt()) as u64;
        let sf = poisson_sf(k, lambda);
        assert!(sf > 0.0 && sf < 1e-15, "sf = {sf}");
    }

    #[test]
    fn poisson_tail_matches_known_value() {
        // P[X > 0] = 1 - e^{-λ}.
        let lambda = 2.5;
        assert!(close(poisson_sf(0, lambda), 1.0 - (-lambda).exp(), 1e-12));
    }

    #[test]
    fn binomial_approaches_poisson_for_small_p() {
        // Binomial(n, λ/n) → Poisson(λ): the approximation used in the
        // committee-size analysis.
        let lambda = 10.0;
        let n = 1_000_000u64;
        let p = lambda / n as f64;
        for k in 0..30u64 {
            let b = binomial_pmf(k, n, p);
            let q = poisson_ln_pmf(k, lambda).exp();
            assert!(close(b, q, 1e-3), "k={k} binom={b} poisson={q}");
        }
    }
}
