//! Cryptographic sortition (§5 of the paper).
//!
//! Sortition selects a random, weight-proportional subset of users in a
//! private, non-interactive way. Each user evaluates a VRF on the public
//! round seed concatenated with a role; the pseudorandom output is mapped
//! through binomial CDF intervals to a count `j` of selected "sub-users"
//! (Algorithm 1). Anyone can verify the selection from the proof and the
//! user's public weight (Algorithm 2).
//!
//! Splitting money across Sybil identities does not change the selected
//! count in distribution, because
//! `Binomial(w₁,p) + Binomial(w₂,p) = Binomial(w₁+w₂,p)` — this is the
//! identity that makes weight-proportional sortition Sybil-resistant.
//!
//! # Examples
//!
//! ```
//! use algorand_crypto::Keypair;
//! use algorand_sortition::{select, verify, Role, SortitionParams};
//!
//! let keypair = Keypair::from_seed([1u8; 32]);
//! let seed = [9u8; 32];
//! let params = SortitionParams { tau: 20.0, total_weight: 100 };
//! let role = Role::Committee { round: 5, step: 2 };
//!
//! // The user holds 40 of the 100 currency units, so with τ = 20 an
//! // expected 8 of their sub-users are selected.
//! if let Some(sel) = select(&keypair, &seed, role, &params, 40) {
//!     let j = verify(&keypair.pk, &sel.proof, &seed, role, &params, 40).unwrap();
//!     assert_eq!(j, sel.j);
//! }
//! ```

pub mod binomial;
pub mod committee;

use algorand_crypto::vrf::{self, VrfOutput, VrfProof};
use algorand_crypto::{CryptoError, Keypair, PublicKey};
use binomial::BinomialPmfIter;

/// The role a user may be selected for (§5.1).
///
/// Distinct roles produce distinct VRF inputs, so the same seed selects
/// independent sets for block proposal and for each BA⋆ committee step.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Role {
    /// Selected to propose a block in `round` (§6).
    BlockProposer {
        /// The Algorand round.
        round: u64,
    },
    /// Selected to the BA⋆ committee for (`round`, `step`) (§7).
    Committee {
        /// The Algorand round.
        round: u64,
        /// The BA⋆ step number (the final step uses a reserved code).
        step: u32,
    },
    /// Selected to propose a fork during recovery (§8.2).
    ForkProposer {
        /// The recovery epoch (derived from loosely synchronized clocks).
        epoch: u64,
        /// Retry counter: recovery re-runs sortition with a re-hashed seed
        /// until consensus is achieved.
        attempt: u32,
    },
}

impl Role {
    /// Canonical byte encoding, concatenated with the seed as the VRF input.
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        match self {
            Role::BlockProposer { round } => {
                out[0] = 1;
                out[4..12].copy_from_slice(&round.to_le_bytes());
            }
            Role::Committee { round, step } => {
                out[0] = 2;
                out[4..12].copy_from_slice(&round.to_le_bytes());
                out[12..16].copy_from_slice(&step.to_le_bytes());
            }
            Role::ForkProposer { epoch, attempt } => {
                out[0] = 3;
                out[4..12].copy_from_slice(&epoch.to_le_bytes());
                out[12..16].copy_from_slice(&attempt.to_le_bytes());
            }
        }
        out
    }
}

/// Parameters shared by selection and verification.
#[derive(Clone, Copy, Debug)]
pub struct SortitionParams {
    /// Expected number of selected sub-users for this role (τ).
    pub tau: f64,
    /// Total currency units in the system (W).
    pub total_weight: u64,
}

impl SortitionParams {
    /// The per-sub-user selection probability p = τ/W.
    pub fn p(&self) -> f64 {
        if self.total_weight == 0 {
            0.0
        } else {
            (self.tau / self.total_weight as f64).clamp(0.0, 1.0)
        }
    }
}

/// The result of a successful sortition: proof of selection plus the count.
#[derive(Clone, Debug)]
pub struct Selection {
    /// The VRF output (`hash` in Algorithm 1); also the source of
    /// block-proposal priorities and the common coin.
    pub vrf_output: VrfOutput,
    /// The VRF proof (π), gossiped so others can verify the selection.
    pub proof: VrfProof,
    /// How many of the user's sub-users were selected (j > 0).
    pub j: u64,
}

/// Builds the VRF input `seed || role`.
fn vrf_alpha(seed: &[u8; 32], role: Role) -> [u8; 48] {
    let mut alpha = [0u8; 48];
    alpha[..32].copy_from_slice(seed);
    alpha[32..].copy_from_slice(&role.to_bytes());
    alpha
}

/// Maps a VRF output to the number of selected sub-users (Algorithm 1's
/// interval search).
///
/// Divides [0,1) into consecutive intervals `I_j` of the binomial CDF for
/// `Binomial(w, p)` and returns the `j` whose interval contains
/// `hash / 2^hashlen`.
pub fn sub_users_selected(output: &VrfOutput, w: u64, p: f64) -> u64 {
    let fraction = output.as_unit_fraction();
    let mut cumulative = 0.0f64;
    for (j, pmf) in BinomialPmfIter::new(w, p).enumerate() {
        cumulative += pmf;
        if fraction < cumulative {
            return j as u64;
        }
    }
    // Floating-point shortfall at the very top of the CDF: the hash landed
    // above the accumulated sum (≈1); all w sub-users are selected.
    w
}

/// Runs cryptographic sortition (Algorithm 1).
///
/// Returns `None` when zero sub-users are selected — the common case for
/// any individual user, since only an expected τ out of W sub-users win.
pub fn select(
    keypair: &Keypair,
    seed: &[u8; 32],
    role: Role,
    params: &SortitionParams,
    weight: u64,
) -> Option<Selection> {
    let alpha = vrf_alpha(seed, role);
    let (vrf_output, proof) = vrf::prove(keypair, &alpha);
    let j = sub_users_selected(&vrf_output, weight, params.p());
    if j == 0 {
        None
    } else {
        Some(Selection {
            vrf_output,
            proof,
            j,
        })
    }
}

/// Verifies a sortition proof (Algorithm 2).
///
/// Returns the number of selected sub-users, or zero if the proof is valid
/// but the user was simply not selected.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidProof`] when the VRF proof itself does
/// not verify — such messages must be discarded, not counted as zero votes,
/// so callers can distinguish "not selected" from "forged".
pub fn verify(
    pk: &PublicKey,
    proof: &VrfProof,
    seed: &[u8; 32],
    role: Role,
    params: &SortitionParams,
    weight: u64,
) -> Result<u64, CryptoError> {
    let alpha = vrf_alpha(seed, role);
    let output = vrf::verify(pk, &alpha, proof)?;
    Ok(sub_users_selected(&output, weight, params.p()))
}

/// Recomputes the VRF output certified by a sortition proof.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidProof`] when the proof does not verify.
pub fn verified_output(
    pk: &PublicKey,
    proof: &VrfProof,
    seed: &[u8; 32],
    role: Role,
) -> Result<VrfOutput, CryptoError> {
    let alpha = vrf_alpha(seed, role);
    vrf::verify(pk, &alpha, proof)
}

#[cfg(test)]
mod tests {
    use super::*;
    use algorand_crypto::vrf::VrfOutput;

    fn kp(seed: u8) -> Keypair {
        Keypair::from_seed([seed; 32])
    }

    const SEED: [u8; 32] = [42u8; 32];

    #[test]
    fn role_encodings_are_distinct() {
        let roles = [
            Role::BlockProposer { round: 1 },
            Role::BlockProposer { round: 2 },
            Role::Committee { round: 1, step: 1 },
            Role::Committee { round: 1, step: 2 },
            Role::Committee { round: 2, step: 1 },
            Role::ForkProposer {
                epoch: 1,
                attempt: 0,
            },
            Role::ForkProposer {
                epoch: 1,
                attempt: 1,
            },
        ];
        for (i, a) in roles.iter().enumerate() {
            for (j, b) in roles.iter().enumerate() {
                if i != j {
                    assert_ne!(a.to_bytes(), b.to_bytes(), "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn select_verify_roundtrip() {
        let keypair = kp(1);
        let params = SortitionParams {
            tau: 500.0,
            total_weight: 1000,
        };
        let role = Role::Committee { round: 3, step: 1 };
        // Weight 500 of 1000 with τ = 500 selects ~250 sub-users; the
        // probability of selecting zero is astronomically small.
        let sel = select(&keypair, &SEED, role, &params, 500).expect("selected");
        let j = verify(&keypair.pk, &sel.proof, &SEED, role, &params, 500).unwrap();
        assert_eq!(j, sel.j);
        assert!(sel.j > 0);
    }

    #[test]
    fn zero_weight_never_selected() {
        let keypair = kp(2);
        let params = SortitionParams {
            tau: 100.0,
            total_weight: 100,
        };
        for round in 0..20 {
            let role = Role::BlockProposer { round };
            assert!(select(&keypair, &SEED, role, &params, 0).is_none());
        }
    }

    #[test]
    fn verify_rejects_proof_for_wrong_role() {
        let keypair = kp(3);
        let params = SortitionParams {
            tau: 500.0,
            total_weight: 1000,
        };
        let role_a = Role::Committee { round: 1, step: 1 };
        let role_b = Role::Committee { round: 1, step: 2 };
        let sel = select(&keypair, &SEED, role_a, &params, 500).expect("selected");
        assert!(verify(&keypair.pk, &sel.proof, &SEED, role_b, &params, 500).is_err());
    }

    #[test]
    fn verify_rejects_proof_for_wrong_seed() {
        let keypair = kp(4);
        let params = SortitionParams {
            tau: 500.0,
            total_weight: 1000,
        };
        let role = Role::Committee { round: 1, step: 1 };
        let sel = select(&keypair, &SEED, role, &params, 500).expect("selected");
        let other_seed = [43u8; 32];
        assert!(verify(&keypair.pk, &sel.proof, &other_seed, role, &params, 500).is_err());
    }

    #[test]
    fn selection_count_tracks_weight_proportionally() {
        // Sum selected sub-users across many users and rounds; the empirical
        // mean must be near τ and proportional to weight.
        let params = SortitionParams {
            tau: 50.0,
            total_weight: 1000,
        };
        let users: Vec<(Keypair, u64)> = (0..10u8)
            .map(|i| (kp(i + 10), if i < 5 { 150 } else { 50 }))
            .collect();
        let mut heavy = 0u64;
        let mut light = 0u64;
        for round in 0..40u64 {
            let role = Role::Committee { round, step: 1 };
            for (i, (keypair, w)) in users.iter().enumerate() {
                if let Some(sel) = select(keypair, &SEED, role, &params, *w) {
                    if i < 5 {
                        heavy += sel.j;
                    } else {
                        light += sel.j;
                    }
                }
            }
        }
        // Expected per round: heavy 5·150/1000·50 = 37.5, light 12.5; over
        // 40 rounds: 1500 vs 500. Allow wide tolerance.
        assert!(heavy > light * 2, "heavy={heavy} light={light}");
        let total = heavy + light;
        let expected = 40.0 * params.tau;
        assert!(
            (total as f64) > 0.7 * expected && (total as f64) < 1.3 * expected,
            "total={total} expected={expected}"
        );
    }

    #[test]
    fn sub_user_mapping_interval_boundaries() {
        // fraction < pmf(0) ⇒ j = 0; fraction just above ⇒ j ≥ 1.
        let w = 10u64;
        let p = 0.3;
        let pmf0 = binomial::binomial_pmf(0, w, p);
        let below = VrfOutput({
            let mut b = [0u8; 32];
            let x = ((pmf0 * 0.999) * (1u64 << 53) as f64) as u64;
            b[..8].copy_from_slice(&(x << 11).to_be_bytes());
            b
        });
        assert_eq!(sub_users_selected(&below, w, p), 0);
        let above = VrfOutput({
            let mut b = [0u8; 32];
            let x = ((pmf0 * 1.001) * (1u64 << 53) as f64) as u64;
            b[..8].copy_from_slice(&(x << 11).to_be_bytes());
            b
        });
        assert_eq!(sub_users_selected(&above, w, p), 1);
    }

    #[test]
    fn sub_user_mapping_saturates_at_weight() {
        // A fraction of ~1.0 maps to w, never beyond.
        let top = VrfOutput([0xff; 32]);
        assert_eq!(sub_users_selected(&top, 5, 0.5), 5);
    }

    #[test]
    fn whale_can_be_selected_multiple_times() {
        // A user holding most of the money is chosen as several sub-users
        // (§5.1's j parameter).
        let keypair = kp(30);
        let params = SortitionParams {
            tau: 20.0,
            total_weight: 100,
        };
        let mut saw_multi = false;
        for round in 0..30 {
            let role = Role::Committee { round, step: 1 };
            if let Some(sel) = select(&keypair, &SEED, role, &params, 90) {
                if sel.j > 1 {
                    saw_multi = true;
                }
            }
        }
        assert!(
            saw_multi,
            "a 90% holder should often win multiple sub-users"
        );
    }

    #[test]
    fn sybil_splitting_gains_nothing_on_average() {
        // One 400-unit user vs the same 400 units split across 8 Sybils:
        // the mean number of selected sub-users must match (§5.1).
        let params = SortitionParams {
            tau: 40.0,
            total_weight: 1000,
        };
        let whole = kp(40);
        let sybils: Vec<Keypair> = (0..8u8).map(|i| kp(50 + i)).collect();
        let mut whole_total = 0u64;
        let mut sybil_total = 0u64;
        let rounds = 60u64;
        for round in 0..rounds {
            let role = Role::Committee { round, step: 2 };
            if let Some(sel) = select(&whole, &SEED, role, &params, 400) {
                whole_total += sel.j;
            }
            for s in &sybils {
                if let Some(sel) = select(s, &SEED, role, &params, 50) {
                    sybil_total += sel.j;
                }
            }
        }
        // Both have expectation 40·(400/1000) = 16/round → 960 over 60
        // rounds; σ ≈ √960 ≈ 31. Allow ±5σ-ish.
        let expected = 16.0 * rounds as f64;
        for (name, total) in [("whole", whole_total), ("sybil", sybil_total)] {
            assert!(
                (total as f64 - expected).abs() < 160.0,
                "{name} total={total} expected={expected}"
            );
        }
    }
}
