//! The benchmark harness: regenerates every table and figure of §10.
//!
//! Each `fig*`/`tput*`/`costs`/`timeout*` binary in `src/bin/` reproduces
//! one experiment from the paper's evaluation; this library holds the
//! shared machinery (experiment runners, table printing, paper reference
//! values). Absolute numbers differ from the paper — our substrate is a
//! discrete-event simulator, not 1,000 EC2 VMs — but each binary prints
//! the paper's reference values next to the measured ones so the *shape*
//! (who wins, scaling trends, crossovers) can be compared directly.
//!
//! Run everything with:
//!
//! ```text
//! for b in fig3_committee_size fig4_params fig5_latency_users \
//!          fig6_latency_largescale fig7_blocksize fig8_malicious \
//!          tput_throughput costs timeout_validation ba_steps; do
//!     cargo run --release -p algorand-bench --bin $b
//! done
//! ```

pub mod baseline;
pub mod timing;

use algorand_sim::{Percentiles, RoundStats, SimConfig, Simulation};

/// Virtual-time cap for a single simulated experiment.
pub const T_CAP: u64 = 60 * 60 * 1_000_000;

/// Prints a section header in a uniform style.
pub fn header(title: &str, paper_ref: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("  paper reference: {paper_ref}");
    println!("================================================================");
}

/// Formats a five-number summary as `min/p25/median/p75/max` seconds.
pub fn fmt_percentiles(p: &Percentiles) -> String {
    format!(
        "{:6.2} {:6.2} {:6.2} {:6.2} {:6.2}",
        p.min, p.p25, p.median, p.p75, p.max
    )
}

/// Runs one simulation and returns per-round aggregated stats.
///
/// Rounds 1..=`rounds` are measured; the simulation is capped at
/// [`T_CAP`] virtual time.
pub fn run_experiment(cfg: SimConfig, rounds: u64) -> (Simulation, Vec<RoundStats>) {
    let mut sim = Simulation::new(cfg);
    sim.run_rounds(rounds, T_CAP);
    let stats: Vec<RoundStats> = (1..=rounds).filter_map(|r| sim.round_stats(r)).collect();
    (sim, stats)
}

/// Means of the per-round medians: one scalar per configuration, as the
/// figures' x-axis sweeps need.
pub fn mean_median_completion(stats: &[RoundStats]) -> f64 {
    if stats.is_empty() {
        return f64::NAN;
    }
    stats.iter().map(|s| s.completion.median).sum::<f64>() / stats.len() as f64
}

/// Bitcoin's throughput baseline used by §10.2: a 1 MB block every 10
/// minutes = 6 MB of transactions per hour.
pub const BITCOIN_MB_PER_HOUR: f64 = 6.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_handles_empty() {
        assert!(mean_median_completion(&[]).is_nan());
    }

    #[test]
    fn percentile_formatting_is_stable() {
        let p = Percentiles {
            min: 1.0,
            p25: 2.0,
            median: 3.0,
            p75: 4.0,
            p99: 4.9,
            max: 5.0,
        };
        assert_eq!(fmt_percentiles(&p).split_whitespace().count(), 5);
    }
}
