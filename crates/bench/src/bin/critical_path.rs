//! Per-round critical-path profiler over the causal trace.
//!
//! Runs the traced 50-user payment workload, exports the trace as JSONL,
//! and reconstructs — from the JSONL alone, with no access to simulator
//! state — the gating chain of every round: certificate → final-count
//! step → gating vote's verify → gossip hops back to the voter → the
//! voter's previous phase → … → the proposal span that seeded the round.
//! Each chain edge is attributed to one of four categories (proposal,
//! gossip, verify, ba_step) and the per-round and aggregate tables show
//! where finalization latency actually goes.
//!
//! `--check` is the CI gate: the same `(seed, schedule)` must render a
//! byte-identical report twice, every chain must be contiguous in time,
//! and for every *finalized* round the chain must account for ≥ 95% of
//! the round's measured finalization latency.
//!
//! `--trace FILE` switches to **merged cluster mode**: instead of
//! running the simulator, the profiler reads a merged multi-process
//! trace produced by `trace_collect` (per-node clock offsets and skew
//! bounds in the header, sender/receiver hop halves already fused) and
//! renders per-round chains that cross process boundaries, each gossip
//! hop attributed with frame kind, sender address, wire bytes, and
//! queue depth at send. With `--check` the gate demands: byte-identical
//! rendering across reruns, contiguous chains, ≥ 90% coverage of every
//! finalized round's latency (real clocks leave alignment residue the
//! simulator does not), and at least one chain crossing processes.

use algorand_bench::T_CAP;
use algorand_obs::merge::{parse_merged, render_report};
use algorand_obs::{critical_paths, parse_jsonl, CriticalPath, EdgeKind, NO_NODE};
use algorand_sim::{SimConfig, Simulation};
use std::fmt::Write as _;
use std::process::ExitCode;

/// Fraction of measured finalization latency the chain must explain for
/// every finalized round (the acceptance bar for the causal walk).
const MIN_COVERAGE: f64 = 0.95;

/// The merged-cluster bar: per-node clock alignment is exact only at
/// the anchor instants, so cross-process chains may carry skew-bound
/// residue the single-clock simulator never sees.
const MIN_COVERAGE_MERGED: f64 = 0.90;

/// Edges printed per round before the listing is elided (the
/// attribution sums always cover the full chain).
const MAX_EDGES_SHOWN: usize = 24;

/// The same 50-user payment workload as `trace_report`, always traced —
/// this report is meaningless without causal ids.
fn workload_cfg() -> SimConfig {
    let mut cfg = SimConfig::new(50);
    cfg.stake_per_user = 50;
    cfg.tx_rate = 25.0;
    cfg.tx_total = 200;
    cfg.seed = 23;
    cfg.trace = true;
    cfg
}

fn run_workload() -> Simulation {
    let mut sim = Simulation::new(workload_cfg());
    sim.run_rounds(8, T_CAP);
    sim
}

fn secs(us: u64) -> f64 {
    us as f64 / 1e6
}

/// Render the full report from exported JSONL. Pure function of the
/// trace bytes, so `--check` can demand byte-identical output.
fn render(jsonl: &str) -> Result<String, String> {
    let trace = parse_jsonl(jsonl)?;
    let paths = critical_paths(&trace.events);
    let mut out = String::new();
    let w = &mut out;

    let _ = writeln!(
        w,
        "== critical-path profiler: payment-50 seed {} ==",
        trace.seed
    );
    let _ = writeln!(
        w,
        "trace: {} events, {} dropped",
        trace.events.len(),
        trace.dropped
    );
    let finals = paths.iter().filter(|p| p.final_consensus).count();
    let _ = writeln!(
        w,
        "rounds: {} traced ({} final, {} tentative)",
        paths.len(),
        finals,
        paths.len() - finals
    );
    let _ = writeln!(w);

    for p in &paths {
        render_round(w, p);
    }
    render_attribution(w, &paths);
    Ok(out)
}

fn render_round(w: &mut String, p: &CriticalPath) {
    let _ =
        writeln!(
        w,
        "round {:>2}  finalizer n{:<3} {}  latency {:>7.3}s  chain {:>2} edges  coverage {:>5.1}%",
        p.round,
        p.finalizer,
        if p.final_consensus { "final    " } else { "tentative" },
        secs(p.latency()),
        p.edges.len(),
        p.coverage() * 100.0
    );
    let shown = p.edges.len().min(MAX_EDGES_SHOWN);
    for e in &p.edges[..shown] {
        let hop = if e.from_node == e.to_node {
            format!("n{}", e.to_node)
        } else {
            format!("n{}->n{}", e.from_node, e.to_node)
        };
        let _ = writeln!(
            w,
            "    {:>8.3}s  +{:>7.3}s  {:<8} {:<12} {}",
            secs(e.start),
            secs(e.duration()),
            e.kind.as_str(),
            e.label,
            hop
        );
    }
    if p.edges.len() > shown {
        let _ = writeln!(w, "    ... {} more edges", p.edges.len() - shown);
    }
    let _ = writeln!(w);
}

fn render_attribution(w: &mut String, paths: &[CriticalPath]) {
    let _ = writeln!(w, "latency attribution (seconds on the critical path):");
    let _ = writeln!(
        w,
        "  {:>5}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}",
        "round", "latency", "proposal", "gossip", "verify", "ba_step", "coverage"
    );
    let mut tot = [0u64; 4];
    let mut tot_latency = 0u64;
    for p in paths {
        let attr = p.attribution();
        for (slot, (_, us)) in tot.iter_mut().zip(attr.iter()) {
            *slot += us;
        }
        tot_latency += p.latency();
        let _ = writeln!(
            w,
            "  {:>5}  {:>7.3}s  {:>7.3}s  {:>7.3}s  {:>7.3}s  {:>7.3}s  {:>7.1}%",
            p.round,
            secs(p.latency()),
            secs(attr[0].1),
            secs(attr[1].1),
            secs(attr[2].1),
            secs(attr[3].1),
            p.coverage() * 100.0
        );
    }
    let attributed: u64 = tot.iter().sum();
    let _ = writeln!(
        w,
        "  {:>5}  {:>7.3}s  {:>7.3}s  {:>7.3}s  {:>7.3}s  {:>7.3}s  {:>7.1}%",
        "total",
        secs(tot_latency),
        secs(tot[0]),
        secs(tot[1]),
        secs(tot[2]),
        secs(tot[3]),
        if tot_latency == 0 {
            100.0
        } else {
            attributed as f64 / tot_latency as f64 * 100.0
        }
    );
    if attributed > 0 {
        let share = |us: u64| us as f64 / attributed as f64 * 100.0;
        let _ = writeln!(
            w,
            "  share of attributed time: proposal {:.1}%  gossip {:.1}%  verify {:.1}%  ba_step {:.1}%",
            share(tot[0]),
            share(tot[1]),
            share(tot[2]),
            share(tot[3])
        );
    }
}

/// Structural checks on the reconstructed chains: contiguity (each edge
/// starts where the previous one ended), origin at a proposal-phase
/// edge, and the coverage bar for finalized rounds.
fn check_paths(paths: &[CriticalPath], rounds_expected: u64, min_coverage: f64) -> Vec<String> {
    let mut problems = Vec::new();
    if (paths.len() as u64) < rounds_expected {
        problems.push(format!(
            "only {} of {} rounds produced a critical path",
            paths.len(),
            rounds_expected
        ));
    }
    for p in paths {
        if p.edges.is_empty() {
            problems.push(format!("round {}: empty chain", p.round));
            continue;
        }
        for pair in p.edges.windows(2) {
            if pair[1].start != pair[0].end {
                problems.push(format!(
                    "round {}: chain not contiguous at t={}us ({} -> {})",
                    p.round, pair[0].end, pair[0].label, pair[1].label
                ));
                break;
            }
        }
        // Chains may begin with the block body's gossip hops (the walk
        // descends past the proposal span to the proposer), but every
        // chain must pass through the proposal phase on its way to the
        // certificate.
        if !p.edges.iter().any(|e| e.kind == EdgeKind::Proposal) {
            problems.push(format!(
                "round {}: chain never passes through the proposal phase",
                p.round
            ));
        }
        if p.final_consensus && p.coverage() < min_coverage {
            problems.push(format!(
                "round {}: coverage {:.1}% below the {:.0}% bar",
                p.round,
                p.coverage() * 100.0,
                min_coverage * 100.0
            ));
        }
    }
    problems
}

/// Merged cluster mode: render (and optionally gate) a multi-process
/// trace collected by `trace_collect`.
fn run_merged(path: &str, check: bool) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            println!("critical_path: read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let merged = match parse_merged(&text) {
        Ok(m) => m,
        Err(e) => {
            println!("critical_path: bad merged trace {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = render_report(&merged);
    if !check {
        print!("{report}");
        return ExitCode::SUCCESS;
    }

    let mut ok = true;
    if merged.dropped > 0 {
        println!(
            "merged critical-path check: FAILED ({} events dropped at record time)",
            merged.dropped
        );
        ok = false;
    }
    // Pure-function gate: rendering the same artifact again must be
    // byte-identical (trace_collect already asserted the same for the
    // merge itself).
    if render_report(&parse_merged(&text).expect("parsed once already")) != report {
        println!("merged critical-path check: FAILED (re-rendering the artifact differed)");
        ok = false;
    } else {
        println!(
            "merged critical-path check: identical report across reruns ({} bytes)",
            report.len()
        );
    }
    let paths = critical_paths(&merged.events);
    let problems = check_paths(&paths, 1, MIN_COVERAGE_MERGED);
    for p in &problems {
        println!("merged critical-path check: FAILED ({p})");
    }
    ok &= problems.is_empty();
    let cross = paths
        .iter()
        .filter(|p| {
            let nodes: std::collections::BTreeSet<u32> = p
                .edges
                .iter()
                .flat_map(|e| [e.from_node, e.to_node])
                .filter(|n| *n != NO_NODE)
                .collect();
            nodes.len() > 1
        })
        .count();
    if cross == 0 {
        println!("merged critical-path check: FAILED (no chain crosses a process boundary)");
        ok = false;
    }
    if ok {
        let worst = paths
            .iter()
            .filter(|p| p.final_consensus)
            .map(|p| p.coverage())
            .fold(f64::INFINITY, f64::min);
        println!(
            "merged critical-path check: {} rounds from {} processes, {} cross-process chains, \
             worst finalized coverage {:.1}%",
            paths.len(),
            merged.nodes.len(),
            cross,
            worst * 100.0
        );
        println!("merged critical-path check: OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn check() -> ExitCode {
    let a = run_workload();
    let b = run_workload();
    let jsonl_a = a.export_trace("payment-50");
    let jsonl_b = b.export_trace("payment-50");
    let mut ok = true;
    if a.trace_dropped() > 0 {
        println!(
            "critical-path check: FAILED (trace truncated: {} events dropped)",
            a.trace_dropped()
        );
        ok = false;
    }
    let report_a = match render(&jsonl_a) {
        Ok(r) => r,
        Err(e) => {
            println!("critical-path check: FAILED (render a: {e})");
            return ExitCode::FAILURE;
        }
    };
    let report_b = match render(&jsonl_b) {
        Ok(r) => r,
        Err(e) => {
            println!("critical-path check: FAILED (render b: {e})");
            return ExitCode::FAILURE;
        }
    };
    if report_a != report_b {
        println!("critical-path check: FAILED (same seed+schedule rendered different reports)");
        ok = false;
    } else {
        println!(
            "critical-path check: identical report across reruns ({} bytes)",
            report_a.len()
        );
    }
    let trace = parse_jsonl(&jsonl_a).expect("exporter emits parseable JSONL");
    let paths = critical_paths(&trace.events);
    let problems = check_paths(&paths, 8, MIN_COVERAGE);
    if problems.is_empty() {
        let worst = paths
            .iter()
            .filter(|p| p.final_consensus)
            .map(|p| p.coverage())
            .fold(f64::INFINITY, f64::min);
        println!(
            "critical-path check: {} rounds, all chains contiguous, worst finalized coverage {:.1}%",
            paths.len(),
            worst * 100.0
        );
    } else {
        for p in &problems {
            println!("critical-path check: FAILED ({p})");
        }
        ok = false;
    }
    if ok {
        println!("critical-path check: OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let check_flag = args.iter().any(|a| a == "--check");
    if let Some(i) = args.iter().position(|a| a == "--trace") {
        let Some(path) = args.get(i + 1) else {
            println!("critical_path: --trace needs a file path");
            return ExitCode::FAILURE;
        };
        return run_merged(path, check_flag);
    }
    if check_flag {
        return check();
    }
    let sim = run_workload();
    let jsonl = sim.export_trace("payment-50");
    match render(&jsonl) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            println!("critical_path: bad trace: {e}");
            ExitCode::FAILURE
        }
    }
}
