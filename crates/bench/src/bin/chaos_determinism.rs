//! Chaos determinism check + recovery-time measurement.
//!
//! Runs each scripted chaos scenario **twice** with the same `(seed,
//! schedule)` pair and demands byte-identical final-chain digests — the
//! replayability property the chaos harness is built on (faults are
//! data, all randomness flows from seeded RNGs). Alongside, it measures
//! the observed recovery time: virtual seconds from the last fault
//! clearing until every honest node is back on one common chain that
//! has grown at least two rounds past the fault window.
//!
//! Exit code is non-zero on any determinism mismatch or missed
//! recovery, so CI can gate on it. Output feeds `results/chaos.txt`.

use algorand_sim::{FaultSchedule, Micros, SimConfig, Simulation};

const SEC: Micros = 1_000_000;

struct Scenario {
    name: &'static str,
    n: usize,
    n_malicious: usize,
    seed: u64,
    schedule: fn(usize) -> FaultSchedule,
    /// Give up on recovery this long after the last fault clears.
    horizon: Micros,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "partition/heal (sym)",
            n: 16,
            n_malicious: 0,
            seed: 11,
            schedule: |n| FaultSchedule::new().bipartition(n, n / 2, 30 * SEC, 90 * SEC),
            horizon: 300 * SEC,
        },
        Scenario {
            name: "partition (asym)",
            n: 12,
            n_malicious: 0,
            seed: 12,
            schedule: |n| FaultSchedule::new().asymmetric_partition(n, 10, 30 * SEC, 90 * SEC),
            horizon: 240 * SEC,
        },
        Scenario {
            name: "30% loss window",
            n: 12,
            n_malicious: 0,
            seed: 13,
            schedule: |_| FaultSchedule::new().loss_window(0.30, 20 * SEC, 80 * SEC),
            horizon: 180 * SEC,
        },
        Scenario {
            name: "crash majority 9/16",
            n: 16,
            n_malicious: 0,
            seed: 14,
            schedule: |_| {
                let mut s = FaultSchedule::new();
                for node in 0..9 {
                    s = s.crash_restart(node, 40 * SEC, 100 * SEC);
                }
                s
            },
            horizon: 360 * SEC,
        },
        Scenario {
            name: "partition + equivocators",
            n: 20,
            n_malicious: 4,
            seed: 15,
            schedule: |n| FaultSchedule::new().bipartition(n, n / 2, 30 * SEC, 90 * SEC),
            horizon: 300 * SEC,
        },
        Scenario {
            name: "rolling restarts 6/12",
            n: 12,
            n_malicious: 0,
            seed: 16,
            schedule: |_| {
                let mut s = FaultSchedule::new();
                for node in 0..6 {
                    let down = (20 + 15 * node as u64) * SEC;
                    s = s.crash_restart(node, down, down + 30 * SEC);
                }
                s
            },
            horizon: 240 * SEC,
        },
    ]
}

fn min_tip(sim: &Simulation, n_honest: usize) -> u64 {
    (0..n_honest)
        .map(|i| sim.honest_node(i).chain().tip().round)
        .min()
        .unwrap()
}

fn converged(sim: &Simulation, n_honest: usize, target: u64) -> bool {
    let tip = min_tip(sim, n_honest);
    if tip < target {
        return false;
    }
    for round in 1..=tip {
        let h0 = sim.honest_node(0).chain().block_at(round).unwrap().hash();
        for i in 1..n_honest {
            if sim.honest_node(i).chain().block_at(round).unwrap().hash() != h0 {
                return false;
            }
        }
    }
    true
}

/// One run: returns (digest, recovery seconds if converged, report line).
fn run_once(s: &Scenario) -> ([u8; 32], Option<f64>, String) {
    let mut cfg = SimConfig::new(s.n);
    cfg.n_malicious = s.n_malicious;
    cfg.seed = s.seed;
    let mut sim = Simulation::new(cfg);
    let schedule = (s.schedule)(s.n);
    let clear = schedule.last_event_at();
    sim.set_fault_schedule(schedule);
    sim.run_until(clear);
    let n_honest = s.n - s.n_malicious;
    let target = min_tip(&sim, n_honest) + 2;
    let mut recovery = None;
    let mut t = clear;
    while recovery.is_none() && t < clear + s.horizon {
        t += 5 * SEC;
        sim.run_until(t);
        if converged(&sim, n_honest, target) {
            recovery = Some((sim.now() - clear) as f64 / 1e6);
        }
    }
    let report = sim.fault_report();
    let line = format!(
        "restarts={} partitions={} dropped(filter/partition/loss)={}/{}/{} \
         escalations={} watchdog_catchups={} fork_recoveries={} catchups={}",
        report.restarts,
        report.partitions_activated,
        report.dropped_by_filter,
        report.dropped_by_partition,
        report.dropped_by_loss,
        report.timeout_escalations,
        report.watchdog_catchups,
        report.recoveries_completed,
        report.catchups_applied,
    );
    (sim.chain_digest(), recovery, line)
}

fn hex8(d: &[u8; 32]) -> String {
    d[..4].iter().map(|b| format!("{b:02x}")).collect()
}

fn main() {
    println!("chaos determinism + recovery times (virtual seconds after last fault clears)");
    println!();
    let mut failed = false;
    for s in scenarios() {
        let (digest_a, recovery_a, line) = run_once(&s);
        let (digest_b, recovery_b, _) = run_once(&s);
        let deterministic = digest_a == digest_b && recovery_a == recovery_b;
        let recovery = match recovery_a {
            Some(r) => format!("{r:>6.1} s"),
            None => "  MISS ".to_string(),
        };
        println!(
            "{:<26} n={:<3} recovery={} digest={} replay={}",
            s.name,
            s.n,
            recovery,
            hex8(&digest_a),
            if deterministic {
                "identical"
            } else {
                "DIVERGED"
            },
        );
        println!("  {line}");
        if !deterministic || recovery_a.is_none() {
            failed = true;
        }
    }
    println!();
    if failed {
        println!("FAIL: determinism mismatch or missed recovery");
        std::process::exit(1);
    }
    println!("OK: all scenarios recovered; every (seed, schedule) replay was identical");
}
