//! Figure 5: round latency as the number of users grows (paper: 5,000 to
//! 50,000 users, 1 MB blocks, ~12 s rounds, near-constant in user count).
//!
//! The simulated sweep is scaled down (see DESIGN.md §4): user counts in
//! the hundreds, committee sizes from `AlgorandParams::scaled`, and a
//! 64 KB block so the sweep completes in CI time. The property under test
//! is the *shape*: latency stays nearly flat as users grow, because
//! committee sizes — and hence message counts per user — are independent
//! of the population, and gossip depth grows only logarithmically.

use algorand_bench::baseline::{self, Baseline};
use algorand_bench::{fmt_percentiles, header, run_experiment};
use algorand_sim::SimConfig;
use std::time::Instant;

fn main() {
    let wall = Instant::now();
    header(
        "Figure 5 — round latency vs number of users",
        "5k→50k users at 1 MB blocks: ~12 s median, flat in user count",
    );
    let rounds = 3;
    let user_counts = [50usize, 100, 200, 400, 800];
    println!(
        "{:>7} {:>8}   {:>6} {:>6} {:>6} {:>6} {:>6}",
        "users", "rounds", "min", "p25", "median", "p75", "max"
    );
    let mut medians = Vec::new();
    let mut base = Baseline::new("fig5_latency_users");
    for &n in &user_counts {
        let mut cfg = SimConfig::new(n);
        cfg.payload_bytes = 64 * 1024;
        cfg.seed = 11;
        let (_sim, stats) = run_experiment(cfg, rounds);
        let measured = stats.len() as u64;
        // Average the five-number summaries over rounds.
        let avg = |f: fn(&algorand_sim::RoundStats) -> f64| {
            stats.iter().map(f).sum::<f64>() / stats.len().max(1) as f64
        };
        let p = algorand_sim::Percentiles {
            min: avg(|s| s.completion.min),
            p25: avg(|s| s.completion.p25),
            median: avg(|s| s.completion.median),
            p75: avg(|s| s.completion.p75),
            p99: avg(|s| s.completion.p99),
            max: avg(|s| s.completion.max),
        };
        println!("{:>7} {:>8}   {}", n, measured, fmt_percentiles(&p));
        base = base
            .metric(&format!("p50_latency_s_users_{n}"), p.median)
            .metric(&format!("p99_latency_s_users_{n}"), p.p99);
        medians.push(p.median);
    }
    println!();
    let first = medians.first().copied().unwrap_or(f64::NAN);
    let last = medians.last().copied().unwrap_or(f64::NAN);
    println!(
        "scaling check: median at {} users = {:.2}s, at {} users = {:.2}s ({}x users -> {:.2}x latency)",
        user_counts[0],
        first,
        user_counts[user_counts.len() - 1],
        last,
        user_counts[user_counts.len() - 1] / user_counts[0],
        last / first
    );
    println!("paper: latency nearly constant from 5k to 50k users");
    base.metric(baseline::P50_LATENCY_S, last)
        .metric("latency_ratio_16x_users", last / first)
        .metric(baseline::WALL_CLOCK_S, wall.elapsed().as_secs_f64())
        .write()
        .expect("write baseline");
}
