//! Ablation: priority messages and the block-discard rule (§6).
//!
//! Sortition selects τ_proposer = 26 expected proposers, each gossiping a
//! full block. The paper's mitigation: a small priority-and-proof message
//! propagates first, and "users discard messages about blocks that do not
//! have the highest priority seen by that user so far." This harness runs
//! the same workload with the discard rule on (paper behaviour) and off
//! (every block relayed everywhere) and compares bytes on the wire.

use algorand_bench::{header, run_experiment};
use algorand_sim::SimConfig;

fn run(relay_all: bool) -> (f64, f64) {
    let mut cfg = SimConfig::new(60);
    cfg.payload_bytes = 256 << 10;
    cfg.relay_all_blocks = relay_all;
    cfg.seed = 37;
    let rounds = 3;
    let (sim, stats) = run_experiment(cfg, rounds);
    let mb = sim.network().total_bytes_sent() as f64 / 1e6;
    let median = stats.iter().map(|s| s.completion.median).sum::<f64>() / stats.len().max(1) as f64;
    (mb, median)
}

fn main() {
    header(
        "Ablation — priority gossip & highest-priority block discard (§6)",
        "discarding non-best blocks avoids relaying ~tau_proposer full blocks per round",
    );
    println!("workload: 60 users, 256 KB blocks, 3 rounds");
    let (mb_discard, lat_discard) = run(false);
    println!(
        "  WITH discard rule (paper): {mb_discard:>8.1} MB gossiped, median round {lat_discard:.2} s"
    );
    let (mb_all, lat_all) = run(true);
    println!("  WITHOUT (relay all):       {mb_all:>8.1} MB gossiped, median round {lat_all:.2} s");
    println!();
    println!(
        "bandwidth saved by the rule: {:.1}x less block traffic",
        mb_all / mb_discard.max(0.001)
    );
}
