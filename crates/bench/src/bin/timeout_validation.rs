//! §10.5: do the timeout parameters hold on the measured system?
//!
//! The paper confirms that: BA⋆ steps finish well under λ_step; the spread
//! between 25th and 75th percentile completion times is under λ_stepvar;
//! blocks gossip within λ_block; priority messages propagate in ~1 s,
//! well under λ_priority.

use algorand_bench::{header, run_experiment};
use algorand_sim::SimConfig;

fn main() {
    header(
        "§10.5 — timeout parameter validation",
        "steps << lambda_step; p75-p25 < lambda_stepvar; blocks < lambda_block; priorities ~1 s",
    );
    let mut cfg = SimConfig::new(80);
    cfg.payload_bytes = 128 << 10;
    cfg.seed = 29;
    let params = cfg.params;
    let (_sim, stats) = run_experiment(cfg, 4);
    let sec = |us: u64| us as f64 / 1e6;

    let mut ok = true;
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>12}",
        "round", "ba step(s)", "spread(s)", "proposal(s)", "status"
    );
    for s in &stats {
        // BA⋆ without the final step spans reduction (2 steps) + binary
        // step 1 in the common case: 3 vote steps.
        let per_step = s.ba_median / 3.0;
        let spread = s.completion.p75 - s.completion.p25;
        let step_ok = per_step < sec(params.ba.lambda_step);
        let spread_ok = spread < sec(params.lambda_stepvar);
        let prop_ok = s.proposal_median < sec(params.proposal_wait() + params.ba.lambda_block);
        let all = step_ok && spread_ok && prop_ok;
        ok &= all;
        println!(
            "{:>6} {:>12.2} {:>12.2} {:>14.2} {:>12}",
            s.round,
            per_step,
            spread,
            s.proposal_median,
            if all { "within" } else { "EXCEEDED" }
        );
    }
    println!();
    println!(
        "parameters: lambda_step={}s lambda_stepvar={}s lambda_block={}s lambda_priority={}s",
        sec(params.ba.lambda_step),
        sec(params.lambda_stepvar),
        sec(params.ba.lambda_block),
        sec(params.lambda_priority)
    );
    println!(
        "verdict: {}",
        if ok {
            "all rounds within the configured timeouts (matches §10.5)"
        } else {
            "some timeouts exceeded — would need retuning at this scale"
        }
    );
}
