//! Schedule-space fuzzing campaign — CI gate and corpus generator.
//!
//! Runs a budgeted campaign of generated `(seed, schedule)` pairs
//! through the fuzz oracle (`algorand_sim::fuzz`). Three legs:
//!
//! 1. **honest leg** — the full budget against the honest build: every
//!    case must pass both oracles (zero monitor violations, zero
//!    liveness stalls);
//! 2. **determinism leg** (`--check`) — the campaign is rerun with the
//!    same master seed and the two reports must be byte-identical;
//! 3. **injected-bug leg** (`--check`) — the same generator is pointed
//!    at a build with a planted defect (catch-up responses dropped at
//!    ingest). The oracle must catch at least one failing schedule,
//!    and the shrinker must minimize the first failure to ≤ 8 fault
//!    events whose replay deterministically reproduces the verdict.
//!
//! Output feeds `results/fuzz.txt`. Exit code is non-zero on any
//! failing case, report mismatch, missed bug, or failed shrink, so CI
//! can gate on it.
//!
//! Usage: fuzz_campaign [--budget N] [--seed S] [--check] [--archive DIR]
//!
//! `--archive DIR` writes the shrunk injected-bug reproducer(s) into
//! DIR in the textual reproducer format (used once to seed the
//! `crates/sim/tests/corpus/` archive).

use algorand_sim::fuzz::{
    parse_case, run_campaign, run_case, serialize_case, shrink, CampaignConfig, VerdictClass,
};
use algorand_sim::InjectedBug;
use std::time::Instant;

/// Shrink budget (oracle replays) per failing case.
const SHRINK_ATTEMPTS: usize = 150;
/// The acceptance bar for minimized reproducers.
const MAX_REPRO_EVENTS: usize = 8;
/// Bug-leg budget: enough draws that the planted defect reliably meets
/// a crash or partition schedule that needs catch-up to recover.
const BUG_BUDGET: usize = 30;

fn main() {
    let mut budget = 1000usize;
    let mut seed = 42u64;
    let mut check = false;
    let mut archive: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--budget" => {
                budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--budget needs a number")
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number")
            }
            "--check" => check = true,
            "--archive" => archive = Some(args.next().expect("--archive needs a directory")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let mut failed = false;
    println!("schedule-space fuzzing campaign");
    println!();

    // Leg 1: honest build — every generated case must pass.
    let cfg = CampaignConfig {
        budget,
        master_seed: seed,
        bug: None,
    };
    let t0 = Instant::now();
    let honest = run_campaign(&cfg);
    let honest_secs = t0.elapsed().as_secs_f64();
    print!("{}", honest.report);
    println!(
        "honest leg: {} cases in {:.1} s ({:.0} ms/case)",
        honest.cases,
        honest_secs,
        1e3 * honest_secs / honest.cases.max(1) as f64
    );
    if honest.passes != honest.cases {
        println!(
            "FAIL: {} of {} honest cases tripped an oracle",
            honest.cases - honest.passes,
            honest.cases
        );
        failed = true;
    }
    println!();

    // Leg 2: byte-identical report across a rerun of the same campaign.
    if check {
        let again = run_campaign(&cfg);
        if again.report == honest.report {
            println!("determinism leg: rerun report byte-identical");
        } else {
            println!("FAIL: campaign rerun produced a different report");
            failed = true;
        }
        println!();
    }

    // Leg 3: a planted defect must be caught and shrunk.
    if check {
        let bug = InjectedBug::IgnoreCatchupResponses;
        let bug_cfg = CampaignConfig {
            budget: BUG_BUDGET,
            master_seed: seed,
            bug: Some(bug),
        };
        let buggy = run_campaign(&bug_cfg);
        println!(
            "injected-bug leg ({}): {} of {} cases failed",
            bug.as_str(),
            buggy.failures.len(),
            buggy.cases
        );
        match buggy.failures.first() {
            None => {
                println!("FAIL: planted defect went undetected");
                failed = true;
            }
            Some((case, class)) => {
                let outcome = shrink(case, SHRINK_ATTEMPTS);
                let events = outcome.minimized.schedule.len();
                println!(
                    "shrunk first failure: {} events -> {} ({} replays, verdict {})",
                    case.schedule.len(),
                    events,
                    outcome.attempts,
                    outcome.verdict
                );
                if outcome.verdict != *class {
                    println!("FAIL: shrink changed the verdict class");
                    failed = true;
                }
                if events > MAX_REPRO_EVENTS {
                    println!("FAIL: minimized reproducer still has {events} events (> {MAX_REPRO_EVENTS})");
                    failed = true;
                }
                // The reproducer must replay deterministically — twice
                // through the run, and once through a serialize/parse
                // roundtrip.
                let text = serialize_case(&outcome.minimized, outcome.verdict);
                let (reparsed, expected) = parse_case(&text).expect("reproducer reparses");
                let a = run_case(&outcome.minimized);
                let b = run_case(&reparsed);
                if a.class != expected || b.class != expected || a.sim_end != b.sim_end {
                    println!("FAIL: minimized reproducer did not replay deterministically");
                    failed = true;
                } else {
                    println!("reproducer replays deterministically (verdict {expected})");
                }
                if let Some(dir) = &archive {
                    let name = format!("{}/{}_{}.repro", dir, bug.as_str(), case.case_seed);
                    std::fs::create_dir_all(dir).expect("create archive dir");
                    std::fs::write(&name, &text).expect("write reproducer");
                    println!("archived {name}");
                }
            }
        }
        // A second planted defect: disabled timeout backoff. Its
        // detection is probabilistic over schedules (a desynchronized
        // network may still stumble into alignment), so this leg only
        // reports — the hard gate is the catch-up defect above.
        let nb_cfg = CampaignConfig {
            budget: BUG_BUDGET,
            master_seed: seed,
            bug: Some(InjectedBug::NoTimeoutBackoff),
        };
        let nb = run_campaign(&nb_cfg);
        println!(
            "injected-bug leg ({}): {} of {} cases failed",
            InjectedBug::NoTimeoutBackoff.as_str(),
            nb.failures.len(),
            nb.cases
        );
        println!();
    }

    let _ = VerdictClass::Pass; // re-exported type used by the corpus replayer
    if failed {
        println!("FAIL");
        std::process::exit(1);
    }
    println!(
        "OK: {budget} honest cases clean{}",
        if check {
            ", report deterministic, planted defect caught and shrunk"
        } else {
            ""
        }
    );
}
