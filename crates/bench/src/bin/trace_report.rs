//! Trace-driven reproduction of the paper's §10 latency breakdown.
//!
//! Runs the 50-user payment workload with tracing enabled, exports the
//! structured trace as JSONL, and rebuilds the evaluation's headline
//! figures *from the trace alone* — the same way the paper's authors
//! instrumented their EC2 deployment:
//!
//!   * Figure 5-style round-latency breakdown: block proposal vs BA⋆
//!     reduction vs BinaryBA⋆ vs the final step, with p50/p99 per stage,
//!   * per-BA⋆-step wall-clock summaries,
//!   * per-user bandwidth (Figure 8's resource axis),
//!   * verification and sortition activity,
//!   * and, for a scripted chaos run, a recovery timeline aligning
//!     FaultSchedule events with the nodes' catch-up/recovery spans.
//!
//! `--check` runs the determinism gate instead: the same `(seed,
//! schedule)` traced twice must export byte-identical JSONL and chain
//! digests, tracing itself must not change the digest of an untraced
//! run, and the parallel engine's budget-trimmed export must be
//! deterministic with exact `trimmed` accounting (deliberate trimming
//! is fine; silent truncation is not). Exit code is non-zero on any
//! mismatch, so CI gates on it.

use algorand_bench::baseline::{self, Baseline};
use algorand_bench::T_CAP;
use algorand_obs::{parse_jsonl, Percentiles, SpanKind, Trace, TraceEvent};
use algorand_sim::{DesConfig, FaultSchedule, Micros, ParallelSim, SimConfig, Simulation};
use std::collections::BTreeMap;
use std::process::ExitCode;

const SEC: Micros = 1_000_000;

/// The 50-user payment-workload configuration (mirrors `txpool_smoke`).
fn workload_cfg(trace: bool) -> SimConfig {
    let mut cfg = SimConfig::new(50);
    cfg.stake_per_user = 50;
    cfg.tx_rate = 25.0;
    cfg.tx_total = 200;
    cfg.seed = 23;
    cfg.trace = trace;
    cfg
}

/// A 16-user chaos scenario: a healed bipartition plus a crash/restart,
/// so the trace contains fault, catch-up and recovery spans to align.
fn chaos_cfg() -> (SimConfig, FaultSchedule) {
    let mut cfg = SimConfig::new(16);
    cfg.seed = 29;
    cfg.trace = true;
    let schedule = FaultSchedule::new()
        .bipartition(16, 8, 30 * SEC, 90 * SEC)
        .crash_restart(0, 40 * SEC, 100 * SEC);
    (cfg, schedule)
}

fn run_workload(trace: bool) -> Simulation {
    let mut sim = Simulation::new(workload_cfg(trace));
    sim.run_rounds(8, T_CAP);
    sim
}

/// A short run on the parallel engine under a deliberately tiny
/// per-node retention budget, so the export exercises the trimmed path.
fn run_trimmed() -> String {
    let mut cfg = SimConfig::new(12);
    cfg.seed = 31;
    cfg.trace = true;
    let mut sim = ParallelSim::new(DesConfig {
        sim: cfg,
        workers: 2,
        trace_node_budget: 32,
    });
    sim.run_until(45 * SEC);
    sim.export_trace("trimmed-check")
}

fn run_chaos() -> Simulation {
    let (cfg, schedule) = chaos_cfg();
    let mut sim = Simulation::new(cfg);
    sim.set_fault_schedule(schedule);
    // Run through the whole fault window (last restart at 100s) plus a
    // recovery margin, so the trace contains the catch-up spans.
    sim.run_until(160 * SEC);
    sim
}

/// Durations, in seconds, of every span matching `kind` (and `label`,
/// unless empty).
fn durations(trace: &Trace, kind: SpanKind, label: &str) -> Vec<f64> {
    trace
        .events
        .iter()
        .filter(|e| e.kind == kind && (label.is_empty() || e.label == label))
        .map(|e| e.duration() as f64 / 1e6)
        .collect()
}

fn fmt_line(name: &str, secs: &[f64]) -> String {
    if secs.is_empty() {
        return format!("  {name:<22} (no spans)");
    }
    let p = Percentiles::of(secs);
    format!(
        "  {name:<22} n={:<5} p50={:6.2}s p99={:6.2}s max={:6.2}s",
        secs.len(),
        p.median,
        p.p99,
        p.max
    )
}

/// The Figure-5-style stage breakdown, computed purely from the trace.
fn print_latency_breakdown(trace: &Trace) {
    println!("latency breakdown (per-node spans, all rounds):");
    println!(
        "{}",
        fmt_line("round total", &durations(trace, SpanKind::Round, ""))
    );
    println!(
        "{}",
        fmt_line("block proposal", &durations(trace, SpanKind::Proposal, ""))
    );
    for (name, label) in [
        ("BA* reduction step 1", "reduction1"),
        ("BA* reduction step 2", "reduction2"),
        ("BinaryBA* steps", "binary"),
        ("final count step", "final"),
    ] {
        println!(
            "{}",
            fmt_line(name, &durations(trace, SpanKind::BaStep, label))
        );
    }
    let rounds: Vec<&TraceEvent> = trace
        .events
        .iter()
        .filter(|e| e.kind == SpanKind::Round)
        .collect();
    let finals = rounds.iter().filter(|e| e.label == "final").count();
    println!(
        "  consensus kinds: {} final, {} tentative",
        finals,
        rounds.len() - finals
    );
}

/// Per-BA⋆-step wall-clock: BaStep spans grouped by phase, BinaryBA⋆
/// further split by its step number.
fn print_step_wallclock(trace: &Trace) {
    let mut by_step: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for e in &trace.events {
        if e.kind == SpanKind::BaStep {
            let key = if e.label == "binary" {
                format!("binary step {}", e.step)
            } else {
                e.label.to_string()
            };
            by_step
                .entry(key)
                .or_default()
                .push(e.duration() as f64 / 1e6);
        }
    }
    println!("per-step wall-clock (BA* phase -> span durations):");
    for (step, secs) in &by_step {
        println!("{}", fmt_line(step, secs));
    }
}

/// Per-user bandwidth, from the uplink/downlink summary events the
/// exporter appends (Figure 8's resource axis).
fn print_bandwidth(trace: &Trace) {
    let totals = |label: &str| -> Vec<f64> {
        trace
            .events
            .iter()
            .filter(|e| e.kind == SpanKind::GossipHop && e.label == label)
            .map(|e| e.value as f64 / 1e6)
            .collect()
    };
    let horizon = trace
        .events
        .iter()
        .filter(|e| e.label == "uplink_total")
        .map(|e| e.end)
        .max()
        .unwrap_or(0) as f64
        / 1e6;
    println!("per-user bandwidth over {horizon:.0}s of virtual time:");
    for (name, label) in [("uplink", "uplink_total"), ("downlink", "downlink_total")] {
        let mb = totals(label);
        if mb.is_empty() || horizon == 0.0 {
            println!("  {name:<9} (no summary events)");
            continue;
        }
        let p = Percentiles::of(&mb);
        println!(
            "  {name:<9} min={:6.2} MB  p50={:6.2} MB  max={:6.2} MB  (median {:5.0} kbit/s)",
            p.min,
            p.median,
            p.max,
            p.median * 8e3 / horizon
        );
    }
    // Network-wide per-kind byte split (the exporter's bytes_* summary
    // events): where the bandwidth actually goes.
    let kind_total: u64 = trace
        .events
        .iter()
        .filter(|e| e.label.starts_with("bytes_"))
        .map(|e| e.value)
        .sum();
    if kind_total > 0 {
        print!("  per-kind share:");
        for e in trace
            .events
            .iter()
            .filter(|e| e.label.starts_with("bytes_"))
        {
            print!(
                "  {}={:.1}%",
                e.label.trim_start_matches("bytes_"),
                e.value as f64 / kind_total as f64 * 100.0
            );
        }
        println!();
    }
    let hops = durations(trace, SpanKind::GossipHop, "block_body");
    println!("{}", fmt_line("block-body gossip hop", &hops));
}

/// Verification + sortition activity, grouped by label.
fn print_verify_sortition(trace: &Trace) {
    let mut verify: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    let mut sortition: BTreeMap<String, usize> = BTreeMap::new();
    for e in &trace.events {
        match e.kind {
            SpanKind::Verify => {
                let slot = verify.entry(e.label.to_string()).or_default();
                slot.0 += 1;
                slot.1 += e.ok as usize;
            }
            SpanKind::Sortition => *sortition.entry(e.label.to_string()).or_default() += 1,
            _ => {}
        }
    }
    println!("verification (per message kind, at the consuming nodes):");
    for (label, (n, ok)) in &verify {
        println!("  {label:<10} {n:>6} checked, {ok:>6} valid");
    }
    println!("sortition wins (proposer selections / committee memberships):");
    for (label, n) in &sortition {
        println!("  {label:<10} {n:>6}");
    }
}

/// The chaos run's recovery timeline: scripted faults interleaved with
/// the catch-up and §8.2 recovery spans they triggered.
fn print_recovery_timeline(trace: &Trace) {
    let mut lines: Vec<(Micros, String)> = Vec::new();
    for e in &trace.events {
        let who = if e.node == u32::MAX {
            "network".to_string()
        } else {
            format!("node {:>2}", e.node)
        };
        match e.kind {
            SpanKind::Fault if e.label == "recovery_enter" => lines.push((
                e.start,
                format!("{who} enters §8.2 recovery (attempt {})", e.step),
            )),
            SpanKind::Fault if e.label == "recovery_done" => {
                lines.push((e.start, format!("{who} completes fork recovery")))
            }
            SpanKind::Fault => lines.push((e.start, format!("{who} fault: {}", e.label))),
            SpanKind::Catchup if e.label == "apply" => lines.push((
                e.start,
                format!(
                    "{who} catch-up applied {} rounds (tip -> {})",
                    e.value, e.round
                ),
            )),
            _ => {}
        }
    }
    lines.sort();
    println!("recovery timeline (scripted faults vs observed recovery):");
    let shown = lines.len().min(40);
    for (t, text) in lines.iter().take(shown) {
        println!("  t={:7.2}s  {text}", *t as f64 / 1e6);
    }
    if lines.len() > shown {
        println!("  ... {} more events", lines.len() - shown);
    }
}

fn report() -> ExitCode {
    let wall = std::time::Instant::now();
    println!("== trace report: 50-user payment workload (seed 23) ==");
    let sim = run_workload(true);
    let jsonl = sim.export_trace("payment-50");
    let trace = parse_jsonl(&jsonl).expect("exporter emits valid JSONL");
    println!(
        "trace: seed={} schedule={} events={} dropped={}",
        trace.seed,
        trace.schedule,
        trace.events.len(),
        trace.dropped
    );
    if trace.dropped > 0 {
        println!(
            "WARNING: trace truncated ({} events dropped past the buffer cap); \
             per-span sections undercount",
            trace.dropped
        );
    }
    print_latency_breakdown(&trace);
    print_step_wallclock(&trace);
    print_bandwidth(&trace);
    print_verify_sortition(&trace);
    sim.publish_metrics();
    println!(
        "registry ({} metrics), selected entries:",
        sim.registry().len()
    );
    for line in sim.registry().render().lines() {
        if line.starts_with("round.")
            || line.starts_with("gossip.")
            || line.starts_with("txpool.")
            || line.starts_with("workload.")
        {
            println!("  {line}");
        }
    }

    println!();
    println!("== trace report: 16-user chaos run (partition + crash, seed 29) ==");
    let chaos = run_chaos();
    let chaos_jsonl = chaos.export_trace("chaos-16");
    let chaos_trace = parse_jsonl(&chaos_jsonl).expect("exporter emits valid JSONL");
    println!(
        "trace: seed={} schedule={} events={} dropped={}",
        chaos_trace.seed,
        chaos_trace.schedule,
        chaos_trace.events.len(),
        chaos_trace.dropped
    );
    print_recovery_timeline(&chaos_trace);
    println!("{}", chaos.fault_report());

    // Headline numbers, machine-readable: round latency straight from
    // the trace, committed throughput from the workload stats.
    let round_secs = durations(&trace, SpanKind::Round, "");
    let mut base = Baseline::new("trace_report").metric("trace_events", trace.events.len() as f64);
    if !round_secs.is_empty() {
        let p = Percentiles::of(&round_secs);
        base = base
            .metric(baseline::P50_LATENCY_S, p.median)
            .metric(baseline::P99_LATENCY_S, p.p99);
    }
    if let Some(stats) = sim.tx_stats() {
        base = base.metric(baseline::TX_PER_S, stats.tx_per_sec);
    }
    base.metric(baseline::WALL_CLOCK_S, wall.elapsed().as_secs_f64())
        .write()
        .expect("write baseline");
    ExitCode::SUCCESS
}

/// CI determinism gate: tracing must be invisible to the protocol.
fn check() -> ExitCode {
    let a = run_workload(true);
    let b = run_workload(true);
    let plain = run_workload(false);
    let jsonl_a = a.export_trace("payment-50");
    let jsonl_b = b.export_trace("payment-50");
    let mut ok = true;
    if jsonl_a != jsonl_b {
        println!("trace check: FAILED (same seed+schedule produced different JSONL)");
        ok = false;
    } else {
        println!(
            "trace check: identical JSONL across reruns ({} bytes, {} events)",
            jsonl_a.len(),
            jsonl_a.lines().count() - 1
        );
    }
    if a.chain_digest() != b.chain_digest() {
        println!("trace check: FAILED (same seed+schedule produced different digests)");
        ok = false;
    }
    if a.chain_digest() != plain.chain_digest() {
        println!("trace check: FAILED (tracing changed the chain digest)");
        ok = false;
    } else {
        println!("trace check: tracing on/off leaves the chain digest unchanged");
    }
    // A truncated trace silently undercounts every per-span section, so
    // the gate treats it as a failure rather than a warning. Deliberate
    // per-node *trimming* (the parallel engine's retention budget) is
    // different: it is accounted in the export header and checked below.
    let dropped = a.trace_dropped().max(b.trace_dropped());
    if dropped > 0 {
        println!("trace check: FAILED (trace truncated: {dropped} events dropped)");
        ok = false;
    } else {
        println!("trace check: no dropped events (trace is complete)");
    }

    // The budgeted parallel engine: the retained prefix must itself be
    // deterministic JSONL, parse cleanly, and carry exact `trimmed`
    // accounting — trimming must never read as silent truncation.
    let trimmed_a = run_trimmed();
    let trimmed_b = run_trimmed();
    if trimmed_a != trimmed_b {
        println!("trace check: FAILED (trimmed exports diverged across reruns)");
        ok = false;
    } else {
        match parse_jsonl(&trimmed_a) {
            Ok(trace) if trace.dropped == 0 && trace.trimmed > 0 => {
                println!(
                    "trace check: trimmed export deterministic and accounted \
                     ({} events retained, {} trimmed)",
                    trace.events.len(),
                    trace.trimmed
                );
            }
            Ok(trace) => {
                println!(
                    "trace check: FAILED (budgeted run: dropped={} trimmed={}, \
                     expected 0 dropped and >0 trimmed)",
                    trace.dropped, trace.trimmed
                );
                ok = false;
            }
            Err(e) => {
                println!("trace check: FAILED (trimmed export does not parse: {e})");
                ok = false;
            }
        }
    }
    if ok {
        println!("trace check: OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--check") {
        check()
    } else {
        report()
    }
}
