//! Figure 7: round-latency breakdown vs block size.
//!
//! The paper sweeps blocks from 1 KB to 10 MB at 50,000 users and splits
//! each round into: block proposal (grows linearly with block size once
//! gossip dominates the fixed λ_priority+λ_stepvar wait), BA⋆ without the
//! final step (constant, ~12 s), and the final step (constant, ~6 s,
//! pipelineable). The simulated sweep is scaled (fewer users, shorter
//! waits) but must show the same structure: agreement time independent of
//! block size, proposal time linear in it.

use algorand_bench::baseline::{self, Baseline};
use algorand_bench::{header, run_experiment};
use algorand_sim::SimConfig;
use std::time::Instant;

fn main() {
    let wall = Instant::now();
    header(
        "Figure 7 — latency breakdown vs block size",
        "proposal grows with block size; BA* (~12 s) and final step (~6 s) flat",
    );
    let n_users = 100;
    let rounds = 3;
    let sizes: [(usize, &str); 5] = [
        (1 << 10, "1KB"),
        (64 << 10, "64KB"),
        (256 << 10, "256KB"),
        (1 << 20, "1MB"),
        (2 << 20, "2MB"),
    ];
    println!(
        "{:>8} {:>12} {:>10} {:>12} {:>10}",
        "block", "proposal(s)", "BA*(s)", "final(s)", "total(s)"
    );
    let mut rows = Vec::new();
    let mut base = Baseline::new("fig7_blocksize");
    for (bytes, label) in sizes {
        let mut cfg = SimConfig::new(n_users);
        // The paper's fixed 10 s proposal wait absorbs block transmission
        // at its 1 MB default; keep the same proportion here so multi-MB
        // blocks finish gossiping before votes contend for uplinks.
        cfg.params.lambda_priority = 4_000_000;
        cfg.params.lambda_stepvar = 4_000_000;
        cfg.payload_bytes = bytes;
        cfg.seed = 13;
        let (_sim, stats) = run_experiment(cfg, rounds);
        let avg = |f: fn(&algorand_sim::RoundStats) -> f64| {
            stats.iter().map(f).sum::<f64>() / stats.len().max(1) as f64
        };
        let proposal = avg(|s| s.proposal_median);
        let ba = avg(|s| s.ba_median);
        let fin = avg(|s| s.final_median);
        println!(
            "{:>8} {:>12.2} {:>10.2} {:>12.2} {:>10.2}",
            label,
            proposal,
            ba,
            fin,
            proposal + ba + fin
        );
        let key = label.to_ascii_lowercase();
        base = base
            .metric(&format!("proposal_s_{key}"), proposal)
            .metric(&format!("ba_s_{key}"), ba)
            .metric(&format!("total_s_{key}"), proposal + ba + fin);
        rows.push((bytes, proposal, ba));
    }
    println!();
    // The BA⋆-flatness claim holds while dissemination fits the proposal
    // window; past that point (the paper's 10 MB, our 2 MB at scaled
    // timeouts) the dissemination tail dominates the round, exactly as the
    // paper's growing block-proposal band shows.
    let (_, small_ba) = (rows[0].1, rows[0].2);
    let one_mb_ba = rows[3].2;
    println!(
        "shape check: agreement time {:.2}s at 1KB vs {:.2}s at 1MB — flat across a 1000x          size range (paper: BA* independent of block size)",
        small_ba, one_mb_ba
    );
    println!(
        "shape check: beyond the proposal window (2MB here, 10MB in the paper) the round          is dominated by block dissemination, not agreement"
    );
    base.metric("ba_flatness_ratio_1mb_vs_1kb", one_mb_ba / small_ba)
        .metric(baseline::WALL_CLOCK_S, wall.elapsed().as_secs_f64())
        .write()
        .expect("write baseline");
}
