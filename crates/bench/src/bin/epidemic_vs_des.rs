//! Validates the analytic epidemic model against the real
//! discrete-event engine at overlapping network sizes.
//!
//! The paper's Figure 6 extrapolates to 500,000 users with an epidemic
//! (hop-count) model; this repo uses [`algorand_sim::EpidemicConfig`]
//! for the same shortcut. The model's only honest defense is agreement
//! with the real engine where both can run — so this bench runs
//! 100–1,000 real protocol nodes through the parallel engine, measures
//! mean finalization latency over the first rounds, and tabulates the
//! delta against the model evaluated at the simulator's operating point
//! (20 Mbit/s uplinks, ~75 ms mean inter-city latency, fan-out 4, the
//! scaled committee parameters).
//!
//! Output feeds `results/epidemic_vs_des.txt`. The gate: every size must
//! agree within a factor of 4 (the model is closed-form; a larger gap
//! means either the model or the engine is misconfigured).

use algorand_core::AlgorandParams;
use algorand_sim::{DesConfig, EpidemicConfig, Micros, ParallelSim, SimConfig};
use std::fmt::Write as _;
use std::process::ExitCode;

const SEC: Micros = 1_000_000;
const ROUNDS: usize = 3;

/// The epidemic model re-parameterized to the simulator's network,
/// rather than figure6's EC2 packing (500 users per 1 Gbit/s NIC).
fn model_at(n: usize, params: &AlgorandParams) -> EpidemicConfig {
    let mut m = EpidemicConfig::figure6(n);
    m.bandwidth_bps = 20e6;
    m.mean_latency_s = 0.075;
    m.fanout = 4;
    m.block_bytes = 2_000;
    m.tau_step = params.ba.tau_step;
    m.threshold = params.ba.t_step;
    m
}

fn measure_des(n: usize) -> Option<f64> {
    let mut cfg = SimConfig::new(n);
    cfg.seed = 600 + n as u64;
    let mut sim = ParallelSim::new(DesConfig {
        sim: cfg,
        workers: 4,
        trace_node_budget: 0,
    });
    sim.run_rounds(ROUNDS as u64, 300 * SEC);
    let records = sim.combined_records();
    if records[0].len() < ROUNDS {
        return None;
    }
    Some(
        records[0]
            .iter()
            .take(ROUNDS)
            .map(|r| (r.finished - r.started) as f64 / 1e6)
            .sum::<f64>()
            / ROUNDS as f64,
    )
}

fn main() -> ExitCode {
    let sizes = [100usize, 200, 500, 1_000];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "epidemic model vs real DES: mean finalization latency of the first {ROUNDS} rounds"
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:>6}  {:>9}  {:>9}  {:>7}  {:>6}",
        "users", "des (s)", "model (s)", "delta", "ratio"
    );
    let mut ok = true;
    for n in sizes {
        let params = AlgorandParams::scaled(n);
        let predicted = model_at(n, &params).round_latency_s(&params);
        match measure_des(n) {
            Some(measured) => {
                let ratio = measured / predicted;
                let _ = writeln!(
                    out,
                    "{n:>6}  {measured:>9.2}  {predicted:>9.2}  {:>+6.1}%  {ratio:>6.2}",
                    (measured - predicted) / predicted * 100.0
                );
                if !(0.25..=4.0).contains(&ratio) {
                    ok = false;
                }
            }
            None => {
                let _ = writeln!(out, "{n:>6}  FAILED: fewer than {ROUNDS} rounds finalized");
                ok = false;
            }
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "model operating point: 20 Mbit/s uplinks, 75 ms mean latency, fan-out 4, 2 KB blocks"
    );
    let _ = writeln!(
        out,
        "gate (each size within 4x of the model): {}",
        if ok { "OK" } else { "FAILED" }
    );
    print!("{out}");
    if let Err(e) = std::fs::write("results/epidemic_vs_des.txt", &out) {
        eprintln!("warning: could not write results/epidemic_vs_des.txt: {e}");
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
