//! Cluster trace collector: drains every node's bounded trace buffer
//! over the TELEMETRY `TRACE_DRAIN` op and merges the per-process
//! traces into one causal cluster trace.
//!
//! Usage:
//!
//! ```text
//! trace_collect --dir <deployment-root> [--out F] [--report F]
//! trace_collect <addr> [<addr>...]     [--out F] [--report F]
//! ```
//!
//! `--dir` scans `<root>/n*/addr` — the address files a localnet
//! deployment publishes — so the collector needs no port coordination.
//! The drains are cursor-based and resumable: each node is read in
//! chunks until a read comes back empty, and scrapes are unmetered on
//! the node side, so collection never perturbs consensus counters.
//!
//! The same drains are merged **twice** and both the JSONL artifact and
//! the rendered report must be byte-identical — the merge is a pure
//! function of the collected traces, which is what lets CI diff
//! artifacts across reruns. Defaults write `results/cluster_trace.jsonl`
//! and `results/cluster_trace.txt`.

use algorand_node::telemetry::drain_cluster;
use algorand_obs::merge::{merge, render_report, write_merged};
use std::process::ExitCode;
use std::time::Duration;

const SCRAPE_TIMEOUT: Duration = Duration::from_secs(10);

fn addrs_from_dir(dir: &str) -> Result<Vec<String>, String> {
    let mut found: Vec<(String, String)> = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {dir}: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let addr_file = entry.path().join("addr");
        if addr_file.is_file() {
            let addr = std::fs::read_to_string(&addr_file)
                .map_err(|e| format!("read {}: {e}", addr_file.display()))?;
            found.push((
                entry.file_name().to_string_lossy().into_owned(),
                addr.trim().to_string(),
            ));
        }
    }
    if found.is_empty() {
        return Err(format!("no */addr files under {dir}"));
    }
    found.sort();
    Ok(found.into_iter().map(|(_, a)| a).collect())
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let mut addrs: Vec<String> = Vec::new();
    let mut out = "results/cluster_trace.jsonl".to_string();
    let mut report_path = "results/cluster_trace.txt".to_string();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => {
                let dir = args.next().ok_or("--dir needs a path")?;
                addrs.extend(addrs_from_dir(&dir)?);
            }
            "--out" => out = args.next().ok_or("--out needs a path")?,
            "--report" => report_path = args.next().ok_or("--report needs a path")?,
            addr => addrs.push(addr.to_string()),
        }
    }
    if addrs.is_empty() {
        return Err("no addresses: pass --dir <root> or explicit addrs".into());
    }

    println!("[trace_collect] draining {} nodes", addrs.len());
    let (traces, failed) = drain_cluster(&addrs, SCRAPE_TIMEOUT);
    for (addr, err) in &failed {
        println!("[trace_collect] FAILED drain {addr}: {err}");
    }
    if !failed.is_empty() {
        return Err(format!("{} of {} drains failed", failed.len(), addrs.len()));
    }
    for t in &traces {
        println!(
            "[trace_collect] node {} ({}): {} events, {} dropped",
            t.node,
            t.addr,
            t.trace.events.len(),
            t.trace.dropped
        );
    }

    let merged = merge(&traces)?;
    let artifact = write_merged(&merged);
    let report = render_report(&merged);
    // The merge must be a pure function of the drains: merging the same
    // inputs again has to reproduce both artifacts byte for byte.
    let again = merge(&traces)?;
    if write_merged(&again) != artifact || render_report(&again) != report {
        return Err("merge is not deterministic: re-merging the same drains differed".into());
    }

    if let Some(parent) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
    }
    std::fs::write(&out, &artifact).map_err(|e| format!("write {out}: {e}"))?;
    std::fs::write(&report_path, &report).map_err(|e| format!("write {report_path}: {e}"))?;
    println!(
        "[trace_collect] merged {} events from {} nodes (horizon {}us) -> {out}",
        merged.events.len(),
        merged.nodes.len(),
        merged.horizon
    );
    println!("[trace_collect] report -> {report_path}");
    print!("{report}");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            println!("trace_collect: {e}");
            ExitCode::FAILURE
        }
    }
}
