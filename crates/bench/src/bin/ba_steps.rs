//! §7 efficiency: BA⋆ step counts.
//!
//! The paper: with strong synchrony and an honest highest-priority
//! proposer, BA⋆ terminates in exactly 4 interactive steps (reduction ×2,
//! BinaryBA⋆ step 1, final); a malicious highest-priority proposer costs
//! an expected 11 BinaryBA⋆ steps worst case (13 total). This harness
//! measures the BinaryBA⋆ concluding-step distribution with and without
//! the §10.4 adversary.

use algorand_bench::baseline::{self, Baseline};
use algorand_bench::{header, run_experiment};
use algorand_sim::SimConfig;
use std::collections::BTreeMap;
use std::time::Instant;

fn distribution(cfg: SimConfig, rounds: u64) -> BTreeMap<u32, usize> {
    let (sim, _) = run_experiment(cfg, rounds);
    let mut dist = BTreeMap::new();
    for records in sim.honest_records() {
        for r in records {
            *dist.entry(r.binary_step).or_insert(0) += 1;
        }
    }
    dist
}

fn print_dist(label: &str, dist: &BTreeMap<u32, usize>) {
    let total: usize = dist.values().sum();
    println!("{label}:");
    for (step, count) in dist {
        println!(
            "  BinaryBA* concluded at step {step}: {count:>5} ({:.1}%)",
            *count as f64 / total.max(1) as f64 * 100.0
        );
    }
}

fn main() {
    let wall = Instant::now();
    header(
        "§7 — BA* step counts (common case vs adversarial proposer)",
        "honest proposer: 4 interactive steps (BinaryBA* step 1); malicious: expected ≤11 binary steps",
    );
    let mut honest = SimConfig::new(40);
    honest.seed = 31;
    let honest_dist = distribution(honest, 4);
    print_dist("all honest", &honest_dist);
    println!();

    let mut attacked = SimConfig::new(40);
    attacked.n_malicious = 8; // 20%.
    attacked.seed = 31;
    let attacked_dist = distribution(attacked, 4);
    print_dist("20% malicious (equivocation attack)", &attacked_dist);
    println!();

    let frac_step1 = *honest_dist.get(&1).unwrap_or(&0) as f64
        / honest_dist.values().sum::<usize>().max(1) as f64;
    println!(
        "shape check: honest runs conclude at step 1 in {:.0}% of rounds (paper: always, under strong synchrony)",
        frac_step1 * 100.0
    );
    let max_attacked = attacked_dist.keys().max().copied().unwrap_or(0);
    println!(
        "shape check: under attack the worst observed concluding step was {max_attacked} (paper bound: expected 11)"
    );
    Baseline::new("ba_steps")
        .metric("honest_step1_fraction", frac_step1)
        .metric("attacked_max_concluding_step", f64::from(max_attacked))
        .metric(baseline::WALL_CLOCK_S, wall.elapsed().as_secs_f64())
        .write()
        .expect("write baseline");
}
