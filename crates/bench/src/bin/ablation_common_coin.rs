//! Ablation: the common coin (§7.4, Algorithm 9).
//!
//! The "getting unstuck" attack: honest users are split into group A
//! (votes the empty hash) and group B (votes a block hash). The adversary
//! schedules message delivery so that
//!
//! * in steps ≡ 1 (mod 3) it adds its own votes to group A's just before
//!   the timeout, pushing A across the threshold for `empty` (crossing on
//!   empty never decides there), while B times out and falls back to its
//!   own `block_hash`;
//! * in steps ≡ 2 (mod 3) it adds nothing: neither value crosses, everyone
//!   times out to `empty`;
//! * in steps ≡ 0 (mod 3) it delays all honest votes past the timeout.
//!   **This is the step the coin defends.** Without the coin the fallback
//!   is the user's own `block_hash` input — group B deterministically
//!   re-splits, and the loop repeats forever. With the coin, each B user
//!   flips to `empty` with probability ~1/2 per loop, so the split decays
//!   and consensus follows within a few iterations.
//!
//! The harness drives BA⋆ engines directly with exactly this schedule and
//! reports the concluding step (or a hang at MaxSteps).

use algorand_ba::{
    AblationFlags, BaParams, BaStar, CachedVerifier, Output, RoundWeights, StepKind, VoteMessage,
    SECOND,
};
use algorand_bench::header;
use algorand_crypto::Keypair;
use std::collections::HashMap;
use std::sync::Arc;

const EMPTY: [u8; 32] = [0xee; 32];
const BLOCK: [u8; 32] = [0xbb; 32];
const PREV: [u8; 32] = [0x11; 32];
const SEED: [u8; 32] = [0x22; 32];
const N_A: usize = 13; // Group A: 65% of honest users, starts with EMPTY.
const N_B: usize = 7; // Group B: starts with BLOCK.
const N_ADV: usize = 5; // 20% of total stake.

struct Attack {
    engines: Vec<BaStar>,
    decided: Vec<Option<([u8; 32], u32)>>,
    pending: Vec<VoteMessage>,
    bank: HashMap<(u32, [u8; 32]), Vec<VoteMessage>>,
    now: u64,
    lambda: u64,
}

impl Attack {
    fn new(disable_coin: bool, max_steps: u32) -> Attack {
        let n_honest = N_A + N_B;
        let keypairs: Vec<Keypair> = (0..n_honest + N_ADV)
            .map(|i| {
                let mut s = [0u8; 32];
                s[..8].copy_from_slice(&(i as u64 + 1).to_le_bytes());
                Keypair::from_seed(s)
            })
            .collect();
        let weights = Arc::new(RoundWeights::from_pairs(
            keypairs.iter().map(|k| (k.pk, 10u64)),
        ));
        let total = (n_honest + N_ADV) as f64 * 10.0;
        let params = BaParams {
            tau_step: total,
            t_step: 0.685,
            tau_final: total,
            t_final: 0.74,
            max_steps,
            lambda_step: SECOND,
            lambda_block: SECOND,
            disable_backoff: false,
        };
        let verifier = Arc::new(CachedVerifier::new());
        let mut engines = Vec::new();
        let mut pending = Vec::new();
        for (i, kp) in keypairs.iter().enumerate().take(n_honest) {
            let initial = if i < N_A { EMPTY } else { BLOCK };
            let (mut e, out) = BaStar::start_without_reduction(
                params,
                kp.clone(),
                1,
                SEED,
                PREV,
                initial,
                EMPTY,
                weights.clone(),
                verifier.clone(),
                0,
            );
            e.set_ablation(AblationFlags {
                disable_common_coin: disable_coin,
                disable_extra_votes: false,
            });
            for o in out {
                if let Output::Gossip(v) = o {
                    pending.push(v);
                }
            }
            engines.push(e);
        }
        let mut bank: HashMap<(u32, [u8; 32]), Vec<VoteMessage>> = HashMap::new();
        for kp in keypairs.iter().skip(n_honest) {
            for step in 1..=max_steps {
                let role = algorand_sortition::Role::Committee { round: 1, step };
                let p = algorand_sortition::SortitionParams {
                    tau: params.tau_step,
                    total_weight: weights.total(),
                };
                if let Some(sel) = algorand_sortition::select(kp, &SEED, role, &p, 10) {
                    bank.entry((step, EMPTY))
                        .or_default()
                        .push(VoteMessage::sign(
                            kp,
                            1,
                            StepKind::Main(step),
                            sel.vrf_output,
                            sel.proof,
                            PREV,
                            EMPTY,
                        ));
                }
            }
        }
        Attack {
            engines,
            decided: vec![None; n_honest],
            pending,
            bank,
            now: 0,
            lambda: params.lambda_step,
        }
    }

    /// Delivers pending honest votes — except votes cast for coin steps
    /// (≡ 0 mod 3), which the adversary delays past the timeout (dropped
    /// here; a delayed vote changes nothing once the step concluded).
    fn drain(&mut self) {
        while !self.pending.is_empty() {
            let batch: Vec<VoteMessage> = self.pending.drain(..).collect();
            for i in 0..self.engines.len() {
                for v in &batch {
                    if let StepKind::Main(s) = v.step {
                        if s % 3 == 0 {
                            continue; // Withheld by the scheduler.
                        }
                    }
                    let outs = self.engines[i].on_vote(v, self.now);
                    self.absorb(i, outs);
                }
            }
        }
    }

    fn absorb(&mut self, i: usize, outputs: Vec<Output>) {
        for o in outputs {
            match o {
                Output::Gossip(v) => self.pending.push(v),
                Output::BinaryDecided { value, step } => self.decided[i] = Some((value, step)),
                _ => {}
            }
        }
    }

    fn converged(&self) -> Option<([u8; 32], u32)> {
        let values: Vec<([u8; 32], u32)> = self.decided.iter().flatten().copied().collect();
        (values.len() > (N_A + N_B) / 2 && values.windows(2).all(|w| w[0].0 == w[1].0)).then(|| {
            let max_step = values.iter().map(|(_, s)| *s).max().unwrap_or(0);
            (values[0].0, max_step)
        })
    }

    /// Runs the schedule; returns the max binary step reached at
    /// convergence, or `None` if the attack outlasted MaxSteps.
    fn run(&mut self) -> Option<u32> {
        loop {
            self.drain();
            if let Some((_, step)) = self.converged() {
                return Some(step);
            }
            let next_deadline = self
                .engines
                .iter()
                .filter_map(|e| e.next_deadline())
                .min()?;
            // Adversary assist: group A engines in a step ≡ 1 (mod 3) get
            // the adversary's EMPTY votes just before their deadline.
            self.now = next_deadline.saturating_sub(self.lambda / 10).max(self.now);
            for i in 0..N_A.min(self.engines.len()) {
                let Some(step) = self.engines[i].current_binary_step() else {
                    continue;
                };
                if step % 3 != 1 {
                    continue;
                }
                if let Some(votes) = self.bank.get(&(step, EMPTY)).cloned() {
                    for v in &votes {
                        let outs = self.engines[i].on_vote(v, self.now);
                        self.absorb(i, outs);
                    }
                }
            }
            self.drain();
            if let Some((_, step)) = self.converged() {
                return Some(step);
            }
            // Fire timeouts for everyone else.
            self.now = next_deadline;
            for i in 0..self.engines.len() {
                let outs = self.engines[i].on_tick(self.now);
                self.absorb(i, outs);
            }
            let hung = self.engines.iter().filter(|e| e.is_finished()).count();
            if hung > (N_A + N_B) / 2 && self.converged().is_none() {
                return None; // Most engines hung at MaxSteps: attack won.
            }
        }
    }
}

fn main() {
    header(
        "Ablation — the common coin (§7.4's split attack)",
        "without the coin the adversary re-splits honest users at every third step, forever; \
         with it the split decays by ~1/2 per loop",
    );
    let max_steps = 45;
    println!(
        "attack: {N_A}/{N_B} honest split, {N_ADV} adversary users (20% stake), \
         adversary-scheduled delivery, MaxSteps {max_steps}"
    );
    match Attack::new(false, max_steps).run() {
        Some(step) => {
            println!("  WITH common coin:    honest users converged by binary step {step}")
        }
        None => println!("  WITH common coin:    no convergence within {max_steps} steps"),
    }
    match Attack::new(true, max_steps).run() {
        Some(step) => println!("  WITHOUT common coin: converged at step {step} (attack failed)"),
        None => println!(
            "  WITHOUT common coin: honest users still split after {max_steps} steps — \
             the adversary sustains the attack indefinitely"
        ),
    }
}
