//! Telemetry determinism gate: scraping must not perturb what it reads.
//!
//! Boots ONE `algorand-node` process configured to be perfectly idle —
//! no peers, `min_peers = 0`, and every λ timeout pushed out to two
//! minutes, so after the initial round-1 proposal burst nothing happens
//! — then asserts the two properties the exposition format promises:
//!
//! 1. **Byte stability** — two TELEMETRY scrapes of an idle node return
//!    *byte-identical* text. This is what makes scrape diffs meaningful:
//!    any changed byte is a changed counter, never formatting jitter or
//!    the scrape's own footprint (TELEMETRY frames are unmetered, and a
//!    scraper that never sends HELLO is not a peer).
//! 2. **Flight dump validity** — the flight-recorder scrape parses with
//!    the ordinary trace JSONL parser and carries the deployment seed.
//! 3. **Scrape rate limiting** — a single connection hammering
//!    `TEL_METRICS_REQ` past the configured burst gets `TEL_THROTTLED`
//!    error frames (never silence, never disconnect), while a fresh
//!    connection — its own token bucket — is still served.
//!
//! Exit code 0 only if all three hold, so `scripts/ci.sh` can gate on it.

use algorand_node::frame;
use algorand_node::telemetry::{scrape_flight, scrape_metrics};
use algorand_node::NodeConfig;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn main() {
    let root = std::env::temp_dir().join(format!("algorand-telsmoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create scratch dir");

    let cfg = NodeConfig {
        index: 0,
        seed: 42,
        listen: "127.0.0.1:0".into(),
        wal_dir: root.join("n0"),
        target_round: 0,
        deadline_secs: 90,
        tx_count: 8,
        // Idle by construction: no timer may fire during the gate.
        lambda_priority_ms: 120_000,
        lambda_stepvar_ms: 120_000,
        lambda_step_ms: 120_000,
        lambda_block_ms: 120_000,
        trace: true,
        // A tight per-connection budget so the throttle leg trips it
        // quickly; every scrape below uses a fresh connection (fresh
        // bucket), so the byte-stability legs never feel this.
        telemetry_burst: 4,
        telemetry_rate_per_s: 1,
        ..NodeConfig::default()
    };
    std::fs::write(root.join("n0.conf"), cfg.render()).expect("write config");
    let mut child = std::process::Command::new(node_binary())
        .arg(root.join("n0.conf"))
        .spawn()
        .expect("spawn algorand-node");

    let addr_file = cfg.wal_dir.join("addr");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !addr_file.exists() {
        assert!(
            Instant::now() < deadline,
            "node never published its address"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let addr = std::fs::read_to_string(&addr_file).expect("read addr");
    let addr = addr.trim();
    println!("[telemetry_smoke] node bound {addr}");
    // Let the round-1 startup burst (proposal sortition, initial spans)
    // finish before the first scrape.
    std::thread::sleep(Duration::from_millis(1500));

    let timeout = Duration::from_secs(10);
    let first = scrape_metrics(addr, timeout).expect("first scrape");
    std::thread::sleep(Duration::from_millis(400));
    let second = scrape_metrics(addr, timeout).expect("second scrape");

    assert!(!first.is_empty(), "exposition must not be empty");
    for required in [
        "node.tip_round",
        "pipeline.ingested",
        "wal.entries",
        "transport.frames_sent",
        "monitor.violations 0",
        "trace.dropped 0",
        "node.alerts 0",
    ] {
        assert!(
            first.contains(required),
            "exposition is missing `{required}`:\n{first}"
        );
    }
    if first != second {
        // Print the first differing line pair for diagnosis.
        for (a, b) in first.lines().zip(second.lines()) {
            if a != b {
                eprintln!("[telemetry_smoke] differs:\n  scrape 1: {a}\n  scrape 2: {b}");
            }
        }
        panic!("idle-node scrapes are not byte-identical");
    }
    println!(
        "[telemetry_smoke] byte-stable: {} bytes, {} samples",
        first.len(),
        first.lines().count()
    );

    let flight = scrape_flight(addr, timeout).expect("flight scrape");
    let parsed = algorand_obs::parse_jsonl(&flight).expect("flight dump parses as trace JSONL");
    assert_eq!(parsed.seed, 42, "flight dump must carry the node's seed");
    println!(
        "[telemetry_smoke] flight dump ok: {} events",
        parsed.events.len()
    );

    // Throttle leg: one connection burns through the 4-token burst.
    // Over-budget requests must come back as TEL_THROTTLED error frames
    // on the same (still-open) connection, and a *fresh* connection —
    // with its own bucket — must still be served afterwards.
    const HAMMER: usize = 12;
    let mut raw = TcpStream::connect(addr).expect("connect for throttle leg");
    raw.set_read_timeout(Some(timeout)).expect("read timeout");
    for _ in 0..HAMMER {
        raw.write_all(
            &frame::encode_frame(frame::TELEMETRY, &[frame::TEL_METRICS_REQ])
                .expect("encode metrics request"),
        )
        .expect("send metrics request");
    }
    raw.flush().expect("flush throttle burst");
    let mut reader = BufReader::new(raw);
    let mut served = 0usize;
    let mut throttled = 0usize;
    for _ in 0..HAMMER {
        let (kind, payload) = frame::read_frame(&mut reader).expect("read throttle response");
        assert_eq!(kind, frame::TELEMETRY, "only TELEMETRY frames expected");
        match payload.first() {
            Some(&frame::TEL_METRICS_RESP) => served += 1,
            Some(&frame::TEL_THROTTLED) => throttled += 1,
            other => panic!("unexpected telemetry op {other:?}"),
        }
    }
    assert!(served >= 1, "the burst allowance must be served");
    assert!(
        throttled >= 1,
        "{HAMMER} rapid requests with burst=4 must trip the limiter"
    );
    let after = scrape_metrics(addr, timeout).expect("fresh connection after throttling");
    assert!(
        !after.is_empty(),
        "a fresh connection must be unaffected by another scraper's bucket"
    );
    println!("[telemetry_smoke] throttle ok: {served} served, {throttled} throttled");

    let _ = child.kill();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&root);
    println!("[telemetry_smoke] PASS");
}

/// The `algorand-node` binary: `$ALGORAND_NODE_BIN` if set, else the
/// sibling of this harness in the same cargo target directory.
fn node_binary() -> PathBuf {
    if let Ok(p) = std::env::var("ALGORAND_NODE_BIN") {
        return PathBuf::from(p);
    }
    let mut p = std::env::current_exe().expect("current_exe");
    p.set_file_name("algorand-node");
    p
}
