//! Telemetry determinism gate: scraping must not perturb what it reads.
//!
//! Boots ONE `algorand-node` process configured to be perfectly idle —
//! no peers, `min_peers = 0`, and every λ timeout pushed out to two
//! minutes, so after the initial round-1 proposal burst nothing happens
//! — then asserts the two properties the exposition format promises:
//!
//! 1. **Byte stability** — two TELEMETRY scrapes of an idle node return
//!    *byte-identical* text. This is what makes scrape diffs meaningful:
//!    any changed byte is a changed counter, never formatting jitter or
//!    the scrape's own footprint (TELEMETRY frames are unmetered, and a
//!    scraper that never sends HELLO is not a peer).
//! 2. **Flight dump validity** — the flight-recorder scrape parses with
//!    the ordinary trace JSONL parser and carries the deployment seed.
//!
//! Exit code 0 only if both hold, so `scripts/ci.sh` can gate on it.

use algorand_node::telemetry::{scrape_flight, scrape_metrics};
use algorand_node::NodeConfig;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn main() {
    let root = std::env::temp_dir().join(format!("algorand-telsmoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create scratch dir");

    let cfg = NodeConfig {
        index: 0,
        seed: 42,
        listen: "127.0.0.1:0".into(),
        wal_dir: root.join("n0"),
        target_round: 0,
        deadline_secs: 90,
        tx_count: 8,
        // Idle by construction: no timer may fire during the gate.
        lambda_priority_ms: 120_000,
        lambda_stepvar_ms: 120_000,
        lambda_step_ms: 120_000,
        lambda_block_ms: 120_000,
        trace: true,
        ..NodeConfig::default()
    };
    std::fs::write(root.join("n0.conf"), cfg.render()).expect("write config");
    let mut child = std::process::Command::new(node_binary())
        .arg(root.join("n0.conf"))
        .spawn()
        .expect("spawn algorand-node");

    let addr_file = cfg.wal_dir.join("addr");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !addr_file.exists() {
        assert!(
            Instant::now() < deadline,
            "node never published its address"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let addr = std::fs::read_to_string(&addr_file).expect("read addr");
    let addr = addr.trim();
    println!("[telemetry_smoke] node bound {addr}");
    // Let the round-1 startup burst (proposal sortition, initial spans)
    // finish before the first scrape.
    std::thread::sleep(Duration::from_millis(1500));

    let timeout = Duration::from_secs(10);
    let first = scrape_metrics(addr, timeout).expect("first scrape");
    std::thread::sleep(Duration::from_millis(400));
    let second = scrape_metrics(addr, timeout).expect("second scrape");

    assert!(!first.is_empty(), "exposition must not be empty");
    for required in [
        "node.tip_round",
        "pipeline.ingested",
        "wal.entries",
        "transport.frames_sent",
        "monitor.violations 0",
        "trace.dropped 0",
    ] {
        assert!(
            first.contains(required),
            "exposition is missing `{required}`:\n{first}"
        );
    }
    if first != second {
        // Print the first differing line pair for diagnosis.
        for (a, b) in first.lines().zip(second.lines()) {
            if a != b {
                eprintln!("[telemetry_smoke] differs:\n  scrape 1: {a}\n  scrape 2: {b}");
            }
        }
        panic!("idle-node scrapes are not byte-identical");
    }
    println!(
        "[telemetry_smoke] byte-stable: {} bytes, {} samples",
        first.len(),
        first.lines().count()
    );

    let flight = scrape_flight(addr, timeout).expect("flight scrape");
    let parsed = algorand_obs::parse_jsonl(&flight).expect("flight dump parses as trace JSONL");
    assert_eq!(parsed.seed, 42, "flight dump must carry the node's seed");
    println!(
        "[telemetry_smoke] flight dump ok: {} events",
        parsed.events.len()
    );

    let _ = child.kill();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&root);
    println!("[telemetry_smoke] PASS");
}

/// The `algorand-node` binary: `$ALGORAND_NODE_BIN` if set, else the
/// sibling of this harness in the same cargo target directory.
fn node_binary() -> PathBuf {
    if let Ok(p) = std::env::var("ALGORAND_NODE_BIN") {
        return PathBuf::from(p);
    }
    let mut p = std::env::current_exe().expect("current_exe");
    p.set_file_name("algorand-node");
    p
}
