//! §10.2: throughput vs Bitcoin.
//!
//! The paper derives throughput from Figure 7's sweep: a 2 MB block
//! commits in ~22 s (327 MB/hour) and a 10 MB block yields ~750 MB/hour —
//! 125× Bitcoin's 6 MB/hour (1 MB block / 10 minutes, 1.3× safety factor
//! not applied; the paper compares committed ledger bytes per hour).
//!
//! We run the scaled block-size sweep and compute committed bytes per
//! simulated hour, then report the ratio to the Bitcoin constant. The
//! absolute ratio depends on our scaled timeouts; the *shape* — throughput
//! grows with block size because BA⋆ time is flat while payload grows —
//! is the claim under reproduction.

use algorand_bench::{header, run_experiment, BITCOIN_MB_PER_HOUR};
use algorand_sim::SimConfig;

fn main() {
    header(
        "§10.2 — throughput (committed MB/hour) vs Bitcoin",
        "2MB block: ~22 s round -> 327 MB/h; 10MB -> 750 MB/h = 125x Bitcoin (6 MB/h)",
    );
    let n_users = 100;
    let rounds = 3;
    println!(
        "{:>8} {:>12} {:>14} {:>16}",
        "block", "round(s)", "MB/hour", "x Bitcoin(6MB/h)"
    );
    let mut best = 0.0f64;
    for (bytes, label) in [
        (256usize << 10, "256KB"),
        (1 << 20, "1MB"),
        (2 << 20, "2MB"),
        (4 << 20, "4MB"),
    ] {
        let mut cfg = SimConfig::new(n_users);
        // The paper's fixed 10 s proposal wait absorbs block transmission
        // at its 1 MB default; keep the same proportion here so multi-MB
        // blocks finish gossiping before votes contend for uplinks.
        cfg.params.lambda_priority = 4_000_000;
        cfg.params.lambda_stepvar = 4_000_000;
        cfg.payload_bytes = bytes;
        cfg.seed = 19;
        let (_sim, stats) = run_experiment(cfg, rounds);
        let round_s = stats
            .iter()
            .map(|s| s.completion.median)
            .sum::<f64>()
            / stats.len().max(1) as f64;
        let mb = bytes as f64 / (1 << 20) as f64;
        let mb_per_hour = mb * 3600.0 / round_s;
        let ratio = mb_per_hour / BITCOIN_MB_PER_HOUR;
        println!("{label:>8} {round_s:>12.2} {mb_per_hour:>14.0} {ratio:>16.1}");
        best = best.max(ratio);
    }
    println!();
    println!(
        "shape check: throughput grows with block size (BA* time is flat); best here {best:.0}x Bitcoin"
    );
    println!("paper: 125x Bitcoin at 10 MB blocks on the EC2 testbed");
}
