//! §10.2: throughput vs Bitcoin — measured with real transactions.
//!
//! The paper derives throughput from committed ledger bytes per hour
//! (750 MB/hour at 10 MB blocks = 125× Bitcoin's 6 MB/hour). Earlier
//! revisions of this binary proxied block contents with synthetic
//! payload bytes; now that the node carries a transaction pool, we
//! drive an open-loop payment workload through gossip and measure what
//! actually lands in finalized blocks: committed tx/sec, per-transaction
//! finalization latency, and the equivalent committed MB/hour.
//!
//! The sweep varies the proposer's per-block transaction byte budget.
//! The workload (400 tx/s offered) saturates the small caps, so
//! committed throughput tracks the cap until the offered load becomes
//! the bottleneck — the same "BA⋆ time is flat, payload amortizes"
//! shape as the paper's Figure 7-derived numbers.

use algorand_bench::baseline::{self, Baseline};
use algorand_bench::{header, BITCOIN_MB_PER_HOUR, T_CAP};
use algorand_ledger::Transaction;
use algorand_sim::{SimConfig, Simulation};
use std::time::Instant;

fn main() {
    let wall = Instant::now();
    header(
        "§10.2 — committed transaction throughput vs Bitcoin",
        "2MB block: ~22 s round -> 327 MB/h; 10MB -> 750 MB/h = 125x Bitcoin (6 MB/h)",
    );
    let n_users = 50;
    let rounds = 12;
    println!(
        "{:>8} {:>9} {:>10} {:>9} {:>8} {:>8} {:>9} {:>10}",
        "cap", "injected", "committed", "tx/s", "p50(s)", "p99(s)", "MB/hour", "x Bitcoin"
    );
    let mut rates = Vec::new();
    let mut base = Baseline::new("tput_throughput");
    for (cap, label) in [
        (32usize << 10, "32KB"),
        (64 << 10, "64KB"),
        (128 << 10, "128KB"),
        (256 << 10, "256KB"),
    ] {
        let mut cfg = SimConfig::new(n_users);
        cfg.stake_per_user = 500;
        cfg.payload_bytes = 0; // real transactions only
        cfg.block_tx_bytes = cap;
        cfg.tx_rate = 400.0;
        cfg.tx_total = 4000;
        cfg.seed = 19;
        let mut sim = Simulation::new(cfg);
        sim.run_rounds(rounds, T_CAP);
        let stats = sim.tx_stats().expect("workload configured");
        assert_eq!(stats.duplicate_commits, 0, "a transaction committed twice");
        let (p50, p99) = stats
            .latency
            .as_ref()
            .map_or((f64::NAN, f64::NAN), |p| (p.median, p.p99));
        let mb_per_hour =
            stats.tx_per_sec * Transaction::WIRE_SIZE as f64 * 3600.0 / (1 << 20) as f64;
        let ratio = mb_per_hour / BITCOIN_MB_PER_HOUR;
        println!(
            "{label:>8} {:>9} {:>10} {:>9.1} {p50:>8.2} {p99:>8.2} {mb_per_hour:>9.2} {ratio:>10.2}",
            stats.injected, stats.committed, stats.tx_per_sec
        );
        // The canonical tx/s, p50/p99 latency, and MB/hour track the
        // largest cap — the closest analogue of the paper's headline row.
        base = base
            .metric(
                &format!("tx_per_s_cap_{}", label.to_ascii_lowercase()),
                stats.tx_per_sec,
            )
            .metric(baseline::TX_PER_S, stats.tx_per_sec)
            .metric("committed_mb_per_hour", mb_per_hour);
        if p50.is_finite() && p99.is_finite() {
            base = base
                .metric(baseline::P50_LATENCY_S, p50)
                .metric(baseline::P99_LATENCY_S, p99);
        }
        rates.push(stats.tx_per_sec);
    }
    println!();
    let (first, last) = (rates[0], rates[rates.len() - 1]);
    println!(
        "shape check: committed tx/s grows with the block cap while saturated \
         ({first:.0} -> {last:.0} tx/s), then flattens at the offered load"
    );
    println!(
        "note: 144-byte payments make small blocks; the paper's MB/hour numbers \
         come from MB-scale blocks (reproduced by fig7_blocksize with synthetic payload)"
    );
    println!("paper: 125x Bitcoin at 10 MB blocks on the EC2 testbed");
    base.metric(baseline::WALL_CLOCK_S, wall.elapsed().as_secs_f64())
        .write()
        .expect("write baseline");
}
