//! Ablation: the reduction phase (§7.3, Algorithm 7).
//!
//! Reduction converts agreement on an *arbitrary* hash into agreement on
//! one of exactly two values (a block hash or the empty hash) in two fixed
//! steps — "this reduction is important to ensure liveness". This harness
//! starts every user with a *different* block hash (the worst case of a
//! malicious highest-priority proposer sending everyone distinct blocks)
//! and measures how long BinaryBA⋆ takes to conclude with and without the
//! reduction in front of it.
//!
//! With reduction: no hash can win reduction step 1, everyone enters
//! BinaryBA⋆ with the empty hash and concludes at binary step 2.
//! Without reduction: honest inputs stay many-valued; the timeout cascade
//! must burn through the deterministic fallbacks (≥ 5 binary steps, i.e.
//! 3 extra λ_step windows — a full minute at paper timeouts) before the
//! network drifts to the empty hash.

use algorand_ba::{
    BaParams, BaStar, CachedVerifier, ConsensusKind, Output, RoundWeights, VoteMessage, SECOND,
};
use algorand_bench::header;
use algorand_crypto::Keypair;
use std::sync::Arc;

const EMPTY: [u8; 32] = [0xee; 32];
const PREV: [u8; 32] = [0x11; 32];
const SEED: [u8; 32] = [0x22; 32];

/// Runs a 20-user cluster with per-user distinct initial hashes; returns
/// (max binary concluding step, virtual seconds, any final?).
fn run(with_reduction: bool) -> (u32, f64, bool) {
    let n = 20usize;
    let keypairs: Vec<Keypair> = (0..n)
        .map(|i| {
            let mut s = [0u8; 32];
            s[..8].copy_from_slice(&(i as u64 + 1).to_le_bytes());
            Keypair::from_seed(s)
        })
        .collect();
    let weights = Arc::new(RoundWeights::from_pairs(
        keypairs.iter().map(|k| (k.pk, 10u64)),
    ));
    let params = BaParams {
        tau_step: n as f64 * 10.0,
        t_step: 0.685,
        tau_final: n as f64 * 10.0,
        t_final: 0.74,
        max_steps: 30,
        lambda_step: SECOND,
        lambda_block: SECOND,
        disable_backoff: false,
    };
    let verifier = Arc::new(CachedVerifier::new());
    let mut engines = Vec::new();
    let mut pending: Vec<VoteMessage> = Vec::new();
    let mut now = 0u64;
    for (i, kp) in keypairs.iter().enumerate() {
        let mut initial = [0u8; 32];
        initial[0] = 0xb0 + i as u8; // Everyone starts with a distinct hash.
        initial[1] = 0x77;
        let (e, out) = if with_reduction {
            BaStar::start(
                params,
                kp.clone(),
                1,
                SEED,
                PREV,
                initial,
                EMPTY,
                weights.clone(),
                verifier.clone(),
                now,
            )
        } else {
            BaStar::start_without_reduction(
                params,
                kp.clone(),
                1,
                SEED,
                PREV,
                initial,
                EMPTY,
                weights.clone(),
                verifier.clone(),
                now,
            )
        };
        for o in out {
            if let Output::Gossip(v) = o {
                pending.push(v);
            }
        }
        engines.push(e);
    }
    let mut max_step = 0u32;
    let mut any_final = false;
    let mut decided = 0usize;
    for _ in 0..4000 {
        // Deliver to quiescence at the current instant.
        while !pending.is_empty() {
            let batch: Vec<VoteMessage> = std::mem::take(&mut pending);
            for e in engines.iter_mut() {
                for v in &batch {
                    for o in e.on_vote(v, now) {
                        match o {
                            Output::Gossip(nv) => pending.push(nv),
                            Output::BinaryDecided { step, .. } => max_step = max_step.max(step),
                            Output::Decided(d) => {
                                decided += 1;
                                any_final |= d.kind == ConsensusKind::Final;
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        if decided == n {
            break;
        }
        // Advance to the earliest deadline.
        let Some(next) = engines.iter().filter_map(|e| e.next_deadline()).min() else {
            break;
        };
        now = next;
        for e in engines.iter_mut() {
            for o in e.on_tick(now) {
                match o {
                    Output::Gossip(nv) => pending.push(nv),
                    Output::BinaryDecided { step, .. } => max_step = max_step.max(step),
                    Output::Decided(d) => {
                        decided += 1;
                        any_final |= d.kind == ConsensusKind::Final;
                    }
                    _ => {}
                }
            }
        }
    }
    (max_step, now as f64 / 1e6, any_final)
}

fn main() {
    header(
        "Ablation — the reduction phase (§7.3)",
        "reduction reaches two-valued agreement in 2 fixed steps; without it the \
         many-valued start must decay through timeout fallbacks",
    );
    println!("worst case: every one of 20 users starts BA* with a distinct block hash");
    let (step, secs, _final) = run(true);
    println!(
        "  WITH reduction:    concluded at binary step {step} after {secs:.1} virtual seconds"
    );
    let (step_no, secs_no, _) = run(false);
    println!(
        "  WITHOUT reduction: concluded at binary step {step_no} after {secs_no:.1} virtual seconds"
    );
    println!();
    println!(
        "cost of removing it: {} extra BinaryBA* steps ({} extra committee-vote \
         disseminations per disagreeing round), and BinaryBA*'s two-value invariant — \
         which its decide rules and the common-coin analysis assume — no longer holds: \
         an adversary can keep several non-empty values alive simultaneously.",
        step_no.saturating_sub(step),
        step_no.saturating_sub(step)
    );
}
