//! CI smoke test: a small end-to-end payment workload must finalize.
//!
//! Runs a 50-user network with ~200 injected transactions and exits
//! non-zero unless ≥95% of them commit, each exactly once. Fast enough
//! for every CI run (`scripts/ci.sh`); the full-size acceptance sweep
//! lives in `tput_throughput` and `tests/txpool_e2e.rs`.

use algorand_bench::T_CAP;
use algorand_sim::{SimConfig, Simulation};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut cfg = SimConfig::new(50);
    cfg.stake_per_user = 50;
    cfg.tx_rate = 25.0;
    cfg.tx_total = 200;
    cfg.seed = 23;
    let mut sim = Simulation::new(cfg);
    sim.run_rounds(8, T_CAP);

    let stats = sim.tx_stats().expect("workload configured");
    let (p50, p99) = stats
        .latency
        .as_ref()
        .map_or((f64::NAN, f64::NAN), |p| (p.median, p.p99));
    println!(
        "txpool smoke: injected {} committed {} ({:.1} tx/s, latency p50 {:.2}s p99 {:.2}s, {} duplicate commits)",
        stats.injected, stats.committed, stats.tx_per_sec, p50, p99, stats.duplicate_commits
    );
    println!("{}", sim.pipeline_report());
    let ok = stats.injected == 200
        && stats.committed as f64 >= 0.95 * stats.injected as f64
        && stats.duplicate_commits == 0;
    if ok {
        println!("txpool smoke: OK");
        ExitCode::SUCCESS
    } else {
        println!("txpool smoke: FAILED (need >=95% of 200 committed, exactly once)");
        ExitCode::FAILURE
    }
}
