//! Pipeline equivalence harness: runs the 50-user payment workload
//! (the txpool e2e configuration) and prints a digest over every round
//! decision on every honest chain, plus wall-clock time.
//!
//! The digest must be byte-identical across the staged-pipeline
//! refactor and across verify-pool worker counts; wall-clock is the
//! number the verify pool + shared cache are meant to improve.
//!
//! Usage: pipeline_equiv [workers ...]   (default: 0 = serial)

use algorand_crypto::sha256;
use algorand_sim::{SimConfig, Simulation};
use std::time::Instant;

fn config() -> SimConfig {
    let mut cfg = SimConfig::new(50);
    cfg.stake_per_user = 50;
    cfg.tx_rate = 25.0;
    cfg.tx_total = 500;
    cfg.seed = 11;
    cfg
}

fn run(workers: usize) {
    let mut cfg = config();
    let n = cfg.n_users;
    cfg.verify_pool_workers = workers;
    let t0 = Instant::now();
    let mut sim = Simulation::new(cfg);
    sim.run_rounds(15, 30 * 60 * 1_000_000);
    let wall = t0.elapsed();

    // Digest: every honest node's decided (round, block hash) sequence.
    let mut data = Vec::new();
    for i in 0..n {
        let chain = sim.honest_node(i).chain();
        for r in 0..=chain.tip().round {
            if let Some(b) = chain.block_at(r) {
                data.extend_from_slice(&r.to_le_bytes());
                data.extend_from_slice(&b.hash());
            }
        }
        data.push(0xff);
    }
    let digest = sha256(&data);
    let tx = sim.tx_stats().expect("workload ran");
    println!(
        "workers={workers:<2} digest={} rounds={} committed={}/{} wall={:.2}s",
        hex(&digest),
        sim.honest_node(0).chain().tip().round,
        tx.committed,
        tx.injected,
        wall.as_secs_f64(),
    );
    println!("{}", sim.pipeline_report());
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let runs = if args.is_empty() { vec![0] } else { args };
    for w in runs {
        run(w);
    }
}
