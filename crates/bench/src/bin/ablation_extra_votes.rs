//! Ablation: the three extra votes after deciding (§7.4).
//!
//! "It is also crucial that BinaryBA⋆ is able to collect enough votes in
//! the next step to carry forward the value that A already reached
//! consensus on" — so every user that returns consensus votes in the next
//! three steps with the decided value. Without this, a straggler whose
//! step-1 votes were delayed finds the network silent: everyone else has
//! decided and stopped voting, no threshold can ever be crossed again, and
//! the straggler grinds through timeouts to MaxSteps.

use algorand_ba::{
    AblationFlags, BaParams, BaStar, CachedVerifier, Output, RoundWeights, VoteMessage, SECOND,
};
use algorand_bench::header;
use algorand_crypto::Keypair;
use std::sync::Arc;

const EMPTY: [u8; 32] = [0xee; 32];
const BLOCK: [u8; 32] = [0xbb; 32];
const PREV: [u8; 32] = [0x11; 32];
const SEED: [u8; 32] = [0x22; 32];

/// Runs 19 well-connected users plus one straggler whose incoming votes
/// are delayed by a bit more than λ_step. Returns the straggler's fate:
/// `Some(step)` it decided at, or `None` if it hung at MaxSteps.
fn run(disable_extra_votes: bool) -> Option<u32> {
    let n = 20usize;
    let straggler = n - 1;
    let keypairs: Vec<Keypair> = (0..n)
        .map(|i| {
            let mut s = [0u8; 32];
            s[..8].copy_from_slice(&(i as u64 + 1).to_le_bytes());
            Keypair::from_seed(s)
        })
        .collect();
    let weights = Arc::new(RoundWeights::from_pairs(
        keypairs.iter().map(|k| (k.pk, 10u64)),
    ));
    let params = BaParams {
        tau_step: n as f64 * 10.0,
        t_step: 0.685,
        tau_final: n as f64 * 10.0,
        t_final: 0.74,
        max_steps: 12,
        lambda_step: SECOND,
        lambda_block: SECOND,
        disable_backoff: false,
    };
    let verifier = Arc::new(CachedVerifier::new());
    let mut engines = Vec::new();
    let mut pending: Vec<VoteMessage> = Vec::new();
    for kp in keypairs.iter() {
        let (mut e, out) = BaStar::start_without_reduction(
            params,
            kp.clone(),
            1,
            SEED,
            PREV,
            BLOCK,
            EMPTY,
            weights.clone(),
            verifier.clone(),
            0,
        );
        e.set_ablation(AblationFlags {
            disable_common_coin: false,
            disable_extra_votes,
        });
        for o in out {
            if let Output::Gossip(v) = o {
                pending.push(v);
            }
        }
        engines.push(e);
    }
    // Phase 1: deliver step-1 votes to everyone except the straggler; the
    // fast 19 decide BLOCK at step 1 (190 > 171.25 even without the
    // straggler's vote).
    let step1: Vec<VoteMessage> = std::mem::take(&mut pending);
    let mut straggler_decided: Option<u32> = None;
    for (i, e) in engines.iter_mut().enumerate() {
        if i == straggler {
            continue;
        }
        for v in &step1 {
            for o in e.on_vote(v, 0) {
                match o {
                    Output::Gossip(nv) => pending.push(nv),
                    Output::BinaryDecided { .. } => {}
                    _ => {}
                }
            }
        }
    }
    // Phase 2: the straggler's λ_step expires; it times out step 1 and
    // moves to step 2 (voting BLOCK again, per the timeout rule).
    let mut now = params.lambda_step + 1;
    for o in engines[straggler].on_tick(now) {
        if let Output::Gossip(v) = o {
            pending.push(v);
        }
    }
    // Phase 3: the delayed traffic finally arrives at the straggler — the
    // original step-1 votes plus whatever the deciders emitted (with the
    // rule on: votes for steps 2–4 and the final step; with it off:
    // nothing).
    let late: Vec<VoteMessage> = step1.iter().cloned().chain(pending.drain(..)).collect();
    for v in &late {
        for o in engines[straggler].on_vote(v, now) {
            if let Output::BinaryDecided { step, .. } = o {
                straggler_decided = Some(step);
            }
        }
    }
    // Phase 4: let the straggler run out its timeouts.
    while straggler_decided.is_none() && !engines[straggler].is_finished() {
        let Some(d) = engines[straggler].next_deadline() else {
            break;
        };
        now = d;
        for o in engines[straggler].on_tick(now) {
            if let Output::BinaryDecided { step, .. } = o {
                straggler_decided = Some(step);
            }
        }
    }
    straggler_decided
}

fn main() {
    header(
        "Ablation — the three post-decision votes (§7.4)",
        "deciders vote the next three steps so stragglers can still cross thresholds",
    );
    println!("scenario: 19 users decide at step 1; one straggler's inbox is delayed past λ_step");
    match run(false) {
        Some(step) => {
            println!("  WITH extra votes:    straggler caught up and decided at step {step}")
        }
        None => println!("  WITH extra votes:    straggler hung (unexpected)"),
    }
    match run(true) {
        Some(step) => {
            println!("  WITHOUT extra votes: straggler decided at step {step} (unexpected)")
        }
        None => println!(
            "  WITHOUT extra votes: straggler starved below every threshold and hung at MaxSteps"
        ),
    }
}
