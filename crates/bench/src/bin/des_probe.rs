//! Scratch profiling probe for the parallel engine (not a CI gate).

use algorand_sim::{DesConfig, Micros, ParallelSim, SimConfig, Simulation};
use std::time::Instant;

const SEC: Micros = 1_000_000;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let secs: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20);
    let engine = args.get(3).map(String::as_str).unwrap_or("des");
    let t0 = Instant::now();
    match engine {
        "old" => {
            let mut sim = Simulation::new(SimConfig::new(n));
            eprintln!("[probe] constructed in {:.2}s", t0.elapsed().as_secs_f64());
            for t in 1..=secs {
                sim.run_until(t * SEC);
                eprintln!(
                    "[probe] old n={n} virtual {t}s tip={} wall {:.2}s",
                    sim.honest_node(0).chain().tip().round,
                    t0.elapsed().as_secs_f64()
                );
            }
        }
        _ => {
            let mut sim = ParallelSim::new(DesConfig {
                sim: SimConfig::new(n),
                workers: 1,
                trace_node_budget: 0,
            });
            eprintln!("[probe] constructed in {:.2}s", t0.elapsed().as_secs_f64());
            for t in 1..=secs {
                sim.run_until(t * SEC);
                eprintln!(
                    "[probe] des n={n} virtual {t}s tip={} wall {:.2}s",
                    sim.tip_round(0),
                    t0.elapsed().as_secs_f64()
                );
            }
        }
    }
}
