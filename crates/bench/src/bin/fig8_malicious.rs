//! Figure 8: round latency vs the fraction of malicious users.
//!
//! The paper's attack (§10.4): the highest-priority proposer equivocates
//! (one block version to half its peers, another to the rest) and
//! malicious committee members vote for both versions. Result: latency is
//! "not significantly affected" from 0% to 20% malicious weight.

use algorand_bench::{fmt_percentiles, header, run_experiment};
use algorand_sim::SimConfig;

fn main() {
    header(
        "Figure 8 — round latency vs fraction of malicious users",
        "0..20% malicious: latency not significantly affected (~12 s)",
    );
    let n_users = 60;
    let rounds = 3;
    println!(
        "{:>11} {:>8}   {:>6} {:>6} {:>6} {:>6} {:>6}",
        "malicious", "rounds", "min", "p25", "median", "p75", "max"
    );
    let mut medians = Vec::new();
    for pct in [0usize, 5, 10, 15, 20] {
        let mut cfg = SimConfig::new(n_users);
        cfg.n_malicious = n_users * pct / 100;
        cfg.payload_bytes = 16 * 1024;
        cfg.seed = 17;
        let (_sim, stats) = run_experiment(cfg, rounds);
        let avg = |f: fn(&algorand_sim::RoundStats) -> f64| {
            stats.iter().map(f).sum::<f64>() / stats.len().max(1) as f64
        };
        let p = algorand_sim::Percentiles {
            min: avg(|s| s.completion.min),
            p25: avg(|s| s.completion.p25),
            median: avg(|s| s.completion.median),
            p75: avg(|s| s.completion.p75),
            p99: avg(|s| s.completion.p99),
            max: avg(|s| s.completion.max),
        };
        println!("{:>10}% {:>8}   {}", pct, stats.len(), fmt_percentiles(&p));
        medians.push(p.median);
    }
    println!();
    let clean = medians[0];
    let attacked = medians[medians.len() - 1];
    println!(
        "shape check: median latency {:.2}s (0% malicious) vs {:.2}s (20% malicious): {:.2}x",
        clean,
        attacked,
        attacked / clean
    );
    println!("paper: Algorand is not significantly affected by this attack");
}
