//! Figure 3: committee size τ sufficient for safety vs. the honest
//! fraction h, at violation probability 5×10⁻⁹.
//!
//! The paper's curve runs from h = 76% (τ → thousands) to h = 90%
//! (τ → hundreds) and marks (h = 80%, τ = 2000, T = 0.685) as the chosen
//! operating point.

use algorand_bench::header;
use algorand_sortition::committee::{figure3_curve, violation_probability};

fn main() {
    header(
        "Figure 3 — committee size vs honest fraction (violation ≤ 5e-9)",
        "curve from ~4500 at h=76% down to <500 at h=90%; star at (80%, 2000)",
    );
    let hs: Vec<f64> = (76..=90).map(|pct| pct as f64 / 100.0).collect();
    println!("{:>6} {:>10} {:>8}", "h (%)", "tau", "T");
    for point in figure3_curve(&hs) {
        println!(
            "{:>6.0} {:>10} {:>8.3}",
            point.honest_fraction * 100.0,
            point.tau,
            point.threshold
        );
    }
    println!();
    let p = violation_probability(2000.0, 0.685, 0.80);
    println!("check at the paper's operating point (h=80%, tau=2000, T=0.685):");
    println!("  violation probability = {p:.3e}  (paper target: 5e-9)");
    assert!(p < 5e-9, "paper operating point must satisfy the target");
}
