//! Figure 6: round latency from 50,000 to 500,000 users (500 users/VM).
//!
//! The paper's configuration is bandwidth-bound — 500 processes share each
//! VM's NIC, and the paper replaces signature verification with sleeps.
//! We mirror that substitution with the analytic epidemic model (DESIGN.md
//! §4.6) parameterized identically: 1 Gbit/s ÷ 500 per process, paper
//! committees, 1 MB blocks, λ_step raised to 60 s as in the paper. The
//! expected shape: ~4× the Figure 5 latency, and roughly flat up to 500k
//! users.

use algorand_bench::baseline::{self, Baseline};
use algorand_bench::header;
use algorand_core::AlgorandParams;
use algorand_sim::EpidemicConfig;
use std::time::Instant;

fn main() {
    let wall = Instant::now();
    header(
        "Figure 6 — round latency at 50k..500k users (bandwidth-bound)",
        "~4x Figure 5's latency; roughly flat from 50k to 500k users",
    );
    let params = AlgorandParams::paper();
    println!("{:>9} {:>7} {:>16}", "users", "hops", "round latency(s)");
    let mut first = None;
    let mut last = 0.0;
    let mut base = Baseline::new("fig6_latency_largescale");
    for n in [50_000usize, 100_000, 150_000, 250_000, 350_000, 500_000] {
        let cfg = EpidemicConfig::figure6(n);
        let latency = cfg.round_latency_s(&params);
        println!("{:>9} {:>7.0} {:>16.1}", n, cfg.hops(), latency);
        base = base.metric(&format!("p50_latency_s_users_{n}"), latency);
        first.get_or_insert(latency);
        last = latency;
    }
    let first = first.unwrap();
    println!();
    println!(
        "scaling check: 10x the users -> {:.2}x the latency (paper: roughly flat)",
        last / first
    );
    // And the ~4x relation to the 20 Mbit/s regime of Figure 5:
    let mut fig5_regime = EpidemicConfig::figure6(50_000);
    fig5_regime.bandwidth_bps = 20e6;
    let ratio = first / fig5_regime.round_latency_s(&params);
    println!("regime check: fig6 latency / fig5 latency at 50k users = {ratio:.1}x (paper: ~4x)");
    base.metric(baseline::P50_LATENCY_S, last)
        .metric("latency_ratio_10x_users", last / first)
        .metric("regime_ratio_vs_fig5", ratio)
        .metric(baseline::WALL_CLOCK_S, wall.elapsed().as_secs_f64())
        .write()
        .expect("write baseline");
}
