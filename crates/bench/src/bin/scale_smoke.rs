//! Scale gate: 1,000 real protocol nodes per run.
//!
//! The paper's testbed is 1,000 EC2 VMs (§10); this gate proves the
//! parallel discrete-event engine carries the same population in a
//! CI-feasible wall-clock budget, and that worker threads are invisible
//! to results:
//!
//!   1. a 1,000-node payment run must finalize ≥ 5 rounds,
//!   2. the final-chain digest must be identical at 1 and 4 workers,
//!   3. the parallel engine (4 workers) must finish no slower than the
//!      legacy single-threaded event loop on the same configuration,
//!   4. a traced run under a per-node retention budget must export
//!      under a fixed byte ceiling with exact `trimmed` accounting.
//!
//! Wall-clock numbers go to stdout (CI log) and `results/scale.txt`.
//! Exit code is non-zero on any gate failure.

use algorand_bench::baseline::{self, Baseline};
use algorand_sim::{DesConfig, Micros, ParallelSim, SimConfig, Simulation};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

const SEC: Micros = 1_000_000;
const N: usize = 1_000;
const ROUNDS: u64 = 5;
const T_CAP: Micros = 600 * SEC;

fn config() -> SimConfig {
    let mut cfg = SimConfig::new(N);
    cfg.seed = 1_000;
    cfg.tx_rate = 20.0;
    cfg.tx_total = 60;
    cfg
}

fn min_tip(sim: &ParallelSim) -> u64 {
    (0..N).map(|i| sim.tip_round(i)).min().unwrap()
}

fn run_des(workers: usize) -> (ParallelSim, f64) {
    let mut sim = ParallelSim::new(DesConfig {
        sim: config(),
        workers,
        trace_node_budget: 0,
    });
    let t0 = Instant::now();
    // Driven in slices so CI logs show liveness on a 20+ minute gate.
    let mut t = 0;
    while min_tip(&sim) < ROUNDS && t < T_CAP {
        t += 10 * SEC;
        sim.run_until(t);
        eprintln!(
            "[scale] des workers={workers}: virtual {:>4}s, min tip {}, wall {:.0}s",
            t / SEC,
            min_tip(&sim),
            t0.elapsed().as_secs_f64()
        );
    }
    (sim, t0.elapsed().as_secs_f64())
}

fn main() -> ExitCode {
    let mut ok = true;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "scale smoke: {N} nodes, target {ROUNDS} rounds (seed {})",
        config().seed
    );

    // Gate 1+2: the parallel engine at 1 and 4 workers.
    let (des1, wall1) = run_des(1);
    let (des4, wall4) = run_des(4);
    let tip1 = min_tip(&des1);
    let tip4 = min_tip(&des4);
    let _ = writeln!(
        out,
        "  des workers=1: {tip1} rounds in {wall1:.2}s wall ({:.1}s virtual)",
        des1.now() as f64 / 1e6
    );
    let _ = writeln!(
        out,
        "  des workers=4: {tip4} rounds in {wall4:.2}s wall ({:.1}s virtual)",
        des4.now() as f64 / 1e6
    );
    if tip1 < ROUNDS || tip4 < ROUNDS {
        let _ = writeln!(out, "  FAILED: fewer than {ROUNDS} rounds finalized");
        ok = false;
    }
    if des1.chain_digest() != des4.chain_digest() {
        let _ = writeln!(out, "  FAILED: digest differs between 1 and 4 workers");
        ok = false;
    } else {
        let _ = writeln!(out, "  digest identical across worker counts: OK");
    }
    if let Some(stats) = des4.tx_stats() {
        let _ = writeln!(
            out,
            "  workload: {}/{} txs committed",
            stats.committed, stats.injected
        );
    }

    // Gate 3: the legacy single-threaded event loop on the same config.
    let mut old = Simulation::new(config());
    let t0 = Instant::now();
    let mut t = 0;
    let old_done = |s: &Simulation| {
        (0..N)
            .map(|i| s.honest_node(i).chain().tip().round)
            .min()
            .unwrap()
            >= ROUNDS
    };
    while !old_done(&old) && t < T_CAP {
        t += 10 * SEC;
        old.run_until(t);
        eprintln!(
            "[scale] legacy engine: virtual {:>4}s, wall {:.0}s",
            t / SEC,
            t0.elapsed().as_secs_f64()
        );
    }
    let wall_old = t0.elapsed().as_secs_f64();
    let old_tip = (0..N)
        .map(|i| old.honest_node(i).chain().tip().round)
        .min()
        .unwrap();
    let _ = writeln!(
        out,
        "  legacy engine: {old_tip} rounds in {wall_old:.2}s wall ({:.1}s virtual)",
        old.now() as f64 / 1e6
    );
    // The wall-clock gate compares the engine at whichever worker count
    // suits this machine: on a single-core runner the 4-worker leg pays
    // pure thread overhead (it exists to exercise the cross-thread
    // determinism path at scale, and does), so the fair perf claim is
    // best-of — on a multi-core runner that is the 4-worker leg.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (best_label, best) = if wall4 <= wall1 {
        ("workers=4", wall4)
    } else {
        ("workers=1", wall1)
    };
    let _ = writeln!(
        out,
        "  speedup vs legacy: {:.2}x (des {best_label}; {cores} core(s) available)",
        wall_old / best
    );
    if best > wall_old {
        let _ = writeln!(
            out,
            "  FAILED: parallel engine slower than the legacy event loop"
        );
        ok = false;
    }

    // Gate 4: traced at scale under a per-node retention budget.
    let budget = 64;
    let mut traced = ParallelSim::new(DesConfig {
        sim: {
            let mut cfg = config();
            cfg.trace = true;
            cfg
        },
        workers: 4,
        trace_node_budget: budget,
    });
    let t0 = Instant::now();
    // Two rounds suffice for the retention-budget gate; the untraced
    // legs above already prove 5-round capacity.
    traced.run_rounds(2, T_CAP);
    let wall_traced = t0.elapsed().as_secs_f64();
    let jsonl = traced.export_trace("scale-smoke");
    // Budgeted events (generous 400 B/line) + per-node bandwidth
    // summaries + global summaries.
    let ceiling = budget * N * 400 + N * 2 * 200 + 64 * 1024;
    let _ = writeln!(
        out,
        "  traced (budget {budget}/node): {} retained, {} trimmed, {} dropped, \
         {} KiB export in {wall_traced:.2}s wall",
        traced.trace_retained(),
        traced.trace_trimmed(),
        traced.trace_dropped(),
        jsonl.len() / 1024
    );
    if jsonl.len() >= ceiling {
        let _ = writeln!(
            out,
            "  FAILED: trimmed export {} B over the {ceiling} B ceiling",
            jsonl.len()
        );
        ok = false;
    }
    if traced.trace_trimmed() > 0 && !jsonl.lines().next().unwrap_or("").contains("\"trimmed\":") {
        let _ = writeln!(out, "  FAILED: trimmed events not accounted in the header");
        ok = false;
    }
    if min_tip(&traced) < 2 {
        let _ = writeln!(out, "  FAILED: traced run finalized fewer than 2 rounds");
        ok = false;
    }

    let _ = writeln!(out, "scale smoke: {}", if ok { "OK" } else { "FAILED" });
    print!("{out}");
    if let Err(e) = std::fs::write("results/scale.txt", &out) {
        eprintln!("warning: could not write results/scale.txt: {e}");
    }
    Baseline::new("scale_smoke")
        .metric("nodes", N as f64)
        .metric("rounds_finalized", tip4 as f64)
        .metric("wall_s_des_workers1", wall1)
        .metric("wall_s_des_workers4", wall4)
        .metric("wall_s_legacy", wall_old)
        .metric("speedup_vs_legacy", wall_old / best)
        .metric("wall_s_traced", wall_traced)
        .metric(
            baseline::WALL_CLOCK_S,
            wall1 + wall4 + wall_old + wall_traced,
        )
        .write()
        .expect("write baseline");
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
