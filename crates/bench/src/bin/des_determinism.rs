//! Worker-count determinism gate for the parallel discrete-event engine.
//!
//! Runs every scripted chaos scenario from the chaos suite on the
//! parallel engine at 1, 2, and 4 workers with the same `(seed,
//! schedule)` and demands **byte-identical** final-chain digests,
//! invariant-monitor verdicts, and exported trace JSONL. This is the
//! engine's core contract: worker threads change wall-clock, never
//! results — every shared-state effect runs in a sequential phase in
//! canonical `(time, class, seq)` order.
//!
//! Exit code is non-zero on any divergence, so CI gates on it.

use algorand_sim::{DesConfig, FaultSchedule, Micros, ParallelSim, SimConfig};
use std::process::ExitCode;

const SEC: Micros = 1_000_000;

struct Scenario {
    name: &'static str,
    n: usize,
    n_malicious: usize,
    seed: u64,
    schedule: fn(usize) -> FaultSchedule,
    horizon: Micros,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "partition/heal (sym)",
            n: 16,
            n_malicious: 0,
            seed: 11,
            schedule: |n| FaultSchedule::new().bipartition(n, n / 2, 30 * SEC, 90 * SEC),
            horizon: 200 * SEC,
        },
        Scenario {
            name: "partition (asym)",
            n: 12,
            n_malicious: 0,
            seed: 12,
            schedule: |n| FaultSchedule::new().asymmetric_partition(n, 10, 30 * SEC, 90 * SEC),
            horizon: 180 * SEC,
        },
        Scenario {
            name: "30% loss window",
            n: 12,
            n_malicious: 0,
            seed: 13,
            schedule: |_| FaultSchedule::new().loss_window(0.30, 20 * SEC, 80 * SEC),
            horizon: 150 * SEC,
        },
        Scenario {
            name: "crash majority 9/16",
            n: 16,
            n_malicious: 0,
            seed: 14,
            schedule: |_| {
                let mut s = FaultSchedule::new();
                for node in 0..9 {
                    s = s.crash_restart(node, 40 * SEC, 100 * SEC);
                }
                s
            },
            horizon: 220 * SEC,
        },
        Scenario {
            name: "partition + equivocators",
            n: 20,
            n_malicious: 4,
            seed: 15,
            schedule: |n| FaultSchedule::new().bipartition(n, n / 2, 30 * SEC, 90 * SEC),
            horizon: 200 * SEC,
        },
        Scenario {
            name: "rolling restarts 6/12",
            n: 12,
            n_malicious: 0,
            seed: 16,
            schedule: |_| {
                let mut s = FaultSchedule::new();
                for node in 0..6 {
                    let down = (20 + 15 * node as u64) * SEC;
                    s = s.crash_restart(node, down, down + 30 * SEC);
                }
                s
            },
            horizon: 180 * SEC,
        },
    ]
}

/// One traced, monitored run at the given worker count.
fn run_once(s: &Scenario, workers: usize) -> ([u8; 32], String, String) {
    let mut cfg = SimConfig::new(s.n);
    cfg.n_malicious = s.n_malicious;
    cfg.seed = s.seed;
    cfg.trace = true;
    cfg.monitor = true;
    let mut sim = ParallelSim::new(DesConfig {
        sim: cfg,
        workers,
        trace_node_budget: 0,
    });
    sim.set_fault_schedule((s.schedule)(s.n));
    sim.run_until(s.horizon);
    let digest = sim.chain_digest();
    let monitor = format!("{}", sim.monitor_report().expect("monitor attached"));
    let trace = sim.export_trace(s.name);
    (digest, monitor, trace)
}

fn hex8(d: &[u8; 32]) -> String {
    d[..4].iter().map(|b| format!("{b:02x}")).collect()
}

fn main() -> ExitCode {
    println!("parallel-engine determinism: digests, monitor verdicts, traces vs worker count");
    println!();
    let mut failed = false;
    for s in scenarios() {
        let (d1, m1, t1) = run_once(&s, 1);
        let mut verdict = "identical";
        for workers in [2usize, 4] {
            let (d, m, t) = run_once(&s, workers);
            if d != d1 {
                verdict = "DIGEST DIVERGED";
            } else if m != m1 {
                verdict = "MONITOR DIVERGED";
            } else if t != t1 {
                verdict = "TRACE DIVERGED";
            }
        }
        let clean = m1.starts_with("invariant monitor: 0 violation");
        println!(
            "{:<26} n={:<3} digest={} trace={:>8} B workers 1/2/4: {}{}",
            s.name,
            s.n,
            hex8(&d1),
            t1.len(),
            verdict,
            if clean { "" } else { " [monitor violations]" },
        );
        if verdict != "identical" || !clean {
            failed = true;
        }
    }
    println!();
    if failed {
        println!("FAIL: results depend on worker count (or invariants violated)");
        return ExitCode::FAILURE;
    }
    println!("OK: every scenario is byte-identical at 1, 2, and 4 workers");
    ExitCode::SUCCESS
}
