//! Figure 4: the implementation parameter table.
//!
//! Prints the parameter set and asserts it matches the paper's values,
//! plus the derived quantities the other experiments rely on.

use algorand_bench::header;
use algorand_core::AlgorandParams;

fn main() {
    header(
        "Figure 4 — implementation parameters",
        "h=80%, R=1000, tau_proposer=26, tau_step=2000, T_step=68.5%, \
         tau_final=10000, T_final=74%, MaxSteps=150, priorities 5s, \
         block 1min, step 20s, stepvar 5s",
    );
    let p = AlgorandParams::paper();
    let sec = |us: u64| us as f64 / 1e6;
    println!("{:<14} {:<46} {:>12}", "parameter", "meaning", "value");
    let rows: Vec<(&str, &str, String)> = vec![
        (
            "h",
            "assumed fraction of honest weighted users",
            format!("{:.0}%", p.honest_fraction * 100.0),
        ),
        (
            "R",
            "seed refresh interval (# of rounds)",
            format!("{}", p.chain.seed_refresh_interval),
        ),
        (
            "tau_proposer",
            "expected # of block proposers",
            format!("{}", p.tau_proposer),
        ),
        (
            "tau_step",
            "expected # of committee members",
            format!("{}", p.ba.tau_step),
        ),
        (
            "T_step",
            "threshold of tau_step for BA*",
            format!("{:.1}%", p.ba.t_step * 100.0),
        ),
        (
            "tau_final",
            "expected # of final committee members",
            format!("{}", p.ba.tau_final),
        ),
        (
            "T_final",
            "threshold of tau_final for BA*",
            format!("{:.0}%", p.ba.t_final * 100.0),
        ),
        (
            "MaxSteps",
            "maximum number of steps in BinaryBA*",
            format!("{}", p.ba.max_steps),
        ),
        (
            "lambda_priority",
            "time to gossip sortition proofs",
            format!("{} s", sec(p.lambda_priority)),
        ),
        (
            "lambda_block",
            "timeout for receiving a block",
            format!("{} s", sec(p.ba.lambda_block)),
        ),
        (
            "lambda_step",
            "timeout for a BA* step",
            format!("{} s", sec(p.ba.lambda_step)),
        ),
        (
            "lambda_stepvar",
            "estimate of BA* completion variance",
            format!("{} s", sec(p.lambda_stepvar)),
        ),
    ];
    for (name, meaning, value) in rows {
        println!("{name:<14} {meaning:<46} {value:>12}");
    }

    // Pin the table to the paper.
    assert_eq!(p.honest_fraction, 0.80);
    assert_eq!(p.chain.seed_refresh_interval, 1000);
    assert_eq!(p.tau_proposer, 26.0);
    assert_eq!(p.ba.tau_step, 2000.0);
    assert_eq!(p.ba.t_step, 0.685);
    assert_eq!(p.ba.tau_final, 10_000.0);
    assert_eq!(p.ba.t_final, 0.74);
    assert_eq!(p.ba.max_steps, 150);

    println!();
    println!("derived:");
    println!(
        "  step vote threshold  T_step*tau_step  = {:.0} votes",
        p.ba.step_vote_threshold()
    );
    println!(
        "  final vote threshold T_final*tau_final = {:.0} votes",
        p.ba.final_vote_threshold()
    );
    println!(
        "  proposal wait lambda_priority+lambda_stepvar = {} s",
        sec(p.proposal_wait())
    );
}
