//! Localhost deployment gate: real processes must match the simulator.
//!
//! Launches N `algorand-node` processes over loopback TCP and checks the
//! two properties the node subsystem exists to provide:
//!
//! 1. **Simulator equivalence** — with the same seed, keys, and
//!    preloaded workload, all N processes finalize the *exact* chain
//!    digest the discrete-event simulator produces. The sans-io core is
//!    the same code in both worlds; this proves the transport, WAL and
//!    clock plumbing around it preserve its behavior.
//! 2. **Crash recovery** — a process `kill -9`'d mid-deployment and
//!    restarted rejoins: it replays its WAL from disk, fetches what it
//!    missed via blocksync catch-up batches, and finalizes the same
//!    chain as the survivors.
//! 3. **Live telemetry** — mid-run, every process answers a TELEMETRY
//!    scrape on its peer port: the merged cluster health report (written
//!    to `results/cluster_health.txt`) must show five clean in-process
//!    monitor verdicts and non-zero transport/WAL/pipeline counters.
//!    And the asymmetry that makes `crash.jsonl` trustworthy: `kill -9`
//!    leaves no dump (only a panic writes one).
//! 4. **Cluster trace plane** — mid-run, the sibling `trace_collect`
//!    binary drains every process's bounded trace buffer over the
//!    TELEMETRY `TRACE_DRAIN` op, merges the five per-process traces
//!    onto one clock (finalized-round anchors), and the merged critical
//!    path must cover ≥ 90% of every finalized round's latency with
//!    contiguous chains crossing process boundaries. Artifacts land in
//!    `results/cluster_trace.{jsonl,txt}`, a raw scraped exposition in
//!    `results/cluster_metrics.txt`, and the headline numbers in
//!    `results/BENCH_localnet.json`.
//!
//! Exit code 0 only if every assertion holds, so `scripts/ci.sh` can
//! gate on it. Configuration is compiled in (it *is* the test).

use algorand_bench::baseline::{self, Baseline};
use algorand_node::config::{derive_keypairs, workload_transactions};
use algorand_node::telemetry::{scrape_metrics, ClusterHealth};
use algorand_node::NodeConfig;
use algorand_obs::merge::parse_merged;
use algorand_obs::{critical_paths, NO_NODE};
use algorand_sim::{SimConfig, Simulation};
use std::collections::{BTreeSet, HashMap};
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

const N: usize = 5;
const SEED: u64 = 7;
const TX_COUNT: usize = 24;
/// Phase A target: all five processes, digest checked against the sim.
/// (Chains run a little past the target during the linger grace, so
/// phase B's goals are set relative to where phase A actually ended.)
const TARGET_A: u64 = 3;
const STAKE: u64 = 10;

fn main() {
    let t0 = Instant::now();
    let root = std::env::temp_dir().join(format!("algorand-localnet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create scratch dir");

    // --- Reference run: the simulator, same seed/keys/workload. -------
    let cfgs = node_configs(&root);
    let reference = simulator_digest(&cfgs[0]);
    println!("[localnet] simulator digest through round {TARGET_A}: {reference}");

    // --- Phase A: five real processes must reproduce it. --------------
    println!("[localnet] phase A: {N} processes -> round {TARGET_A}");
    let mut cfgs = cfgs;
    for cfg in &mut cfgs {
        cfg.target_round = TARGET_A;
        cfg.start_at_ms = unix_ms() + 8_000;
    }
    let children = spawn_all(&root, &mut cfgs);

    // --- Mid-run telemetry: scrape all N while they are consensing. ---
    // Wait until every node has persisted a round, so the core counters
    // the health report asserts on are necessarily non-zero.
    for cfg in &cfgs {
        let dir = cfg.wal_dir.clone();
        wait_until(
            || status_field(&dir, "walled").is_some_and(|w| w >= 1),
            Duration::from_secs(120),
            "every node to persist round 1",
        );
    }
    let addrs: Vec<String> = cfgs
        .iter()
        .map(|c| read_trimmed(&c.wal_dir.join("addr")))
        .collect();
    let health = ClusterHealth::collect_with_rates(
        &addrs,
        Duration::from_secs(10),
        Duration::from_millis(750),
    );
    let report = health.render();
    println!("{report}");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/cluster_health.txt", &report).expect("write cluster_health.txt");
    assert!(
        health.unreachable.is_empty(),
        "every process must answer a TELEMETRY scrape: {:?}",
        health.unreachable
    );
    assert_eq!(health.nodes.len(), N);
    for n in &health.nodes {
        assert_eq!(
            n.verdict(),
            "clean",
            "{}: in-process monitor flagged violations mid-run",
            n.addr
        );
        assert!(n.pipeline_ingested > 0, "{}: pipeline idle", n.addr);
        assert!(n.frames_sent > 0, "{}: transport idle", n.addr);
        assert!(n.wal_entries > 0, "{}: WAL idle", n.addr);
    }
    assert!(
        health.digests_agree(),
        "nodes at the same tip must agree on the tip hash"
    );
    println!("[localnet] telemetry ok: {N} clean scrapes mid-run");

    // --- Cluster trace plane: drain all N processes mid-run. ----------
    // Archive one raw exposition alongside the health report — the
    // checked-in copy pins the expose parser's exact round trip.
    let exposition =
        scrape_metrics(&addrs[0], Duration::from_secs(10)).expect("scrape node 0 exposition");
    std::fs::write("results/cluster_metrics.txt", &exposition).expect("write cluster_metrics.txt");
    let status = Command::new(collector_binary())
        .arg("--dir")
        .arg(&root)
        .args(["--out", "results/cluster_trace.jsonl"])
        .args(["--report", "results/cluster_trace.txt"])
        .status()
        .expect("spawn trace_collect");
    assert!(status.success(), "trace_collect exited unsuccessfully");
    let artifact =
        std::fs::read_to_string("results/cluster_trace.jsonl").expect("read merged artifact");
    let merged = parse_merged(&artifact).expect("merged artifact parses");
    assert_eq!(
        merged.nodes.len(),
        N,
        "trace_collect must drain all {N} processes"
    );
    assert_eq!(
        merged.dropped, 0,
        "no process may have dropped trace events"
    );
    let paths = critical_paths(&merged.events);
    assert!(
        !paths.is_empty(),
        "merged trace must yield at least one finalized round's critical path"
    );
    let mut cross_chains = 0usize;
    for p in &paths {
        for pair in p.edges.windows(2) {
            assert_eq!(
                pair[1].start, pair[0].end,
                "round {}: merged chain not contiguous at t={}us",
                p.round, pair[0].end
            );
        }
        if p.final_consensus {
            assert!(
                p.coverage() >= 0.90,
                "round {}: merged critical path covers {:.1}% of finalization latency, \
                 below the 90% bar",
                p.round,
                p.coverage() * 100.0
            );
        }
        let processes: BTreeSet<u32> = p
            .edges
            .iter()
            .flat_map(|e| [e.from_node, e.to_node])
            .filter(|n| *n != NO_NODE)
            .collect();
        if processes.len() > 1 {
            cross_chains += 1;
        }
    }
    assert!(
        cross_chains > 0,
        "at least one merged chain must cross a process boundary"
    );
    println!(
        "[localnet] cluster trace ok: {} rounds profiled across {N} processes, \
         {cross_chains} cross-process chains",
        paths.len()
    );

    let summaries = wait_all(children, Duration::from_secs(180));
    for (i, ok) in summaries.iter().enumerate() {
        assert!(*ok, "phase A: node {i} exited unsuccessfully");
    }
    for (i, cfg) in cfgs.iter().enumerate() {
        let digest = read_trimmed(&cfg.wal_dir.join("digest"));
        assert_eq!(
            digest, reference,
            "phase A: node {i} digest disagrees with simulator"
        );
    }
    println!("[localnet] phase A ok: all {N} digests match the simulator");

    // --- Phase B: continue from the WALs; kill -9 one node mid-run. ---
    // Thresholds are relative to the longest phase-A WAL so the stale
    // status files (and linger overshoot) cannot satisfy them early.
    let phase_a_tip = cfgs
        .iter()
        .map(|c| status_field(&c.wal_dir, "walled").unwrap_or(TARGET_A))
        .max()
        .unwrap();
    let target_b = phase_a_tip + 5;
    let kill_after = phase_a_tip + 2;
    println!(
        "[localnet] phase B: continue -> round {target_b}, kill -9 node {}",
        N - 1
    );
    for cfg in &mut cfgs {
        cfg.target_round = target_b;
        cfg.linger_secs = 25;
        cfg.start_at_ms = unix_ms() + 8_000;
    }
    let mut children: Vec<Option<Child>> =
        spawn_all(&root, &mut cfgs).into_iter().map(Some).collect();

    let victim = N - 1;
    let victim_dir = cfgs[victim].wal_dir.clone();
    // Let the victim make fresh progress past its phase-A WAL first, so
    // the restart demonstrably replays *this* deployment's history too.
    wait_until(
        || status_field(&victim_dir, "walled").is_some_and(|w| w >= kill_after),
        Duration::from_secs(120),
        "victim to persist fresh phase-B rounds",
    );
    let mut child = children[victim].take().expect("victim running");
    child.kill().expect("kill -9 victim"); // SIGKILL on unix.
    let _ = child.wait();
    // SIGKILL gives the process no chance to run its panic hook, so no
    // crash dump may exist — the dump's presence must mean "panicked".
    assert!(
        !victim_dir.join("crash.jsonl").exists(),
        "kill -9 must not produce a crash.jsonl (only a panic does)"
    );
    // Stay dead for several rounds: a short outage rejoins through
    // ordinary vote gossip, and only a real gap forces blocksync.
    println!("[localnet] killed node {victim}; restarting in 20s");
    std::thread::sleep(Duration::from_secs(20));
    children[victim] = Some(spawn_node(&root, victim));

    let summaries = wait_all(
        children.into_iter().flatten().collect(),
        Duration::from_secs(240),
    );
    for (i, ok) in summaries.iter().enumerate() {
        assert!(*ok, "phase B: node {i} exited unsuccessfully");
    }
    let digests: Vec<String> = cfgs
        .iter()
        .map(|c| read_trimmed(&c.wal_dir.join("digest")))
        .collect();
    for (i, d) in digests.iter().enumerate() {
        assert_eq!(
            *d, digests[0],
            "phase B: node {i} digest disagrees with node 0"
        );
    }
    let replayed = status_field(&victim_dir, "replayed").unwrap_or(0);
    let catchups = status_field(&victim_dir, "catchups").unwrap_or(0);
    assert!(
        replayed >= kill_after,
        "victim should have replayed its WAL through round {kill_after}, got {replayed}"
    );
    assert!(
        catchups > 0,
        "victim should have applied blocksync catch-up entries"
    );
    println!(
        "[localnet] phase B ok: victim replayed {replayed} rounds from its WAL, \
         applied {catchups} catch-up entries, all digests agree"
    );

    let _ = std::fs::remove_dir_all(&root);
    let wall = t0.elapsed().as_secs_f64();
    let mean_rate = health
        .round_rates
        .as_ref()
        .map_or(0.0, |r| r.iter().sum::<f64>() / r.len().max(1) as f64);
    Baseline::new("localnet")
        .metric(baseline::WALL_CLOCK_S, wall)
        .metric("nodes", N as f64)
        .metric("rounds_finalized", target_b as f64)
        .metric("mid_run_round_rate_per_s", mean_rate)
        .metric("cross_process_chains", cross_chains as f64)
        .write()
        .expect("write localnet baseline");
    println!("[localnet] PASS in {wall:.1}s");
}

/// Runs the simulator with the deployment's exact parameters, keys and
/// workload, and returns its hex chain digest through [`TARGET_A`].
fn simulator_digest(cfg: &NodeConfig) -> String {
    let mut sim_cfg = SimConfig::new(N);
    sim_cfg.seed = SEED;
    sim_cfg.stake_per_user = STAKE;
    sim_cfg.params = cfg.params();
    let mut sim = Simulation::new(sim_cfg);
    let keypairs = derive_keypairs(SEED, N);
    sim.preload_transactions(&workload_transactions(SEED, &keypairs, STAKE, TX_COUNT));
    sim.run_rounds(TARGET_A, 600_000_000);
    let digest = sim
        .honest_node(0)
        .chain()
        .digest_through(TARGET_A)
        .expect("simulator reached the target round");
    hex(&digest)
}

/// One config per node: a star of static peers around node 0, the rest
/// of the mesh forming via gossip-learned peer exchange (`min_peers`
/// holds consensus until it has). Every node binds an ephemeral port
/// (`127.0.0.1:0`); real ports are exchanged at spawn time via each
/// process's published `addr` file, so concurrent harness runs can
/// never collide on a fixed port range.
fn node_configs(root: &Path) -> Vec<NodeConfig> {
    (0..N)
        .map(|i| NodeConfig {
            index: i,
            n_users: N,
            stake_per_user: STAKE,
            seed: SEED,
            listen: "127.0.0.1:0".into(),
            peers: Vec::new(), // Filled with node 0's resolved address at spawn.
            wal_dir: root.join(format!("n{i}")),
            deadline_secs: 150,
            linger_secs: 6,
            tx_count: TX_COUNT,
            min_peers: N - 1,
            // Tracing feeds the in-process monitor and flight recorder
            // the telemetry assertions below exercise.
            trace: true,
            ..NodeConfig::default()
        })
        .collect()
}

/// Spawns the deployment with ephemeral-port exchange: node 0 starts
/// first on `:0` and publishes its resolved address to `n0/addr`; the
/// other configs are then written with that real endpoint as their
/// static peer and spawned. The start-time barrier in the configs keeps
/// consensus clocks aligned despite the stagger.
fn spawn_all(root: &Path, cfgs: &mut [NodeConfig]) -> Vec<Child> {
    // A stale addr file from an earlier phase must not be read back.
    let _ = std::fs::remove_file(cfgs[0].wal_dir.join("addr"));
    std::fs::write(root.join("n0.conf"), cfgs[0].render()).expect("write config");
    let mut children = vec![spawn_node(root, 0)];
    let addr_file = cfgs[0].wal_dir.join("addr");
    wait_until(
        || addr_file.exists(),
        Duration::from_secs(30),
        "node 0 to publish its resolved address",
    );
    let hub = read_trimmed(&addr_file);
    println!("[localnet] node 0 bound {hub}");
    for (i, cfg) in cfgs.iter_mut().enumerate().skip(1) {
        cfg.peers = vec![hub.clone()];
        std::fs::write(root.join(format!("n{i}.conf")), cfg.render()).expect("write config");
        children.push(spawn_node(root, i));
    }
    children
}

fn spawn_node(root: &Path, i: usize) -> Child {
    Command::new(node_binary())
        .arg(root.join(format!("n{i}.conf")))
        .spawn()
        .expect("spawn algorand-node")
}

/// The `algorand-node` binary: `$ALGORAND_NODE_BIN` if set, else the
/// sibling of this harness in the same cargo target directory.
fn node_binary() -> PathBuf {
    if let Ok(p) = std::env::var("ALGORAND_NODE_BIN") {
        return PathBuf::from(p);
    }
    let mut p = std::env::current_exe().expect("current_exe");
    p.set_file_name("algorand-node");
    p
}

/// The `trace_collect` binary: `$ALGORAND_TRACE_COLLECT_BIN` if set,
/// else the sibling of this harness in the same cargo target directory.
fn collector_binary() -> PathBuf {
    if let Ok(p) = std::env::var("ALGORAND_TRACE_COLLECT_BIN") {
        return PathBuf::from(p);
    }
    let mut p = std::env::current_exe().expect("current_exe");
    p.set_file_name("trace_collect");
    p
}

/// Waits for every child; true per child = exited with status 0.
fn wait_all(children: Vec<Child>, timeout: Duration) -> Vec<bool> {
    let deadline = Instant::now() + timeout;
    let mut children: Vec<Option<Child>> = children.into_iter().map(Some).collect();
    let mut ok = vec![false; children.len()];
    while children.iter().any(Option::is_some) {
        for (i, slot) in children.iter_mut().enumerate() {
            let Some(child) = slot else { continue };
            match child.try_wait().expect("try_wait") {
                Some(status) => {
                    ok[i] = status.success();
                    *slot = None;
                }
                None if Instant::now() >= deadline => {
                    let _ = child.kill();
                    let _ = child.wait();
                    *slot = None;
                }
                None => {}
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    ok
}

fn wait_until(mut cond: impl FnMut() -> bool, timeout: Duration, what: &str) {
    let deadline = Instant::now() + timeout;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Parses one `key=value` field from a node's one-line status file.
fn status_field(wal_dir: &Path, key: &str) -> Option<u64> {
    let text = std::fs::read_to_string(wal_dir.join("status")).ok()?;
    let fields: HashMap<&str, &str> = text
        .split_whitespace()
        .filter_map(|kv| kv.split_once('='))
        .collect();
    fields.get(key)?.parse().ok()
}

fn read_trimmed(path: &Path) -> String {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
        .trim()
        .to_string()
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .expect("clock")
        .as_millis() as u64
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
