//! Operator tool: scrape a running localnet and print its health.
//!
//! ```text
//! cluster_health <addr>... [--out FILE] [--interval-ms N]
//! cluster_health --dir DEPLOY_ROOT [--out FILE] [--interval-ms N]
//! ```
//!
//! Addresses are `host:port` peer endpoints (the same port consensus
//! uses — telemetry is a frame kind, not a second listener). With
//! `--dir`, the tool discovers the deployment instead: every `*/addr`
//! file under the given root (the per-node WAL dirs a harness lays out)
//! names one process.
//!
//! Each node is scraped twice, `--interval-ms` apart (default 750), so
//! the report includes per-node round rates; the merged report shows
//! per-node tip/digest/monitor verdict/core counters and the
//! cluster-wide roll-up (tip spread, digest agreement, total
//! violations). Exit code: 0 when every node was reachable and clean,
//! 1 otherwise — usable as a health check in scripts.

use algorand_node::telemetry::ClusterHealth;
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let mut addrs: Vec<String> = Vec::new();
    let mut out: Option<String> = None;
    let mut interval_ms: u64 = 750;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next(),
            "--interval-ms" => {
                interval_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--interval-ms needs a number"));
            }
            "--dir" => {
                let root = args.next().unwrap_or_else(|| usage("--dir needs a path"));
                addrs.extend(discover(Path::new(&root)));
            }
            a if a.starts_with("--") => usage(&format!("unknown flag {a}")),
            a => addrs.push(a.to_string()),
        }
    }
    if addrs.is_empty() {
        usage("no addresses (pass host:port endpoints or --dir DEPLOY_ROOT)");
    }
    addrs.sort();
    addrs.dedup();

    let health = ClusterHealth::collect_with_rates(
        &addrs,
        Duration::from_secs(10),
        Duration::from_millis(interval_ms),
    );
    let report = health.render();
    print!("{report}");
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("cluster_health: write {path}: {e}");
            return ExitCode::from(1);
        }
    }
    let healthy =
        health.unreachable.is_empty() && health.total_violations() == 0 && health.digests_agree();
    if healthy {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Reads every `*/addr` file one level under `root` — the layout the
/// localnet harness creates (`n0/addr`, `n1/addr`, …).
fn discover(root: &Path) -> Vec<String> {
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(root) else {
        usage(&format!(
            "--dir {}: not a readable directory",
            root.display()
        ));
    };
    for entry in entries.flatten() {
        let addr_file = entry.path().join("addr");
        if let Ok(addr) = std::fs::read_to_string(&addr_file) {
            let addr = addr.trim();
            if !addr.is_empty() {
                found.push(addr.to_string());
            }
        }
    }
    found
}

fn usage(err: &str) -> ! {
    eprintln!("cluster_health: {err}");
    eprintln!("usage: cluster_health <addr>... [--dir DEPLOY_ROOT] [--out FILE] [--interval-ms N]");
    std::process::exit(2)
}
