//! §10.3: CPU, bandwidth, and storage costs of running Algorand.
//!
//! Paper numbers: ~6.5% of a core per user (dominated by signature/VRF
//! verification), ~10 Mbit/s per user with 1 MB blocks and 50k users
//! (independent of user count), 300 KB certificates (~30% overhead on
//! 1 MB blocks), and proportional savings from sharding storage.

use algorand_ba::VoteMessage;
use algorand_bench::baseline::{self, Baseline};
use algorand_bench::{header, run_experiment};
use algorand_sim::SimConfig;
use std::time::Instant;

fn main() {
    header(
        "§10.3 — CPU, bandwidth, and storage costs",
        "~10 Mbit/s/user; 300 KB certificates (~30% of a 1 MB block); sharding divides storage",
    );
    let n_users = 80;
    let rounds = 3;
    let payload = 256 << 10;
    let mut cfg = SimConfig::new(n_users);
    cfg.payload_bytes = payload;
    cfg.seed = 23;
    let wall = Instant::now();
    let (sim, _stats) = run_experiment(cfg, rounds);
    let wall = wall.elapsed();
    let virtual_s = sim.now() as f64 / 1e6;

    // --- Bandwidth -----------------------------------------------------------
    let total_sent = sim.network().total_bytes_sent() as f64;
    let per_user_mbps = total_sent * 8.0 / n_users as f64 / virtual_s / 1e6;
    println!("bandwidth:");
    println!("  simulated time           {virtual_s:>10.1} s");
    println!("  total bytes gossiped     {:>10.1} MB", total_sent / 1e6);
    println!("  per-user average         {per_user_mbps:>10.2} Mbit/s   (paper: ~10 Mbit/s at 1 MB blocks)");

    // --- CPU -----------------------------------------------------------------
    let uniques = sim.unique_verifications();
    println!("cpu:");
    println!("  unique vote verifications {uniques:>9}   (each = 1 signature + 1 VRF check)");
    println!("  harness wall time         {:>9.2} s", wall.as_secs_f64());

    // --- Storage ---------------------------------------------------------------
    let node = sim.honest_node(0);
    let chain = node.chain();
    let mut block_bytes = 0usize;
    let mut cert_bytes = 0usize;
    for r in 1..=chain.tip().round {
        if let Some(b) = chain.block_at(r) {
            block_bytes += b.wire_size();
        }
        if let Some(c) = chain.certificate_at(r) {
            cert_bytes += c.wire_size();
        }
    }
    let per_cert = cert_bytes as f64 / chain.tip().round.max(1) as f64;
    println!("storage:");
    println!(
        "  blocks                    {:>9.1} KB",
        block_bytes as f64 / 1e3
    );
    println!(
        "  certificates              {:>9.1} KB  ({:.1} KB each; paper: 300 KB at tau_step=2000)",
        cert_bytes as f64 / 1e3,
        per_cert / 1e3
    );
    println!(
        "  certificate overhead      {:>9.1} %  (paper: ~30% at 1 MB blocks)",
        cert_bytes as f64 / block_bytes.max(1) as f64 * 100.0
    );
    let full = chain.sharded_storage_bytes(&node.public_key(), 1);
    let sharded = chain.sharded_storage_bytes(&node.public_key(), 10);
    println!(
        "  sharding mod 10           {:>9.1} %  of full storage (paper: 1/10)",
        sharded as f64 / full.max(1) as f64 * 100.0
    );

    // Certificate-size model at paper scale: ~threshold votes of ~300 B.
    let paper_cert_kb = (0.685 * 2000.0 + 1.0) * VoteMessage::WIRE_SIZE as f64 / 1e3;
    println!();
    println!(
        "model check: at paper scale a certificate needs >0.685*2000 votes x {} B = {:.0} KB (paper: ~300 KB)",
        VoteMessage::WIRE_SIZE,
        paper_cert_kb
    );
    // §8.3's forged-certificate attack: the adversary must find a step it
    // dominates; at paper parameters the per-step probability is
    // astronomically small.
    let log10 = algorand_sortition::committee::certificate_forgery_log10_bound(2000.0, 0.685, 0.80);
    println!(
        "forgery check: per-step certificate-forgery probability <= 10^{log10:.0} (paper: < 2^-166 = 10^-50)"
    );
    Baseline::new("costs")
        .metric(baseline::BYTES_PER_USER, total_sent / n_users as f64)
        .metric("per_user_mbit_per_s", per_user_mbps)
        .metric("unique_verifications", uniques as f64)
        .metric(
            "certificate_overhead_pct",
            cert_bytes as f64 / block_bytes.max(1) as f64 * 100.0,
        )
        .metric(baseline::WALL_CLOCK_S, wall.as_secs_f64())
        .write()
        .expect("write baseline");
}
