//! Machine-readable perf baselines: `results/BENCH_<name>.json`.
//!
//! Every bench binary that prints a human-readable `results/*.txt`
//! report also records its headline numbers — throughput, p50/p99
//! latency, bytes per user, wall-clock — through this writer, so
//! regression tooling can diff runs without scraping prose. The format
//! is one flat JSON object with a fixed shape:
//!
//! ```json
//! {"bench":"tput_throughput","schema":1,"metrics":{"p50_latency_s":..,"tx_per_s":..}}
//! ```
//!
//! Canonicalization: metric keys are sorted, values are finite f64s
//! rendered with Rust's shortest-roundtrip `Display`, and the object is
//! a single newline-terminated line. The same metrics always serialize
//! to the same bytes regardless of the order the caller added them.

use std::io;
use std::path::PathBuf;

/// The baseline schema version stamped into every artifact.
pub const SCHEMA: u64 = 1;

/// Canonical metric key for transactions per second.
pub const TX_PER_S: &str = "tx_per_s";
/// Canonical metric key for median finalization latency, seconds.
pub const P50_LATENCY_S: &str = "p50_latency_s";
/// Canonical metric key for p99 finalization latency, seconds.
pub const P99_LATENCY_S: &str = "p99_latency_s";
/// Canonical metric key for wire bytes per user.
pub const BYTES_PER_USER: &str = "bytes_per_user";
/// Canonical metric key for harness wall-clock, seconds.
pub const WALL_CLOCK_S: &str = "wall_clock_s";

/// One bench run's headline numbers.
#[derive(Clone, Debug, PartialEq)]
pub struct Baseline {
    /// The bench's name (`BENCH_<name>.json`).
    pub name: String,
    /// Metric key → value. Kept sorted by key.
    pub metrics: Vec<(String, f64)>,
}

impl Baseline {
    /// An empty baseline for `name`.
    pub fn new(name: &str) -> Baseline {
        Baseline {
            name: name.to_string(),
            metrics: Vec::new(),
        }
    }

    /// Adds (or overwrites) one metric. Non-finite values are refused —
    /// a NaN in a baseline poisons every later comparison silently.
    pub fn metric(mut self, key: &str, value: f64) -> Baseline {
        assert!(value.is_finite(), "non-finite baseline metric {key:?}");
        match self.metrics.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(i) => self.metrics[i].1 = value,
            Err(i) => self.metrics.insert(i, (key.to_string(), value)),
        }
        self
    }

    /// The canonical single-line JSON rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"bench\":\"{}\",\"schema\":{SCHEMA},\"metrics\":{{",
            self.name
        ));
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v}"));
        }
        out.push_str("}}\n");
        out
    }

    /// Writes `results/BENCH_<name>.json` (creating `results/` if
    /// needed) and announces the path on stdout. Returns the path.
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn write(&self) -> io::Result<PathBuf> {
        let dir = PathBuf::from("results");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.render())?;
        println!("[baseline] wrote {}", path.display());
        Ok(path)
    }

    /// Parses a rendered baseline.
    ///
    /// # Errors
    ///
    /// A description of the first malformed construct.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let line = text.trim();
        let name = scan_str(line, "bench")?;
        let schema = scan_metrics_prefix(line)?;
        let mut metrics = Vec::new();
        for part in schema.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (k, v) = part
                .split_once(':')
                .ok_or_else(|| format!("bad metric {part:?}"))?;
            let k = k
                .trim()
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| format!("unquoted metric key {part:?}"))?;
            let v: f64 = v
                .trim()
                .parse()
                .map_err(|_| format!("bad metric value {part:?}"))?;
            metrics.push((k.to_string(), v));
        }
        metrics.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(Baseline { name, metrics })
    }
}

fn scan_str(line: &str, key: &str) -> Result<String, String> {
    let pat = format!("\"{key}\":\"");
    let at = line
        .find(&pat)
        .ok_or_else(|| format!("missing field {key:?}"))?
        + pat.len();
    let rest = &line[at..];
    let end = rest
        .find('"')
        .ok_or_else(|| format!("unterminated field {key:?}"))?;
    Ok(rest[..end].to_string())
}

/// The body of the `"metrics":{...}` object.
fn scan_metrics_prefix(line: &str) -> Result<&str, String> {
    let pat = "\"metrics\":{";
    let at = line.find(pat).ok_or("missing \"metrics\" object")? + pat.len();
    let rest = &line[at..];
    let end = rest.find('}').ok_or("unterminated \"metrics\" object")?;
    Ok(&rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_renders_canonically_and_roundtrips() {
        let a = Baseline::new("tput_throughput")
            .metric(TX_PER_S, 802.5)
            .metric(WALL_CLOCK_S, 1.25)
            .metric(P50_LATENCY_S, 6.0);
        // Different insertion order, same bytes.
        let b = Baseline::new("tput_throughput")
            .metric(P50_LATENCY_S, 6.0)
            .metric(WALL_CLOCK_S, 1.25)
            .metric(TX_PER_S, 802.5);
        assert_eq!(a.render(), b.render());
        assert!(a.render().ends_with("}}\n"));
        let parsed = Baseline::parse(&a.render()).unwrap();
        assert_eq!(parsed, a);
        assert_eq!(parsed.render(), a.render());
    }

    #[test]
    fn overwriting_a_metric_keeps_one_entry() {
        let b = Baseline::new("x").metric("m", 1.0).metric("m", 2.0);
        assert_eq!(b.metrics, vec![("m".to_string(), 2.0)]);
    }

    #[test]
    fn checked_in_baselines_parse_and_roundtrip() {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
        let mut seen = 0;
        for entry in std::fs::read_dir(dir).expect("results/ exists") {
            let path = entry.expect("read_dir entry").path();
            let file = path.file_name().unwrap().to_string_lossy().into_owned();
            let Some(name) = file
                .strip_prefix("BENCH_")
                .and_then(|s| s.strip_suffix(".json"))
            else {
                continue;
            };
            let text = std::fs::read_to_string(&path).expect("read baseline");
            let parsed =
                Baseline::parse(&text).unwrap_or_else(|e| panic!("{file} does not parse: {e}"));
            assert_eq!(parsed.name, name, "{file}: name does not match filename");
            assert_eq!(parsed.render(), text, "{file}: not in canonical form");
            assert!(
                parsed.metrics.iter().any(|(k, _)| k == WALL_CLOCK_S),
                "{file}: missing {WALL_CLOCK_S}"
            );
            seen += 1;
        }
        assert!(seen >= 8, "expected the checked-in baselines, saw {seen}");
    }

    #[test]
    fn parse_rejects_malformed_artifacts() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"bench\":\"x\"}").is_err());
        assert!(
            Baseline::parse("{\"bench\":\"x\",\"schema\":1,\"metrics\":{\"a\":oops}}").is_err()
        );
    }
}
