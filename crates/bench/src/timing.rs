//! A minimal micro-benchmark harness (the workspace builds hermetically,
//! so there is no external bench framework).
//!
//! Adaptive iteration counts target a fixed measurement window per batch,
//! several batches are timed, and the median batch is reported — the same
//! shape as the usual harnesses, minus the statistics machinery. Numbers
//! are indicative; trends across sizes are what the benches document.

use std::time::Instant;

/// Number of timed batches per benchmark.
const BATCHES: usize = 5;
/// Target wall-clock per batch.
const TARGET_BATCH: f64 = 0.2;

/// Times `f`, printing `name: <t>/op` with the median batch estimate.
///
/// Returns the per-iteration time in nanoseconds.
pub fn bench<F: FnMut()>(name: &str, mut f: F) -> f64 {
    // Calibrate: run until 10ms has passed to estimate the cost of one call.
    let mut calib_iters: u64 = 0;
    let start = Instant::now();
    while start.elapsed().as_secs_f64() < 0.01 {
        f();
        calib_iters += 1;
    }
    let per_iter = start.elapsed().as_secs_f64() / calib_iters as f64;
    let iters = ((TARGET_BATCH / per_iter) as u64).clamp(1, 10_000_000);
    let mut samples = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(t.elapsed().as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let median = samples[BATCHES / 2];
    println!(
        "{name:<44} {:>12}/op  ({iters} iters/batch)",
        fmt_secs(median)
    );
    median * 1e9
}

/// Like [`bench`], also printing throughput for `bytes` bytes per call.
pub fn bench_throughput<F: FnMut()>(name: &str, bytes: u64, f: F) -> f64 {
    let ns = bench(name, f);
    let mbps = bytes as f64 / (ns / 1e9) / 1e6;
    println!("{:<44} {mbps:>11.1} MB/s", format!("  ({bytes} B)"));
    ns
}

fn fmt_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_plausible_times() {
        let mut x = 0u64;
        let ns = bench("noop-ish", || {
            x = std::hint::black_box(x.wrapping_add(1));
        });
        assert!(ns > 0.0 && ns < 1e6, "ns/op {ns}");
    }
}
