//! Micro-benchmark: serial vs pooled batch verification.
//!
//! Builds a batch of genuine committee votes (τ = W sortition so every
//! key is selected) and times `VerifyPool::verify_batch` into a cold
//! `PipelineVerifier` cache at 0 (inline), 1, 2, 4, and 8 workers, plus
//! one warm-cache pass to show what consumers pay after pre-warming.
//!
//! Run with: cargo bench -p algorand-bench --bench verify_pool
//! Results table: results/verify_pool.txt

use algorand_ba::{RoundWeights, StepKind, VoteContext, VoteMessage};
use algorand_core::{PipelineVerifier, VerifyJob, VerifyPool};
use algorand_crypto::Keypair;
use algorand_sortition::{select, Role, SortitionParams};
use std::sync::Arc;
use std::time::Instant;

const KEYS: usize = 64;
const VALUES_PER_KEY: usize = 8;
const REPS: usize = 3;

fn build_votes(
    ctx: &VoteContext,
    weights: &RoundWeights,
    keypairs: &[Keypair],
) -> Vec<VoteMessage> {
    let step = StepKind::Main(1);
    let params = SortitionParams {
        tau: ctx.tau,
        total_weight: weights.total(),
    };
    let mut votes = Vec::with_capacity(KEYS * VALUES_PER_KEY);
    for kp in keypairs {
        let sel = select(
            kp,
            &ctx.seed,
            Role::Committee {
                round: ctx.round,
                step: step.code(),
            },
            &params,
            weights.weight_of(&kp.pk),
        )
        .expect("τ = W selects every key");
        for v in 0..VALUES_PER_KEY {
            // Distinct values give each vote a distinct message id, so
            // every job is a cold-cache verification.
            let value = [v as u8 + 1; 32];
            votes.push(VoteMessage::sign(
                kp,
                ctx.round,
                step,
                sel.vrf_output,
                sel.proof,
                [7u8; 32],
                value,
            ));
        }
    }
    votes
}

fn jobs(votes: &[VoteMessage], ctx: &VoteContext, weights: &Arc<RoundWeights>) -> Vec<VerifyJob> {
    votes
        .iter()
        .map(|msg| VerifyJob::Vote {
            msg: msg.clone(),
            ctx: ctx.clone(),
            weights: weights.clone(),
        })
        .collect()
}

fn main() {
    let keypairs: Vec<Keypair> = (0..KEYS)
        .map(|i| Keypair::from_seed([i as u8 + 1; 32]))
        .collect();
    let weights = Arc::new(RoundWeights::from_pairs(
        keypairs.iter().map(|kp| (kp.pk, 100u64)),
    ));
    let ctx = VoteContext {
        round: 1,
        seed: [5u8; 32],
        tau: weights.total() as f64, // τ = W: deterministic full selection
    };
    let votes = build_votes(&ctx, &weights, &keypairs);
    let batch = votes.len();
    println!("batch = {batch} votes (sig + sortition VRF verify each), best of {REPS}");
    println!();
    println!("| workers | cold batch (ms) | votes/s | speedup | warm pass (ms) |");
    println!("|---------|-----------------|---------|---------|----------------|");

    let mut serial_ms = 0.0f64;
    for workers in [0usize, 1, 2, 4, 8] {
        let pool = VerifyPool::new(workers);
        let mut best_cold = f64::INFINITY;
        let mut best_warm = f64::INFINITY;
        for _ in 0..REPS {
            let verifier = Arc::new(PipelineVerifier::new());
            let cold_jobs = jobs(&votes, &ctx, &weights);
            let t0 = Instant::now();
            pool.verify_batch(&verifier, cold_jobs);
            best_cold = best_cold.min(t0.elapsed().as_secs_f64() * 1e3);
            assert_eq!(verifier.unique_vote_verifications(), batch);

            let warm_jobs = jobs(&votes, &ctx, &weights);
            let t1 = Instant::now();
            pool.verify_batch(&verifier, warm_jobs);
            best_warm = best_warm.min(t1.elapsed().as_secs_f64() * 1e3);
            assert_eq!(verifier.cache_hits(), batch as u64);
        }
        if workers == 0 {
            serial_ms = best_cold;
        }
        println!(
            "| {:>7} | {:>15.2} | {:>7.0} | {:>6.2}x | {:>14.3} |",
            if workers == 0 {
                "serial".to_string()
            } else {
                workers.to_string()
            },
            best_cold,
            batch as f64 / (best_cold / 1e3),
            serial_ms / best_cold,
            best_warm,
        );
    }
}
