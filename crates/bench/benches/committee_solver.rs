//! Bench for the Figure 3 committee-size computation: the
//! violation-probability evaluation and the τ solver.

use algorand_bench::timing::bench;
use algorand_sortition::committee::{solve_committee_size, violation_probability};

fn main() {
    bench("committee/violation_probability(2000,0.685,0.8)", || {
        std::hint::black_box(violation_probability(
            2000.0,
            0.685,
            std::hint::black_box(0.8),
        ));
    });
    bench("committee/solve h=0.85", || {
        std::hint::black_box(solve_committee_size(
            std::hint::black_box(0.85),
            5e-9,
            20_000,
        ));
    });
}
