//! Criterion bench for the Figure 3 committee-size computation: the
//! violation-probability evaluation and the τ solver.

use algorand_sortition::committee::{solve_committee_size, violation_probability};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_violation(c: &mut Criterion) {
    c.bench_function("committee/violation_probability(2000,0.685,0.8)", |b| {
        b.iter(|| violation_probability(2000.0, 0.685, std::hint::black_box(0.8)))
    });
}

fn bench_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("committee/solve");
    g.sample_size(10);
    g.bench_function("h=0.85", |b| {
        b.iter(|| solve_committee_size(std::hint::black_box(0.85), 5e-9, 20_000))
    });
    g.finish();
}

criterion_group!(benches, bench_violation, bench_solver);
criterion_main!(benches);
