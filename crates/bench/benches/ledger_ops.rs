//! Benches for ledger-side costs: block validation (the §8.1 checks
//! every user runs on a received proposal) and certificate validation
//! (what a bootstrapping user pays per round, §8.3).

use algorand_ba::{
    BaParams, Certificate, RealVerifier, RoundWeights, StepKind, VoteMessage, SECOND,
};
use algorand_bench::timing::bench;
use algorand_crypto::Keypair;
use algorand_ledger::seed::propose_seed;
use algorand_ledger::{Accounts, Block, Transaction};
use algorand_sortition::{select, Role, SortitionParams};

fn make_chain_context(n_users: usize) -> (Vec<Keypair>, Accounts, Block) {
    let keypairs: Vec<Keypair> = (0..n_users)
        .map(|i| {
            let mut s = [0u8; 32];
            s[..8].copy_from_slice(&(i as u64 + 1).to_le_bytes());
            Keypair::from_seed(s)
        })
        .collect();
    let accounts = Accounts::genesis(keypairs.iter().map(|k| (k.pk, 1000u64)));
    let genesis = Block {
        round: 0,
        prev_hash: [0u8; 32],
        seed: [7u8; 32],
        seed_proof: None,
        proposer: None,
        timestamp: 0,
        txs: Vec::new(),
        payload: Vec::new(),
    };
    (keypairs, accounts, genesis)
}

fn bench_block_validation() {
    let (keypairs, accounts, genesis) = make_chain_context(8);
    for n_txs in [0usize, 10, 100] {
        let txs: Vec<Transaction> = (0..n_txs)
            .map(|i| Transaction::payment(&keypairs[0], keypairs[1].pk, 1, i as u64 + 1))
            .collect();
        let (seed, proof) = propose_seed(&keypairs[2], &genesis.seed, 1);
        let block = Block {
            round: 1,
            prev_hash: genesis.hash(),
            seed,
            seed_proof: Some(proof),
            proposer: Some(keypairs[2].pk),
            timestamp: 1_000_000,
            txs,
            payload: Vec::new(),
        };
        bench(&format!("ledger/validate_block/{n_txs}_txs"), || {
            let _ = std::hint::black_box(std::hint::black_box(&block).validate(
                &genesis,
                &accounts,
                1_000_000,
                3_600_000_000,
            ));
        });
    }
}

fn bench_certificate_validation() {
    // A scaled certificate: 20 committee votes. Paper scale (~1400 votes)
    // costs proportionally more; the per-vote cost is what matters.
    let (keypairs, _, genesis) = make_chain_context(20);
    let weights = RoundWeights::from_pairs(keypairs.iter().map(|k| (k.pk, 1000u64)));
    let params = BaParams {
        tau_step: 20_000.0, // τ = W: everyone selected.
        t_step: 0.685,
        tau_final: 20_000.0,
        t_final: 0.74,
        max_steps: 10,
        lambda_step: SECOND,
        lambda_block: SECOND,
        disable_backoff: false,
    };
    let seed = [9u8; 32];
    let prev = genesis.hash();
    let value = [3u8; 32];
    let step = StepKind::Main(1);
    let votes: Vec<VoteMessage> = keypairs
        .iter()
        .map(|kp| {
            let sel = select(
                kp,
                &seed,
                Role::Committee {
                    round: 1,
                    step: step.code(),
                },
                &SortitionParams {
                    tau: params.tau_step,
                    total_weight: weights.total(),
                },
                1000,
            )
            .expect("selected");
            VoteMessage::sign(kp, 1, step, sel.vrf_output, sel.proof, prev, value)
        })
        .collect();
    let cert = Certificate {
        round: 1,
        step,
        value,
        votes,
    };
    bench("ledger/validate_certificate/20_votes", || {
        let _ = std::hint::black_box(std::hint::black_box(&cert).validate(
            &params,
            &seed,
            &prev,
            &weights,
            &RealVerifier,
        ));
    });
}

fn main() {
    bench_block_validation();
    bench_certificate_validation();
}
