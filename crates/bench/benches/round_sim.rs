//! Criterion bench: wall-clock cost of simulating full consensus rounds
//! (the harness cost, not a paper figure — useful for sizing sweeps).

use algorand_sim::{SimConfig, Simulation};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/one_round");
    g.sample_size(10);
    for n in [20usize, 50] {
        g.bench_function(format!("{n}_users"), |b| {
            b.iter(|| {
                let mut sim = Simulation::new(SimConfig::new(n));
                sim.run_rounds(1, 10 * 60 * 1_000_000);
                std::hint::black_box(sim.round_stats(1))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_round);
criterion_main!(benches);
