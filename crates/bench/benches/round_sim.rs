//! Bench: wall-clock cost of simulating full consensus rounds (the
//! harness cost, not a paper figure — useful for sizing sweeps).

use algorand_bench::timing::bench;
use algorand_sim::{SimConfig, Simulation};

fn main() {
    for n in [20usize, 50] {
        bench(&format!("sim/one_round/{n}_users"), || {
            let mut sim = Simulation::new(SimConfig::new(n));
            sim.run_rounds(1, 10 * 60 * 1_000_000);
            std::hint::black_box(sim.round_stats(1));
        });
    }
}
