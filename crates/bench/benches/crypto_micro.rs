//! Micro-benchmarks for the §10.3 CPU cost drivers: signatures, VRFs,
//! sortition, vote processing, and hashing. The paper attributes most
//! per-user CPU (~6.5% of a core) to verifying signatures and VRFs.

use algorand_ba::{RealVerifier, RoundWeights, StepKind, VoteContext, VoteMessage, VoteVerifier};
use algorand_bench::timing::{bench, bench_throughput};
use algorand_crypto::{sha256, sig, vrf, Keypair};
use algorand_sortition::{select, Role, SortitionParams};

fn bench_sha256() {
    for size in [64usize, 1024, 1 << 20] {
        let data = vec![0xabu8; size];
        bench_throughput(&format!("sha256/{size}B"), size as u64, || {
            std::hint::black_box(sha256(std::hint::black_box(&data)));
        });
    }
}

fn bench_signatures() {
    let keypair = Keypair::from_seed([1; 32]);
    let msg = [0x5au8; 300];
    let signature = sig::sign(&keypair, &msg);
    bench("sig/sign", || {
        std::hint::black_box(sig::sign(&keypair, std::hint::black_box(&msg)));
    });
    bench("sig/verify", || {
        let _ = std::hint::black_box(sig::verify(
            &keypair.pk,
            &msg,
            std::hint::black_box(&signature),
        ));
    });
}

fn bench_vrf() {
    let keypair = Keypair::from_seed([2; 32]);
    let alpha = b"seed||role";
    let (_, proof) = vrf::prove(&keypair, alpha);
    bench("vrf/prove", || {
        std::hint::black_box(vrf::prove(&keypair, std::hint::black_box(alpha)));
    });
    bench("vrf/verify", || {
        let _ = std::hint::black_box(vrf::verify(
            &keypair.pk,
            alpha,
            std::hint::black_box(&proof),
        ));
    });
}

fn bench_sortition() {
    let keypair = Keypair::from_seed([3; 32]);
    let seed = [7u8; 32];
    let params = SortitionParams {
        tau: 2000.0,
        total_weight: 1_000_000,
    };
    let role = Role::Committee { round: 1, step: 1 };
    bench("sortition/select", || {
        std::hint::black_box(select(
            &keypair,
            &seed,
            role,
            &params,
            std::hint::black_box(5000),
        ));
    });
    let sel = select(&keypair, &seed, role, &params, 1_000_000).expect("whale is selected");
    bench("sortition/verify", || {
        let _ = std::hint::black_box(algorand_sortition::verify(
            &keypair.pk,
            std::hint::black_box(&sel.proof),
            &seed,
            role,
            &params,
            1_000_000,
        ));
    });
}

fn bench_vote_processing() {
    // ProcessMsg (Algorithm 6): the dominant cost of observing BA⋆.
    let keypairs: Vec<Keypair> = (0..4u8).map(|i| Keypair::from_seed([i + 1; 32])).collect();
    let weights = RoundWeights::from_pairs(keypairs.iter().map(|k| (k.pk, 1000u64)));
    let ctx = VoteContext {
        round: 1,
        seed: [9u8; 32],
        tau: 4000.0,
    };
    let step = StepKind::Main(1);
    let sel = select(
        &keypairs[0],
        &ctx.seed,
        Role::Committee {
            round: 1,
            step: step.code(),
        },
        &SortitionParams {
            tau: ctx.tau,
            total_weight: weights.total(),
        },
        1000,
    )
    .expect("selected");
    let vote = VoteMessage::sign(
        &keypairs[0],
        1,
        step,
        sel.vrf_output,
        sel.proof,
        [4u8; 32],
        [5u8; 32],
    );
    bench("ba/process_vote", || {
        std::hint::black_box(RealVerifier.verify_vote(std::hint::black_box(&vote), &ctx, &weights));
    });
}

fn main() {
    bench_sha256();
    bench_signatures();
    bench_vrf();
    bench_sortition();
    bench_vote_processing();
}
