//! Replays the archived fuzz corpus.
//!
//! Every `tests/corpus/*.repro` file is a minimal reproducer in the
//! textual `algorand-fuzz-repro v1` format, recorded when the fuzzer
//! found something worth keeping forever:
//!
//! - `ignore_catchup_responses_*.repro` — the shrunk schedule that
//!   exposes the planted catch-up defect (the CI gate's shrinker
//!   acceptance case); it must still fail, in the recorded way, when the
//!   defect is re-planted.
//! - `fork_minority_rejoin.repro` — the honest-build schedule on which
//!   the fuzzer found a real liveness bug: an asymmetric partition forked
//!   round 2 into two tentatively-certified blocks and the minority side
//!   could never rejoin, because plain catch-up serves certificates that
//!   bind the majority's previous-block hash. Fixed by fork-point
//!   catch-up with a tentative-suffix reorg; the case must keep passing.
//! - `recovery_deadlock_healed_partition.repro` — a second real bug from
//!   the 1000-case campaign: after a healed symmetric partition left two
//!   camps deadlocked in the same round, §8.2 recovery armed but never
//!   completed, because (a) fork proposals extended observed-but-
//!   never-agreed proposal-race blocks the other camp could not
//!   evaluate, and (b) retried recovery votes landed in relay slots
//!   frozen by the stall and were dropped as equivocations. Fixed by
//!   measuring `longest_fork` over agreed blocks only and rotating
//!   relay generations on a stall horizon; the case must keep passing.
//!
//! Replays run the full oracle, so this suite is release-only (the
//! debug-build event loop is an order of magnitude slower); the CI fuzz
//! gate runs it with `--include-ignored`.

use algorand_sim::fuzz::{parse_case, run_case};
use std::fs;

#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: replays full fuzz cases")]
fn corpus_reproducers_replay_with_recorded_verdicts() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut paths: Vec<_> = fs::read_dir(dir)
        .expect("corpus directory")
        .map(|e| e.expect("corpus entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("repro"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "the corpus must not be empty");
    for path in paths {
        let text = fs::read_to_string(&path).expect("readable reproducer");
        let (case, expected) =
            parse_case(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let verdict = run_case(&case);
        assert_eq!(
            verdict.class,
            expected,
            "{}: recorded verdict drifted",
            path.display()
        );
    }
}

#[test]
fn corpus_files_parse_and_roundtrip() {
    // Cheap structural half of the replay test, kept active in debug
    // builds: every archived file parses, and re-serializing the parsed
    // case reproduces the file byte-for-byte (so hand edits that would
    // silently change the schedule are caught immediately).
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    for entry in fs::read_dir(dir).expect("corpus directory") {
        let path = entry.expect("corpus entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("repro") {
            continue;
        }
        let text = fs::read_to_string(&path).expect("readable reproducer");
        let (case, verdict) =
            parse_case(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let again = algorand_sim::fuzz::serialize_case(&case, verdict);
        assert_eq!(text, again, "{}: not in canonical form", path.display());
    }
}
