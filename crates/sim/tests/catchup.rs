//! Catch-up protocol (§8.3): a node knocked offline re-syncs from
//! certificates instead of waiting for a full fork recovery.

use algorand_sim::{SimConfig, Simulation};

const MINUTE: u64 = 60 * 1_000_000;

#[test]
fn isolated_node_catches_up_after_rejoining() {
    let n = 16;
    let mut cfg = SimConfig::new(n);
    cfg.seed = 51;
    let mut sim = Simulation::new(cfg);
    sim.run_rounds(1, 10 * MINUTE);

    // Cut node 0 off entirely for a window long enough that the network
    // moves ≥ 4 rounds ahead (beyond the vote-buffer window).
    let t_cut = sim.now();
    let t_heal = t_cut + 20 * 1_000_000;
    sim.set_network_filter(Some(Box::new(move |now, from, to| {
        now >= t_heal || (from != 0 && to != 0)
    })));
    sim.run_rounds(8, 20 * MINUTE);

    let network_round = sim.honest_node(5).chain().tip().round;
    assert!(network_round >= 6, "network made progress: {network_round}");

    let node0 = sim.honest_node(0);
    let round0 = node0.chain().tip().round;
    // The sim stops the moment every chain reaches the target, so node 0
    // may trail the fastest nodes by rounds still in flight; what matters
    // is that it crossed the gap it could never have voted through.
    assert!(
        round0 >= 8,
        "node 0 still behind after heal: {round0} vs {network_round}"
    );
    assert!(
        node0.catchups_applied() > 0,
        "node 0 should have re-synced via catch-up, not plain voting"
    );
    // And its chain is the network's chain.
    for r in 1..=round0.min(network_round) {
        assert_eq!(
            node0.chain().block_at(r).unwrap().hash(),
            sim.honest_node(5).chain().block_at(r).unwrap().hash(),
            "divergence at round {r}"
        );
    }
}

#[test]
fn catchup_preserves_transaction_state() {
    let n = 14;
    let mut cfg = SimConfig::new(n);
    cfg.seed = 52;
    let mut sim = Simulation::new(cfg);
    // A payment confirmed while node 0 is offline must appear in its
    // caught-up state.
    sim.run_rounds(1, 10 * MINUTE);
    let t_cut = sim.now();
    let t_heal = t_cut + 20 * 1_000_000;
    sim.set_network_filter(Some(Box::new(move |now, from, to| {
        now >= t_heal || (from != 0 && to != 0)
    })));
    let tx = algorand_ledger::Transaction::payment(sim.keypair(2), sim.keypair(3).pk, 4, 1);
    for i in 1..n {
        sim.submit_transaction(i, tx.clone());
    }
    sim.run_rounds(8, 20 * MINUTE);
    let node0 = sim.honest_node(0).chain();
    assert!(
        node0.confirmed_round(&tx.id()).is_some(),
        "node 0 must learn the offline-era payment via catch-up"
    );
    assert_eq!(node0.accounts().balance(&sim.keypair(3).pk), 14);
}
