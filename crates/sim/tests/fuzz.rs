//! Integration tests for the schedule-space fuzzer (`sim::fuzz`).
//!
//! Unit tests inside the module cover the generator grammar and the
//! reproducer codec; this suite exercises the two end-to-end promises
//! the CI gate leans on:
//!
//! 1. a generated (seed, schedule) pair replays byte-identically — the
//!    whole point of recording only the pair in a reproducer;
//! 2. the ddmin shrinker only ever walks through *well-formed* cases
//!    that keep the original verdict class, so the minimized reproducer
//!    it emits is both valid and faithful (satellite: shrinker property
//!    test).
//!
//! The shrink test replays dozens of full simulations, so it is
//! release-only like the corpus replay suite; the CI fuzz gate runs it
//! with `--include-ignored`.

use algorand_sim::fuzz::{generate, parse_case, run_case, serialize_case, shrink};
use algorand_sim::{InjectedBug, VerdictClass};

#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: replays full fuzz cases")]
fn generated_case_replays_deterministically() {
    let case = generate(11, None);
    let first = run_case(&case);
    let second = run_case(&case);
    assert_eq!(first.class, second.class);
    assert_eq!(first.final_tip, second.final_tip);
    assert_eq!(first.sim_end, second.sim_end);
    assert_eq!(first.recovered_after, second.recovered_after);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: replays full fuzz cases")]
fn shrinker_steps_stay_well_formed_and_keep_the_verdict() {
    // Find a failing case by planting the catch-up defect and scanning
    // generator draws, exactly as the campaign's bug leg does.
    let mut failing = None;
    for case_seed in 0..40 {
        let case = generate(case_seed, Some(InjectedBug::IgnoreCatchupResponses));
        let verdict = run_case(&case);
        if verdict.class != VerdictClass::Pass {
            failing = Some((case, verdict.class));
            break;
        }
    }
    let (case, class) = failing.expect("the planted defect must be reachable within 40 draws");

    let outcome = shrink(&case, 60);
    assert_eq!(
        outcome.verdict, class,
        "shrinking changed the verdict class"
    );
    assert!(
        outcome.attempts <= 61,
        "shrinker exceeded its attempt budget"
    );

    // Property walk: every accepted intermediate (ending with the
    // minimized case) still validates against the population, still
    // reproduces the original verdict class, and never grew. An empty
    // chain is legal only when the case was already minimal.
    if let Some(last) = outcome.accepted.last() {
        assert_eq!(
            last.schedule.events().len(),
            outcome.minimized.schedule.events().len(),
            "accepted chain must end at the minimized case"
        );
    } else {
        assert_eq!(
            outcome.minimized.schedule.events().len(),
            case.schedule.events().len(),
            "no accepted steps, yet the case shrank"
        );
    }
    let mut prev_len = case.schedule.events().len();
    for (i, step) in outcome.accepted.iter().enumerate() {
        step.schedule
            .validate(step.n_users)
            .unwrap_or_else(|e| panic!("accepted step {i} is malformed: {e}"));
        let len = step.schedule.events().len();
        assert!(len <= prev_len, "accepted step {i} grew the schedule");
        prev_len = len;
        assert_eq!(
            run_case(step).class,
            class,
            "accepted step {i} does not reproduce the verdict"
        );
    }

    // The minimized case survives a serialize/parse round trip and the
    // parsed copy still fails the same way — i.e. the emitted reproducer
    // is replayable as written.
    let text = serialize_case(&outcome.minimized, class);
    let (parsed, recorded) = parse_case(&text).expect("minimized reproducer parses");
    assert_eq!(recorded, class);
    assert_eq!(serialize_case(&parsed, recorded), text, "not canonical");
    assert_eq!(run_case(&parsed).class, class, "parsed reproducer drifted");
}
