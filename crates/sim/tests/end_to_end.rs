//! End-to-end simulation tests: full Algorand networks in virtual time.

use algorand_ba::ConsensusKind;
use algorand_ledger::Transaction;
use algorand_sim::{SimConfig, Simulation};

/// Runs `n` honest users for `rounds` rounds; returns the simulation.
fn run_network(n: usize, rounds: u64) -> Simulation {
    let mut sim = Simulation::new(SimConfig::new(n));
    sim.run_rounds(rounds, 30 * 60 * 1_000_000);
    sim
}

#[test]
fn small_network_completes_rounds_with_final_consensus() {
    let n = 20;
    let mut completed_any = false;
    let sim = run_network(n, 3);
    for round in 1..=3u64 {
        let stats = sim.round_stats(round).expect("round completed");
        completed_any = true;
        assert!(
            stats.final_fraction > 0.9,
            "round {round}: only {:.0}% saw final consensus",
            stats.final_fraction * 100.0
        );
        assert!(
            stats.empty_fraction < 0.5,
            "round {round}: {:.0}% agreed on the empty block",
            stats.empty_fraction * 100.0
        );
        // Sub-minute rounds, as the paper demands.
        assert!(
            stats.completion.max < 60.0,
            "round {round} took {:?}",
            stats.completion
        );
    }
    assert!(completed_any);
}

#[test]
fn all_nodes_agree_on_identical_chains() {
    let n = 20;
    let sim = run_network(n, 3);
    let reference = sim.honest_node(0).chain().block_at(3).map(|b| b.hash());
    assert!(reference.is_some(), "node 0 must have completed 3 rounds");
    for i in 1..n {
        let chain = sim.honest_node(i).chain();
        for round in 1..=3u64 {
            assert_eq!(
                chain.block_at(round).map(|b| b.hash()),
                sim.honest_node(0).chain().block_at(round).map(|b| b.hash()),
                "node {i} disagrees at round {round}"
            );
        }
    }
}

#[test]
fn submitted_transactions_are_confirmed() {
    let n = 20;
    let mut sim = Simulation::new(SimConfig::new(n));
    let payer = sim.keypair(0).clone();
    let payee = sim.keypair(1).pk;
    let tx = Transaction::payment(&payer, payee, 3, 1);
    let tx_id = tx.id();
    // Submit through several nodes (as if gossiped to them).
    for node in 0..n {
        sim.submit_transaction(node, tx.clone());
    }
    sim.run_rounds(3, 30 * 60 * 1_000_000);
    let chain = sim.honest_node(5).chain();
    let round = chain
        .confirmed_round(&tx_id)
        .expect("transaction confirmed");
    assert!((1..=3).contains(&round));
    assert!(chain.is_safely_confirmed(&tx_id), "block must be final");
    // The money moved on every node's view.
    for i in 0..n {
        let accounts = sim.honest_node(i).chain().accounts();
        assert_eq!(accounts.balance(&payer.pk), 7);
        assert_eq!(accounts.balance(&payee), 13);
    }
}

#[test]
fn rounds_are_deterministic_given_config() {
    let run = |seed: u64| {
        let mut cfg = SimConfig::new(15);
        cfg.seed = seed;
        let mut sim = Simulation::new(cfg);
        sim.run_rounds(2, 30 * 60 * 1_000_000);
        sim.honest_node(0)
            .chain()
            .block_at(2)
            .map(|b| b.hash())
            .expect("completed")
    };
    assert_eq!(run(7), run(7));
}

#[test]
fn binary_step_is_one_in_common_case() {
    // §7: with an honest highest-priority proposer and strong synchrony,
    // BA⋆ terminates in exactly 4 interactive steps — BinaryBA⋆ concludes
    // in its first step.
    let sim = run_network(20, 2);
    let mut step_one = 0usize;
    let mut total = 0usize;
    for records in sim.honest_records() {
        for r in records {
            total += 1;
            if r.binary_step == 1 {
                step_one += 1;
            }
        }
    }
    assert!(total > 0);
    assert!(
        step_one * 10 >= total * 9,
        "only {step_one}/{total} rounds concluded in BinaryBA* step 1"
    );
}

#[test]
fn bandwidth_accounting_is_plausible() {
    let sim = run_network(15, 2);
    let total = sim.network().total_bytes_sent();
    assert!(total > 0);
    // Every unique vote was verified exactly once across the whole
    // simulation (the shared cache models per-node validate-then-relay).
    assert!(sim.unique_verifications() > 0);
    // Round records exist for every honest node.
    assert_eq!(sim.honest_records().len(), 15);
}

#[test]
fn decisions_are_final_and_chain_finalizes() {
    let sim = run_network(16, 2);
    for i in 0..16 {
        let node = sim.honest_node(i);
        let chain = node.chain();
        assert!(chain.is_finalized(1), "node {i} round 1 not finalized");
        for rec in node.records() {
            assert_eq!(
                rec.kind,
                ConsensusKind::Final,
                "node {i} round {}",
                rec.round
            );
        }
    }
}
