//! Chaos harness: scripted fault schedules driven deterministically
//! through the event queue (§3's safety goal under arbitrary asynchrony,
//! §8.2–§8.3 recovery, §10.4–§10.6 attack conditions).
//!
//! Every test asserts the two chaos invariants:
//!
//! (a) **safety** — no two honest nodes ever finalize conflicting blocks
//!     for the same round, no matter what faults are active, and
//! (b) **recovery** — within a bounded virtual time after the last fault
//!     clears, all honest nodes converge onto a common chain and resume
//!     making progress.

use algorand_sim::{FaultAction, FaultSchedule, SimConfig, Simulation};
use std::collections::HashMap;

const SEC: u64 = 1_000_000;

/// Attach the online invariant monitor (which rides the tracer's
/// observer slot, so it sees every event even past the buffer cap).
/// Every chaos schedule runs monitored: faults are exactly when the
/// protocol invariants are under the most pressure.
fn monitored(mut cfg: SimConfig) -> SimConfig {
    cfg.trace = true;
    cfg.monitor = true;
    cfg
}

/// The monitor must have flagged nothing — and must actually have seen
/// traffic (certificates, tallies, seed verdicts), so a silently
/// disconnected monitor can't pass vacuously.
fn assert_monitor_clean(sim: &Simulation) {
    let report = sim.monitor_report().expect("monitor attached");
    assert!(
        report.observed.certificates > 0,
        "monitor saw no certificates"
    );
    assert!(
        report.observed.tally_adds > 0,
        "monitor saw no vote tallies"
    );
    assert!(report.observed.seeds > 0, "monitor saw no seed verdicts");
    assert_eq!(
        report.total_violations(),
        0,
        "invariant violations under chaos: {:?}",
        report.violations
    );
}

/// Safety: no two honest users may have different *finalized* blocks at
/// the same round, ever.
fn assert_no_divergent_finality(sim: &Simulation, n_honest: usize) {
    let mut finalized: HashMap<u64, [u8; 32]> = HashMap::new();
    for i in 0..n_honest {
        let chain = sim.honest_node(i).chain();
        for round in 1..=chain.tip().round {
            if chain.is_finalized(round) {
                let h = chain.block_at(round).expect("canonical").hash();
                match finalized.get(&round) {
                    Some(prev) => assert_eq!(
                        *prev, h,
                        "divergent finalized blocks at round {round} (node {i})"
                    ),
                    None => {
                        finalized.insert(round, h);
                    }
                }
            }
        }
    }
}

/// Convergence: all honest nodes agree block-for-block up to the least
/// advanced tip (which must itself be past `min_round`). Returns the
/// common height.
fn assert_common_prefix(sim: &Simulation, n_honest: usize, min_round: u64) -> u64 {
    let min_tip = (0..n_honest)
        .map(|i| sim.honest_node(i).chain().tip().round)
        .min()
        .unwrap();
    assert!(
        min_tip >= min_round,
        "least advanced honest node is at round {min_tip}, expected ≥ {min_round}"
    );
    for round in 1..=min_tip {
        let h0 = sim.honest_node(0).chain().block_at(round).unwrap().hash();
        for i in 1..n_honest {
            assert_eq!(
                sim.honest_node(i).chain().block_at(round).unwrap().hash(),
                h0,
                "node {i} on a different fork at round {round}"
            );
        }
    }
    min_tip
}

fn min_tip(sim: &Simulation, n_honest: usize) -> u64 {
    (0..n_honest)
        .map(|i| sim.honest_node(i).chain().tip().round)
        .min()
        .unwrap()
}

#[test]
fn clean_partition_heal_converges() {
    // Schedule 1: a symmetric bipartition for 60 s. Neither half can
    // reach a committee threshold, so both stall; after the heal, the
    // escalation ladder (watchdog catch-up, then epoch recovery if
    // needed) must reconverge everyone onto one chain.
    let n = 16;
    let mut cfg = SimConfig::new(n);
    cfg.seed = 11;
    let mut sim = Simulation::new(monitored(cfg));
    let schedule = FaultSchedule::new().bipartition(n, n / 2, 30 * SEC, 90 * SEC);
    let clear = schedule.last_event_at();
    sim.set_fault_schedule(schedule);
    sim.run_until(30 * SEC);
    let tip_before = min_tip(&sim, n);
    sim.run_until(clear + 240 * SEC);
    assert_no_divergent_finality(&sim, n);
    assert_common_prefix(&sim, n, tip_before + 2);
    let report = sim.fault_report();
    assert_eq!(report.partitions_activated, 1);
    assert!(report.dropped_by_partition > 0, "partition never bit");
    assert_monitor_clean(&sim);
}

#[test]
fn asymmetric_partition_heals() {
    // Schedule 2: one-directional link failure — the minority group
    // still *hears* the majority but cannot talk back. The majority
    // (10 of 12) keeps its committee threshold, so it should keep
    // deciding rounds right through the fault; the muted minority
    // follows the chain read-only and fully rejoins after the heal.
    let n = 12;
    let mut cfg = SimConfig::new(n);
    cfg.seed = 12;
    let mut sim = Simulation::new(monitored(cfg));
    let schedule = FaultSchedule::new().asymmetric_partition(n, 10, 30 * SEC, 90 * SEC);
    let clear = schedule.last_event_at();
    sim.set_fault_schedule(schedule);
    sim.run_until(30 * SEC);
    let tip_before = min_tip(&sim, n);
    sim.run_until(clear + 180 * SEC);
    assert_no_divergent_finality(&sim, n);
    assert_common_prefix(&sim, n, tip_before + 2);
    assert!(sim.fault_report().dropped_by_partition > 0);
    assert_monitor_clean(&sim);
}

#[test]
fn thirty_percent_loss_keeps_liveness() {
    // Schedule 3: 30% random packet loss for a minute. Gossip's path
    // redundancy (out-degree 4 plus relaying) rides through it: rounds
    // slow down but never stop, and no recovery machinery is needed.
    let n = 12;
    let mut cfg = SimConfig::new(n);
    cfg.seed = 13;
    let mut sim = Simulation::new(monitored(cfg));
    let schedule = FaultSchedule::new().loss_window(0.30, 20 * SEC, 80 * SEC);
    let clear = schedule.last_event_at();
    sim.set_fault_schedule(schedule);
    sim.run_until(clear + 120 * SEC);
    assert_no_divergent_finality(&sim, n);
    assert_common_prefix(&sim, n, 5);
    let report = sim.fault_report();
    assert!(report.dropped_by_loss > 0, "loss window never bit");
    assert_eq!(report.restarts, 0);
    assert_monitor_clean(&sim);
}

#[test]
fn crash_majority_restart_converges() {
    // Schedule 4: 9 of 16 nodes (56% of stake) crash for a minute. The
    // surviving minority cannot certify anything — their steps time out
    // and the adaptive backoff stretches their deadlines. After the
    // restart the network must converge onto one chain and resume.
    let n = 16;
    let mut cfg = SimConfig::new(n);
    cfg.seed = 14;
    let mut sim = Simulation::new(monitored(cfg));
    let mut schedule = FaultSchedule::new();
    for node in 0..9 {
        schedule = schedule.crash_restart(node, 40 * SEC, 100 * SEC);
    }
    let clear = schedule.last_event_at();
    sim.set_fault_schedule(schedule);
    sim.run_until(40 * SEC);
    let tip_before = min_tip(&sim, n);
    sim.run_until(clear + 320 * SEC);
    assert_no_divergent_finality(&sim, n);
    assert_common_prefix(&sim, n, tip_before + 2);
    let report = sim.fault_report();
    assert_eq!(report.restarts, 9);
    assert!(
        report.timeout_escalations > 0,
        "survivors should have burned step timeouts while the majority was down"
    );
    assert_monitor_clean(&sim);
}

#[test]
fn partition_with_equivocators_cannot_fork() {
    // Schedule 5: a partition while §10.4 equivocators are active — the
    // adversary's best shot at splitting honest users onto twin blocks.
    // Safety must hold during and after; honest nodes reconverge.
    let n = 20;
    let mut cfg = SimConfig::new(n);
    cfg.n_malicious = 4; // 20% of stake, colluding equivocators.
    cfg.seed = 15;
    let mut sim = Simulation::new(monitored(cfg));
    let schedule = FaultSchedule::new().bipartition(n, n / 2, 30 * SEC, 90 * SEC);
    let clear = schedule.last_event_at();
    sim.set_fault_schedule(schedule);
    let n_honest = 16;
    sim.run_until(30 * SEC);
    let tip_before = min_tip(&sim, n_honest);
    sim.run_until(clear + 240 * SEC);
    assert_no_divergent_finality(&sim, n_honest);
    assert_common_prefix(&sim, n_honest, tip_before + 2);
    assert_monitor_clean(&sim);
}

#[test]
fn rolling_restarts_preserve_chain() {
    // Schedule 6: a rolling maintenance wave — nodes 0..6 go down and
    // come back one after another, windows overlapping two at a time.
    // At no point is a majority missing, so the network keeps deciding
    // rounds, and every returning node slots back in.
    let n = 12;
    let mut cfg = SimConfig::new(n);
    cfg.seed = 16;
    let mut sim = Simulation::new(monitored(cfg));
    let mut schedule = FaultSchedule::new();
    for node in 0..6 {
        let down = (20 + 15 * node as u64) * SEC;
        schedule = schedule.crash_restart(node, down, down + 30 * SEC);
    }
    let clear = schedule.last_event_at();
    sim.set_fault_schedule(schedule);
    sim.run_until(clear + 180 * SEC);
    assert_no_divergent_finality(&sim, n);
    assert_common_prefix(&sim, n, 6);
    assert_eq!(sim.fault_report().restarts, 6);
    assert_monitor_clean(&sim);
}

#[test]
fn crashed_node_rejoins_via_catchup() {
    // The acceptance scenario: one node crashes, the network moves on
    // without it, and on restart it provably resyncs through the §8.3
    // catch-up protocol (not by replaying live rounds) and then
    // finalizes rounds it takes part in normally.
    let n = 10;
    let mut cfg = SimConfig::new(n);
    cfg.seed = 17;
    let mut sim = Simulation::new(monitored(cfg));
    let schedule = FaultSchedule::new().crash_restart(0, 30 * SEC, 90 * SEC);
    let clear = schedule.last_event_at();
    sim.set_fault_schedule(schedule);
    sim.run_until(30 * SEC);
    let tip_at_crash = sim.honest_node(0).chain().tip().round;
    sim.run_until(clear + 150 * SEC);
    assert_no_divergent_finality(&sim, n);
    let common = assert_common_prefix(&sim, n, tip_at_crash + 4);
    let rejoined = sim.honest_node(0);
    assert!(
        rejoined.catchups_applied() > 0,
        "restarted node should have adopted the missed rounds via catch-up"
    );
    // It participates normally again: rounds *after* the gap were
    // completed live (recorded), not just adopted.
    assert!(
        rejoined
            .records()
            .iter()
            .any(|r| r.round > tip_at_crash && r.round <= common),
        "restarted node never completed a live round after rejoining"
    );
    assert_monitor_clean(&sim);
}

#[test]
fn clock_skew_and_delay_spike_tolerated() {
    // Loosely synchronized clocks (§8.2's assumption) plus a latency
    // spike: two nodes run fast by up to half a λ_priority, one runs
    // *slow* by 300 ms (skews are signed), while all links triple their
    // latency for 40 s. Liveness and safety hold.
    let n = 12;
    let mut cfg = SimConfig::new(n);
    cfg.seed = 18;
    let mut sim = Simulation::new(monitored(cfg));
    let schedule = FaultSchedule::new()
        .at(
            5 * SEC,
            FaultAction::ClockSkew {
                node: 1,
                skew: 200_000,
            },
        )
        .at(
            5 * SEC,
            FaultAction::ClockSkew {
                node: 2,
                skew: 500_000,
            },
        )
        .at(
            5 * SEC,
            FaultAction::ClockSkew {
                node: 3,
                skew: -300_000,
            },
        )
        .at(
            20 * SEC,
            FaultAction::DelaySpike {
                factor: 3.0,
                extra: 100_000,
            },
        )
        .at(60 * SEC, FaultAction::DelayClear);
    let clear = schedule.last_event_at();
    sim.set_fault_schedule(schedule);
    sim.run_until(clear + 120 * SEC);
    assert_no_divergent_finality(&sim, n);
    assert_common_prefix(&sim, n, 5);
    assert_monitor_clean(&sim);
}

#[test]
fn identical_seed_and_schedule_replay_identically() {
    // Determinism: a (seed, schedule) pair replays byte-identically —
    // same final chains on every honest node, hence the same digest.
    let run = || {
        let n = 10;
        let mut cfg = SimConfig::new(n);
        cfg.seed = 19;
        let mut sim = Simulation::new(monitored(cfg));
        let schedule = FaultSchedule::new()
            .bipartition(n, 5, 20 * SEC, 50 * SEC)
            .loss_window(0.15, 60 * SEC, 90 * SEC)
            .crash_restart(3, 95 * SEC, 115 * SEC);
        sim.set_fault_schedule(schedule);
        sim.run_until(220 * SEC);
        assert_monitor_clean(&sim);
        (sim.chain_digest(), sim.now())
    };
    let (digest_a, now_a) = run();
    let (digest_b, now_b) = run();
    assert_eq!(digest_a, digest_b, "chaos replay diverged");
    assert_eq!(now_a, now_b);
}

#[test]
fn restart_carries_precrash_counters_exactly_once() {
    // A crashed-then-restarted node loses all volatile state, including
    // its measurement counters. The aggregating reports must still show
    // its pre-crash history — carried over exactly once per node id —
    // while the live node object restarts from zero.
    let n = 10;
    let mut cfg = SimConfig::new(n);
    cfg.seed = 17;
    let mut sim = Simulation::new(monitored(cfg));
    let schedule = FaultSchedule::new().crash_restart(0, 30 * SEC, 90 * SEC);
    let clear = schedule.last_event_at();
    sim.set_fault_schedule(schedule);
    sim.run_until(30 * SEC);
    let tip_at_crash = sim.honest_node(0).chain().tip().round;
    assert!(
        tip_at_crash >= 2,
        "node 0 should finish rounds before the crash"
    );
    sim.run_until(clear + 150 * SEC);

    // The live (restarted) object has no memory of pre-crash rounds …
    let live_first = sim.honest_node(0).records().iter().map(|r| r.round).min();
    assert!(
        live_first.is_none_or(|r| r > tip_at_crash),
        "restored node unexpectedly holds pre-crash records"
    );
    // … but the combined view still has them, each round exactly once.
    let combined = sim.combined_records();
    let rounds: Vec<u64> = combined[0].iter().map(|r| r.round).collect();
    assert!(
        rounds.iter().any(|&r| r <= tip_at_crash),
        "pre-crash rounds lost from the aggregated records"
    );
    let mut dedup = rounds.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), rounds.len(), "a round was double-counted");

    // Pipeline counters: the report must exceed the live-only sum by
    // exactly the carried pre-crash share (> 0 here, since node 0
    // ingested traffic before going down).
    let live_only: u64 = (0..n)
        .map(|i| sim.honest_node(i).pipeline_stats().ingested)
        .sum();
    assert!(
        sim.pipeline_report().stages.ingested > live_only,
        "pre-crash pipeline counters lost from the aggregate"
    );
    assert_monitor_clean(&sim);
}
