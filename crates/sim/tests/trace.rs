//! Tracing must be invisible to the protocol and replayable: the same
//! `(seed, schedule)` yields byte-identical trace JSONL, and enabling
//! tracing cannot change the chain digest. (The full 50-user CI gate
//! lives in `bench/src/bin/trace_report.rs --check`; this is the fast
//! in-tree version.)

use algorand_sim::obs::{parse_jsonl, SpanKind};
use algorand_sim::{SimConfig, Simulation};

const T_CAP: u64 = 600 * 1_000_000;

fn run(trace: bool) -> Simulation {
    let mut cfg = SimConfig::new(8);
    cfg.seed = 31;
    cfg.trace = trace;
    let mut sim = Simulation::new(cfg);
    sim.run_rounds(3, T_CAP);
    sim
}

#[test]
fn trace_export_is_deterministic_and_inert() {
    let a = run(true);
    let b = run(true);
    let plain = run(false);
    assert_eq!(
        a.chain_digest(),
        plain.chain_digest(),
        "tracing changed the simulation outcome"
    );
    let jsonl_a = a.export_trace("smoke-8");
    assert_eq!(
        jsonl_a,
        b.export_trace("smoke-8"),
        "trace is not replayable"
    );

    let trace = parse_jsonl(&jsonl_a).expect("exporter emits parseable JSONL");
    assert_eq!(trace.seed, 31);
    assert_eq!(trace.schedule, "smoke-8");
    assert_eq!(trace.dropped, 0);
    // Every node finished 3 rounds ⇒ 24 round spans, each with a
    // matching proposal span and at least one BA⋆ step span.
    let count = |kind| trace.events.iter().filter(|e| e.kind == kind).count();
    assert_eq!(count(SpanKind::Round), 24);
    assert_eq!(count(SpanKind::Proposal), 24);
    assert!(count(SpanKind::BaStep) >= 24);
    assert!(count(SpanKind::Verify) > 0);
    assert!(count(SpanKind::Sortition) > 0);
    // The exporter appends one uplink/downlink summary pair per user.
    let bw = trace
        .events
        .iter()
        .filter(|e| e.kind == SpanKind::GossipHop && e.label.ends_with("_total"))
        .count();
    assert_eq!(bw, 16);
    // …plus the network-wide per-kind byte counters, in fixed order.
    let kinds: Vec<&str> = trace
        .events
        .iter()
        .filter(|e| e.label.starts_with("bytes_"))
        .map(|e| e.label.as_ref())
        .collect();
    assert_eq!(
        kinds,
        [
            "bytes_vote",
            "bytes_priority",
            "bytes_block",
            "bytes_fork",
            "bytes_tx",
            "bytes_catchup"
        ]
    );
    // Votes and priorities moved bytes in any healthy run.
    let bytes_of = |label: &str| {
        trace
            .events
            .iter()
            .find(|e| e.label == label)
            .map_or(0, |e| e.value)
    };
    assert!(bytes_of("bytes_vote") > 0);
    assert!(bytes_of("bytes_priority") > 0);
    // Vote and priority gossip hops are now individually traced, with
    // the sender stamped for the causal walk.
    assert!(trace
        .events
        .iter()
        .any(|e| e.kind == SpanKind::GossipHop && e.label == "vote" && e.id != 0));
}

#[test]
fn untraced_run_records_no_events() {
    let sim = run(false);
    let trace = parse_jsonl(&sim.export_trace("off")).expect("valid JSONL");
    // Only the per-node bandwidth summaries appear.
    assert!(trace.events.iter().all(|e| e.label.ends_with("_total")));
}
