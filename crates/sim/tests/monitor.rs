//! Online invariant monitor: a healthy traced run must come back clean
//! (with the vacuity counters proving the checks saw real traffic), the
//! monitor only attaches when tracing is on, and the deliberate
//! violation-injection self-test must flag every seeded violation.
//! (The chaos schedules in `tests/chaos.rs` all run monitored too.)

use algorand_sim::obs::monitor::{violation_selftest, Invariant};
use algorand_sim::{SimConfig, Simulation};

const T_CAP: u64 = 600 * 1_000_000;

fn run(n: usize, seed: u64, monitor: bool) -> Simulation {
    let mut cfg = SimConfig::new(n);
    cfg.seed = seed;
    cfg.trace = true;
    cfg.monitor = monitor;
    let mut sim = Simulation::new(cfg);
    sim.run_rounds(4, T_CAP);
    sim
}

#[test]
fn baseline_run_reports_zero_violations() {
    let sim = run(10, 41, true);
    let report = sim.monitor_report().expect("monitor attached");
    // Vacuity guard: every check class actually saw traffic.
    assert!(
        report.observed.certificates >= 10 * 4,
        "missing certificates"
    );
    assert!(report.observed.tally_adds > 0, "no tallies observed");
    assert!(report.observed.seeds >= 10 * 4, "no seed verdicts observed");
    assert!(
        report.observed.max_committee > 0,
        "no committee weight seen"
    );
    assert_eq!(
        report.total_violations(),
        0,
        "healthy run flagged: {:?}",
        report.violations
    );
    // The per-class counters agree with the total.
    for inv in Invariant::ALL {
        assert_eq!(report.count(inv), 0, "{} nonzero", inv.as_str());
    }
}

#[test]
fn monitor_requires_tracing() {
    let mut cfg = SimConfig::new(8);
    cfg.seed = 42;
    cfg.monitor = true; // but trace stays false
    let mut sim = Simulation::new(cfg);
    sim.run_rounds(2, T_CAP);
    assert!(
        sim.monitor_report().is_none(),
        "monitor must not attach without the tracer"
    );
}

#[test]
fn monitoring_does_not_change_the_chain() {
    let a = run(8, 43, true);
    let b = run(8, 43, false);
    assert_eq!(
        a.chain_digest(),
        b.chain_digest(),
        "attaching the monitor changed the simulation outcome"
    );
}

#[test]
fn violation_injection_selftest_flags_every_class() {
    // Feeds the monitor hand-built event streams that violate each
    // invariant class in turn (plus a clean stream that must pass);
    // any missed or spurious flag comes back as Err.
    violation_selftest().expect("self-test");
}
