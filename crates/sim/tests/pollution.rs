//! Pollution resistance (§8.4): garbage and Sybil traffic must not break
//! consensus or trick vote counting.

use algorand_ba::{StepKind, VoteMessage};
use algorand_core::WireMessage;
use algorand_crypto::{vrf, Keypair};
use algorand_ledger::Transaction;
use algorand_sim::{SimConfig, Simulation};

const MINUTE: u64 = 60 * 1_000_000;

#[test]
fn zero_stake_sybil_votes_do_not_count() {
    // A Sybil with no currency signs protocol-valid-looking votes; every
    // honest node must ignore them (weight 0 ⇒ never selected), and
    // consensus must proceed exactly as without them.
    let n = 16;
    let mut cfg = SimConfig::new(n);
    cfg.seed = 41;
    let mut sim = Simulation::new(cfg);

    // Craft Sybil votes for round 1 steps.
    let sybil = Keypair::from_seed([0xE1u8; 32]);
    let (sorthash, proof) = vrf::prove(&sybil, b"fake-selection");
    let mut fakes = Vec::new();
    for step in [
        StepKind::ReductionOne,
        StepKind::ReductionTwo,
        StepKind::Main(1),
        StepKind::Final,
    ] {
        fakes.push(VoteMessage::sign(
            &sybil,
            1,
            step,
            sorthash,
            proof,
            [0u8; 32], // Wrong prev hash too — but even a correct one has weight 0.
            [0x66u8; 32],
        ));
    }
    for (i, f) in fakes.into_iter().enumerate() {
        sim.inject_message(i % n, WireMessage::Vote(f));
    }

    sim.run_rounds(2, 20 * MINUTE);
    for i in 0..n {
        let chain = sim.honest_node(i).chain();
        assert!(chain.tip().round >= 2, "node {i} stalled");
        assert_ne!(
            chain.block_at(1).unwrap().hash(),
            [0x66u8; 32],
            "a Sybil-voted value must never win"
        );
        assert!(chain.is_finalized(1), "node {i} did not finalize");
    }
}

#[test]
fn forged_transactions_never_enter_blocks() {
    // A transaction whose `from` does not match the signer must never be
    // confirmed — even when submitted through every node.
    let n = 14;
    let mut cfg = SimConfig::new(n);
    cfg.seed = 42;
    let mut sim = Simulation::new(cfg);
    let victim = sim.keypair(0).pk;
    let thief = Keypair::from_seed([0xE2u8; 32]);
    let mut forged = Transaction::payment(&thief, thief.pk, 10, 1);
    forged.from = victim;
    let forged_id = forged.id();
    for i in 0..n {
        sim.submit_transaction(i, forged.clone());
    }
    sim.run_rounds(2, 20 * MINUTE);
    for i in 0..n {
        let chain = sim.honest_node(i).chain();
        assert_eq!(chain.confirmed_round(&forged_id), None, "node {i}");
        assert_eq!(chain.accounts().balance(&victim), 10, "victim balance");
    }
}

#[test]
fn duplicate_floods_do_not_amplify_traffic() {
    // Submitting the same transaction through every node must not multiply
    // gossip traffic: content-based dedup caps it at one propagation.
    let n = 12;
    let mut cfg = SimConfig::new(n);
    cfg.seed = 43;
    let mut sim = Simulation::new(cfg);
    let tx = Transaction::payment(sim.keypair(1), sim.keypair(2).pk, 1, 1);
    for _ in 0..50 {
        for i in 0..n {
            sim.submit_transaction(i, tx.clone());
        }
    }
    // Three rounds: with this seed, round 1 happens to draw zero block
    // proposers (an expected, paper-sanctioned occurrence — the round
    // agrees on the empty block) and the payment lands in a later round.
    sim.run_rounds(3, 10 * MINUTE);
    // Transaction traffic: at most ~n·degree copies of 144 bytes; far
    // below even one block's gossip. Check total traffic stayed sane.
    let total = sim.network().total_bytes_sent();
    assert!(
        total < 20_000_000,
        "flooding amplified traffic: {total} bytes"
    );
    let chain = sim.honest_node(3).chain();
    let round = chain.confirmed_round(&tx.id()).expect("confirmed");
    assert!(round <= 3);
}
