//! Determinism and validation gates for the parallel discrete-event
//! engine.
//!
//! The load-bearing property: for any seed and any worker count, chain
//! digests, monitor verdicts, and exported traces are **byte-identical**.
//! Every shared-state effect in the engine happens in a sequential phase
//! in canonical `(time, class, seq)` order, so worker threads can only
//! change wall-clock, never results. These tests pin that for a chaos
//! schedule, a payment workload, and an equivocating adversary, and
//! validate the engine against the analytic epidemic model at an
//! overlapping network size.

use algorand_sim::{DesConfig, EpidemicConfig, FaultSchedule, Micros, ParallelSim, SimConfig};

const SEC: Micros = 1_000_000;

fn des(sim: SimConfig, workers: usize) -> ParallelSim {
    ParallelSim::new(DesConfig {
        sim,
        workers,
        trace_node_budget: 0,
    })
}

/// One full traced chaos run; returns everything the gate compares.
fn chaos_run(workers: usize) -> ([u8; 32], String, String) {
    let mut cfg = SimConfig::new(12);
    cfg.seed = 33;
    cfg.trace = true;
    cfg.monitor = true;
    let mut sim = des(cfg, workers);
    sim.set_fault_schedule(
        FaultSchedule::new()
            .loss_window(0.25, 10 * SEC, 40 * SEC)
            .crash_restart(2, 15 * SEC, 45 * SEC),
    );
    sim.run_until(90 * SEC);
    let digest = sim.chain_digest();
    let monitor = format!("{}", sim.monitor_report().expect("monitor attached"));
    let trace = sim.export_trace("des-chaos");
    (digest, monitor, trace)
}

#[test]
fn chaos_results_are_identical_across_worker_counts() {
    let (d1, m1, t1) = chaos_run(1);
    for workers in [2, 4] {
        let (d, m, t) = chaos_run(workers);
        assert_eq!(d1, d, "chain digest diverged at {workers} workers");
        assert_eq!(m1, m, "monitor verdict diverged at {workers} workers");
        assert_eq!(t1, t, "trace diverged at {workers} workers");
    }
    // The run must have done real work: some rounds finalized.
    assert!(t1.contains("round"), "trace is empty");
}

/// A payment workload with an equivocating minority; compares digests,
/// traces, and end-to-end tx accounting across worker counts.
fn payment_run(workers: usize) -> ([u8; 32], String, String) {
    let mut cfg = SimConfig::new(16);
    cfg.seed = 77;
    cfg.n_malicious = 3;
    cfg.tx_rate = 4.0;
    cfg.tx_total = 24;
    cfg.trace = true;
    cfg.monitor = true;
    let mut sim = des(cfg, workers);
    sim.run_rounds(4, 240 * SEC);
    let digest = sim.chain_digest();
    let stats = format!("{:?}", sim.tx_stats());
    let trace = sim.export_trace("des-payment");
    (digest, stats, trace)
}

#[test]
fn payment_workload_is_identical_across_worker_counts() {
    let (d1, s1, t1) = payment_run(1);
    for workers in [2, 4] {
        let (d, s, t) = payment_run(workers);
        assert_eq!(d1, d, "chain digest diverged at {workers} workers");
        assert_eq!(s1, s, "tx stats diverged at {workers} workers");
        assert_eq!(t1, t, "trace diverged at {workers} workers");
    }
}

#[test]
fn same_seed_same_run_is_reproducible() {
    let (d1, m1, t1) = chaos_run(2);
    let (d2, m2, t2) = chaos_run(2);
    assert_eq!(d1, d2);
    assert_eq!(m1, m2);
    assert_eq!(t1, t2);
}

/// Satellite: the per-node trace retention budget caps memory with
/// explicit `trimmed` accounting, and the invariant monitor — which sees
/// the full stream, before trimming — still passes on the retained run.
#[test]
fn trace_budget_caps_retained_events_with_accounting() {
    let mut cfg = SimConfig::new(12);
    cfg.seed = 41;
    cfg.trace = true;
    cfg.monitor = true;
    let budget = 40;
    let mut sim = ParallelSim::new(DesConfig {
        sim: cfg.clone(),
        workers: 2,
        trace_node_budget: budget,
    });
    let mut unlimited = ParallelSim::new(DesConfig {
        sim: cfg,
        workers: 2,
        trace_node_budget: 0,
    });
    sim.run_until(60 * SEC);
    unlimited.run_until(60 * SEC);

    let trimmed = sim.trace_trimmed();
    assert!(trimmed > 0, "a 60s run must exceed 40 events on some node");
    assert_eq!(
        sim.trace_dropped(),
        0,
        "budget trims, buffers never overflow"
    );
    // Retention is bounded: at most `budget` per node plus unattributed
    // engine spans — far below the unlimited run.
    assert!(
        sim.trace_retained() < unlimited.trace_retained(),
        "budget did not reduce retention ({} vs {})",
        sim.trace_retained(),
        unlimited.trace_retained()
    );
    let jsonl = sim.export_trace("des-budget");
    let header = jsonl.lines().next().expect("header line");
    assert!(
        header.contains(&format!("\"trimmed\":{trimmed}")),
        "export header must account for trimmed events: {header}"
    );
    // The byte ceiling: budget * nodes * (generous per-event JSON size)
    // plus the per-node bandwidth summaries.
    let ceiling = budget * 12 * 400 + 64 * 1024;
    assert!(
        jsonl.len() < ceiling,
        "trimmed export too large: {} >= {ceiling}",
        jsonl.len()
    );
    // Trimming is observability-only: the protocol outcome is untouched
    // and the monitor (fed pre-trim) stays clean.
    assert_eq!(sim.chain_digest(), unlimited.chain_digest());
    let report = sim.monitor_report().expect("monitor");
    assert_eq!(report.total_violations(), 0, "{report}");
}

/// Satellite: the analytic epidemic model and the real discrete-event
/// engine must agree on finalization latency where their domains
/// overlap. The model is a closed-form estimate, so the gate is a
/// factor band, not equality — but a band tight enough to catch a
/// misconfigured engine (e.g. lost lookahead, broken uplink model).
#[test]
fn epidemic_model_agrees_with_des_at_overlapping_size() {
    let n = 100;
    let mut cfg = SimConfig::new(n);
    cfg.seed = 5;
    let params = cfg.params;
    let mut sim = des(cfg, 4);
    let rounds = 3;
    sim.run_rounds(rounds, 240 * SEC);
    let records = sim.combined_records();
    let finalized = records[0].len() as u64;
    assert!(finalized >= rounds, "only {finalized} rounds finalized");
    let mean_s = records[0]
        .iter()
        .take(rounds as usize)
        .map(|r| (r.finished - r.started) as f64 / 1e6)
        .sum::<f64>()
        / rounds as f64;

    // The model at the simulator's operating point (not figure6's EC2
    // packing): same per-user bandwidth, latency, and fan-out.
    let mut model = EpidemicConfig::figure6(n);
    model.bandwidth_bps = 20e6;
    model.mean_latency_s = 0.075;
    model.fanout = 4;
    model.block_bytes = 2_000;
    model.tau_step = params.ba.tau_step;
    model.threshold = params.ba.t_step;
    let predicted_s = model.round_latency_s(&params);

    let ratio = mean_s / predicted_s;
    assert!(
        (0.25..=4.0).contains(&ratio),
        "DES mean {mean_s:.2}s vs epidemic model {predicted_s:.2}s (ratio {ratio:.2})"
    );
}
