//! Fault-injection and adversarial simulations: the paper's safety and
//! liveness claims under attack (§3, §8.2, §8.4, §10.4).

use algorand_sim::{NetConfig, SimConfig, Simulation};
use std::collections::HashMap;

const MINUTE: u64 = 60 * 1_000_000;

fn assert_no_divergent_finality(sim: &Simulation, n_honest: usize) {
    // Safety: no two honest users may have different *finalized* blocks at
    // the same round, ever.
    let mut finalized: HashMap<u64, [u8; 32]> = HashMap::new();
    for i in 0..n_honest {
        let chain = sim.honest_node(i).chain();
        for round in 1..=chain.tip().round {
            if chain.is_finalized(round) {
                let h = chain.block_at(round).expect("canonical").hash();
                match finalized.get(&round) {
                    Some(prev) => assert_eq!(
                        *prev, h,
                        "divergent finalized blocks at round {round} (node {i})"
                    ),
                    None => {
                        finalized.insert(round, h);
                    }
                }
            }
        }
    }
}

#[test]
fn equivocating_proposer_and_double_voting_committee_cannot_fork() {
    // §10.4's attack: malicious proposers send different blocks to each
    // half of their peers; malicious committee members vote for both.
    let mut cfg = SimConfig::new(20);
    cfg.n_malicious = 4; // 20% of users (= 20% of stake).
    let mut sim = Simulation::new(cfg);
    sim.run_rounds(3, 30 * MINUTE);

    let n_honest = 16;
    assert_no_divergent_finality(&sim, n_honest);

    // Liveness: every honest node still completed its rounds.
    for records in sim.honest_records() {
        assert!(
            records.iter().filter(|r| r.round <= 3).count() >= 3,
            "an honest node failed to complete 3 rounds"
        );
    }
    // All honest chains are identical.
    let reference: Vec<[u8; 32]> = (1..=3)
        .map(|r| sim.honest_node(0).chain().block_at(r).unwrap().hash())
        .collect();
    for i in 1..n_honest {
        for (idx, r) in (1..=3u64).enumerate() {
            assert_eq!(
                sim.honest_node(i).chain().block_at(r).unwrap().hash(),
                reference[idx],
                "node {i} diverges at round {r}"
            );
        }
    }
}

#[test]
fn adversary_actually_equivocated() {
    // Sanity check on the attack itself: with 40% malicious stake over
    // several rounds, some malicious proposer must have produced twin
    // blocks (otherwise the test above proves nothing).
    let mut cfg = SimConfig::new(10);
    cfg.n_malicious = 4;
    cfg.seed = 3;
    let mut sim = Simulation::new(cfg);
    sim.run_rounds(4, 30 * MINUTE);
    assert!(
        !sim.adversary().lock().unwrap().equivocations.is_empty(),
        "no equivocation was ever mounted; attack coverage is vacuous"
    );
    assert_no_divergent_finality(&sim, 6);
}

#[test]
fn full_partition_preserves_safety() {
    // Split the network into two halves for a window starting mid-run: no
    // honest user may finalize conflicting blocks, ever (§3's safety goal
    // holds under arbitrary asynchrony).
    let n = 16;
    let mut cfg = SimConfig::new(n);
    cfg.seed = 5;
    let mut sim = Simulation::new(cfg);
    // Let two rounds complete normally first.
    sim.run_rounds(2, 10 * MINUTE);
    let t_heal = sim.now() + 60 * 1_000_000;
    let half = n / 2;
    sim.set_network_filter(Some(Box::new(move |now, from, to| {
        now >= t_heal || (from < half) == (to < half)
    })));
    // Run through the partition and beyond.
    sim.run_rounds(4, 30 * MINUTE);
    assert_no_divergent_finality(&sim, n);
}

#[test]
fn liveness_resumes_after_partition_heals() {
    let n = 16;
    let mut cfg = SimConfig::new(n);
    cfg.seed = 6;
    let mut sim = Simulation::new(cfg);
    sim.run_rounds(2, 10 * MINUTE);
    let rounds_before: u64 = sim.honest_node(0).chain().tip().round;
    let t_heal = sim.now() + 45 * 1_000_000;
    let half = n / 2;
    sim.set_network_filter(Some(Box::new(move |now, from, to| {
        now >= t_heal || (from < half) == (to < half)
    })));
    sim.run_rounds(rounds_before + 3, 40 * MINUTE);
    let rounds_after = sim.honest_node(0).chain().tip().round;
    assert!(
        rounds_after >= rounds_before + 2,
        "no progress after heal: {rounds_before} -> {rounds_after}"
    );
    assert_no_divergent_finality(&sim, n);
}

#[test]
fn targeted_dos_on_some_users_does_not_stop_progress() {
    // §8.4: an adversary that silences users after they reveal themselves
    // gains little, because fresh committees are drawn every step. Here
    // 3 of 20 users (15% of stake) are fully silenced mid-run.
    let n = 20;
    let mut cfg = SimConfig::new(n);
    cfg.seed = 7;
    let mut sim = Simulation::new(cfg);
    sim.run_rounds(1, 10 * MINUTE);
    let t_dos = sim.now();
    sim.set_network_filter(Some(Box::new(move |now, from, _| {
        !(now >= t_dos && from < 3)
    })));
    sim.run_rounds(4, 30 * MINUTE);
    // The 17 unblocked nodes keep completing rounds.
    for i in 3..n {
        let recs = sim.honest_node(i).records();
        assert!(
            recs.iter().filter(|r| r.round <= 4).count() >= 4,
            "node {i} stalled under targeted DoS"
        );
    }
    assert_no_divergent_finality(&sim, n);
}

#[test]
fn long_partition_triggers_recovery_and_network_rejoins() {
    // A partition longer than the recovery interval: both sides stall,
    // kick off the §8.2 recovery protocol on loosely synchronized clocks,
    // and converge on one fork once the network heals.
    let n = 12;
    let mut cfg = SimConfig::new(n);
    // Seed chosen so the partition demonstrably outlasts the recovery
    // interval and both halves then reconverge (the scenario is
    // seed-sensitive: some streams leave stragglers on a minority fork
    // far longer than this test's horizon).
    cfg.seed = 1;
    let recovery_interval = cfg.params.recovery_interval;
    let mut sim = Simulation::new(cfg);
    sim.run_rounds(1, 10 * MINUTE);
    // The stall detector needs (a) an epoch boundary and (b) more than one
    // interval without progress; heal only after the *second* boundary so
    // recovery demonstrably runs while the network is still split.
    let t_heal = 2 * recovery_interval + 40 * 1_000_000;
    let half = n / 2;
    sim.set_network_filter(Some(Box::new(move |now, from, to| {
        now >= t_heal || (from < half) == (to < half)
    })));
    sim.run_until(t_heal + 4 * recovery_interval);
    // Progress resumed after the heal...
    let final_round = sim.honest_node(0).chain().tip().round;
    assert!(final_round >= 2, "chain stuck at round {final_round}");
    // ...and at least one node went through the recovery protocol.
    let total_recoveries: usize = (0..n)
        .map(|i| sim.honest_node(i).recoveries_completed())
        .sum();
    assert!(
        total_recoveries > 0,
        "partition outlasted the recovery interval but nobody recovered"
    );
    assert_no_divergent_finality(&sim, n);
    // All nodes converged onto one chain (tips may differ by an in-flight
    // round; compare the common prefix).
    let min_tip = (0..n)
        .map(|i| sim.honest_node(i).chain().tip().round)
        .min()
        .unwrap();
    for round in 1..=min_tip {
        let h0 = sim.honest_node(0).chain().block_at(round).unwrap().hash();
        for i in 1..n {
            assert_eq!(
                sim.honest_node(i).chain().block_at(round).unwrap().hash(),
                h0,
                "node {i} on a different fork at round {round} after recovery"
            );
        }
    }
}

#[test]
fn slow_network_still_safe_with_higher_latency() {
    // Raise jitter and shrink bandwidth: rounds slow down but safety and
    // consistency hold (the timeout parameters are conservative, §10.5).
    let mut cfg = SimConfig::new(12);
    cfg.net = NetConfig {
        bandwidth_bps: 2_000_000, // 10× tighter than the paper's cap.
        jitter_frac: 0.3,
        loss_prob: 0.0,
        seed: 9,
    };
    let mut sim = Simulation::new(cfg);
    sim.run_rounds(2, 30 * MINUTE);
    assert_no_divergent_finality(&sim, 12);
    for records in sim.honest_records() {
        assert!(
            records.iter().filter(|r| r.round <= 2).count() >= 2,
            "a node failed to complete rounds on the slow network"
        );
    }
}

#[test]
fn withholding_proposer_costs_time_but_not_safety() {
    // §6's worst case: malicious proposers advertise priorities but never
    // send block bodies. When one of them wins the priority race, honest
    // users wait out λ_block and agree on the empty block; liveness and
    // safety are unaffected.
    let mut cfg = SimConfig::new(20);
    cfg.n_malicious = 5; // 25% of stake: wins the race often.
    cfg.adversary_kind = algorand_sim::AdversaryKind::Withholder;
    cfg.seed = 61;
    let mut sim = Simulation::new(cfg);
    sim.run_rounds(5, 30 * MINUTE);
    assert_no_divergent_finality(&sim, 15);
    // Attack-coverage sanity: bodies were actually suppressed (otherwise
    // the assertions below prove nothing about withholding).
    assert!(
        sim.adversary().lock().unwrap().withheld_blocks > 0,
        "no block body was ever withheld; attack coverage is vacuous"
    );
    let mut empty_rounds = 0;
    let mut slow_rounds = 0;
    for r in 1..=5u64 {
        let stats = sim.round_stats(r).expect("round completed");
        empty_rounds += (stats.empty_fraction > 0.5) as u32;
        slow_rounds += (stats.completion.median > 10.0) as u32;
    }
    // The attack only converts some rounds to slow, empty ones.
    assert!(
        empty_rounds > 0,
        "with 25% withholding stake over 5 rounds, some round should have \
         been forced empty"
    );
    assert_eq!(
        empty_rounds, slow_rounds,
        "empty rounds are exactly the ones that waited out lambda_block"
    );
    // Chains remain identical.
    let tip0: Vec<[u8; 32]> = (1..=5)
        .map(|r| sim.honest_node(0).chain().block_at(r).unwrap().hash())
        .collect();
    for i in 1..15 {
        for (idx, r) in (1..=5u64).enumerate() {
            assert_eq!(
                sim.honest_node(i).chain().block_at(r).unwrap().hash(),
                tip0[idx]
            );
        }
    }
}
