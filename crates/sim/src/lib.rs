//! Discrete-event simulation of an Algorand deployment.
//!
//! The paper evaluates Algorand on 1,000 EC2 VMs (§10); this crate is that
//! testbed's stand-in. It drives [`algorand_core::Node`] instances over a
//! gossip topology in virtual time, modelling the two resources that
//! determine the paper's results: per-process uplink bandwidth (20 Mbit/s,
//! serializing transmissions) and inter-city propagation latency with
//! jitter. Fault injection (partitions, targeted DoS) and the §10.4
//! equivocation adversary are built in; for 500,000-user scales an
//! analytic epidemic model mirrors the paper's own shortcuts.

pub mod adversary;
pub mod des;
pub mod epidemic;
pub mod event;
pub mod faults;
pub mod fuzz;
pub mod harness;
pub mod latency;
pub mod metrics;
pub mod network;
pub mod runner;

pub use adversary::{AdversaryKind, AdversaryShared, MaliciousNode, Outgoing};
pub use des::{DesConfig, ParallelSim};
pub use epidemic::EpidemicConfig;
pub use event::{Event, EventQueue, Micros};
pub use faults::{FaultAction, FaultEvent, FaultSchedule, ScheduleError};
pub use fuzz::{
    generate, parse_case, run_campaign, run_case, serialize_case, shrink, CampaignConfig,
    CampaignResult, FuzzCase, ShrinkOutcome, Verdict, VerdictClass,
};
pub use harness::{
    FaultReport, InjectedBug, PipelineReport, SimConfig, TxRecord, TxStats, GENESIS_SEED,
};
pub use metrics::{round_stats, Percentiles, RoundStats};
pub use network::{NetConfig, Network, PartitionSpec};
pub use runner::Simulation;

// The shared observability layer (tracing + metrics registry), re-exported
// so harnesses driving the simulator need not depend on the crate directly.
pub use algorand_obs as obs;
