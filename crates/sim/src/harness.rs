//! Engine-agnostic simulation harness: configuration, node slots,
//! in-flight messages, the open-loop workload, carried counters, and the
//! aggregate reports.
//!
//! Two engines drive this layer: the original single-threaded
//! [`crate::runner::Simulation`] (one global event queue, the oracle the
//! chaos/replay gates pin) and the conservative parallel
//! [`crate::des::ParallelSim`] (sharded queues, lookahead windows). Both
//! build the same node population, inject the same workload, and report
//! through the same aggregation helpers, so their results are directly
//! comparable.

use crate::adversary::{AdversaryKind, AdversaryShared, MaliciousNode, Outgoing};
use crate::event::Micros;
use crate::metrics::Percentiles;
use crate::network::{NetConfig, Network};
use algorand_ba::{RoundWeights, StepKind, VoteContext};
use algorand_core::{
    AlgorandParams, Node, PipelineStats, PipelineVerifier, RoundRecord, VerifyJob, VerifyPool,
    WireMessage,
};
use algorand_crypto::rng::Rng;
use algorand_crypto::Keypair;
use algorand_ledger::seed::selection_seed_round;
use algorand_ledger::{Blockchain, Transaction};
use algorand_obs::{MonitorConfig, Tracer};
use algorand_sortition::binomial::binomial_cdf;
use algorand_txpool::PoolMetrics;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// Verification jobs buffered before a batch is handed to the pool.
pub(crate) const PREWARM_BATCH: usize = 32;

/// Genesis seed shared by every node (and by restarts). Public so the
/// real-process harness (`crates/node`) can boot the *same* genesis and
/// cross-check chain digests against the simulator.
pub const GENESIS_SEED: [u8; 32] = [0x47u8; 32];

/// Bound on buffered trace events per run (~100 bytes each); past it
/// events are counted as dropped rather than growing memory unbounded.
pub(crate) const TRACE_CAP: usize = 1 << 21;

/// Bytes for a block announcement (hash + round + priority material).
pub(crate) const ANNOUNCE_SIZE: usize = 300;

/// Node `local` clock reading at global instant `now` under a signed
/// skew (positive runs fast, negative slow). Saturates at zero so a
/// slow clock near simulation start never underflows.
pub(crate) fn skewed_local(now: Micros, skew: i64) -> Micros {
    now.saturating_add_signed(skew)
}

/// Global instant at which a node's *local* deadline fires under a
/// signed skew: the inverse of [`skewed_local`].
pub(crate) fn unskewed_global(local_deadline: Micros, skew: i64) -> Micros {
    if skew >= 0 {
        local_deadline.saturating_sub(skew as u64)
    } else {
        local_deadline.saturating_add(skew.unsigned_abs())
    }
}

/// Configuration for one simulation.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of users.
    pub n_users: usize,
    /// Number of *malicious* users (taken from the end of the index
    /// space); their stake is the same as everyone else's.
    pub n_malicious: usize,
    /// The attack the malicious users mount.
    pub adversary_kind: AdversaryKind,
    /// Protocol parameters (typically [`AlgorandParams::scaled`]).
    pub params: AlgorandParams,
    /// Transport configuration.
    pub net: NetConfig,
    /// Gossip out-degree (paper: 4).
    pub out_degree: usize,
    /// Synthetic payload bytes per proposed block.
    pub payload_bytes: usize,
    /// Open-loop workload: transactions injected per second across the
    /// network (0 disables the traffic source).
    pub tx_rate: f64,
    /// Total transactions the workload injects before going quiet.
    pub tx_total: usize,
    /// Byte budget for the transaction list of each proposed block.
    pub block_tx_bytes: usize,
    /// Currency units per user (equal split, as in §10).
    pub stake_per_user: u64,
    /// Relay every block regardless of priority (ablation of §6's
    /// highest-priority discard rule; the paper behaviour is `false`).
    pub relay_all_blocks: bool,
    /// How often each user re-draws its gossip peers (§8.4: "Algorand
    /// replaces gossip peers each round", which also heals nodes stuck in
    /// a disconnected component). 0 disables churn.
    pub peer_churn_interval: u64,
    /// Seed for topology and deterministic keys.
    pub seed: u64,
    /// Worker threads for the parallel verify pool (0 = serial; behavior
    /// is byte-identical either way — the pool only pre-warms the shared
    /// verification cache ahead of each delivery, never reordering
    /// events).
    pub verify_pool_workers: usize,
    /// Record structured trace spans into the bounded in-memory buffer
    /// (exported with `export_trace`). Tracing is write-only and consumes
    /// no randomness, so it cannot change the simulation's behavior:
    /// same seed ⇒ same chain digest either way.
    pub trace: bool,
    /// Attach the online protocol-invariant monitor to the trace stream
    /// (requires `trace`). The monitor observes events before the buffer
    /// cap, so a truncated trace still gets checked end to end.
    pub monitor: bool,
    /// Test-only planted defect, used to prove the fuzzing oracle can
    /// actually catch and shrink real failures (`None` in every
    /// production configuration).
    pub injected_bug: Option<InjectedBug>,
}

/// A deliberately planted implementation defect, switchable per run.
///
/// The schedule-space fuzzer's acceptance story needs a known-bad build:
/// flip one of these on, fuzz, and the oracle must find and shrink a
/// failing schedule. Each variant disables one recovery mechanism the
/// paper's liveness argument relies on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedBug {
    /// Nodes drop every §8.3 catch-up response at ingest: a node that
    /// falls behind (crash, long partition) can never resynchronize, so
    /// network-wide finality stalls at its pre-fault tip.
    IgnoreCatchupResponses,
    /// Step-timeout escalation is disabled: nodes never stretch their
    /// BA⋆ deadlines after repeated failed steps (§8.2's adaptive
    /// backoff), so desynchronized step clocks after a long disruption
    /// can keep missing each other's vote windows.
    NoTimeoutBackoff,
}

impl InjectedBug {
    /// Stable machine name, used by the reproducer serialization.
    pub fn as_str(self) -> &'static str {
        match self {
            InjectedBug::IgnoreCatchupResponses => "ignore_catchup_responses",
            InjectedBug::NoTimeoutBackoff => "no_timeout_backoff",
        }
    }

    /// Parses [`InjectedBug::as_str`] output.
    pub fn parse(s: &str) -> Option<InjectedBug> {
        match s {
            "ignore_catchup_responses" => Some(InjectedBug::IgnoreCatchupResponses),
            "no_timeout_backoff" => Some(InjectedBug::NoTimeoutBackoff),
            _ => None,
        }
    }
}

impl SimConfig {
    /// A sensible default configuration for `n` users.
    pub fn new(n: usize) -> SimConfig {
        SimConfig {
            n_users: n,
            n_malicious: 0,
            adversary_kind: AdversaryKind::default(),
            params: AlgorandParams::scaled(n),
            net: NetConfig::default(),
            out_degree: 4,
            payload_bytes: 0,
            tx_rate: 0.0,
            tx_total: 0,
            block_tx_bytes: 1 << 20,
            stake_per_user: 10,
            relay_all_blocks: false,
            // Default: re-draw peers roughly once per expected round.
            peer_churn_interval: 15_000_000,
            seed: 1,
            verify_pool_workers: 0,
            trace: false,
            monitor: false,
            injected_bug: None,
        }
    }

    /// Folds declarative knobs that live in other layers into the
    /// config: called by both engines at construction so the serial
    /// runner and the parallel DES engine interpret [`InjectedBug`]
    /// identically.
    pub(crate) fn apply_injected_bug(&mut self) {
        if self.injected_bug == Some(InjectedBug::NoTimeoutBackoff) {
            self.params.ba.disable_backoff = true;
        }
    }

    /// Whether the planted [`InjectedBug::IgnoreCatchupResponses`]
    /// defect swallows this inbound message before ingest.
    pub(crate) fn bug_swallows(&self, wire: &WireMessage) -> bool {
        self.injected_bug == Some(InjectedBug::IgnoreCatchupResponses)
            && matches!(wire, WireMessage::CatchupResponse(_))
    }

    /// The deterministic keypair of every user.
    pub(crate) fn build_keypairs(&self) -> Vec<Keypair> {
        (0..self.n_users)
            .map(|i| {
                let mut seed = [0u8; 32];
                seed[..8].copy_from_slice(&(self.seed ^ 0x5eed).to_le_bytes());
                seed[8..16].copy_from_slice(&(i as u64 + 1).to_le_bytes());
                Keypair::from_seed(seed)
            })
            .collect()
    }

    /// The monitor thresholds this population implies (§7.5 tail bounds).
    pub(crate) fn monitor_config(&self) -> MonitorConfig {
        let total_weight = self.n_users as u64 * self.stake_per_user;
        MonitorConfig {
            committee_hi_step: committee_upper_bound(total_weight, self.params.ba.tau_step),
            committee_hi_final: committee_upper_bound(total_weight, self.params.ba.tau_final),
            max_future_gap: algorand_core::ingest::FUTURE_ROUND_WINDOW as u32,
            max_future_buffer: algorand_core::round::FutureVotes::MAX_TOTAL as u64,
            honest_nodes: (self.n_users - self.n_malicious) as u32,
        }
    }
}

/// Builds the node population: equal genesis stake, deterministic keys,
/// malicious users at the end of the index space. `tracer_for` supplies
/// each node's recording handle — the single-threaded runner hands every
/// node the same shared tracer, the parallel engine one private buffer
/// per node (merged canonically at barriers).
pub(crate) fn build_slots(
    cfg: &SimConfig,
    keypairs: &[Keypair],
    verifier: &Arc<PipelineVerifier>,
    adversary: &Arc<Mutex<AdversaryShared>>,
    pool_metrics: &PoolMetrics,
    mut tracer_for: impl FnMut(usize) -> Tracer,
) -> Vec<Slot> {
    let alloc: Vec<_> = keypairs
        .iter()
        .map(|k| (k.pk, cfg.stake_per_user))
        .collect();
    let n_honest = cfg.n_users - cfg.n_malicious;
    (0..cfg.n_users)
        .map(|i| {
            let chain = Blockchain::new(cfg.params.chain, alloc.iter().copied(), GENESIS_SEED);
            let mut node = Node::new(keypairs[i].clone(), chain, cfg.params, verifier.clone());
            node.payload_bytes = cfg.payload_bytes;
            node.block_tx_bytes = cfg.block_tx_bytes;
            node.set_tracer(tracer_for(i), i as u32);
            node.pool.set_metrics(pool_metrics.clone());
            if i < n_honest {
                Slot::Honest(Box::new(node))
            } else {
                Slot::Malicious(Box::new(MaliciousNode::with_kind(
                    node,
                    keypairs[i].clone(),
                    cfg.adversary_kind,
                    adversary.clone(),
                )))
            }
        })
        .collect()
}

/// Bytes sent per wire-message kind across every transmission of a run
/// (announcement-sized block exchanges count under their kind).
#[derive(Clone, Copy, Default)]
pub(crate) struct KindBytes {
    pub vote: u64,
    pub priority: u64,
    pub block: u64,
    pub fork: u64,
    pub tx: u64,
    pub catchup: u64,
}

impl KindBytes {
    /// `(label, bytes)` pairs in the fixed export order that keeps the
    /// trace byte-stable.
    pub(crate) fn summary(&self) -> [(&'static str, u64); 6] {
        [
            ("bytes_vote", self.vote),
            ("bytes_priority", self.priority),
            ("bytes_block", self.block),
            ("bytes_fork", self.fork),
            ("bytes_tx", self.tx),
            ("bytes_catchup", self.catchup),
        ]
    }
}

/// Smallest `k` whose binomial upper tail `P[Binomial(W, τ/W) > k]` falls
/// below ~1e-12 — the §7.5 bound the monitor enforces on the
/// deduplicated committee weight of any (round, step).
pub(crate) fn committee_upper_bound(total_weight: u64, tau: f64) -> u64 {
    let w = total_weight.max(1);
    let p = (tau / w as f64).min(1.0);
    let mut k = (tau as u64).min(w);
    while k < w && 1.0 - binomial_cdf(k, w, p) >= 1e-12 {
        k += 1;
    }
    k
}

/// One node slot: the honest protocol, or its adversarial wrapper.
pub(crate) enum Slot {
    Honest(Box<Node>),
    Malicious(Box<MaliciousNode>),
}

impl Slot {
    /// The inner protocol node, whichever wrapper holds it.
    pub(crate) fn node(&self) -> &Node {
        match self {
            Slot::Honest(n) => n,
            Slot::Malicious(m) => m.inner(),
        }
    }

    /// Mutable inner protocol node.
    pub(crate) fn node_mut(&mut self) -> &mut Node {
        match self {
            Slot::Honest(n) => n,
            Slot::Malicious(m) => m.inner_mut(),
        }
    }

    /// The honest node, if this slot is honest.
    pub(crate) fn honest(&self) -> Option<&Node> {
        match self {
            Slot::Honest(n) => Some(n),
            Slot::Malicious(_) => None,
        }
    }

    pub(crate) fn next_deadline(&self) -> Option<Micros> {
        match self {
            Slot::Honest(n) => n.next_deadline(),
            Slot::Malicious(m) => m.next_deadline(),
        }
    }

    pub(crate) fn start(&mut self, now: Micros) -> Vec<Outgoing> {
        match self {
            Slot::Honest(n) => wrap_broadcast(n.start(now)),
            Slot::Malicious(m) => m.start(now),
        }
    }

    pub(crate) fn on_tick(&mut self, now: Micros) -> Vec<Outgoing> {
        match self {
            Slot::Honest(n) => wrap_broadcast(n.on_tick(now)),
            Slot::Malicious(m) => m.on_tick(now),
        }
    }

    pub(crate) fn on_message(&mut self, msg: &WireMessage, now: Micros) -> Vec<Outgoing> {
        match self {
            Slot::Honest(n) => wrap_broadcast(n.on_message(msg, now)),
            Slot::Malicious(m) => m.on_message(msg, now),
        }
    }

    /// §6 discard rules: whether the node declines to relay this message
    /// onward (malicious nodes relay everything).
    pub(crate) fn discards(&self, msg: &WireMessage, relay_all_blocks: bool) -> bool {
        let Slot::Honest(n) = self else { return false };
        match msg {
            WireMessage::Block(b) => !relay_all_blocks && !n.should_relay_block(b),
            WireMessage::Transaction(tx) => !n.should_relay_transaction(tx),
            WireMessage::Vote(v) => !n.should_relay_vote(v),
            _ => false,
        }
    }
}

/// A message in flight, with precomputed id/slot/size so relaying costs
/// O(1) per hop.
pub struct SimMsg {
    pub(crate) wire: WireMessage,
    pub(crate) id: [u8; 32],
    pub(crate) relay_slot: Option<([u8; 32], u64, u32)>,
    pub(crate) size: usize,
    /// Large bodies (blocks) are transferred pull-style: if the receiver
    /// already announced holding the content, only an announcement-sized
    /// exchange crosses the wire. Mirrors TCP gossip implementations
    /// (and Bitcoin's inv/getdata), whose measured cost the paper cites:
    /// ~2 body copies per node rather than one per edge.
    pub(crate) pull_based: bool,
}

impl SimMsg {
    pub(crate) fn new(wire: WireMessage) -> Arc<SimMsg> {
        let pull_based = matches!(wire, WireMessage::Block(_) | WireMessage::ForkProposal(_));
        Arc::new(SimMsg {
            id: wire.message_id(),
            relay_slot: wire.relay_slot(),
            size: wire.wire_size(),
            wire,
            pull_based,
        })
    }
}

/// One injected workload transaction, for latency accounting.
#[derive(Clone, Copy, Debug)]
pub struct TxRecord {
    /// The transaction hash.
    pub id: [u8; 32],
    /// Index of the (honest) sending user.
    pub sender: usize,
    /// Virtual time the transaction entered the sender's node.
    pub submitted: Micros,
}

/// End-to-end transaction metrics from one workload run.
#[derive(Clone, Copy, Debug)]
pub struct TxStats {
    /// Transactions the workload injected.
    pub injected: usize,
    /// Injected transactions that appear in the finalized/agreed chain.
    pub committed: usize,
    /// Chain slots holding a transaction hash more than once (must be 0).
    pub duplicate_commits: usize,
    /// Committed transactions per virtual second, submission of the first
    /// to commit of the last.
    pub tx_per_sec: f64,
    /// Per-transaction finalization latency in seconds (submission at the
    /// sender to round completion at the sender), if any committed.
    pub latency: Option<Percentiles>,
}

/// What the workload decided to do at one injection tick.
pub(crate) enum InjectStep {
    /// Spendable stake exhausted: the source goes quiet early.
    Quiet,
    /// Eligible stake exists but its holders are down: skip this tick
    /// and try again after the crash window.
    Retry,
    /// Inject one payment.
    Pay {
        sender: usize,
        to: usize,
        amount: u64,
    },
}

/// The open-loop traffic source: random honest-to-honest payments at a
/// fixed rate.
///
/// It tracks a conservative `spendable` balance per user — genesis stake
/// minus everything already injected, never counting in-flight income —
/// so every transaction it emits is guaranteed to stay applicable
/// whenever it commits, as long as each sender's nonces commit in order
/// (which per-sender nonce chains enforce).
pub(crate) struct Workload {
    rng: Rng,
    spendable: Vec<u64>,
    nonces: Vec<u64>,
    pub(crate) injected: Vec<TxRecord>,
    pub(crate) remaining: usize,
    pub(crate) interval: Micros,
}

impl Workload {
    /// Builds the traffic source if the config enables one.
    pub(crate) fn from_config(cfg: &SimConfig) -> Option<Workload> {
        let n_honest = cfg.n_users - cfg.n_malicious;
        (cfg.tx_rate > 0.0 && cfg.tx_total > 0).then(|| Workload {
            rng: Rng::seed_from_u64(cfg.seed ^ 0x7AF0AD),
            spendable: vec![cfg.stake_per_user; n_honest],
            nonces: vec![0; n_honest],
            injected: Vec::with_capacity(cfg.tx_total),
            remaining: cfg.tx_total,
            interval: ((1_000_000.0 / cfg.tx_rate) as Micros).max(1),
        })
    }

    /// Picks the next payment (sender, recipient, amount) or reports why
    /// none can be injected right now. Draws from the workload RNG in a
    /// fixed order, so the plan — and therefore the whole run — is a
    /// deterministic function of the config seed and crash state.
    pub(crate) fn plan(&mut self, crashed: &[bool]) -> InjectStep {
        let n_honest = self.spendable.len();
        let richest = self.spendable.iter().copied().max().unwrap_or(0);
        if richest == 0 {
            self.remaining = 0;
            return InjectStep::Quiet;
        }
        // Clamp so a large draw cannot end the workload while smaller
        // payments are still affordable somewhere.
        let amount = (1 + self.rng.gen_range_u64(3)).min(richest);
        let mut sender = None;
        for _ in 0..8 {
            let c = self.rng.gen_range_usize(n_honest);
            if !crashed[c] && self.spendable[c] >= amount {
                sender = Some(c);
                break;
            }
        }
        let sender =
            sender.or_else(|| (0..n_honest).find(|&i| !crashed[i] && self.spendable[i] >= amount));
        let Some(s) = sender else {
            if (0..n_honest).any(|i| self.spendable[i] >= amount) {
                return InjectStep::Retry;
            }
            self.remaining = 0;
            return InjectStep::Quiet;
        };
        let mut to = self.rng.gen_range_usize(n_honest);
        if to == s {
            to = (to + 1) % n_honest;
        }
        InjectStep::Pay {
            sender: s,
            to,
            amount,
        }
    }

    /// The payment message for one planned injection (nonce chained per
    /// sender).
    pub(crate) fn payment(
        &self,
        keypairs: &[Keypair],
        sender: usize,
        to: usize,
        amount: u64,
    ) -> Transaction {
        Transaction::payment(
            &keypairs[sender],
            keypairs[to].pk,
            amount,
            self.nonces[sender] + 1,
        )
    }

    /// Commits a planned payment the sender's node accepted.
    pub(crate) fn commit(&mut self, sender: usize, amount: u64, record: TxRecord) {
        self.spendable[sender] -= amount;
        self.nonces[sender] += 1;
        self.remaining -= 1;
        self.injected.push(record);
    }
}

/// Counters a node accumulated before a crash/restart cycle replaced
/// it. Aggregating reports add these exactly once per node id, so a
/// crashed-then-restarted node's history is neither lost (the old bug:
/// the replacement node restarts every counter at zero) nor
/// double-counted (stats are folded in only when the old node object is
/// dropped at restart, never while it still sits in its slot).
#[derive(Default)]
pub(crate) struct NodeCarry {
    pub pipeline: PipelineStats,
    pub records: Vec<RoundRecord>,
    pub timeout_escalations: u64,
    pub watchdog_catchups: usize,
    pub recoveries_completed: usize,
    pub catchups_applied: usize,
    pub catchup_reorgs: usize,
}

impl NodeCarry {
    /// Folds a dying node's counters in before its slot is overwritten.
    pub(crate) fn fold_from(&mut self, node: &Node) {
        self.pipeline.merge(&node.pipeline_stats());
        self.records.extend_from_slice(node.records());
        self.timeout_escalations += node.timeout_escalations();
        self.watchdog_catchups += node.watchdog_catchups();
        self.recoveries_completed += node.recoveries_completed();
        self.catchups_applied += node.catchups_applied();
        self.catchup_reorgs += node.catchup_reorgs();
    }
}

/// Aggregated staged-pipeline counters for one simulation run.
#[derive(Clone, Copy, Debug)]
pub struct PipelineReport {
    /// Per-stage counters summed over all honest nodes.
    pub stages: PipelineStats,
    /// Hits on the process-wide verification cache.
    pub cache_hits: u64,
    /// Misses (full verifications) on the process-wide cache.
    pub cache_misses: u64,
    /// Distinct vote verifications performed.
    pub unique_votes: usize,
    /// Distinct priority/block/fork-proposal verifications performed.
    pub unique_proposals: usize,
    /// Verify-pool worker threads (0 = serial).
    pub pool_workers: usize,
}

impl std::fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "pipeline: ingested={} rejected_ingest={} buffered_early={} buffered_future={}",
            self.stages.ingested,
            self.stages.rejected_ingest,
            self.stages.buffered_early,
            self.stages.buffered_future,
        )?;
        writeln!(
            f,
            "verify:   verified={} rejected={} cache_hits={} cache_misses={} unique_votes={} unique_proposals={}",
            self.stages.verified,
            self.stages.rejected_verify,
            self.cache_hits,
            self.cache_misses,
            self.unique_votes,
            self.unique_proposals,
        )?;
        write!(
            f,
            "emit:     emitted={} pool_workers={}",
            self.stages.emitted, self.pool_workers
        )
    }
}

/// Fault-injection and recovery counters for one simulation run, the
/// observability half of the chaos harness.
#[derive(Clone, Copy, Debug)]
pub struct FaultReport {
    /// Partitions installed by the fault schedule.
    pub partitions_activated: usize,
    /// Node restarts completed.
    pub restarts: usize,
    /// Sends dropped by the caller-installed filter.
    pub dropped_by_filter: u64,
    /// Sends dropped by scripted partitions.
    pub dropped_by_partition: u64,
    /// Sends dropped by random packet loss.
    pub dropped_by_loss: u64,
    /// BA⋆ step-timeout escalations summed over honest nodes.
    pub timeout_escalations: u64,
    /// Watchdog-initiated catch-up requests summed over honest nodes.
    pub watchdog_catchups: usize,
    /// §8.2 fork recoveries completed, summed over honest nodes.
    pub recoveries_completed: usize,
    /// Rounds adopted via §8.3 catch-up, summed over honest nodes.
    pub catchups_applied: usize,
    /// Tentative-fork suffixes rolled back by catch-up (§8.2), summed
    /// over honest nodes.
    pub catchup_reorgs: usize,
}

impl std::fmt::Display for FaultReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "faults:   partitions={} restarts={} dropped(filter/partition/loss)={}/{}/{}",
            self.partitions_activated,
            self.restarts,
            self.dropped_by_filter,
            self.dropped_by_partition,
            self.dropped_by_loss,
        )?;
        write!(
            f,
            "recovery: timeout_escalations={} watchdog_catchups={} fork_recoveries={} catchups={} reorgs={}",
            self.timeout_escalations,
            self.watchdog_catchups,
            self.recoveries_completed,
            self.catchups_applied,
            self.catchup_reorgs,
        )
    }
}

pub(crate) fn wrap_broadcast(msgs: Vec<WireMessage>) -> Vec<Outgoing> {
    msgs.into_iter().map(Outgoing::Broadcast).collect()
}

// --- Aggregation helpers shared by both engines --------------------------

/// A digest of every honest node's canonical chain, for the determinism
/// check: identical `(seed, schedule)` runs must produce identical
/// digests.
pub(crate) fn chain_digest(slots: &[&Slot]) -> [u8; 32] {
    let mut acc: Vec<u8> = Vec::new();
    for slot in slots {
        let Some(n) = slot.honest() else { continue };
        let chain = n.chain();
        for r in 1..=chain.tip().round {
            if let Some(b) = chain.block_at(r) {
                acc.extend_from_slice(&b.hash());
            }
        }
        acc.push(0xFF); // Node separator.
    }
    algorand_crypto::sha256_concat(&[b"chain-digest", &acc])
}

/// Per-honest-node round records *including* those a node measured
/// before a crash/restart cycle replaced it, deduplicated by round per
/// node (a record carried from before the crash wins over a hypothetical
/// re-measurement after it).
pub(crate) fn combined_records(
    slots: &[&Slot],
    carry: &HashMap<usize, NodeCarry>,
) -> Vec<Vec<RoundRecord>> {
    let mut out = Vec::new();
    for (i, slot) in slots.iter().enumerate() {
        let Some(n) = slot.honest() else { continue };
        let mut seen = HashSet::new();
        let mut recs = Vec::new();
        if let Some(c) = carry.get(&i) {
            for r in &c.records {
                if seen.insert(r.round) {
                    recs.push(*r);
                }
            }
        }
        for r in n.records() {
            if seen.insert(r.round) {
                recs.push(*r);
            }
        }
        out.push(recs);
    }
    out
}

/// Aggregated staged-pipeline counters across honest nodes plus the
/// process-wide cache, for the metrics report.
pub(crate) fn pipeline_report(
    slots: &[&Slot],
    carry: &HashMap<usize, NodeCarry>,
    verifier: &PipelineVerifier,
    pool: &VerifyPool,
) -> PipelineReport {
    let mut stages = PipelineStats::default();
    for slot in slots {
        stages.merge(&slot.node().pipeline_stats());
    }
    // Counters from nodes replaced by crash/restart, once per node id.
    for c in carry.values() {
        stages.merge(&c.pipeline);
    }
    PipelineReport {
        stages,
        cache_hits: verifier.cache_hits(),
        cache_misses: verifier.cache_misses(),
        unique_votes: verifier.unique_vote_verifications(),
        unique_proposals: verifier.unique_proposal_verifications(),
        pool_workers: pool.workers(),
    }
}

/// Fault-injection and recovery counters for one run.
pub(crate) fn fault_report(
    slots: &[&Slot],
    carry: &HashMap<usize, NodeCarry>,
    net: &Network,
    partitions_activated: usize,
    restarts: usize,
) -> FaultReport {
    let mut report = FaultReport {
        partitions_activated,
        restarts,
        dropped_by_filter: net.dropped_by_filter(),
        dropped_by_partition: net.dropped_by_partition(),
        dropped_by_loss: net.dropped_by_loss(),
        timeout_escalations: 0,
        watchdog_catchups: 0,
        recoveries_completed: 0,
        catchups_applied: 0,
        catchup_reorgs: 0,
    };
    for slot in slots {
        let Some(n) = slot.honest() else { continue };
        report.timeout_escalations += n.timeout_escalations();
        report.watchdog_catchups += n.watchdog_catchups();
        report.recoveries_completed += n.recoveries_completed();
        report.catchups_applied += n.catchups_applied();
        report.catchup_reorgs += n.catchup_reorgs();
    }
    // Counters from nodes replaced by crash/restart, once per node id.
    for c in carry.values() {
        report.timeout_escalations += c.timeout_escalations;
        report.watchdog_catchups += c.watchdog_catchups;
        report.recoveries_completed += c.recoveries_completed;
        report.catchups_applied += c.catchups_applied;
        report.catchup_reorgs += c.catchup_reorgs;
    }
    report
}

/// End-to-end transaction metrics for the workload (if one ran).
///
/// Commitment is judged against honest node 0's chain (all honest chains
/// agree on the common prefix — asserted elsewhere); latency is
/// submission at the sender to the *sender's* completion of the
/// committing round, falling back to any honest node's record when the
/// sender adopted that round via catch-up.
pub(crate) fn tx_stats(
    injected: &[TxRecord],
    chain: &Blockchain,
    combined: &[Vec<RoundRecord>],
) -> TxStats {
    let mut commit_round = HashMap::new();
    let mut duplicate_commits = 0usize;
    for r in 1..=chain.tip().round {
        let Some(block) = chain.block_at(r) else {
            continue;
        };
        for tx in &block.txs {
            if commit_round.insert(tx.id(), r).is_some() {
                duplicate_commits += 1;
            }
        }
    }
    let mut latencies = Vec::new();
    let mut committed = 0usize;
    let mut first_submit = Micros::MAX;
    let mut last_commit: Micros = 0;
    for rec in injected {
        let Some(&round) = commit_round.get(&rec.id) else {
            continue;
        };
        committed += 1;
        let finished = combined
            .get(rec.sender)
            .and_then(|rs| rs.iter().find(|x| x.round == round))
            .map(|x| x.finished)
            .or_else(|| {
                combined
                    .iter()
                    .flat_map(|rs| rs.iter())
                    .find(|x| x.round == round)
                    .map(|x| x.finished)
            });
        if let Some(f) = finished {
            latencies.push(f.saturating_sub(rec.submitted) as f64 / 1e6);
            first_submit = first_submit.min(rec.submitted);
            last_commit = last_commit.max(f);
        }
    }
    let tx_per_sec = if last_commit > first_submit {
        committed as f64 / ((last_commit - first_submit) as f64 / 1e6)
    } else {
        0.0
    };
    TxStats {
        injected: injected.len(),
        committed,
        duplicate_commits,
        tx_per_sec,
        latency: (!latencies.is_empty()).then(|| Percentiles::of(&latencies)),
    }
}

// --- Batch verification pre-warm -----------------------------------------

/// Hands in-flight messages to the [`VerifyPool`] in batches so the
/// process-wide verification cache is warm before delivery. Each message
/// is verified once no matter how many nodes it is in flight to.
///
/// Determinism: jobs only populate the `(message id, seed)`-keyed cache,
/// whose verdicts are pure functions of their key. Event order is
/// untouched, and a job built under a stale context lands on a key no
/// consumer asks for — wasted work, never a wrong answer.
pub(crate) struct Prewarmer {
    /// Message ids already queued for pre-warming (first transmit wins).
    prewarmed: HashSet<[u8; 32]>,
    /// Weight snapshots reused across a round's pre-warm jobs.
    weights: HashMap<u64, Arc<RoundWeights>>,
    /// Verification jobs awaiting a batch hand-off to the pool.
    pending: Vec<VerifyJob>,
}

impl Prewarmer {
    pub(crate) fn new() -> Prewarmer {
        Prewarmer {
            prewarmed: HashSet::new(),
            weights: HashMap::new(),
            pending: Vec::new(),
        }
    }

    /// Queues a message for cache pre-warming, flushing a full batch to
    /// the pool. `chain` is the context oracle (honest node 0's chain).
    pub(crate) fn enqueue(
        &mut self,
        msg: &SimMsg,
        chain: &Blockchain,
        params: &AlgorandParams,
        pool: &VerifyPool,
        verifier: &Arc<PipelineVerifier>,
    ) {
        if pool.workers() == 0 || !self.prewarmed.insert(msg.id) {
            return;
        }
        if let Some(job) = self.job(&msg.wire, chain, params) {
            self.pending.push(job);
            if self.pending.len() >= PREWARM_BATCH {
                let jobs = std::mem::take(&mut self.pending);
                pool.verify_batch(verifier, jobs);
            }
        }
    }

    /// Builds the verification job for an in-flight message. Messages
    /// whose context is not yet derivable exactly (selection seed still
    /// in the future) are skipped — the consuming node verifies those
    /// inline.
    fn job(
        &mut self,
        wire: &WireMessage,
        chain: &Blockchain,
        params: &AlgorandParams,
    ) -> Option<VerifyJob> {
        let tip = chain.tip().round;
        let interval = params.chain.seed_refresh_interval;
        let round = match wire {
            WireMessage::Vote(v) => v.round,
            WireMessage::Priority(p) => p.round,
            WireMessage::Block(b) => b.block.round,
            _ => return None,
        };
        if selection_seed_round(round, interval) > tip {
            return None;
        }
        let seed = chain.selection_seed(round);
        let weights = match self.weights.get(&round) {
            Some(w) => w.clone(),
            None => {
                let w = Arc::new(chain.weights_for_round(round));
                self.weights.insert(round, w.clone());
                self.weights.retain(|&r, _| r + 8 > round);
                w
            }
        };
        Some(match wire {
            WireMessage::Vote(v) => VerifyJob::Vote {
                msg: v.clone(),
                ctx: VoteContext {
                    round,
                    seed,
                    tau: params.ba.tau_for(v.step == StepKind::Final),
                },
                weights,
            },
            WireMessage::Priority(p) => VerifyJob::Priority {
                msg: p.clone(),
                seed,
                weights,
                tau: params.tau_proposer,
            },
            WireMessage::Block(b) => VerifyJob::Block {
                msg: b.clone(),
                seed,
                weights,
                tau: params.tau_proposer,
            },
            _ => unreachable!("round extraction above filtered the rest"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committee_bound_is_at_least_tau() {
        assert!(committee_upper_bound(10_000, 250.0) >= 250);
        assert!(committee_upper_bound(10_000, 250.0) < 10_000);
    }

    #[test]
    fn workload_plan_is_deterministic() {
        let mut cfg = SimConfig::new(8);
        cfg.tx_rate = 10.0;
        cfg.tx_total = 5;
        let crashed = vec![false; 8];
        let mut a = Workload::from_config(&cfg).unwrap();
        let mut b = Workload::from_config(&cfg).unwrap();
        for _ in 0..5 {
            match (a.plan(&crashed), b.plan(&crashed)) {
                (
                    InjectStep::Pay {
                        sender: s1,
                        to: t1,
                        amount: a1,
                    },
                    InjectStep::Pay {
                        sender: s2,
                        to: t2,
                        amount: a2,
                    },
                ) => {
                    assert_eq!((s1, t1, a1), (s2, t2, a2));
                    let kp = cfg.build_keypairs();
                    let tx = a.payment(&kp, s1, t1, a1);
                    a.commit(
                        s1,
                        a1,
                        TxRecord {
                            id: tx.id(),
                            sender: s1,
                            submitted: 0,
                        },
                    );
                    b.commit(
                        s2,
                        a2,
                        TxRecord {
                            id: tx.id(),
                            sender: s2,
                            submitted: 0,
                        },
                    );
                }
                _ => panic!("plans diverged"),
            }
        }
        assert_eq!(a.remaining, 0);
    }
}
