//! Schedule-space fuzzer: seeded random fault/adversary schedules with
//! the online invariant monitor as oracle, plus automatic shrinking to
//! minimal reproducers.
//!
//! The chaos suite (`tests/chaos.rs`) pins a handful of hand-written
//! schedules; this module explores the schedule *space* around them.
//! A seeded [`generate`] composes well-formed [`FaultSchedule`]s —
//! every onset paired with a later clearing action, every schedule
//! passing [`FaultSchedule::validate`] — together with an adversary mix
//! into [`FuzzCase`]s. [`run_case`] replays a case deterministically
//! through the serial engine and classifies the outcome with two
//! oracles:
//!
//! 1. **safety** — the [`algorand_obs::monitor`] invariant monitor
//!    (checked continuously) plus a direct cross-node scan for
//!    divergent *finalized* blocks, and
//! 2. **liveness** — a stalled-finality watchdog: after the schedule's
//!    last event, every honest node must advance ≥ 2 rounds onto a
//!    common prefix within a recovery bound scaled by how much the
//!    schedule disturbed (its "generosity").
//!
//! Because faults are data and all randomness flows from seeded RNGs,
//! a failing `(seed, schedule)` pair replays byte-identically — which
//! is what makes [`shrink`] sound: a delta-debugging loop removes
//! paired fault events, shortens fault windows, shrinks partition node
//! sets, and reduces the adversary count, re-running the case after
//! each candidate edit and keeping only edits that preserve the
//! original verdict class. The minimized case serializes to a textual
//! reproducer ([`serialize_case`] / [`parse_case`]) that is archived
//! under `tests/corpus/` and replayed forever after.

use crate::adversary::AdversaryKind;
use crate::event::Micros;
use crate::faults::{FaultAction, FaultEvent, FaultSchedule};
use crate::harness::{InjectedBug, SimConfig};
use crate::network::PartitionSpec;
use crate::runner::Simulation;
use algorand_crypto::rng::Rng;
use algorand_obs::Invariant;
use std::fmt;

const SEC: Micros = 1_000_000;

/// Base recovery allowance after the schedule's last event.
///
/// Sized to cover §8.2's worst-case arming latency, not just a healthy
/// round or two: recovery fires only at multiples of
/// `recovery_interval` (120 s at sim scale) *and* only once progress
/// has been quiet for half an interval, so a stall that begins just
/// after one boundary is not attacked until up to two intervals later
/// — plus `proposal_wait + λ_block + 6λ_step` (≈ 38 s) for the first
/// attempt to decide. 2·120 + 38 s, rounded up with slack.
const RECOVERY_BASE: Micros = 300 * SEC;
/// Extra recovery allowance per scheduled fault event (a crash-heavy
/// schedule legitimately takes longer to reconverge than a lone loss
/// window — cf. the chaos suite's per-scenario horizons).
const RECOVERY_PER_EVENT: Micros = 20 * SEC;
/// Granularity at which [`run_case`] polls the oracles.
const SLICE: Micros = 5 * SEC;

/// One point in schedule space: a complete, self-describing run
/// configuration. Everything the simulation consumes is in here, so a
/// case replays identically wherever it is deserialized.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// The generator draw that produced this case (provenance only;
    /// a shrunk case keeps its origin's draw).
    pub case_seed: u64,
    /// Simulation seed (topology, keys, sortition).
    pub seed: u64,
    /// Network size.
    pub n_users: usize,
    /// Colluding malicious users (≤ 20% of stake, §2's assumption with
    /// margin for small-committee variance).
    pub n_malicious: usize,
    /// The attack the malicious users mount.
    pub adversary: AdversaryKind,
    /// Test-only planted defect (`None` on honest builds).
    pub bug: Option<InjectedBug>,
    /// The fault script under test.
    pub schedule: FaultSchedule,
}

/// How a fuzzed run ended, the oracle's classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerdictClass {
    /// All oracles clean: recovered onto a common chain in bound.
    Pass,
    /// The invariant monitor flagged this class.
    MonitorViolation(Invariant),
    /// Two honest nodes finalized different blocks for one round
    /// (chain-level safety scan, independent of the monitor).
    ChainDivergence,
    /// No common-prefix progress within the recovery bound after the
    /// schedule's last event.
    LivenessStall,
}

impl VerdictClass {
    /// Stable machine name, used by reproducers and campaign reports.
    pub fn as_str(self) -> &'static str {
        match self {
            VerdictClass::Pass => "pass",
            VerdictClass::MonitorViolation(Invariant::ConflictingCertificates) => {
                "monitor_conflicting_certificates"
            }
            VerdictClass::MonitorViolation(Invariant::CommitteeBound) => "monitor_committee_bound",
            VerdictClass::MonitorViolation(Invariant::SeedChain) => "monitor_seed_chain",
            VerdictClass::MonitorViolation(Invariant::VoteDoubleCount) => {
                "monitor_vote_double_count"
            }
            VerdictClass::MonitorViolation(Invariant::FutureStaleness) => {
                "monitor_future_staleness"
            }
            VerdictClass::ChainDivergence => "chain_divergence",
            VerdictClass::LivenessStall => "liveness_stall",
        }
    }

    /// Parses [`VerdictClass::as_str`] output.
    pub fn parse(s: &str) -> Option<VerdictClass> {
        match s {
            "pass" => Some(VerdictClass::Pass),
            "chain_divergence" => Some(VerdictClass::ChainDivergence),
            "liveness_stall" => Some(VerdictClass::LivenessStall),
            _ => Invariant::ALL
                .into_iter()
                .map(VerdictClass::MonitorViolation)
                .find(|v| v.as_str() == s),
        }
    }
}

impl fmt::Display for VerdictClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One oracle judgement with its measurements.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// The classification.
    pub class: VerdictClass,
    /// Least-advanced honest tip when the run ended.
    pub final_tip: u64,
    /// Virtual time from the schedule's last event to recovery
    /// (`Pass` only).
    pub recovered_after: Option<Micros>,
    /// Virtual instant the run stopped.
    pub sim_end: Micros,
}

fn adversary_str(kind: AdversaryKind) -> &'static str {
    match kind {
        AdversaryKind::Equivocator => "equivocator",
        AdversaryKind::Withholder => "withholder",
    }
}

fn adversary_parse(s: &str) -> Option<AdversaryKind> {
    match s {
        "equivocator" => Some(AdversaryKind::Equivocator),
        "withholder" => Some(AdversaryKind::Withholder),
        _ => None,
    }
}

// --- Generator -----------------------------------------------------------

/// Draws one well-formed fuzz case from `case_seed`. The same draw with
/// the same `bug` always yields the same case; the schedule always
/// passes [`FaultSchedule::validate`], and every onset is paired with a
/// later clearing action so full recovery is expected once the schedule
/// drains (the liveness oracle's premise).
///
/// The grammar (see DESIGN.md §13): 8–10 users, 0–20% colluding
/// adversaries of a random flavour, and 1–4 fault *segments*, each an
/// onset/clear pair drawn from { symmetric partition, asymmetric
/// partition, loss window, delay spike, crash+restart, clock skew }.
/// Segments may overlap freely — overlapping windows compose to a
/// clean post-schedule state because every category's clear action is
/// absolute (heal, loss 0, normal latency, restart, skew 0). Crashes
/// are constrained so validation holds and recovery stays expected:
/// only honest nodes crash, each node at most once, and at most half
/// the honest population.
pub fn generate(case_seed: u64, bug: Option<InjectedBug>) -> FuzzCase {
    let mut rng = Rng::seed_from_u64(case_seed ^ 0xF0CC_5EED);
    let n_users = 8 + rng.gen_range_usize(3); // 8..=10
    let n_malicious = rng.gen_range_usize(n_users / 5 + 1); // ≤ 20%
    let adversary = if rng.gen_range_usize(2) == 0 {
        AdversaryKind::Equivocator
    } else {
        AdversaryKind::Withholder
    };
    let n_honest = n_users - n_malicious;
    let seed = rng.next_u64();

    let mut schedule = FaultSchedule::new();
    let mut crashed: Vec<usize> = Vec::new();
    let mut skewed: Vec<usize> = Vec::new();
    let segments = 1 + rng.gen_range_usize(4); // 1..=4
    for _ in 0..segments {
        let onset = 2 * SEC + rng.gen_range_u64(8 * SEC);
        let clear = onset + 4 * SEC + rng.gen_range_u64(12 * SEC);
        let mut kind = rng.gen_range_usize(6);
        if kind == 4 && crashed.len() >= n_honest / 2 {
            kind = 2; // crash budget exhausted: fall back to a loss window
        }
        if kind == 5 && skewed.len() >= n_users {
            kind = 3; // every clock already skewed: fall back to a spike
        }
        schedule = match kind {
            0 => {
                let split = 1 + rng.gen_range_usize(n_users - 1);
                schedule.bipartition(n_users, split, onset, clear)
            }
            1 => {
                let split = 1 + rng.gen_range_usize(n_users - 1);
                schedule.asymmetric_partition(n_users, split, onset, clear)
            }
            2 => {
                let prob = 0.05 + 0.45 * rng.gen_f64();
                schedule.loss_window(prob, onset, clear)
            }
            3 => {
                let factor = 1.5 + 2.5 * rng.gen_f64();
                let extra = rng.gen_range_u64(150_000);
                schedule
                    .at(onset, FaultAction::DelaySpike { factor, extra })
                    .at(clear, FaultAction::DelayClear)
            }
            4 => {
                // A not-yet-crashed honest node (the budget check above
                // guarantees one exists).
                let pick = rng.gen_range_usize(n_honest - crashed.len());
                let node = (0..n_honest)
                    .filter(|i| !crashed.contains(i))
                    .nth(pick)
                    .expect("crash budget leaves a candidate");
                crashed.push(node);
                schedule.crash_restart(node, onset, clear)
            }
            _ => {
                // A node not already in a skew window: overlapping skew
                // segments on one clock would shadow each other and
                // break the onset/clear pairing the shrinker relies on.
                let pick = rng.gen_range_usize(n_users - skewed.len());
                let node = (0..n_users)
                    .filter(|i| !skewed.contains(i))
                    .nth(pick)
                    .expect("skew budget leaves a candidate");
                skewed.push(node);
                let magnitude = (50_000 + rng.gen_range_u64(450_000)) as i64;
                let skew = if rng.gen_range_usize(2) == 0 {
                    magnitude
                } else {
                    -magnitude
                };
                schedule
                    .at(onset, FaultAction::ClockSkew { node, skew })
                    .at(clear, FaultAction::ClockSkew { node, skew: 0 })
            }
        };
    }
    debug_assert_eq!(schedule.validate(n_users), Ok(()));
    FuzzCase {
        case_seed,
        seed,
        n_users,
        n_malicious,
        adversary,
        bug,
        schedule,
    }
}

// --- Oracle --------------------------------------------------------------

/// Any two honest nodes with different finalized blocks at one round?
fn divergent_finality(sim: &Simulation, n_honest: usize) -> bool {
    use std::collections::HashMap;
    let mut finalized: HashMap<u64, [u8; 32]> = HashMap::new();
    for i in 0..n_honest {
        let chain = sim.honest_node(i).chain();
        for round in 1..=chain.tip().round {
            if chain.is_finalized(round) {
                let h = chain.block_at(round).expect("canonical").hash();
                if let Some(prev) = finalized.get(&round) {
                    if *prev != h {
                        return true;
                    }
                } else {
                    finalized.insert(round, h);
                }
            }
        }
    }
    false
}

fn min_tip(sim: &Simulation, n_honest: usize) -> u64 {
    (0..n_honest)
        .map(|i| sim.honest_node(i).chain().tip().round)
        .min()
        .unwrap_or(0)
}

/// All honest nodes agree block-for-block up to the least tip?
fn common_prefix(sim: &Simulation, n_honest: usize) -> bool {
    let tip = min_tip(sim, n_honest);
    for round in 1..=tip {
        let h0 = match sim.honest_node(0).chain().block_at(round) {
            Some(b) => b.hash(),
            None => return false,
        };
        for i in 1..n_honest {
            match sim.honest_node(i).chain().block_at(round) {
                Some(b) if b.hash() == h0 => {}
                _ => return false,
            }
        }
    }
    true
}

/// The recovery allowance this schedule earns: disruptive schedules get
/// proportionally more virtual time to reconverge.
pub fn recovery_bound(schedule: &FaultSchedule) -> Micros {
    RECOVERY_BASE + RECOVERY_PER_EVENT * schedule.len() as Micros
}

/// Replays one case deterministically and classifies the outcome.
///
/// Drive: run to the schedule's last event, then advance in
/// [`SLICE`]-sized steps. At every step the safety oracles are checked
/// (monitor first — it names the violated invariant — then the direct
/// finalized-divergence scan). The run passes once every honest node
/// has advanced ≥ 2 rounds past its post-schedule baseline onto a
/// common prefix; it is a [`VerdictClass::LivenessStall`] if that does
/// not happen within [`recovery_bound`].
///
/// # Panics
///
/// If the schedule does not validate for the case's population —
/// callers (generator, shrinker, corpus) only construct validated
/// cases, so an invalid one here is a harness bug.
pub fn run_case(case: &FuzzCase) -> Verdict {
    case.schedule
        .validate(case.n_users)
        .expect("fuzz case schedule must validate");
    let n_honest = case.n_users - case.n_malicious;
    let mut cfg = SimConfig::new(case.n_users);
    cfg.seed = case.seed;
    cfg.n_malicious = case.n_malicious;
    cfg.adversary_kind = case.adversary;
    cfg.trace = true;
    cfg.monitor = true;
    cfg.injected_bug = case.bug;
    let mut sim = Simulation::new(cfg);
    let settle = case.schedule.last_event_at();
    let bound = recovery_bound(&case.schedule);
    sim.set_fault_schedule(case.schedule.clone());

    let verdict = |sim: &Simulation, recovered: Option<Micros>| Verdict {
        class: VerdictClass::Pass,
        final_tip: min_tip(sim, n_honest),
        recovered_after: recovered,
        sim_end: sim.now(),
    };
    let safety = |sim: &Simulation| -> Option<VerdictClass> {
        let report = sim.monitor_report().expect("monitor attached");
        if let Some(inv) = report.verdict_class() {
            return Some(VerdictClass::MonitorViolation(inv));
        }
        if divergent_finality(sim, n_honest) {
            return Some(VerdictClass::ChainDivergence);
        }
        None
    };

    sim.run_until(settle);
    if let Some(class) = safety(&sim) {
        let mut v = verdict(&sim, None);
        v.class = class;
        return v;
    }
    let baseline = min_tip(&sim, n_honest);
    let mut t = settle;
    while t < settle + bound {
        t += SLICE;
        sim.run_until(t);
        if let Some(class) = safety(&sim) {
            let mut v = verdict(&sim, None);
            v.class = class;
            return v;
        }
        if min_tip(&sim, n_honest) >= baseline + 2 && common_prefix(&sim, n_honest) {
            return verdict(&sim, Some(t - settle));
        }
    }
    let mut v = verdict(&sim, None);
    v.class = VerdictClass::LivenessStall;
    v
}

// --- Shrinker ------------------------------------------------------------

/// What [`shrink`] did and found.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    /// The minimized case (still reproducing the original verdict).
    pub minimized: FuzzCase,
    /// The verdict class every accepted shrink step preserved.
    pub verdict: VerdictClass,
    /// Total [`run_case`] invocations spent (including the initial
    /// classification).
    pub attempts: usize,
    /// Every accepted intermediate case, in acceptance order, ending
    /// with `minimized` — the shrinker property test walks these to
    /// prove each step stayed well formed and kept the verdict.
    pub accepted: Vec<FuzzCase>,
}

/// Groups a schedule's (time-ordered) events into removal units: each
/// onset is bundled with the clearing action that ends it, so dropping
/// a unit never strands a disturbance (which would turn a safety
/// reproducer into a liveness artifact) and never breaks
/// [`FaultSchedule::validate`]'s crash/restart ordering.
fn removal_units(events: &[FaultEvent]) -> Vec<Vec<usize>> {
    use std::collections::HashMap;
    let mut units: Vec<Vec<usize>> = Vec::new();
    let mut open_partition: Vec<usize> = Vec::new();
    let mut open_loss: Vec<usize> = Vec::new();
    let mut open_delay: Vec<usize> = Vec::new();
    let mut open_crash: HashMap<usize, usize> = HashMap::new();
    let mut open_skew: HashMap<usize, usize> = HashMap::new();
    let mut leftovers: Vec<usize> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        match &e.action {
            FaultAction::Partition(_) => open_partition.push(i),
            // A heal clears the most recently installed partition.
            FaultAction::Heal => match open_partition.pop() {
                Some(j) => units.push(vec![j, i]),
                None => units.push(vec![i]),
            },
            FaultAction::Loss(p) if *p > 0.0 => open_loss.push(i),
            FaultAction::Loss(_) => match open_loss.pop() {
                Some(j) => units.push(vec![j, i]),
                None => units.push(vec![i]),
            },
            FaultAction::DelaySpike { .. } => open_delay.push(i),
            FaultAction::DelayClear => match open_delay.pop() {
                Some(j) => units.push(vec![j, i]),
                None => units.push(vec![i]),
            },
            FaultAction::Crash(n) => {
                if let Some(prev) = open_crash.insert(*n, i) {
                    leftovers.push(prev);
                }
            }
            FaultAction::Restart(n) => match open_crash.remove(n) {
                Some(j) => units.push(vec![j, i]),
                None => units.push(vec![i]),
            },
            FaultAction::ClockSkew { node, skew } if *skew != 0 => {
                if let Some(prev) = open_skew.insert(*node, i) {
                    leftovers.push(prev);
                }
            }
            FaultAction::ClockSkew { node, .. } => match open_skew.remove(node) {
                Some(j) => units.push(vec![j, i]),
                None => units.push(vec![i]),
            },
        }
    }
    leftovers.extend(open_partition);
    leftovers.extend(open_loss);
    leftovers.extend(open_delay);
    leftovers.extend(open_crash.into_values());
    leftovers.extend(open_skew.into_values());
    for i in leftovers {
        units.push(vec![i]);
    }
    units.sort_by_key(|u| u[0]);
    units
}

/// Minimizes a failing case by delta debugging, preserving the verdict
/// class at every step.
///
/// Four reduction moves, repeated to a fixpoint (or until `max_attempts`
/// [`run_case`] replays are spent):
///
/// 1. **unit removal** (ddmin): drop chunks of onset/clear pairs,
///    halving the chunk size down to single units;
/// 2. **window shortening**: halve the onset→clear gap of surviving
///    pairs (floor 2 s);
/// 3. **partition-set shrinking**: move half of a partition's smallest
///    group into its largest, reducing how many nodes the fault cuts
///    off;
/// 4. **adversary reduction**: try zero malicious users, then halves.
///
/// Every candidate must pass [`FaultSchedule::validate`] before it is
/// replayed, and is accepted only if [`run_case`] returns the original
/// verdict class. Deterministic: same input ⇒ same minimized output.
///
/// # Panics
///
/// If the input case passes — there is nothing to shrink.
pub fn shrink(case: &FuzzCase, max_attempts: usize) -> ShrinkOutcome {
    let target = run_case(case).class;
    assert!(
        target != VerdictClass::Pass,
        "shrink called on a passing case"
    );
    let mut current = case.clone();
    let mut attempts = 1usize;
    let mut accepted: Vec<FuzzCase> = Vec::new();

    // Tries one candidate; accepts it into `current` iff it validates
    // and reproduces `target`.
    let try_case = |candidate: FuzzCase,
                    current: &mut FuzzCase,
                    attempts: &mut usize,
                    accepted: &mut Vec<FuzzCase>|
     -> bool {
        if *attempts >= max_attempts {
            return false;
        }
        if candidate.schedule.validate(candidate.n_users).is_err() {
            return false;
        }
        *attempts += 1;
        if run_case(&candidate).class == target {
            *current = candidate;
            accepted.push(current.clone());
            true
        } else {
            false
        }
    };

    let rebuild = |case: &FuzzCase, events: Vec<FaultEvent>| -> FuzzCase {
        let mut c = case.clone();
        c.schedule = FaultSchedule::from_events(events);
        c
    };

    loop {
        let before = attempts;
        let mut changed = false;

        // 1. ddmin over removal units.
        let mut chunk = removal_units(current.schedule.events())
            .len()
            .div_ceil(2)
            .max(1);
        loop {
            let events = current.schedule.clone().into_events();
            let units = removal_units(&events);
            if units.is_empty() || attempts >= max_attempts {
                break;
            }
            chunk = chunk.min(units.len());
            let mut any = false;
            let mut start = 0;
            while start < units.len() {
                let drop: std::collections::HashSet<usize> = units
                    [start..(start + chunk).min(units.len())]
                    .iter()
                    .flatten()
                    .copied()
                    .collect();
                let kept: Vec<FaultEvent> = events
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !drop.contains(i))
                    .map(|(_, e)| e.clone())
                    .collect();
                if try_case(
                    rebuild(&current, kept),
                    &mut current,
                    &mut attempts,
                    &mut accepted,
                ) {
                    any = true;
                    changed = true;
                    break; // unit indices are stale; recompute
                }
                start += chunk;
            }
            if !any {
                if chunk == 1 {
                    break;
                }
                chunk = (chunk / 2).max(1);
            }
        }

        // 2. Window shortening: halve each surviving pair's gap.
        loop {
            let events = current.schedule.clone().into_events();
            let units = removal_units(&events);
            let mut any = false;
            for unit in &units {
                let [onset, clear] = unit.as_slice() else {
                    continue;
                };
                let gap = events[*clear].at.saturating_sub(events[*onset].at);
                if gap <= 2 * SEC {
                    continue;
                }
                let mut shortened = events.clone();
                shortened[*clear].at = events[*onset].at + gap / 2;
                if try_case(
                    rebuild(&current, shortened),
                    &mut current,
                    &mut attempts,
                    &mut accepted,
                ) {
                    any = true;
                    changed = true;
                    break;
                }
            }
            if !any || attempts >= max_attempts {
                break;
            }
        }

        // 3. Partition-set shrinking: halve the smallest group.
        loop {
            let events = current.schedule.clone().into_events();
            let mut any = false;
            for (i, e) in events.iter().enumerate() {
                let FaultAction::Partition(spec) = &e.action else {
                    continue;
                };
                let Some(shrunk) = shrink_partition(spec) else {
                    continue;
                };
                let mut edited = events.clone();
                edited[i].action = FaultAction::Partition(shrunk);
                if try_case(
                    rebuild(&current, edited),
                    &mut current,
                    &mut attempts,
                    &mut accepted,
                ) {
                    any = true;
                    changed = true;
                    break;
                }
            }
            if !any || attempts >= max_attempts {
                break;
            }
        }

        // 4. Adversary reduction: zero first, then halves.
        while current.n_malicious > 0 && attempts < max_attempts {
            let mut c = current.clone();
            c.n_malicious = 0;
            if try_case(c, &mut current, &mut attempts, &mut accepted) {
                changed = true;
                continue;
            }
            let mut c = current.clone();
            c.n_malicious = current.n_malicious / 2;
            if c.n_malicious == current.n_malicious
                || !try_case(c, &mut current, &mut attempts, &mut accepted)
            {
                break;
            }
            changed = true;
        }

        if !changed || attempts >= max_attempts || attempts == before {
            break;
        }
    }

    ShrinkOutcome {
        minimized: current,
        verdict: target,
        attempts,
        accepted,
    }
}

/// Moves half of a partition's smallest group into its largest,
/// keeping at least one member in every group that `blocked` names.
/// `None` when the spec cannot shrink further.
fn shrink_partition(spec: &PartitionSpec) -> Option<PartitionSpec> {
    use std::collections::HashMap;
    let mut sizes: HashMap<u8, usize> = HashMap::new();
    for &g in &spec.group_of {
        *sizes.entry(g).or_insert(0) += 1;
    }
    if sizes.len() < 2 {
        return None;
    }
    // Destination: the largest group (never shrunk — moving members
    // out of the majority would *grow* the cut-off set). Source: the
    // smallest other group with ≥ 2 members, so one stays behind and
    // `blocked` pairs keep naming live groups. Ties break on group id
    // so the move is deterministic.
    let largest = sizes
        .iter()
        .max_by_key(|(&g, &n)| (n, std::cmp::Reverse(g)))
        .map(|(&g, _)| g)?;
    let smallest = sizes
        .iter()
        .filter(|(&g, &n)| g != largest && n >= 2)
        .min_by_key(|(&g, &n)| (n, g))
        .map(|(&g, _)| g)?;
    let moving = sizes[&smallest] / 2;
    let mut spec = spec.clone();
    let mut moved = 0;
    // Move the highest-indexed members first (deterministic pick).
    for g in spec.group_of.iter_mut().rev() {
        if moved == moving {
            break;
        }
        if *g == smallest {
            *g = largest;
            moved += 1;
        }
    }
    (moved > 0).then_some(spec)
}

// --- Reproducer serialization --------------------------------------------

/// Header line every reproducer file starts with.
pub const REPRO_HEADER: &str = "algorand-fuzz-repro v1";

/// Serializes a case (plus its oracle verdict) as a line-oriented text
/// reproducer. Exact: floats use Rust's shortest-roundtrip formatting,
/// so [`parse_case`] reconstructs a bit-identical schedule and the
/// replay is byte-identical to the original run.
pub fn serialize_case(case: &FuzzCase, verdict: VerdictClass) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{REPRO_HEADER}");
    let _ = writeln!(out, "case_seed={}", case.case_seed);
    let _ = writeln!(out, "seed={}", case.seed);
    let _ = writeln!(out, "n_users={}", case.n_users);
    let _ = writeln!(out, "n_malicious={}", case.n_malicious);
    let _ = writeln!(out, "adversary={}", adversary_str(case.adversary));
    let _ = writeln!(out, "bug={}", case.bug.map_or("none", InjectedBug::as_str));
    let _ = writeln!(out, "verdict={}", verdict.as_str());
    for e in case.schedule.clone().into_events() {
        let _ = write!(out, "event at={} ", e.at);
        let _ = match &e.action {
            FaultAction::Partition(spec) => {
                let groups: Vec<String> = spec.group_of.iter().map(|g| g.to_string()).collect();
                let blocked: Vec<String> = spec
                    .blocked
                    .iter()
                    .map(|(a, b)| format!("{a}>{b}"))
                    .collect();
                writeln!(
                    out,
                    "partition groups={} blocked={}",
                    groups.join(","),
                    blocked.join(",")
                )
            }
            FaultAction::Heal => writeln!(out, "heal"),
            FaultAction::Loss(p) => writeln!(out, "loss p={p}"),
            FaultAction::DelaySpike { factor, extra } => {
                writeln!(out, "delay factor={factor} extra={extra}")
            }
            FaultAction::DelayClear => writeln!(out, "delay_clear"),
            FaultAction::Crash(n) => writeln!(out, "crash node={n}"),
            FaultAction::Restart(n) => writeln!(out, "restart node={n}"),
            FaultAction::ClockSkew { node, skew } => {
                writeln!(out, "skew node={node} skew={skew}")
            }
        };
    }
    let _ = writeln!(out, "end");
    out
}

/// Parses [`serialize_case`] output back into a runnable case.
///
/// # Errors
///
/// A human-readable description of the first malformed line.
pub fn parse_case(text: &str) -> Result<(FuzzCase, VerdictClass), String> {
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some(REPRO_HEADER) {
        return Err(format!("missing '{REPRO_HEADER}' header"));
    }
    let mut case = FuzzCase {
        case_seed: 0,
        seed: 0,
        n_users: 0,
        n_malicious: 0,
        adversary: AdversaryKind::Equivocator,
        bug: None,
        schedule: FaultSchedule::new(),
    };
    let mut verdict = None;
    let mut events: Vec<FaultEvent> = Vec::new();
    let mut ended = false;
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "end" {
            ended = true;
            break;
        }
        let field =
            |l: &str, key: &str| -> Option<String> { l.strip_prefix(key).map(|v| v.to_string()) };
        if let Some(v) = field(line, "case_seed=") {
            case.case_seed = v.parse().map_err(|_| format!("bad case_seed: {v}"))?;
        } else if let Some(v) = field(line, "seed=") {
            case.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
        } else if let Some(v) = field(line, "n_users=") {
            case.n_users = v.parse().map_err(|_| format!("bad n_users: {v}"))?;
        } else if let Some(v) = field(line, "n_malicious=") {
            case.n_malicious = v.parse().map_err(|_| format!("bad n_malicious: {v}"))?;
        } else if let Some(v) = field(line, "adversary=") {
            case.adversary = adversary_parse(&v).ok_or(format!("bad adversary: {v}"))?;
        } else if let Some(v) = field(line, "bug=") {
            case.bug = match v.as_str() {
                "none" => None,
                s => Some(InjectedBug::parse(s).ok_or(format!("bad bug: {s}"))?),
            };
        } else if let Some(v) = field(line, "verdict=") {
            verdict = Some(VerdictClass::parse(&v).ok_or(format!("bad verdict: {v}"))?);
        } else if let Some(v) = field(line, "event at=") {
            events.push(parse_event(&v)?);
        } else {
            return Err(format!("unrecognized line: {line}"));
        }
    }
    if !ended {
        return Err("missing 'end' terminator".into());
    }
    let verdict = verdict.ok_or("missing verdict= line")?;
    case.schedule = FaultSchedule::from_events(events);
    case.schedule
        .validate(case.n_users)
        .map_err(|e| format!("reproducer schedule invalid: {e}"))?;
    Ok((case, verdict))
}

/// Parses the tail of an `event at=` line: `<time> <action> <args>`.
fn parse_event(rest: &str) -> Result<FaultEvent, String> {
    let mut parts = rest.split_whitespace();
    let at: Micros = parts
        .next()
        .ok_or("event missing time")?
        .parse()
        .map_err(|_| format!("bad event time in: {rest}"))?;
    let kind = parts
        .next()
        .ok_or(format!("event missing action: {rest}"))?;
    // Remaining tokens as key=value pairs.
    let mut kv = std::collections::HashMap::new();
    for tok in parts {
        let (k, v) = tok
            .split_once('=')
            .ok_or(format!("bad event field '{tok}' in: {rest}"))?;
        kv.insert(k.to_string(), v.to_string());
    }
    let need = |key: &str| -> Result<String, String> {
        kv.get(key)
            .cloned()
            .ok_or(format!("event missing {key}= in: {rest}"))
    };
    let action = match kind {
        "partition" => {
            let group_of: Vec<u8> = need("groups")?
                .split(',')
                .map(|s| s.parse().map_err(|_| format!("bad group '{s}'")))
                .collect::<Result<_, _>>()?;
            let blocked: Vec<(u8, u8)> = need("blocked")?
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    let (a, b) = s.split_once('>').ok_or(format!("bad blocked pair '{s}'"))?;
                    Ok::<(u8, u8), String>((
                        a.parse().map_err(|_| format!("bad group '{a}'"))?,
                        b.parse().map_err(|_| format!("bad group '{b}'"))?,
                    ))
                })
                .collect::<Result<_, _>>()?;
            FaultAction::Partition(PartitionSpec { group_of, blocked })
        }
        "heal" => FaultAction::Heal,
        "loss" => FaultAction::Loss(
            need("p")?
                .parse()
                .map_err(|_| format!("bad loss p in: {rest}"))?,
        ),
        "delay" => FaultAction::DelaySpike {
            factor: need("factor")?
                .parse()
                .map_err(|_| format!("bad delay factor in: {rest}"))?,
            extra: need("extra")?
                .parse()
                .map_err(|_| format!("bad delay extra in: {rest}"))?,
        },
        "delay_clear" => FaultAction::DelayClear,
        "crash" => FaultAction::Crash(
            need("node")?
                .parse()
                .map_err(|_| format!("bad crash node in: {rest}"))?,
        ),
        "restart" => FaultAction::Restart(
            need("node")?
                .parse()
                .map_err(|_| format!("bad restart node in: {rest}"))?,
        ),
        "skew" => FaultAction::ClockSkew {
            node: need("node")?
                .parse()
                .map_err(|_| format!("bad skew node in: {rest}"))?,
            skew: need("skew")?
                .parse()
                .map_err(|_| format!("bad skew offset in: {rest}"))?,
        },
        other => return Err(format!("unknown event action '{other}'")),
    };
    Ok(FaultEvent { at, action })
}

// --- Campaign ------------------------------------------------------------

/// Parameters for one fuzzing campaign.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Number of `(seed, schedule)` pairs to run.
    pub budget: usize,
    /// Master seed deriving every case's generator draw.
    pub master_seed: u64,
    /// Planted defect for the whole campaign (`None` = honest build).
    pub bug: Option<InjectedBug>,
}

/// The outcome of a campaign.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// Cases run.
    pub cases: usize,
    /// Cases that passed every oracle.
    pub passes: usize,
    /// Failing cases with their verdicts, in discovery order.
    pub failures: Vec<(FuzzCase, VerdictClass)>,
    /// Byte-stable textual report: identical campaign config ⇒
    /// byte-identical report (the CI determinism check).
    pub report: String,
}

/// Runs `budget` generated cases and aggregates a deterministic
/// report. Cases run on a small worker pool (each case is its own
/// sealed simulation), but results are folded strictly in case order
/// and all statistics are integers in virtual-time units, so the
/// report is byte-identical across reruns of the same
/// `(master_seed, budget, bug)` triple on any machine at any worker
/// count.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignResult {
    use std::fmt::Write;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let mut seeder = Rng::seed_from_u64(cfg.master_seed ^ 0xCAB1_F0CC);
    let seeds: Vec<u64> = (0..cfg.budget).map(|_| seeder.next_u64()).collect();
    let bug = cfg.bug;
    let results: Vec<Mutex<Option<(FuzzCase, Verdict)>>> =
        (0..cfg.budget).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
        .min(cfg.budget.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= seeds.len() {
                    break;
                }
                let case = generate(seeds[i], bug);
                let verdict = run_case(&case);
                *results[i].lock().expect("result slot") = Some((case, verdict));
            });
        }
    });

    let mut passes = 0usize;
    let mut failures: Vec<(FuzzCase, VerdictClass)> = Vec::new();
    let mut verdict_counts: Vec<(&'static str, u64)> = {
        let mut v = vec![(VerdictClass::Pass.as_str(), 0)];
        v.extend(
            Invariant::ALL
                .into_iter()
                .map(|i| (VerdictClass::MonitorViolation(i).as_str(), 0)),
        );
        v.push((VerdictClass::ChainDivergence.as_str(), 0));
        v.push((VerdictClass::LivenessStall.as_str(), 0));
        v
    };
    let mut events_total = 0u64;
    let mut events_min = u64::MAX;
    let mut events_max = 0u64;
    let mut recovery: Vec<Micros> = Vec::new();
    for slot in results {
        let (case, verdict) = slot
            .into_inner()
            .expect("result slot")
            .expect("worker filled every slot");
        let ev = case.schedule.len() as u64;
        events_total += ev;
        events_min = events_min.min(ev);
        events_max = events_max.max(ev);
        for (name, n) in verdict_counts.iter_mut() {
            if *name == verdict.class.as_str() {
                *n += 1;
            }
        }
        if verdict.class == VerdictClass::Pass {
            passes += 1;
            recovery.push(verdict.recovered_after.unwrap_or(0));
        } else {
            failures.push((case, verdict.class));
        }
    }
    recovery.sort_unstable();
    let pick = |q_num: usize, q_den: usize| -> Micros {
        if recovery.is_empty() {
            0
        } else {
            recovery[(recovery.len() - 1) * q_num / q_den]
        }
    };
    let mut report = String::new();
    let _ = writeln!(report, "fuzz campaign v1");
    let _ = writeln!(
        report,
        "master_seed={} budget={} bug={}",
        cfg.master_seed,
        cfg.budget,
        cfg.bug.map_or("none", InjectedBug::as_str)
    );
    let _ = writeln!(
        report,
        "cases={} pass={} fail={}",
        cfg.budget,
        passes,
        failures.len()
    );
    let mut verdicts = String::from("verdicts");
    for (name, n) in &verdict_counts {
        let _ = write!(verdicts, " {name}={n}");
    }
    let _ = writeln!(report, "{verdicts}");
    let _ = writeln!(
        report,
        "schedule_events total={} min={} max={}",
        events_total,
        if events_min == u64::MAX {
            0
        } else {
            events_min
        },
        events_max
    );
    let _ = writeln!(
        report,
        "recovery_virtual_us p50={} p90={} max={}",
        pick(1, 2),
        pick(9, 10),
        pick(1, 1)
    );
    for (case, class) in &failures {
        let _ = writeln!(
            report,
            "fail case_seed={} verdict={} events={}",
            case.case_seed,
            class.as_str(),
            case.schedule.len()
        );
    }
    let _ = writeln!(report, "end");
    CampaignResult {
        cases: cfg.budget,
        passes,
        failures,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_schedules_validate_and_pair_every_onset() {
        for s in 0..200u64 {
            let case = generate(s, None);
            assert!(case.n_users >= 8 && case.n_users <= 10);
            assert!(case.n_malicious * 5 <= case.n_users);
            assert_eq!(case.schedule.validate(case.n_users), Ok(()));
            assert!(!case.schedule.is_empty());
            // Every onset pairs with a later clear: grouping the events
            // must leave no singleton units.
            let events = case.schedule.clone().into_events();
            for unit in removal_units(&events) {
                assert_eq!(unit.len(), 2, "unpaired event in generated schedule");
                assert!(events[unit[0]].at < events[unit[1]].at);
                assert!(events[unit[0]].action.is_onset());
                assert!(!events[unit[1]].action.is_onset());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42, Some(InjectedBug::NoTimeoutBackoff));
        let b = generate(42, Some(InjectedBug::NoTimeoutBackoff));
        assert_eq!(
            serialize_case(&a, VerdictClass::Pass),
            serialize_case(&b, VerdictClass::Pass)
        );
        let c = generate(43, None);
        assert_ne!(
            serialize_case(&a, VerdictClass::Pass),
            serialize_case(&c, VerdictClass::Pass)
        );
    }

    #[test]
    fn verdict_class_names_roundtrip() {
        let all = [
            VerdictClass::Pass,
            VerdictClass::ChainDivergence,
            VerdictClass::LivenessStall,
        ]
        .into_iter()
        .chain(
            Invariant::ALL
                .into_iter()
                .map(VerdictClass::MonitorViolation),
        );
        for v in all {
            assert_eq!(VerdictClass::parse(v.as_str()), Some(v));
        }
        assert_eq!(VerdictClass::parse("bogus"), None);
    }

    #[test]
    fn reproducer_roundtrips_every_action_kind() {
        let schedule = FaultSchedule::new()
            .bipartition(9, 4, 5 * SEC, 20 * SEC)
            .asymmetric_partition(9, 7, 25 * SEC, 40 * SEC)
            .loss_window(0.123456789012345, 6 * SEC, 18 * SEC)
            .at(
                7 * SEC,
                FaultAction::DelaySpike {
                    factor: 2.7182818284590455,
                    extra: 99_999,
                },
            )
            .at(19 * SEC, FaultAction::DelayClear)
            .crash_restart(3, 8 * SEC, 30 * SEC)
            .at(
                9 * SEC,
                FaultAction::ClockSkew {
                    node: 1,
                    skew: -123_456,
                },
            )
            .at(33 * SEC, FaultAction::ClockSkew { node: 1, skew: 0 });
        let case = FuzzCase {
            case_seed: 7,
            seed: 0xDEAD_BEEF,
            n_users: 9,
            n_malicious: 1,
            adversary: AdversaryKind::Withholder,
            bug: Some(InjectedBug::IgnoreCatchupResponses),
            schedule,
        };
        let text = serialize_case(&case, VerdictClass::LivenessStall);
        let (parsed, verdict) = parse_case(&text).unwrap();
        assert_eq!(verdict, VerdictClass::LivenessStall);
        // Bit-exact roundtrip: re-serializing reproduces the same bytes
        // (floats use shortest-roundtrip formatting).
        assert_eq!(serialize_case(&parsed, verdict), text);
        assert_eq!(parsed.seed, case.seed);
        assert_eq!(parsed.bug, case.bug);
    }

    #[test]
    fn parser_rejects_malformed_reproducers() {
        assert!(parse_case("not a repro").is_err());
        assert!(parse_case(&format!("{REPRO_HEADER}\nverdict=pass\n")).is_err()); // no end
        assert!(parse_case(&format!(
            "{REPRO_HEADER}\nn_users=4\nverdict=pass\nevent at=5 crash node=9\nend\n"
        ))
        .is_err()); // schedule fails validation
        assert!(parse_case(&format!("{REPRO_HEADER}\nverdict=nonsense\nend\n")).is_err());
    }

    #[test]
    fn partition_shrink_halves_the_smallest_group() {
        let spec = PartitionSpec::bipartition(10, 6); // groups of 6 and 4
        let shrunk = shrink_partition(&spec).unwrap();
        let moved = shrunk.group_of.iter().filter(|&&g| g == 1).count();
        assert_eq!(moved, 2); // 4 → 2
        assert_eq!(shrunk.blocked, spec.blocked);
        // Shrinks to 1 member, then refuses to empty the group.
        let again = shrink_partition(&shrunk).unwrap();
        assert_eq!(again.group_of.iter().filter(|&&g| g == 1).count(), 1);
        assert!(shrink_partition(&again).is_none());
    }

    #[test]
    fn removal_units_pair_onsets_with_their_clears() {
        let events = FaultSchedule::new()
            .bipartition(8, 4, 10, 40)
            .crash_restart(2, 15, 35)
            .crash_restart(2, 50, 60) // same node, later window
            .at(20, FaultAction::Loss(0.4))
            .into_events();
        let units = removal_units(&events);
        // 3 pairs + 1 unpaired loss onset.
        assert_eq!(units.len(), 4);
        let singletons: Vec<_> = units.iter().filter(|u| u.len() == 1).collect();
        assert_eq!(singletons.len(), 1);
        assert!(matches!(
            events[singletons[0][0]].action,
            FaultAction::Loss(_)
        ));
    }
}
