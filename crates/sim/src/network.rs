//! The transport model: per-process bandwidth caps, inter-city latency,
//! jitter, and fault injection (§10's testbed conditions).
//!
//! Every simulated process has a 20 Mbit/s uplink (the paper's cap on each
//! Algorand process). A message of S bytes occupies the sender's uplink for
//! `8·S / bandwidth` seconds — transmissions serialize, which is exactly
//! what makes large blocks dominate round latency in Figure 7 — then takes
//! one inter-city one-way latency (±jitter) to arrive.

use crate::event::Micros;
use crate::latency::LatencyMatrix;
use algorand_crypto::rng::Rng;

/// Transport configuration.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Per-process uplink bandwidth in bits per second (paper: 20 Mbit/s).
    pub bandwidth_bps: u64,
    /// Multiplicative jitter applied to latency (0.1 = ±10%).
    pub jitter_frac: f64,
    /// RNG seed for jitter and city assignment.
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            bandwidth_bps: 20_000_000,
            jitter_frac: 0.1,
            seed: 42,
        }
    }
}

/// A drop filter: returns true if the message may pass.
pub type Filter = Box<dyn FnMut(Micros, usize, usize) -> bool>;

/// The simulated transport.
pub struct Network {
    cfg: NetConfig,
    latency: LatencyMatrix,
    city_of: Vec<usize>,
    uplink_free: Vec<Micros>,
    rng: Rng,
    bytes_sent: Vec<u64>,
    bytes_received: Vec<u64>,
    filter: Option<Filter>,
}

impl Network {
    /// Creates a transport for `n` nodes, assigned round-robin to the 20
    /// modelled cities.
    pub fn new(n: usize, cfg: NetConfig) -> Network {
        let latency = LatencyMatrix::new();
        let cities = latency.n_cities();
        Network {
            city_of: (0..n).map(|i| i % cities).collect(),
            uplink_free: vec![0; n],
            rng: Rng::seed_from_u64(cfg.seed),
            bytes_sent: vec![0; n],
            bytes_received: vec![0; n],
            filter: None,
            latency,
            cfg,
        }
    }

    /// Installs a drop filter (partitions, targeted DoS). Passing `None`
    /// removes it.
    pub fn set_filter(&mut self, filter: Option<Filter>) {
        self.filter = filter;
    }

    /// Transmits `size` bytes from `from` to `to` starting at `now`.
    ///
    /// Returns the arrival time, or `None` when the filter drops the
    /// message. Either way the sender's uplink is consumed: a sender
    /// cannot tell that the adversary discarded its packets.
    pub fn transmit(&mut self, from: usize, to: usize, size: usize, now: Micros) -> Option<Micros> {
        let tx_time = (size as u128 * 8 * 1_000_000 / self.cfg.bandwidth_bps as u128) as Micros;
        let start = self.uplink_free[from].max(now);
        self.uplink_free[from] = start + tx_time;
        self.bytes_sent[from] += size as u64;
        if let Some(filter) = &mut self.filter {
            if !filter(now, from, to) {
                return None;
            }
        }
        self.bytes_received[to] += size as u64;
        let base = self.latency.one_way(self.city_of[from], self.city_of[to]);
        let jitter = 1.0 + self.cfg.jitter_frac * (self.rng.gen_f64() * 2.0 - 1.0);
        let lat = (base as f64 * jitter) as Micros;
        Some(self.uplink_free[from] + lat)
    }

    /// Total bytes sent by a node.
    pub fn bytes_sent(&self, node: usize) -> u64 {
        self.bytes_sent[node]
    }

    /// Total bytes received by a node.
    pub fn bytes_received(&self, node: usize) -> u64 {
        self.bytes_received[node]
    }

    /// Sum of bytes sent across all nodes.
    pub fn total_bytes_sent(&self) -> u64 {
        self.bytes_sent.iter().sum()
    }

    /// The city index a node lives in.
    pub fn city_of(&self, node: usize) -> usize {
        self.city_of[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_serializes_transmissions() {
        let mut net = Network::new(
            2,
            NetConfig {
                bandwidth_bps: 8_000_000, // 1 MB/s.
                jitter_frac: 0.0,
                seed: 1,
            },
        );
        // Two 1 MB messages back to back: the second arrives ~1 s later.
        let a1 = net.transmit(0, 1, 1_000_000, 0).unwrap();
        let a2 = net.transmit(0, 1, 1_000_000, 0).unwrap();
        assert!(a2 >= a1 + 1_000_000 - 1, "a1={a1} a2={a2}");
        assert_eq!(net.bytes_sent(0), 2_000_000);
        assert_eq!(net.bytes_received(1), 2_000_000);
    }

    #[test]
    fn small_messages_are_latency_bound() {
        let mut net = Network::new(2, NetConfig::default());
        let arrival = net.transmit(0, 1, 300, 0).unwrap();
        // 300 bytes at 20 Mbit/s is 120 µs of serialization; the rest is
        // propagation (≥ 1 ms even within a city).
        assert!(arrival >= 1_000, "arrival {arrival}");
        assert!(arrival < 200_000, "arrival {arrival}");
    }

    #[test]
    fn filter_drops_but_consumes_uplink() {
        let mut net = Network::new(
            2,
            NetConfig {
                bandwidth_bps: 8_000_000,
                jitter_frac: 0.0,
                seed: 1,
            },
        );
        net.set_filter(Some(Box::new(|_, from, _| from != 0)));
        assert!(net.transmit(0, 1, 1_000_000, 0).is_none());
        assert_eq!(net.bytes_sent(0), 1_000_000);
        assert_eq!(net.bytes_received(1), 0);
        // The uplink was still occupied for the dropped send.
        let next = net.transmit(1, 0, 100, 0).unwrap();
        assert!(next > 0);
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let mut net = Network::new(20, NetConfig::default());
        let base = LatencyMatrix::new().one_way(0, 1);
        for _ in 0..100 {
            let arrival = net.transmit(0, 1, 1, 0);
            let lat = arrival.unwrap();
            assert!(
                (lat as f64) < base as f64 * 1.11 + 10.0,
                "lat {lat} base {base}"
            );
        }
    }
}
