//! The transport model: per-process bandwidth caps, inter-city latency,
//! jitter, and fault injection (§10's testbed conditions).
//!
//! Every simulated process has a 20 Mbit/s uplink (the paper's cap on each
//! Algorand process). A message of S bytes occupies the sender's uplink for
//! `8·S / bandwidth` seconds — transmissions serialize, which is exactly
//! what makes large blocks dominate round latency in Figure 7 — then takes
//! one inter-city one-way latency (±jitter) to arrive.
//!
//! Fault injection layers, applied in order to every send:
//!
//! 1. the caller-supplied [`Filter`] hook (targeted DoS, custom rules),
//! 2. the installed [`PartitionSpec`] (group-to-group link blocking,
//!    symmetric or asymmetric),
//! 3. deterministic per-send packet loss at the current loss rate,
//!    sampled from the seeded RNG,
//! 4. an optional delay spike (multiplicative factor plus a constant)
//!    on the propagation latency.
//!
//! Drops are counted per cause so the chaos harness can report them.

use crate::event::Micros;
use crate::latency::LatencyMatrix;
use algorand_crypto::rng::Rng;

/// Transport configuration.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Per-process uplink bandwidth in bits per second (paper: 20 Mbit/s).
    pub bandwidth_bps: u64,
    /// Multiplicative jitter applied to latency (0.1 = ±10%).
    pub jitter_frac: f64,
    /// Probability that any given send is silently dropped, sampled
    /// deterministically per send from the seeded RNG. 0 disables the
    /// draw entirely, leaving the jitter stream untouched.
    pub loss_prob: f64,
    /// RNG seed for jitter, loss sampling, and city assignment.
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            bandwidth_bps: 20_000_000,
            jitter_frac: 0.1,
            loss_prob: 0.0,
            seed: 42,
        }
    }
}

/// A drop filter: returns true if the message may pass.
pub type Filter = Box<dyn FnMut(Micros, usize, usize) -> bool>;

/// A data-driven network partition: each node belongs to a group, and a
/// set of ordered `(from_group, to_group)` pairs is blocked. Symmetric
/// bipartitions block both directions; asymmetric ones block only one,
/// modelling links that fail in a single direction.
#[derive(Clone, Debug)]
pub struct PartitionSpec {
    /// Group id of each node.
    pub group_of: Vec<u8>,
    /// Ordered group pairs whose links are cut.
    pub blocked: Vec<(u8, u8)>,
}

impl PartitionSpec {
    /// A symmetric bipartition: nodes `< split` vs the rest, no traffic
    /// across in either direction.
    pub fn bipartition(n: usize, split: usize) -> PartitionSpec {
        PartitionSpec {
            group_of: (0..n).map(|i| u8::from(i >= split)).collect(),
            blocked: vec![(0, 1), (1, 0)],
        }
    }

    /// An asymmetric partition: the first group's messages still reach
    /// the second, but nothing flows back.
    pub fn asymmetric(n: usize, split: usize) -> PartitionSpec {
        PartitionSpec {
            group_of: (0..n).map(|i| u8::from(i >= split)).collect(),
            blocked: vec![(1, 0)],
        }
    }

    /// Whether a send from `from` to `to` is blocked.
    pub fn blocks(&self, from: usize, to: usize) -> bool {
        let (gf, gt) = (self.group_of[from], self.group_of[to]);
        gf != gt && self.blocked.contains(&(gf, gt))
    }
}

/// The simulated transport.
pub struct Network {
    cfg: NetConfig,
    latency: LatencyMatrix,
    city_of: Vec<usize>,
    uplink_free: Vec<Micros>,
    rng: Rng,
    bytes_sent: Vec<u64>,
    bytes_received: Vec<u64>,
    filter: Option<Filter>,
    partition: Option<PartitionSpec>,
    loss_prob: f64,
    /// Latency distortion: `(factor, extra)` applied as
    /// `latency * factor + extra`.
    delay_spike: Option<(f64, Micros)>,
    dropped_by_filter: u64,
    dropped_by_partition: u64,
    dropped_by_loss: u64,
}

impl Network {
    /// Creates a transport for `n` nodes, assigned round-robin to the 20
    /// modelled cities.
    pub fn new(n: usize, cfg: NetConfig) -> Network {
        let latency = LatencyMatrix::new();
        let cities = latency.n_cities();
        Network {
            city_of: (0..n).map(|i| i % cities).collect(),
            uplink_free: vec![0; n],
            rng: Rng::seed_from_u64(cfg.seed),
            bytes_sent: vec![0; n],
            bytes_received: vec![0; n],
            filter: None,
            partition: None,
            loss_prob: cfg.loss_prob,
            delay_spike: None,
            dropped_by_filter: 0,
            dropped_by_partition: 0,
            dropped_by_loss: 0,
            latency,
            cfg,
        }
    }

    /// Installs a drop filter (targeted DoS, custom rules). Passing
    /// `None` removes it.
    pub fn set_filter(&mut self, filter: Option<Filter>) {
        self.filter = filter;
    }

    /// Installs (or heals, with `None`) a partition.
    pub fn set_partition(&mut self, partition: Option<PartitionSpec>) {
        self.partition = partition;
    }

    /// The currently installed partition, if any.
    pub fn partition(&self) -> Option<&PartitionSpec> {
        self.partition.as_ref()
    }

    /// Sets the per-send packet-loss probability (0 disables sampling).
    pub fn set_loss_prob(&mut self, prob: f64) {
        self.loss_prob = prob;
    }

    /// Distorts propagation latency to `latency * factor + extra`
    /// (`None` restores normal latency).
    pub fn set_delay_spike(&mut self, spike: Option<(f64, Micros)>) {
        self.delay_spike = spike;
    }

    /// Transmits `size` bytes from `from` to `to` starting at `now`.
    ///
    /// Returns the arrival time, or `None` when a filter, partition, or
    /// loss draw drops the message. Either way the sender's uplink is
    /// consumed: a sender cannot tell that the network discarded its
    /// packets.
    pub fn transmit(&mut self, from: usize, to: usize, size: usize, now: Micros) -> Option<Micros> {
        let tx_time = (size as u128 * 8 * 1_000_000 / self.cfg.bandwidth_bps as u128) as Micros;
        let start = self.uplink_free[from].max(now);
        self.uplink_free[from] = start + tx_time;
        self.bytes_sent[from] += size as u64;
        if let Some(filter) = &mut self.filter {
            if !filter(now, from, to) {
                self.dropped_by_filter += 1;
                return None;
            }
        }
        if let Some(p) = &self.partition {
            if p.blocks(from, to) {
                self.dropped_by_partition += 1;
                return None;
            }
        }
        if self.loss_prob > 0.0 && self.rng.gen_f64() < self.loss_prob {
            self.dropped_by_loss += 1;
            return None;
        }
        self.bytes_received[to] += size as u64;
        let base = self.latency.one_way(self.city_of[from], self.city_of[to]);
        let jitter = 1.0 + self.cfg.jitter_frac * (self.rng.gen_f64() * 2.0 - 1.0);
        let mut lat = (base as f64 * jitter) as Micros;
        if let Some((factor, extra)) = self.delay_spike {
            lat = (lat as f64 * factor) as Micros + extra;
        }
        Some(self.uplink_free[from] + lat)
    }

    /// A lower bound on the delay between any send and its arrival under
    /// the *current* network conditions — the conservative-lookahead
    /// contract of the parallel DES engine: a message entering the
    /// network at time `t` is delivered no earlier than
    /// `t + min_delay()`. Accounts for downward jitter and for the
    /// active delay spike, with a small margin for the integer flooring
    /// the transmit path applies. Serialization and uplink queueing only
    /// add delay, so they never lower the bound. Network conditions only
    /// change at scripted fault instants, which the DES engine treats as
    /// window barriers, so the bound is stable within any one window.
    /// Always at least 1 µs.
    pub fn min_delay(&self) -> Micros {
        let base = self.latency.min_one_way() as f64;
        let jittered = base * (1.0 - self.cfg.jitter_frac).clamp(0.0, 1.0);
        let spiked = match self.delay_spike {
            Some((factor, extra)) => jittered * factor.max(0.0) + extra as f64,
            None => jittered,
        };
        (spiked.floor() as Micros).saturating_sub(2).max(1)
    }

    /// Total bytes sent by a node.
    pub fn bytes_sent(&self, node: usize) -> u64 {
        self.bytes_sent[node]
    }

    /// Total bytes received by a node.
    pub fn bytes_received(&self, node: usize) -> u64 {
        self.bytes_received[node]
    }

    /// Sum of bytes sent across all nodes.
    pub fn total_bytes_sent(&self) -> u64 {
        self.bytes_sent.iter().sum()
    }

    /// Sends dropped by the caller-installed filter.
    pub fn dropped_by_filter(&self) -> u64 {
        self.dropped_by_filter
    }

    /// Sends dropped by the installed partition.
    pub fn dropped_by_partition(&self) -> u64 {
        self.dropped_by_partition
    }

    /// Sends dropped by random packet loss.
    pub fn dropped_by_loss(&self) -> u64 {
        self.dropped_by_loss
    }

    /// The city index a node lives in.
    pub fn city_of(&self, node: usize) -> usize {
        self.city_of[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_serializes_transmissions() {
        let mut net = Network::new(
            2,
            NetConfig {
                bandwidth_bps: 8_000_000, // 1 MB/s.
                jitter_frac: 0.0,
                loss_prob: 0.0,
                seed: 1,
            },
        );
        // Two 1 MB messages back to back: the second arrives ~1 s later.
        let a1 = net.transmit(0, 1, 1_000_000, 0).unwrap();
        let a2 = net.transmit(0, 1, 1_000_000, 0).unwrap();
        assert!(a2 >= a1 + 1_000_000 - 1, "a1={a1} a2={a2}");
        assert_eq!(net.bytes_sent(0), 2_000_000);
        assert_eq!(net.bytes_received(1), 2_000_000);
    }

    #[test]
    fn small_messages_are_latency_bound() {
        let mut net = Network::new(2, NetConfig::default());
        let arrival = net.transmit(0, 1, 300, 0).unwrap();
        // 300 bytes at 20 Mbit/s is 120 µs of serialization; the rest is
        // propagation (≥ 1 ms even within a city).
        assert!(arrival >= 1_000, "arrival {arrival}");
        assert!(arrival < 200_000, "arrival {arrival}");
    }

    #[test]
    fn filter_drops_but_consumes_uplink() {
        let mut net = Network::new(
            2,
            NetConfig {
                bandwidth_bps: 8_000_000,
                jitter_frac: 0.0,
                loss_prob: 0.0,
                seed: 1,
            },
        );
        net.set_filter(Some(Box::new(|_, from, _| from != 0)));
        assert!(net.transmit(0, 1, 1_000_000, 0).is_none());
        assert_eq!(net.bytes_sent(0), 1_000_000);
        assert_eq!(net.bytes_received(1), 0);
        assert_eq!(net.dropped_by_filter(), 1);
        // The uplink was still occupied for the dropped send.
        let next = net.transmit(1, 0, 100, 0).unwrap();
        assert!(next > 0);
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let mut net = Network::new(20, NetConfig::default());
        let base = LatencyMatrix::new().one_way(0, 1);
        for _ in 0..100 {
            let arrival = net.transmit(0, 1, 1, 0);
            let lat = arrival.unwrap();
            assert!(
                (lat as f64) < base as f64 * 1.11 + 10.0,
                "lat {lat} base {base}"
            );
        }
    }

    #[test]
    fn loss_prob_drops_close_to_rate() {
        let mut net = Network::new(2, NetConfig::default());
        net.set_loss_prob(0.3);
        let mut dropped = 0;
        for _ in 0..1000 {
            if net.transmit(0, 1, 100, 0).is_none() {
                dropped += 1;
            }
        }
        assert_eq!(net.dropped_by_loss(), dropped);
        assert!((200..400).contains(&dropped), "dropped {dropped}");
    }

    #[test]
    fn loss_sampling_is_deterministic_per_seed() {
        let run = || {
            let mut net = Network::new(2, NetConfig::default());
            net.set_loss_prob(0.5);
            (0..64)
                .map(|_| net.transmit(0, 1, 100, 0).is_some())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn symmetric_partition_blocks_both_ways() {
        let mut net = Network::new(4, NetConfig::default());
        net.set_partition(Some(PartitionSpec::bipartition(4, 2)));
        assert!(net.transmit(0, 2, 10, 0).is_none());
        assert!(net.transmit(2, 0, 10, 0).is_none());
        assert!(net.transmit(0, 1, 10, 0).is_some());
        assert!(net.transmit(2, 3, 10, 0).is_some());
        assert_eq!(net.dropped_by_partition(), 2);
        net.set_partition(None);
        assert!(net.transmit(0, 2, 10, 0).is_some());
    }

    #[test]
    fn asymmetric_partition_blocks_one_way() {
        let mut net = Network::new(4, NetConfig::default());
        net.set_partition(Some(PartitionSpec::asymmetric(4, 2)));
        // Group 0 → group 1 passes; group 1 → group 0 is cut.
        assert!(net.transmit(0, 2, 10, 0).is_some());
        assert!(net.transmit(2, 0, 10, 0).is_none());
        assert_eq!(net.dropped_by_partition(), 1);
    }

    #[test]
    fn min_delay_lower_bounds_every_arrival() {
        let mut net = Network::new(20, NetConfig::default());
        for spike in [None, Some((3.0, 50_000)), Some((0.5, 0))] {
            net.set_delay_spike(spike);
            let bound = net.min_delay();
            assert!(bound >= 1);
            for from in 0..20 {
                for to in 0..20 {
                    let now = net.uplink_free[from];
                    if let Some(arrival) = net.transmit(from, to, 1, now) {
                        assert!(
                            arrival >= now + bound,
                            "spike {spike:?}: {from}->{to} arrived {arrival} < {now}+{bound}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn delay_spike_inflates_latency() {
        let cfg = NetConfig {
            jitter_frac: 0.0,
            ..NetConfig::default()
        };
        let mut net = Network::new(2, cfg);
        let normal = net.transmit(0, 1, 1, 0).unwrap();
        net.set_delay_spike(Some((3.0, 50_000)));
        let spiked = net.transmit(0, 1, 1, 0).unwrap();
        assert!(
            spiked >= normal * 2 + 50_000,
            "normal {normal} spiked {spiked}"
        );
        net.set_delay_spike(None);
        let healed = net.transmit(0, 1, 1, 0).unwrap();
        assert!(healed < spiked, "healed {healed} spiked {spiked}");
    }
}
