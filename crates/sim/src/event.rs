//! The discrete-event queue: virtual time, deterministic ordering.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual microseconds since simulation start.
pub type Micros = u64;

/// A scheduled simulation event.
#[derive(Clone, Debug)]
pub enum Event<M> {
    /// Deliver a message to a node.
    Deliver {
        /// The receiving node.
        to: usize,
        /// The node it came from (not forwarded back there).
        from: usize,
        /// The message payload.
        msg: M,
    },
    /// Wake a node so it can fire timeouts.
    Wake {
        /// The node to tick.
        node: usize,
    },
    /// Inject the next workload transaction (open-loop traffic source).
    Inject,
    /// Apply the `idx`-th scripted fault from the installed
    /// [`FaultSchedule`](crate::faults::FaultSchedule).
    Fault {
        /// Index into the simulation's fault-event list.
        idx: usize,
    },
}

#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct Key(Micros, u64);

/// A deterministic time-ordered event queue.
///
/// Ties are broken by insertion sequence, so identical runs replay
/// identically regardless of heap internals.
pub struct EventQueue<M> {
    heap: BinaryHeap<Reverse<Key>>,
    payloads: std::collections::HashMap<u64, Event<M>>,
    seq: u64,
    now: Micros,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue at time 0.
    pub fn new() -> EventQueue<M> {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: std::collections::HashMap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> Micros {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules an event at an absolute time (clamped to now).
    pub fn schedule(&mut self, at: Micros, event: Event<M>) {
        let at = at.max(self.now);
        let id = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Key(at, id)));
        self.payloads.insert(id, event);
    }

    /// The time of the next scheduled event, without popping it.
    pub fn next_time(&self) -> Option<Micros> {
        self.heap.peek().map(|Reverse(Key(t, _))| *t)
    }

    /// Pops the next event, advancing virtual time.
    pub fn pop(&mut self) -> Option<(Micros, Event<M>)> {
        let Reverse(Key(at, id)) = self.heap.pop()?;
        self.now = at;
        let event = self.payloads.remove(&id).expect("payload exists");
        Some((at, event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule(30, Event::Wake { node: 3 });
        q.schedule(10, Event::Wake { node: 1 });
        q.schedule(20, Event::Wake { node: 2 });
        let order: Vec<Micros> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for node in 0..5 {
            q.schedule(42, Event::Wake { node });
        }
        let nodes: Vec<usize> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::Wake { node } => node,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(nodes, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn time_never_goes_backwards() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule(10, Event::Wake { node: 0 });
        q.pop();
        assert_eq!(q.now(), 10);
        // Scheduling in the past clamps to now.
        q.schedule(5, Event::Wake { node: 1 });
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 10);
    }

    #[test]
    fn deliver_carries_payload() {
        let mut q: EventQueue<&'static str> = EventQueue::new();
        q.schedule(
            1,
            Event::Deliver {
                to: 2,
                from: 1,
                msg: "hello",
            },
        );
        match q.pop().unwrap().1 {
            Event::Deliver { to, from, msg } => {
                assert_eq!((to, from, msg), (2, 1, "hello"));
            }
            _ => panic!("expected deliver"),
        }
    }
}
