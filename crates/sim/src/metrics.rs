//! Aggregation of per-node round records into the paper's plot series.
//!
//! The figures plot, per configuration, the minimum, 25th percentile,
//! median, 75th percentile, and maximum round-completion time across all
//! users (§10: "include the minimum, median, maximum, 25th, and 75th
//! percentile times across all users").

use algorand_core::RoundRecord;

// The exact interpolated summary moved into the shared observability
// crate; re-exported here so existing `sim::metrics::Percentiles` callers
// keep compiling unchanged.
pub use algorand_obs::Percentiles;

/// Aggregated timing for one round across all honest users, in seconds.
#[derive(Clone, Copy, Debug)]
pub struct RoundStats {
    /// The round number.
    pub round: u64,
    /// Round completion time.
    pub completion: Percentiles,
    /// Block-proposal portion (Figure 7's bottom band), median.
    pub proposal_median: f64,
    /// BA⋆ without the final step (Figure 7's middle band), median.
    pub ba_median: f64,
    /// Final-step portion (Figure 7's top band), median.
    pub final_median: f64,
    /// Fraction of users that saw final (vs tentative) consensus.
    pub final_fraction: f64,
    /// Fraction of users that agreed on the empty block.
    pub empty_fraction: f64,
}

/// Summarizes one round from every node's records.
///
/// Returns `None` if no node completed the round.
pub fn round_stats(per_node_records: &[&[RoundRecord]], round: u64) -> Option<RoundStats> {
    let recs: Vec<&RoundRecord> = per_node_records
        .iter()
        .flat_map(|r| r.iter())
        .filter(|r| r.round == round)
        .collect();
    if recs.is_empty() {
        return None;
    }
    let secs = |us: u64| us as f64 / 1e6;
    let completion: Vec<f64> = recs.iter().map(|r| secs(r.total())).collect();
    let mut proposal: Vec<f64> = recs.iter().map(|r| secs(r.proposal_time())).collect();
    let mut ba: Vec<f64> = recs.iter().map(|r| secs(r.ba_without_final())).collect();
    let mut fin: Vec<f64> = recs.iter().map(|r| secs(r.final_step_time())).collect();
    let median = |v: &mut Vec<f64>| Percentiles::of(v).median;
    let final_count = recs
        .iter()
        .filter(|r| r.kind == algorand_ba::ConsensusKind::Final)
        .count();
    let empty_count = recs.iter().filter(|r| r.empty).count();
    Some(RoundStats {
        round,
        completion: Percentiles::of(&completion),
        proposal_median: median(&mut proposal),
        ba_median: median(&mut ba),
        final_median: median(&mut fin),
        final_fraction: final_count as f64 / recs.len() as f64,
        empty_fraction: empty_count as f64 / recs.len() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use algorand_ba::ConsensusKind;

    fn rec(round: u64, start: u64, fin: u64) -> RoundRecord {
        RoundRecord {
            round,
            started: start,
            ba_started: start + 1_000_000,
            binary_done: fin - 500_000,
            finished: fin,
            kind: ConsensusKind::Final,
            binary_step: 1,
            empty: false,
            block_bytes: 1000,
        }
    }

    #[test]
    fn round_stats_aggregates_across_nodes() {
        let a = vec![rec(1, 0, 4_000_000)];
        let b = vec![rec(1, 0, 6_000_000)];
        let c = vec![rec(2, 0, 9_000_000)];
        let views: Vec<&[RoundRecord]> = vec![&a, &b, &c];
        let s = round_stats(&views, 1).unwrap();
        assert_eq!(s.round, 1);
        assert_eq!(s.completion.min, 4.0);
        assert_eq!(s.completion.max, 6.0);
        assert_eq!(s.final_fraction, 1.0);
        assert!(round_stats(&views, 3).is_none());
    }
}
