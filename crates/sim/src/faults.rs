//! Scripted fault injection: the chaos harness's schedule language.
//!
//! A [`FaultSchedule`] is a time-ordered list of [`FaultEvent`]s the
//! simulation applies at exact virtual instants, interleaved
//! deterministically with message deliveries and timer wakes. Because
//! every fault is data (no closures) and all randomness downstream of a
//! fault flows from the simulation's seeded RNGs, a `(seed, schedule)`
//! pair replays to a byte-identical run — the property the CI
//! determinism check asserts.
//!
//! The vocabulary covers the paper's robustness claims (§8.2, §10.4–10.6):
//! network partitions (symmetric and asymmetric) with healing, per-send
//! packet loss, propagation-delay spikes, node crashes with later
//! restarts (durable state only survives; the node rejoins via the §8.3
//! catch-up protocol), and clock skew for the loosely-synchronized-clock
//! assumptions of §8.2.

use crate::event::Micros;
use crate::network::PartitionSpec;

/// One scripted fault, applied at an exact virtual instant.
#[derive(Clone, Debug)]
pub enum FaultAction {
    /// Install a partition (replacing any active one).
    Partition(PartitionSpec),
    /// Remove the active partition.
    Heal,
    /// Set the per-send packet-loss probability (0 restores lossless).
    Loss(f64),
    /// Distort propagation latency to `latency * factor + extra`.
    DelaySpike {
        /// Multiplicative latency factor.
        factor: f64,
        /// Constant additional latency in microseconds.
        extra: Micros,
    },
    /// Restore normal propagation latency.
    DelayClear,
    /// Crash a node: volatile state is lost, durable state (the chain
    /// with its certificates) is snapshotted through the wire codec.
    Crash(usize),
    /// Restart a crashed node from its snapshot; it rejoins via catch-up.
    Restart(usize),
    /// Skew a node's local clock by `skew` microseconds (applied to
    /// every timestamp the node observes from then on).
    ClockSkew {
        /// The skewed node.
        node: usize,
        /// Non-negative offset added to the node's local clock.
        skew: Micros,
    },
}

/// A [`FaultAction`] bound to its firing time.
#[derive(Clone, Debug)]
pub struct FaultEvent {
    /// Virtual time at which the fault applies.
    pub at: Micros,
    /// What happens.
    pub action: FaultAction,
}

/// A replayable script of timed faults.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Appends an action at `at` (builder style).
    pub fn at(mut self, at: Micros, action: FaultAction) -> FaultSchedule {
        self.events.push(FaultEvent { at, action });
        self
    }

    /// A symmetric bipartition of `n` nodes at `split`, healed later.
    pub fn bipartition(self, n: usize, split: usize, from: Micros, until: Micros) -> FaultSchedule {
        self.at(
            from,
            FaultAction::Partition(PartitionSpec::bipartition(n, split)),
        )
        .at(until, FaultAction::Heal)
    }

    /// An asymmetric partition (second group cannot reach the first),
    /// healed later.
    pub fn asymmetric_partition(
        self,
        n: usize,
        split: usize,
        from: Micros,
        until: Micros,
    ) -> FaultSchedule {
        self.at(
            from,
            FaultAction::Partition(PartitionSpec::asymmetric(n, split)),
        )
        .at(until, FaultAction::Heal)
    }

    /// A packet-loss window at rate `prob`.
    pub fn loss_window(self, prob: f64, from: Micros, until: Micros) -> FaultSchedule {
        self.at(from, FaultAction::Loss(prob))
            .at(until, FaultAction::Loss(0.0))
    }

    /// Crash `node` at `from`, restart it at `until`.
    pub fn crash_restart(self, node: usize, from: Micros, until: Micros) -> FaultSchedule {
        self.at(from, FaultAction::Crash(node))
            .at(until, FaultAction::Restart(node))
    }

    /// The events in schedule order (stable by time, then insertion).
    pub fn into_events(self) -> Vec<FaultEvent> {
        let mut events: Vec<(usize, FaultEvent)> = self.events.into_iter().enumerate().collect();
        events.sort_by_key(|&(i, ref e)| (e.at, i));
        events.into_iter().map(|(_, e)| e).collect()
    }

    /// The instant the last scheduled fault fires — every action after
    /// this point is a heal/restart, so tests bound recovery time from
    /// here.
    pub fn last_fault_clear(&self) -> Micros {
        self.events.iter().map(|e| e.at).max().unwrap_or(0)
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_orders_by_time_then_insertion() {
        let s = FaultSchedule::new()
            .at(30, FaultAction::Heal)
            .at(10, FaultAction::Loss(0.5))
            .at(30, FaultAction::Loss(0.0))
            .at(20, FaultAction::Crash(1));
        assert_eq!(s.last_fault_clear(), 30);
        let events = s.into_events();
        let times: Vec<Micros> = events.iter().map(|e| e.at).collect();
        assert_eq!(times, vec![10, 20, 30, 30]);
        // Ties preserve insertion order: Heal before Loss(0.0).
        assert!(matches!(events[2].action, FaultAction::Heal));
        assert!(matches!(events[3].action, FaultAction::Loss(_)));
    }

    #[test]
    fn builders_expand_to_paired_events() {
        let s = FaultSchedule::new()
            .bipartition(8, 4, 100, 200)
            .crash_restart(3, 150, 250)
            .loss_window(0.3, 120, 180);
        assert_eq!(s.len(), 6);
        assert_eq!(s.last_fault_clear(), 250);
    }
}
