//! Scripted fault injection: the chaos harness's schedule language.
//!
//! A [`FaultSchedule`] is a time-ordered list of [`FaultEvent`]s the
//! simulation applies at exact virtual instants, interleaved
//! deterministically with message deliveries and timer wakes. Because
//! every fault is data (no closures) and all randomness downstream of a
//! fault flows from the simulation's seeded RNGs, a `(seed, schedule)`
//! pair replays to a byte-identical run — the property the CI
//! determinism check asserts.
//!
//! The vocabulary covers the paper's robustness claims (§8.2, §10.4–10.6):
//! network partitions (symmetric and asymmetric) with healing, per-send
//! packet loss, propagation-delay spikes, node crashes with later
//! restarts (durable state only survives; the node rejoins via the §8.3
//! catch-up protocol), and clock skew for the loosely-synchronized-clock
//! assumptions of §8.2.

use crate::event::Micros;
use crate::network::PartitionSpec;

/// One scripted fault, applied at an exact virtual instant.
#[derive(Clone, Debug)]
pub enum FaultAction {
    /// Install a partition (replacing any active one).
    Partition(PartitionSpec),
    /// Remove the active partition.
    Heal,
    /// Set the per-send packet-loss probability (0 restores lossless).
    Loss(f64),
    /// Distort propagation latency to `latency * factor + extra`.
    DelaySpike {
        /// Multiplicative latency factor.
        factor: f64,
        /// Constant additional latency in microseconds.
        extra: Micros,
    },
    /// Restore normal propagation latency.
    DelayClear,
    /// Crash a node: volatile state is lost, durable state (the chain
    /// with its certificates) is snapshotted through the wire codec.
    Crash(usize),
    /// Restart a crashed node from its snapshot; it rejoins via catch-up.
    Restart(usize),
    /// Skew a node's local clock by `skew` microseconds (applied to
    /// every timestamp the node observes from then on).
    ClockSkew {
        /// The skewed node.
        node: usize,
        /// Signed offset added to the node's local clock: positive runs
        /// fast, negative runs slow — both directions of §8.2's
        /// loosely-synchronized-clock assumption.
        skew: i64,
    },
}

impl FaultAction {
    /// Whether this action *introduces* a disturbance (as opposed to
    /// clearing one): partitions, nonzero loss, delay spikes, crashes,
    /// and nonzero clock skews are onsets; heals, zero-loss, delay
    /// clears, restarts, and zero skews end one.
    pub fn is_onset(&self) -> bool {
        match self {
            FaultAction::Partition(_) | FaultAction::DelaySpike { .. } | FaultAction::Crash(_) => {
                true
            }
            FaultAction::Loss(p) => *p > 0.0,
            FaultAction::ClockSkew { skew, .. } => *skew != 0,
            FaultAction::Heal | FaultAction::DelayClear | FaultAction::Restart(_) => false,
        }
    }
}

/// A [`FaultAction`] bound to its firing time.
#[derive(Clone, Debug)]
pub struct FaultEvent {
    /// Virtual time at which the fault applies.
    pub at: Micros,
    /// What happens.
    pub action: FaultAction,
}

/// A replayable script of timed faults.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Appends an action at `at` (builder style).
    pub fn at(mut self, at: Micros, action: FaultAction) -> FaultSchedule {
        self.events.push(FaultEvent { at, action });
        self
    }

    /// A symmetric bipartition of `n` nodes at `split`, healed later.
    pub fn bipartition(self, n: usize, split: usize, from: Micros, until: Micros) -> FaultSchedule {
        self.at(
            from,
            FaultAction::Partition(PartitionSpec::bipartition(n, split)),
        )
        .at(until, FaultAction::Heal)
    }

    /// An asymmetric partition (second group cannot reach the first),
    /// healed later.
    pub fn asymmetric_partition(
        self,
        n: usize,
        split: usize,
        from: Micros,
        until: Micros,
    ) -> FaultSchedule {
        self.at(
            from,
            FaultAction::Partition(PartitionSpec::asymmetric(n, split)),
        )
        .at(until, FaultAction::Heal)
    }

    /// A packet-loss window at rate `prob`.
    pub fn loss_window(self, prob: f64, from: Micros, until: Micros) -> FaultSchedule {
        self.at(from, FaultAction::Loss(prob))
            .at(until, FaultAction::Loss(0.0))
    }

    /// Crash `node` at `from`, restart it at `until`.
    pub fn crash_restart(self, node: usize, from: Micros, until: Micros) -> FaultSchedule {
        self.at(from, FaultAction::Crash(node))
            .at(until, FaultAction::Restart(node))
    }

    /// A schedule from an explicit event list (the shrinker and the
    /// reproducer parser build schedules this way).
    pub fn from_events(events: Vec<FaultEvent>) -> FaultSchedule {
        FaultSchedule { events }
    }

    /// The scheduled events in insertion order (not yet time-sorted).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The events in schedule order (stable by time, then insertion).
    pub fn into_events(self) -> Vec<FaultEvent> {
        let mut events: Vec<(usize, FaultEvent)> = self.events.into_iter().enumerate().collect();
        events.sort_by_key(|&(i, ref e)| (e.at, i));
        events.into_iter().map(|(_, e)| e).collect()
    }

    /// The instant the last scheduled event fires — heals and restarts
    /// included. After this point the schedule injects nothing more, so
    /// recovery-time bounds start here. (This used to be misnamed
    /// `last_fault_clear`; see [`FaultSchedule::last_fault_onset`] for
    /// the last time a *disturbance* is introduced.)
    pub fn last_event_at(&self) -> Micros {
        self.events.iter().map(|e| e.at).max().unwrap_or(0)
    }

    /// The instant the last fault *onset* fires — the last partition,
    /// loss window, delay spike, crash, or nonzero skew. Heals,
    /// restarts, and other clearing actions scheduled later do not
    /// count: they end disturbances rather than introduce them.
    pub fn last_fault_onset(&self) -> Micros {
        self.events
            .iter()
            .filter(|e| e.action.is_onset())
            .map(|e| e.at)
            .max()
            .unwrap_or(0)
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks the schedule is well formed for a network of `n_users`
    /// nodes. The fuzz generator only emits schedules that pass this,
    /// and every shrink step must keep passing it.
    ///
    /// Rejected shapes:
    /// - crash / restart / skew of a node index `>= n_users`,
    /// - restarting a node that is not crashed (restart-before-crash),
    /// - crashing a node that is already down (double-crash),
    /// - a partition whose group map does not cover exactly `n_users`
    ///   nodes, or whose blocked pairs name groups no node belongs to,
    /// - a loss probability outside `[0, 1]` (or NaN),
    /// - a delay spike with a negative or non-finite factor.
    ///
    /// # Errors
    ///
    /// The first violation found, in schedule order.
    pub fn validate(&self, n_users: usize) -> Result<(), ScheduleError> {
        let mut crashed = vec![false; n_users];
        for e in self.clone().into_events() {
            match &e.action {
                FaultAction::Partition(spec) => {
                    if spec.group_of.len() != n_users {
                        return Err(ScheduleError::PartitionSize {
                            at: e.at,
                            got: spec.group_of.len(),
                            expected: n_users,
                        });
                    }
                    for &(a, b) in &spec.blocked {
                        if !spec.group_of.contains(&a) || !spec.group_of.contains(&b) {
                            return Err(ScheduleError::PartitionUnknownGroup {
                                at: e.at,
                                pair: (a, b),
                            });
                        }
                    }
                }
                FaultAction::Loss(p) => {
                    if !p.is_finite() || !(0.0..=1.0).contains(p) {
                        return Err(ScheduleError::LossOutOfRange { at: e.at, prob: *p });
                    }
                }
                FaultAction::DelaySpike { factor, .. } => {
                    if !factor.is_finite() || *factor < 0.0 {
                        return Err(ScheduleError::BadDelayFactor {
                            at: e.at,
                            factor: *factor,
                        });
                    }
                }
                FaultAction::Crash(i) => {
                    if *i >= n_users {
                        return Err(ScheduleError::NodeOutOfRange { at: e.at, node: *i });
                    }
                    if crashed[*i] {
                        return Err(ScheduleError::DoubleCrash { at: e.at, node: *i });
                    }
                    crashed[*i] = true;
                }
                FaultAction::Restart(i) => {
                    if *i >= n_users {
                        return Err(ScheduleError::NodeOutOfRange { at: e.at, node: *i });
                    }
                    if !crashed[*i] {
                        return Err(ScheduleError::RestartBeforeCrash { at: e.at, node: *i });
                    }
                    crashed[*i] = false;
                }
                FaultAction::ClockSkew { node, .. } => {
                    if *node >= n_users {
                        return Err(ScheduleError::NodeOutOfRange {
                            at: e.at,
                            node: *node,
                        });
                    }
                }
                FaultAction::Heal | FaultAction::DelayClear => {}
            }
        }
        Ok(())
    }
}

/// Why a schedule failed [`FaultSchedule::validate`].
#[derive(Clone, Debug, PartialEq)]
pub enum ScheduleError {
    /// A crash/restart/skew names a node index outside `0..n_users`.
    NodeOutOfRange {
        /// When the offending event fires.
        at: Micros,
        /// The out-of-range node index.
        node: usize,
    },
    /// A node is crashed while already down.
    DoubleCrash {
        /// When the offending event fires.
        at: Micros,
        /// The doubly-crashed node.
        node: usize,
    },
    /// A node is restarted without a preceding crash.
    RestartBeforeCrash {
        /// When the offending event fires.
        at: Micros,
        /// The node restarted while live.
        node: usize,
    },
    /// A partition's group map does not cover the node population.
    PartitionSize {
        /// When the offending event fires.
        at: Micros,
        /// Nodes the partition's group map covers.
        got: usize,
        /// Nodes in the network.
        expected: usize,
    },
    /// A partition blocks a group no node belongs to.
    PartitionUnknownGroup {
        /// When the offending event fires.
        at: Micros,
        /// The blocked pair naming an unknown group.
        pair: (u8, u8),
    },
    /// A loss probability outside `[0, 1]`.
    LossOutOfRange {
        /// When the offending event fires.
        at: Micros,
        /// The offending probability.
        prob: f64,
    },
    /// A delay spike with a negative or non-finite factor.
    BadDelayFactor {
        /// When the offending event fires.
        at: Micros,
        /// The offending factor.
        factor: f64,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::NodeOutOfRange { at, node } => {
                write!(f, "t={at}: node {node} out of range")
            }
            ScheduleError::DoubleCrash { at, node } => {
                write!(f, "t={at}: node {node} crashed while already down")
            }
            ScheduleError::RestartBeforeCrash { at, node } => {
                write!(f, "t={at}: node {node} restarted without a crash")
            }
            ScheduleError::PartitionSize { at, got, expected } => {
                write!(
                    f,
                    "t={at}: partition covers {got} nodes, expected {expected}"
                )
            }
            ScheduleError::PartitionUnknownGroup { at, pair } => {
                write!(f, "t={at}: partition blocks unknown group pair {pair:?}")
            }
            ScheduleError::LossOutOfRange { at, prob } => {
                write!(f, "t={at}: loss probability {prob} outside [0, 1]")
            }
            ScheduleError::BadDelayFactor { at, factor } => {
                write!(f, "t={at}: delay factor {factor} invalid")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_orders_by_time_then_insertion() {
        let s = FaultSchedule::new()
            .at(30, FaultAction::Heal)
            .at(10, FaultAction::Loss(0.5))
            .at(30, FaultAction::Loss(0.0))
            .at(20, FaultAction::Crash(1));
        assert_eq!(s.last_event_at(), 30);
        let events = s.into_events();
        let times: Vec<Micros> = events.iter().map(|e| e.at).collect();
        assert_eq!(times, vec![10, 20, 30, 30]);
        // Ties preserve insertion order: Heal before Loss(0.0).
        assert!(matches!(events[2].action, FaultAction::Heal));
        assert!(matches!(events[3].action, FaultAction::Loss(_)));
    }

    #[test]
    fn builders_expand_to_paired_events() {
        let s = FaultSchedule::new()
            .bipartition(8, 4, 100, 200)
            .crash_restart(3, 150, 250)
            .loss_window(0.3, 120, 180);
        assert_eq!(s.len(), 6);
        assert_eq!(s.last_event_at(), 250);
    }

    #[test]
    fn last_onset_excludes_clearing_actions() {
        // Crash at 150 is the last disturbance; the restart at 250, the
        // heal at 200, and the loss clear at 180 only end disturbances.
        let s = FaultSchedule::new()
            .bipartition(8, 4, 100, 200)
            .crash_restart(3, 150, 250)
            .loss_window(0.3, 120, 180);
        assert_eq!(s.last_fault_onset(), 150);
        assert_eq!(s.last_event_at(), 250);
        // A late skew onset counts; clearing it back to zero does not.
        let s = s
            .at(
                260,
                FaultAction::ClockSkew {
                    node: 1,
                    skew: -500,
                },
            )
            .at(300, FaultAction::ClockSkew { node: 1, skew: 0 });
        assert_eq!(s.last_fault_onset(), 260);
        assert_eq!(s.last_event_at(), 300);
    }

    #[test]
    fn validate_accepts_well_formed_schedules() {
        let s = FaultSchedule::new()
            .bipartition(8, 4, 100, 200)
            .crash_restart(3, 150, 250)
            .loss_window(0.3, 120, 180)
            .at(
                50,
                FaultAction::ClockSkew {
                    node: 7,
                    skew: -300,
                },
            )
            .at(
                60,
                FaultAction::DelaySpike {
                    factor: 2.0,
                    extra: 1000,
                },
            )
            .at(90, FaultAction::DelayClear);
        assert_eq!(s.validate(8), Ok(()));
        // A node may crash again after its restart.
        let s = FaultSchedule::new()
            .crash_restart(1, 10, 20)
            .crash_restart(1, 30, 40);
        assert_eq!(s.validate(4), Ok(()));
        // A crash without a restart is legal (the node stays down).
        assert_eq!(
            FaultSchedule::new()
                .at(5, FaultAction::Crash(0))
                .validate(2),
            Ok(())
        );
    }

    #[test]
    fn validate_rejects_malformed_schedules() {
        // Restart before crash.
        assert!(matches!(
            FaultSchedule::new()
                .at(10, FaultAction::Restart(1))
                .validate(4),
            Err(ScheduleError::RestartBeforeCrash { node: 1, .. })
        ));
        // Double crash of a node already down (checked in *time* order,
        // even when inserted out of order).
        assert!(matches!(
            FaultSchedule::new()
                .at(20, FaultAction::Crash(2))
                .at(10, FaultAction::Crash(2))
                .validate(4),
            Err(ScheduleError::DoubleCrash { node: 2, .. })
        ));
        // Node index out of range.
        assert!(matches!(
            FaultSchedule::new()
                .at(10, FaultAction::Crash(4))
                .validate(4),
            Err(ScheduleError::NodeOutOfRange { node: 4, .. })
        ));
        assert!(matches!(
            FaultSchedule::new()
                .at(10, FaultAction::ClockSkew { node: 9, skew: 5 })
                .validate(4),
            Err(ScheduleError::NodeOutOfRange { node: 9, .. })
        ));
        // Partition sized for a different population.
        assert!(matches!(
            FaultSchedule::new().bipartition(8, 4, 10, 20).validate(6),
            Err(ScheduleError::PartitionSize {
                got: 8,
                expected: 6,
                ..
            })
        ));
        // Partition blocking a group no node belongs to.
        assert!(matches!(
            FaultSchedule::new()
                .at(
                    10,
                    FaultAction::Partition(crate::network::PartitionSpec {
                        group_of: vec![0, 0, 0, 0],
                        blocked: vec![(0, 3)],
                    })
                )
                .validate(4),
            Err(ScheduleError::PartitionUnknownGroup { pair: (0, 3), .. })
        ));
        // Loss probability out of range / NaN.
        assert!(matches!(
            FaultSchedule::new()
                .at(10, FaultAction::Loss(1.5))
                .validate(4),
            Err(ScheduleError::LossOutOfRange { .. })
        ));
        assert!(matches!(
            FaultSchedule::new()
                .at(10, FaultAction::Loss(f64::NAN))
                .validate(4),
            Err(ScheduleError::LossOutOfRange { .. })
        ));
        // Negative delay factor.
        assert!(matches!(
            FaultSchedule::new()
                .at(
                    10,
                    FaultAction::DelaySpike {
                        factor: -1.0,
                        extra: 0
                    }
                )
                .validate(4),
            Err(ScheduleError::BadDelayFactor { .. })
        ));
    }
}
