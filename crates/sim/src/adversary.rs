//! Adversarial node behaviours (§10.4 and the safety experiments).
//!
//! The paper's misbehaving-user experiment (Figure 8) forces the
//! highest-priority proposer to equivocate — one version of the block to
//! half its peers, another to the rest — while malicious committee members
//! vote for both versions. [`MaliciousNode`] implements exactly that: it
//! runs the honest protocol internally (so it stays in sync and holds real
//! stake), but rewrites its outgoing traffic.

use algorand_ba::VoteMessage;
use algorand_core::{BlockMessage, Node, PriorityMessage, WireMessage};
use algorand_crypto::Keypair;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// How an outgoing message should be distributed.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)] // Moved once from node to transport.
pub enum Outgoing {
    /// Gossip normally to all peers.
    Broadcast(WireMessage),
    /// Send the first message to even-indexed peers and the second to
    /// odd-indexed peers (the equivocation split).
    Split(WireMessage, WireMessage),
}

/// State shared by all malicious nodes (they collude, §10.4).
///
/// Behind `Arc<Mutex>` so malicious nodes can live on DES worker
/// threads; the engine keeps every malicious node in one work unit, so
/// coalition state is always mutated in canonical event order and runs
/// stay deterministic at any worker count.
#[derive(Default)]
pub struct AdversaryShared {
    /// Per round: the pair of equivocated block hashes, once some malicious
    /// proposer has produced them.
    pub equivocations: HashMap<u64, ([u8; 32], [u8; 32])>,
    /// Block bodies suppressed by withholding proposers (attack-coverage
    /// evidence for the §6 worst-case tests).
    pub withheld_blocks: u64,
}

/// Which attack a malicious node mounts.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AdversaryKind {
    /// §10.4: equivocate blocks and votes across peer halves.
    #[default]
    Equivocator,
    /// §6's worst-case proposer: advertise a priority but withhold the
    /// block body, forcing honest users to burn λ_block and fall back to
    /// the empty block.
    Withholder,
}

/// A colluding malicious user.
pub struct MaliciousNode {
    inner: Node,
    keypair: Keypair,
    kind: AdversaryKind,
    shared: Arc<Mutex<AdversaryShared>>,
}

impl MaliciousNode {
    /// Wraps an honest node implementation with malicious output handling.
    ///
    /// `keypair` must be the same keypair `inner` runs with: the twin
    /// messages are forged under the node's real identity.
    pub fn new(
        inner: Node,
        keypair: Keypair,
        shared: Arc<Mutex<AdversaryShared>>,
    ) -> MaliciousNode {
        Self::with_kind(inner, keypair, AdversaryKind::Equivocator, shared)
    }

    /// Wraps with an explicit attack flavour.
    pub fn with_kind(
        inner: Node,
        keypair: Keypair,
        kind: AdversaryKind,
        shared: Arc<Mutex<AdversaryShared>>,
    ) -> MaliciousNode {
        debug_assert_eq!(inner.public_key(), keypair.pk);
        MaliciousNode {
            inner,
            keypair,
            kind,
            shared,
        }
    }

    /// Read-only access to the inner protocol state.
    pub fn inner(&self) -> &Node {
        &self.inner
    }

    /// Mutable access (e.g. to submit transactions).
    pub fn inner_mut(&mut self) -> &mut Node {
        &mut self.inner
    }

    /// Starts the node, rewriting outputs maliciously.
    pub fn start(&mut self, now: u64) -> Vec<Outgoing> {
        let outputs = self.inner.start(now);
        self.rewrite(outputs)
    }

    /// Delivers a message, rewriting outputs maliciously.
    pub fn on_message(&mut self, msg: &WireMessage, now: u64) -> Vec<Outgoing> {
        let outputs = self.inner.on_message(msg, now);
        self.rewrite(outputs)
    }

    /// Ticks the node, rewriting outputs maliciously.
    pub fn on_tick(&mut self, now: u64) -> Vec<Outgoing> {
        let outputs = self.inner.on_tick(now);
        self.rewrite(outputs)
    }

    /// The next deadline of the inner node.
    pub fn next_deadline(&self) -> Option<u64> {
        self.inner.next_deadline()
    }

    fn rewrite(&mut self, outputs: Vec<WireMessage>) -> Vec<Outgoing> {
        if self.kind == AdversaryKind::Withholder {
            // Advertise our proposals but never send the block body; the
            // inner node otherwise behaves honestly (it still votes — a
            // pure withholder loses nothing by voting its own ghost block,
            // which no honest user will ever certify).
            return outputs
                .into_iter()
                .filter(|m| {
                    let withheld = matches!(m, WireMessage::Block(b)
                        if b.block.proposer == Some(self.inner.public_key()));
                    if withheld {
                        self.shared.lock().expect("adversary lock").withheld_blocks += 1;
                    }
                    !withheld
                })
                .map(Outgoing::Broadcast)
                .collect();
        }
        // First pass: if we proposed a block in this batch, build the
        // equivocated twin and record the pair for the whole coalition.
        let mut twin: Option<(BlockMessage, PriorityMessage, PriorityMessage)> = None;
        for msg in &outputs {
            let WireMessage::Block(b) = msg else { continue };
            if b.block.proposer != Some(self.inner.public_key()) {
                continue;
            }
            let mut other = b.block.clone();
            // A different payload makes a different block hash; the seed,
            // proposer, and transactions stay identical so both versions
            // validate.
            other.payload.push(0xa5);
            let other_hash = other.hash();
            let round = other.round;
            self.shared
                .lock()
                .expect("adversary lock")
                .equivocations
                .insert(round, (b.block.hash(), other_hash));
            let prio_a = PriorityMessage::sign(
                &self.keypair,
                round,
                b.sorthash,
                b.sort_proof,
                b.block.hash(),
            );
            let prio_b =
                PriorityMessage::sign(&self.keypair, round, b.sorthash, b.sort_proof, other_hash);
            twin = Some((
                BlockMessage {
                    block: other,
                    sorthash: b.sorthash,
                    sort_proof: b.sort_proof,
                },
                prio_a,
                prio_b,
            ));
        }
        let mut out = Vec::new();
        for msg in outputs {
            match msg {
                WireMessage::Block(b) if twin.is_some() => {
                    let (other, _, _) = twin.as_ref().expect("checked");
                    out.push(Outgoing::Split(
                        WireMessage::Block(b),
                        WireMessage::Block(other.clone()),
                    ));
                }
                WireMessage::Priority(_) if twin.is_some() => {
                    let (_, pa, pb) = twin.as_ref().expect("checked");
                    out.push(Outgoing::Split(
                        WireMessage::Priority(pa.clone()),
                        WireMessage::Priority(pb.clone()),
                    ));
                }
                WireMessage::Vote(v) => out.push(self.rewrite_vote(v)),
                other => out.push(Outgoing::Broadcast(other)),
            }
        }
        out
    }

    /// Committee votes: vote for *both* equivocated blocks, one to each
    /// half of the network.
    fn rewrite_vote(&self, v: VoteMessage) -> Outgoing {
        let shared = self.shared.lock().expect("adversary lock");
        let Some((a, b)) = shared.equivocations.get(&v.round) else {
            return Outgoing::Broadcast(WireMessage::Vote(v));
        };
        // Only rewrite votes about one of the twin blocks; votes for the
        // empty hash pass through unchanged.
        if v.value != *a && v.value != *b {
            return Outgoing::Broadcast(WireMessage::Vote(v));
        }
        let vote_a = VoteMessage::sign(
            &self.keypair,
            v.round,
            v.step,
            v.sorthash,
            v.sort_proof,
            v.prev_hash,
            *a,
        );
        let vote_b = VoteMessage::sign(
            &self.keypair,
            v.round,
            v.step,
            v.sorthash,
            v.sort_proof,
            v.prev_hash,
            *b,
        );
        Outgoing::Split(WireMessage::Vote(vote_a), WireMessage::Vote(vote_b))
    }
}
