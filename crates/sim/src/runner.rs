//! The simulation runner: N Algorand users over a gossip network in
//! virtual time — the stand-in for the paper's 1,000-VM EC2 testbed.

use crate::adversary::{AdversaryKind, AdversaryShared, MaliciousNode, Outgoing};
use crate::event::{Event, EventQueue, Micros};
use crate::faults::{FaultAction, FaultEvent, FaultSchedule};
use crate::metrics::{round_stats, Percentiles, RoundStats};
use crate::network::{Filter, NetConfig, Network};
use algorand_ba::{RoundWeights, StepKind, VoteContext};
use algorand_core::{
    AlgorandParams, Node, PipelineStats, PipelineVerifier, RoundRecord, VerifyJob, VerifyPool,
    WireMessage,
};
use algorand_crypto::rng::Rng;
use algorand_crypto::Keypair;
use algorand_gossip::{RelayDecision, RelayMetrics, RelayState, Topology};
use algorand_ledger::seed::selection_seed_round;
use algorand_ledger::{Blockchain, Transaction};
use algorand_obs::{
    stable_id, write_jsonl, Histogram, MonitorConfig, MonitorHandle, MonitorReport, Registry,
    SpanKind, TraceEvent, Tracer, NO_NODE,
};
use algorand_sortition::binomial::binomial_cdf;
use algorand_txpool::PoolMetrics;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;

/// Verification jobs buffered before a batch is handed to the pool.
const PREWARM_BATCH: usize = 32;

/// Genesis seed shared by every node (and by restarts). Public so the
/// real-process harness (`crates/node`) can boot the *same* genesis and
/// cross-check chain digests against the simulator.
pub const GENESIS_SEED: [u8; 32] = [0x47u8; 32];

/// Bound on buffered trace events per run (~100 bytes each); past it
/// events are counted as dropped rather than growing memory unbounded.
const TRACE_CAP: usize = 1 << 21;

/// Configuration for one simulation.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of users.
    pub n_users: usize,
    /// Number of *malicious* users (taken from the end of the index
    /// space); their stake is the same as everyone else's.
    pub n_malicious: usize,
    /// The attack the malicious users mount.
    pub adversary_kind: AdversaryKind,
    /// Protocol parameters (typically [`AlgorandParams::scaled`]).
    pub params: AlgorandParams,
    /// Transport configuration.
    pub net: NetConfig,
    /// Gossip out-degree (paper: 4).
    pub out_degree: usize,
    /// Synthetic payload bytes per proposed block.
    pub payload_bytes: usize,
    /// Open-loop workload: transactions injected per second across the
    /// network (0 disables the traffic source).
    pub tx_rate: f64,
    /// Total transactions the workload injects before going quiet.
    pub tx_total: usize,
    /// Byte budget for the transaction list of each proposed block.
    pub block_tx_bytes: usize,
    /// Currency units per user (equal split, as in §10).
    pub stake_per_user: u64,
    /// Relay every block regardless of priority (ablation of §6's
    /// highest-priority discard rule; the paper behaviour is `false`).
    pub relay_all_blocks: bool,
    /// How often each user re-draws its gossip peers (§8.4: "Algorand
    /// replaces gossip peers each round", which also heals nodes stuck in
    /// a disconnected component). 0 disables churn.
    pub peer_churn_interval: u64,
    /// Seed for topology and deterministic keys.
    pub seed: u64,
    /// Worker threads for the parallel verify pool (0 = serial; behavior
    /// is byte-identical either way — the pool only pre-warms the shared
    /// verification cache ahead of each delivery, never reordering
    /// events).
    pub verify_pool_workers: usize,
    /// Record structured trace spans into the bounded in-memory buffer
    /// (exported with [`Simulation::export_trace`]). Tracing is
    /// write-only and consumes no randomness, so it cannot change the
    /// simulation's behavior: same seed ⇒ same chain digest either way.
    pub trace: bool,
    /// Attach the online protocol-invariant monitor to the trace stream
    /// (requires `trace`; see [`Simulation::monitor_report`]). The
    /// monitor observes events before the buffer cap, so a truncated
    /// trace still gets checked end to end.
    pub monitor: bool,
}

impl SimConfig {
    /// A sensible default configuration for `n` users.
    pub fn new(n: usize) -> SimConfig {
        SimConfig {
            n_users: n,
            n_malicious: 0,
            adversary_kind: AdversaryKind::default(),
            params: AlgorandParams::scaled(n),
            net: NetConfig::default(),
            out_degree: 4,
            payload_bytes: 0,
            tx_rate: 0.0,
            tx_total: 0,
            block_tx_bytes: 1 << 20,
            stake_per_user: 10,
            relay_all_blocks: false,
            // Default: re-draw peers roughly once per expected round.
            peer_churn_interval: 15_000_000,
            seed: 1,
            verify_pool_workers: 0,
            trace: false,
            monitor: false,
        }
    }
}

/// Bytes sent per wire-message kind across every transmission of a run
/// (announcement-sized block exchanges count under their kind).
#[derive(Clone, Copy, Default)]
struct KindBytes {
    vote: u64,
    priority: u64,
    block: u64,
    fork: u64,
    tx: u64,
    catchup: u64,
}

impl KindBytes {
    /// `(label, bytes)` pairs in the fixed export order that keeps the
    /// trace byte-stable.
    fn summary(&self) -> [(&'static str, u64); 6] {
        [
            ("bytes_vote", self.vote),
            ("bytes_priority", self.priority),
            ("bytes_block", self.block),
            ("bytes_fork", self.fork),
            ("bytes_tx", self.tx),
            ("bytes_catchup", self.catchup),
        ]
    }
}

/// Smallest `k` whose binomial upper tail `P[Binomial(W, τ/W) > k]` falls
/// below ~1e-12 — the §7.5 bound the monitor enforces on the
/// deduplicated committee weight of any (round, step).
fn committee_upper_bound(total_weight: u64, tau: f64) -> u64 {
    let w = total_weight.max(1);
    let p = (tau / w as f64).min(1.0);
    let mut k = (tau as u64).min(w);
    while k < w && 1.0 - binomial_cdf(k, w, p) >= 1e-12 {
        k += 1;
    }
    k
}

enum Slot {
    Honest(Box<Node>),
    Malicious(Box<MaliciousNode>),
}

/// A message in flight, with precomputed id/slot/size so relaying costs
/// O(1) per hop.
pub struct SimMsg {
    wire: WireMessage,
    id: [u8; 32],
    relay_slot: Option<([u8; 32], u64, u32)>,
    size: usize,
    /// Large bodies (blocks) are transferred pull-style: if the receiver
    /// already announced holding the content, only an announcement-sized
    /// exchange crosses the wire. Mirrors TCP gossip implementations
    /// (and Bitcoin's inv/getdata), whose measured cost the paper cites:
    /// ~2 body copies per node rather than one per edge.
    pull_based: bool,
}

/// Bytes for a block announcement (hash + round + priority material).
const ANNOUNCE_SIZE: usize = 300;

/// One injected workload transaction, for latency accounting.
#[derive(Clone, Copy, Debug)]
pub struct TxRecord {
    /// The transaction hash.
    pub id: [u8; 32],
    /// Index of the (honest) sending user.
    pub sender: usize,
    /// Virtual time the transaction entered the sender's node.
    pub submitted: Micros,
}

/// The open-loop traffic source: random honest-to-honest payments at a
/// fixed rate.
///
/// It tracks a conservative `spendable` balance per user — genesis stake
/// minus everything already injected, never counting in-flight income —
/// so every transaction it emits is guaranteed to stay applicable
/// whenever it commits, as long as each sender's nonces commit in order
/// (which per-sender nonce chains enforce).
struct Workload {
    rng: Rng,
    spendable: Vec<u64>,
    nonces: Vec<u64>,
    injected: Vec<TxRecord>,
    remaining: usize,
    interval: Micros,
}

/// End-to-end transaction metrics from one workload run.
#[derive(Clone, Copy, Debug)]
pub struct TxStats {
    /// Transactions the workload injected.
    pub injected: usize,
    /// Injected transactions that appear in the finalized/agreed chain.
    pub committed: usize,
    /// Chain slots holding a transaction hash more than once (must be 0).
    pub duplicate_commits: usize,
    /// Committed transactions per virtual second, submission of the first
    /// to commit of the last.
    pub tx_per_sec: f64,
    /// Per-transaction finalization latency in seconds (submission at the
    /// sender to round completion at the sender), if any committed.
    pub latency: Option<Percentiles>,
}

impl SimMsg {
    fn new(wire: WireMessage) -> Arc<SimMsg> {
        let pull_based = matches!(wire, WireMessage::Block(_) | WireMessage::ForkProposal(_));
        Arc::new(SimMsg {
            id: wire.message_id(),
            relay_slot: wire.relay_slot(),
            size: wire.wire_size(),
            wire,
            pull_based,
        })
    }
}

/// Counters a node accumulated before a crash/restart cycle replaced
/// it. Aggregating reports add these exactly once per node id, so a
/// crashed-then-restarted node's history is neither lost (the old bug:
/// the replacement node restarts every counter at zero) nor
/// double-counted (stats are folded in only when the old node object is
/// dropped at restart, never while it still sits in its slot).
#[derive(Default)]
struct NodeCarry {
    pipeline: PipelineStats,
    records: Vec<RoundRecord>,
    timeout_escalations: u64,
    watchdog_catchups: usize,
    recoveries_completed: usize,
    catchups_applied: usize,
}

/// The simulation.
pub struct Simulation {
    cfg: SimConfig,
    nodes: Vec<Slot>,
    keypairs: Vec<Keypair>,
    topology: Topology,
    relay: Vec<RelayState>,
    net: Network,
    queue: EventQueue<Arc<SimMsg>>,
    next_wake: Vec<Micros>,
    next_churn: Micros,
    churn_epoch: u64,
    verifier: Arc<PipelineVerifier>,
    pool: VerifyPool,
    /// Verification jobs awaiting a batch hand-off to the pool.
    pending_verify: Vec<VerifyJob>,
    /// Message ids already queued for pre-warming (first transmit wins).
    prewarmed: HashSet<[u8; 32]>,
    /// Weight snapshots reused across a round's pre-warm jobs.
    prewarm_weights: HashMap<u64, Arc<RoundWeights>>,
    adversary: Rc<RefCell<AdversaryShared>>,
    workload: Option<Workload>,
    started: bool,
    /// Scripted faults, indexed by queued `Event::Fault`s.
    faults: Vec<FaultEvent>,
    /// Which nodes are currently crashed (down, not processing events).
    crashed: Vec<bool>,
    /// Durable-state snapshots of crashed nodes, for restart.
    snapshots: Vec<Option<Vec<u8>>>,
    /// Per-node clock skew: the node's local clock reads `now + skew`.
    clock_skew: Vec<Micros>,
    restarts: usize,
    partitions_activated: usize,
    /// The process-wide metrics registry every node publishes into.
    registry: Registry,
    /// The shared trace buffer (inert unless `cfg.trace`).
    tracer: Tracer,
    /// The online invariant checker fed from the tracer's observer slot
    /// (present only when `cfg.monitor`).
    monitor: Option<MonitorHandle>,
    /// Per-kind transmitted-byte totals, exported with the trace.
    kind_bytes: KindBytes,
    /// Counters carried over from nodes replaced by crash/restart,
    /// keyed by node id.
    carry: HashMap<usize, NodeCarry>,
}

/// Aggregated staged-pipeline counters for one simulation run.
#[derive(Clone, Copy, Debug)]
pub struct PipelineReport {
    /// Per-stage counters summed over all honest nodes.
    pub stages: PipelineStats,
    /// Hits on the process-wide verification cache.
    pub cache_hits: u64,
    /// Misses (full verifications) on the process-wide cache.
    pub cache_misses: u64,
    /// Distinct vote verifications performed.
    pub unique_votes: usize,
    /// Distinct priority/block/fork-proposal verifications performed.
    pub unique_proposals: usize,
    /// Verify-pool worker threads (0 = serial).
    pub pool_workers: usize,
}

impl std::fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "pipeline: ingested={} rejected_ingest={} buffered_early={} buffered_future={}",
            self.stages.ingested,
            self.stages.rejected_ingest,
            self.stages.buffered_early,
            self.stages.buffered_future,
        )?;
        writeln!(
            f,
            "verify:   verified={} rejected={} cache_hits={} cache_misses={} unique_votes={} unique_proposals={}",
            self.stages.verified,
            self.stages.rejected_verify,
            self.cache_hits,
            self.cache_misses,
            self.unique_votes,
            self.unique_proposals,
        )?;
        write!(
            f,
            "emit:     emitted={} pool_workers={}",
            self.stages.emitted, self.pool_workers
        )
    }
}

/// Fault-injection and recovery counters for one simulation run, the
/// observability half of the chaos harness.
#[derive(Clone, Copy, Debug)]
pub struct FaultReport {
    /// Partitions installed by the fault schedule.
    pub partitions_activated: usize,
    /// Node restarts completed.
    pub restarts: usize,
    /// Sends dropped by the caller-installed filter.
    pub dropped_by_filter: u64,
    /// Sends dropped by scripted partitions.
    pub dropped_by_partition: u64,
    /// Sends dropped by random packet loss.
    pub dropped_by_loss: u64,
    /// BA⋆ step-timeout escalations summed over honest nodes.
    pub timeout_escalations: u64,
    /// Watchdog-initiated catch-up requests summed over honest nodes.
    pub watchdog_catchups: usize,
    /// §8.2 fork recoveries completed, summed over honest nodes.
    pub recoveries_completed: usize,
    /// Rounds adopted via §8.3 catch-up, summed over honest nodes.
    pub catchups_applied: usize,
}

impl std::fmt::Display for FaultReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "faults:   partitions={} restarts={} dropped(filter/partition/loss)={}/{}/{}",
            self.partitions_activated,
            self.restarts,
            self.dropped_by_filter,
            self.dropped_by_partition,
            self.dropped_by_loss,
        )?;
        write!(
            f,
            "recovery: timeout_escalations={} watchdog_catchups={} fork_recoveries={} catchups={}",
            self.timeout_escalations,
            self.watchdog_catchups,
            self.recoveries_completed,
            self.catchups_applied,
        )
    }
}

impl Simulation {
    /// Builds the simulation: deterministic keys, equal genesis stake, a
    /// weighted gossip topology, and one node per user.
    pub fn new(cfg: SimConfig) -> Simulation {
        let keypairs: Vec<Keypair> = (0..cfg.n_users)
            .map(|i| {
                let mut seed = [0u8; 32];
                seed[..8].copy_from_slice(&(cfg.seed ^ 0x5eed).to_le_bytes());
                seed[8..16].copy_from_slice(&(i as u64 + 1).to_le_bytes());
                Keypair::from_seed(seed)
            })
            .collect();
        let alloc: Vec<_> = keypairs
            .iter()
            .map(|k| (k.pk, cfg.stake_per_user))
            .collect();
        let genesis_seed = GENESIS_SEED;
        let verifier = Arc::new(PipelineVerifier::new());
        let adversary = Rc::new(RefCell::new(AdversaryShared::default()));
        let registry = Registry::new();
        let tracer = if cfg.trace {
            Tracer::bounded(TRACE_CAP)
        } else {
            Tracer::disabled()
        };
        let monitor = (cfg.monitor && cfg.trace).then(|| {
            let total_weight = cfg.n_users as u64 * cfg.stake_per_user;
            let handle = MonitorHandle::new(MonitorConfig {
                committee_hi_step: committee_upper_bound(total_weight, cfg.params.ba.tau_step),
                committee_hi_final: committee_upper_bound(total_weight, cfg.params.ba.tau_final),
                max_future_gap: algorand_core::ingest::FUTURE_ROUND_WINDOW as u32,
                max_future_buffer: algorand_core::round::FutureVotes::MAX_TOTAL as u64,
                honest_nodes: (cfg.n_users - cfg.n_malicious) as u32,
            });
            tracer.set_observer(handle.observer());
            handle
        });
        let pool_metrics = PoolMetrics::registered(&registry);
        let n_honest = cfg.n_users - cfg.n_malicious;
        let nodes: Vec<Slot> = (0..cfg.n_users)
            .map(|i| {
                let chain = Blockchain::new(cfg.params.chain, alloc.iter().copied(), genesis_seed);
                let mut node = Node::new(keypairs[i].clone(), chain, cfg.params, verifier.clone());
                node.payload_bytes = cfg.payload_bytes;
                node.block_tx_bytes = cfg.block_tx_bytes;
                node.set_tracer(tracer.clone(), i as u32);
                node.pool.set_metrics(pool_metrics.clone());
                if i < n_honest {
                    Slot::Honest(Box::new(node))
                } else {
                    Slot::Malicious(Box::new(MaliciousNode::with_kind(
                        node,
                        keypairs[i].clone(),
                        cfg.adversary_kind,
                        adversary.clone(),
                    )))
                }
            })
            .collect();
        let mut topo_rng = Rng::seed_from_u64(cfg.seed);
        let weights = vec![cfg.stake_per_user; cfg.n_users];
        let topology = Topology::weighted(cfg.n_users, cfg.out_degree, &weights, &mut topo_rng);
        let relay_metrics = RelayMetrics::registered(&registry);
        let relay = (0..cfg.n_users)
            .map(|_| RelayState::with_metrics(relay_metrics.clone()))
            .collect();
        let net = Network::new(cfg.n_users, cfg.net.clone());
        let workload = (cfg.tx_rate > 0.0 && cfg.tx_total > 0).then(|| Workload {
            rng: Rng::seed_from_u64(cfg.seed ^ 0x7AF0AD),
            spendable: vec![cfg.stake_per_user; n_honest],
            nonces: vec![0; n_honest],
            injected: Vec::with_capacity(cfg.tx_total),
            remaining: cfg.tx_total,
            interval: ((1_000_000.0 / cfg.tx_rate) as Micros).max(1),
        });
        Simulation {
            nodes,
            keypairs,
            topology,
            relay,
            net,
            queue: EventQueue::new(),
            next_wake: vec![u64::MAX; cfg.n_users],
            next_churn: if cfg.peer_churn_interval > 0 {
                cfg.peer_churn_interval
            } else {
                u64::MAX
            },
            churn_epoch: 0,
            verifier,
            pool: VerifyPool::new(cfg.verify_pool_workers),
            pending_verify: Vec::new(),
            prewarmed: HashSet::new(),
            prewarm_weights: HashMap::new(),
            adversary,
            workload,
            faults: Vec::new(),
            crashed: vec![false; cfg.n_users],
            snapshots: (0..cfg.n_users).map(|_| None).collect(),
            clock_skew: vec![0; cfg.n_users],
            restarts: 0,
            partitions_activated: 0,
            registry,
            tracer,
            monitor,
            kind_bytes: KindBytes::default(),
            carry: HashMap::new(),
            cfg,
            started: false,
        }
    }

    /// Installs a network fault filter (partition, targeted DoS).
    pub fn set_network_filter(&mut self, filter: Option<Filter>) {
        self.net.set_filter(filter);
    }

    /// Installs a scripted fault schedule: every event is queued at its
    /// exact virtual instant, interleaving deterministically with message
    /// deliveries and timer wakes. May be called before or during a run;
    /// schedules accumulate.
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        let base = self.faults.len();
        let events = schedule.into_events();
        for (k, e) in events.iter().enumerate() {
            self.queue.schedule(e.at, Event::Fault { idx: base + k });
        }
        self.faults.extend(events);
    }

    /// Whether node `i` is currently crashed.
    pub fn is_crashed(&self, i: usize) -> bool {
        self.crashed[i]
    }

    /// Submits a transaction via node `node`, gossiping it to the network
    /// exactly as a user's client would (§4).
    pub fn submit_transaction(&mut self, node: usize, tx: Transaction) {
        let msg = match &mut self.nodes[node] {
            Slot::Honest(n) => n.submit_transaction(tx),
            Slot::Malicious(m) => m.inner_mut().submit_transaction(tx),
        };
        if let Some(msg) = msg {
            self.dispatch(node, vec![Outgoing::Broadcast(msg)]);
        }
    }

    /// Injects an arbitrary wire message into the network at node `via`,
    /// as if an attacker-controlled peer delivered it. The receiving node
    /// processes it through the normal validation path, and the gossip
    /// relay rules decide whether it spreads.
    pub fn inject_message(&mut self, via: usize, msg: WireMessage) {
        let sim_msg = SimMsg::new(msg);
        let now = self.queue.now();
        self.queue.schedule(
            now,
            Event::Deliver {
                to: via,
                // A self-loop `from` keeps the relay from skipping a peer.
                from: via,
                msg: sim_msg,
            },
        );
    }

    /// The keypair of user `i` (deterministic; useful for crafting
    /// transactions in tests and benches).
    pub fn keypair(&self, i: usize) -> &Keypair {
        &self.keypairs[i]
    }

    /// Admits `txs` directly into every node's mempool, bypassing gossip.
    ///
    /// This models a pre-agreed workload that every deployment loads
    /// identically before round 1 — the fixture the real-process harness
    /// uses to cross-check chain digests: with identical pools at every
    /// proposer, block assembly is a pure function of the chain seed.
    pub fn preload_transactions(&mut self, txs: &[Transaction]) {
        for slot in &mut self.nodes {
            let node = match slot {
                Slot::Honest(n) => n.as_mut(),
                Slot::Malicious(m) => m.inner_mut(),
            };
            let accounts = node.chain().accounts().clone();
            for tx in txs {
                let _ = node.pool.admit(tx.clone(), &accounts);
            }
        }
    }

    /// Starts every node at time 0.
    pub fn start(&mut self) {
        assert!(!self.started, "already started");
        self.started = true;
        for i in 0..self.nodes.len() {
            let outgoing = match &mut self.nodes[i] {
                Slot::Honest(n) => wrap_broadcast(n.start(0)),
                Slot::Malicious(m) => m.start(0),
            };
            self.dispatch(i, outgoing);
            self.reschedule_wake(i);
        }
        if let Some(wl) = &self.workload {
            self.queue.schedule(wl.interval, Event::Inject);
        }
    }

    /// Runs until virtual time `t_end` or until the event queue drains.
    pub fn run_until(&mut self, t_end: Micros) {
        if !self.started {
            self.start();
        }
        while self.queue.next_time().is_some_and(|t| t <= t_end) {
            let (now, event) = self.queue.pop().expect("peeked");
            // §8.4: users periodically replace their gossip peers, which
            // also recovers anyone stranded in a disconnected component.
            if now >= self.next_churn {
                self.churn_epoch += 1;
                self.next_churn = self
                    .next_churn
                    .saturating_add(self.cfg.peer_churn_interval.max(1));
                let mut rng = Rng::seed_from_u64(self.cfg.seed ^ (self.churn_epoch << 32));
                let weights = vec![self.cfg.stake_per_user; self.cfg.n_users];
                self.topology =
                    Topology::weighted(self.cfg.n_users, self.cfg.out_degree, &weights, &mut rng);
            }
            match event {
                Event::Wake { node } => {
                    if self.crashed[node] || self.next_wake[node] > now {
                        continue; // Crashed, or stale (a newer wake exists).
                    }
                    self.next_wake[node] = u64::MAX;
                    let local = self.local_now(node, now);
                    let outgoing = match &mut self.nodes[node] {
                        Slot::Honest(n) => wrap_broadcast(n.on_tick(local)),
                        Slot::Malicious(m) => m.on_tick(local),
                    };
                    self.dispatch(node, outgoing);
                    self.prune_relay(node);
                    self.reschedule_wake(node);
                }
                Event::Deliver { to, from, msg } => {
                    if self.crashed[to] {
                        continue; // In-flight packets to a dead process.
                    }
                    let decision = self.relay[to].classify(msg.id, msg.relay_slot);
                    if decision == RelayDecision::Duplicate {
                        continue;
                    }
                    let now_t = self.local_now(to, now);
                    let outgoing = match &mut self.nodes[to] {
                        Slot::Honest(n) => wrap_broadcast(n.on_message(&msg.wire, now_t)),
                        Slot::Malicious(m) => m.on_message(&msg.wire, now_t),
                    };
                    // §6: honest users discard block bodies that are not
                    // the highest-priority proposal they have seen; a
                    // transaction spreads only while its receiver still
                    // pools it (rejects and evictions die out here).
                    let discard = match (&msg.wire, &self.nodes[to]) {
                        (WireMessage::Block(b), Slot::Honest(n)) => {
                            !self.cfg.relay_all_blocks && !n.should_relay_block(b)
                        }
                        (WireMessage::Transaction(tx), Slot::Honest(n)) => {
                            !n.should_relay_transaction(tx)
                        }
                        // Votes the receiver just found invalid stop here;
                        // the relay consults the shared verify cache
                        // instead of re-verifying.
                        (WireMessage::Vote(v), Slot::Honest(n)) => !n.should_relay_vote(v),
                        _ => false,
                    };
                    if decision == RelayDecision::Relay && !discard {
                        self.forward(to, &msg, Some(from), now_t);
                    }
                    self.dispatch(to, outgoing);
                    self.prune_relay(to);
                    self.reschedule_wake(to);
                }
                Event::Inject => self.inject_next_tx(now),
                Event::Fault { idx } => {
                    let action = self.faults[idx].action.clone();
                    self.apply_fault(action, now);
                }
            }
        }
    }

    /// Runs until every honest node's chain has reached `rounds` rounds,
    /// or until `t_cap` virtual time passes (whichever comes first).
    ///
    /// Progress is judged by chain height, not per-round records: a node
    /// that re-synced via catch-up has the rounds without having measured
    /// them.
    pub fn run_rounds(&mut self, rounds: u64, t_cap: Micros) {
        if !self.started {
            self.start();
        }
        loop {
            let all_done = self.nodes.iter().enumerate().all(|(i, slot)| {
                let node = match slot {
                    Slot::Honest(n) => n.as_ref(),
                    Slot::Malicious(m) => m.inner(),
                };
                // A crashed node cannot make progress; it is not waited on.
                self.crashed[i] || node.chain().tip().round >= rounds
            });
            if all_done {
                return;
            }
            // Advance in one-second slices so the completion check runs
            // periodically without scanning after every event.
            let Some(next) = self.queue.next_time() else {
                return;
            };
            if next > t_cap {
                return;
            }
            self.run_until((next + 1_000_000).min(t_cap));
        }
    }

    /// Per-honest-node round records.
    pub fn honest_records(&self) -> Vec<&[RoundRecord]> {
        self.nodes
            .iter()
            .filter_map(|s| match s {
                Slot::Honest(n) => Some(n.records()),
                Slot::Malicious(_) => None,
            })
            .collect()
    }

    /// Per-honest-node round records *including* those a node measured
    /// before a crash/restart cycle replaced it, deduplicated by round
    /// per node (a record carried from before the crash wins over a
    /// hypothetical re-measurement after it).
    pub fn combined_records(&self) -> Vec<Vec<RoundRecord>> {
        let mut out = Vec::new();
        for (i, slot) in self.nodes.iter().enumerate() {
            let Slot::Honest(n) = slot else { continue };
            let mut seen = HashSet::new();
            let mut recs = Vec::new();
            if let Some(c) = self.carry.get(&i) {
                for r in &c.records {
                    if seen.insert(r.round) {
                        recs.push(*r);
                    }
                }
            }
            for r in n.records() {
                if seen.insert(r.round) {
                    recs.push(*r);
                }
            }
            out.push(recs);
        }
        out
    }

    /// Aggregated stats for one round.
    pub fn round_stats(&self, round: u64) -> Option<RoundStats> {
        let combined = self.combined_records();
        let views: Vec<&[RoundRecord]> = combined.iter().map(|v| v.as_slice()).collect();
        round_stats(&views, round)
    }

    /// Immutable access to an honest node.
    pub fn honest_node(&self, i: usize) -> &Node {
        match &self.nodes[i] {
            Slot::Honest(n) => n,
            Slot::Malicious(m) => m.inner(),
        }
    }

    /// The network (bytes accounting).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Number of distinct vote verifications performed (CPU-cost proxy).
    pub fn unique_verifications(&self) -> usize {
        self.verifier.unique_vote_verifications()
    }

    /// The shared verification stage (process-wide cache).
    pub fn verifier(&self) -> &Arc<PipelineVerifier> {
        &self.verifier
    }

    /// Aggregated staged-pipeline counters across honest nodes plus the
    /// process-wide cache, for the metrics report.
    pub fn pipeline_report(&self) -> PipelineReport {
        let mut stages = PipelineStats::default();
        for slot in &self.nodes {
            let node = match slot {
                Slot::Honest(n) => n.as_ref(),
                Slot::Malicious(m) => m.inner(),
            };
            stages.merge(&node.pipeline_stats());
        }
        // Counters from nodes replaced by crash/restart, once per node id.
        for c in self.carry.values() {
            stages.merge(&c.pipeline);
        }
        PipelineReport {
            stages,
            cache_hits: self.verifier.cache_hits(),
            cache_misses: self.verifier.cache_misses(),
            unique_votes: self.verifier.unique_vote_verifications(),
            unique_proposals: self.verifier.unique_proposal_verifications(),
            pool_workers: self.pool.workers(),
        }
    }

    /// Fault-injection and recovery counters for this run.
    pub fn fault_report(&self) -> FaultReport {
        let mut report = FaultReport {
            partitions_activated: self.partitions_activated,
            restarts: self.restarts,
            dropped_by_filter: self.net.dropped_by_filter(),
            dropped_by_partition: self.net.dropped_by_partition(),
            dropped_by_loss: self.net.dropped_by_loss(),
            timeout_escalations: 0,
            watchdog_catchups: 0,
            recoveries_completed: 0,
            catchups_applied: 0,
        };
        for slot in &self.nodes {
            let Slot::Honest(n) = slot else { continue };
            report.timeout_escalations += n.timeout_escalations();
            report.watchdog_catchups += n.watchdog_catchups();
            report.recoveries_completed += n.recoveries_completed();
            report.catchups_applied += n.catchups_applied();
        }
        // Counters from nodes replaced by crash/restart, once per node id.
        for c in self.carry.values() {
            report.timeout_escalations += c.timeout_escalations;
            report.watchdog_catchups += c.watchdog_catchups;
            report.recoveries_completed += c.recoveries_completed;
            report.catchups_applied += c.catchups_applied;
        }
        report
    }

    /// A digest of every honest node's canonical chain, for the
    /// determinism check: identical `(seed, schedule)` runs must produce
    /// identical digests.
    pub fn chain_digest(&self) -> [u8; 32] {
        let mut acc: Vec<u8> = Vec::new();
        for slot in &self.nodes {
            let Slot::Honest(n) = slot else { continue };
            let chain = n.chain();
            for r in 1..=chain.tip().round {
                if let Some(b) = chain.block_at(r) {
                    acc.extend_from_slice(&b.hash());
                }
            }
            acc.push(0xFF); // Node separator.
        }
        algorand_crypto::sha256_concat(&[b"chain-digest", &acc])
    }

    /// The current virtual time.
    pub fn now(&self) -> Micros {
        self.queue.now()
    }

    /// The configuration this simulation runs with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The shared adversary state (tests inspect recorded equivocations).
    pub fn adversary(&self) -> Rc<RefCell<AdversaryShared>> {
        self.adversary.clone()
    }

    /// The transactions the workload has injected so far.
    pub fn injected_txs(&self) -> &[TxRecord] {
        self.workload.as_ref().map_or(&[], |wl| &wl.injected)
    }

    /// End-to-end transaction metrics for the workload (if one ran).
    ///
    /// Commitment is judged against honest node 0's chain (all honest
    /// chains agree on the common prefix — asserted elsewhere); latency is
    /// submission at the sender to the *sender's* completion of the
    /// committing round, falling back to any honest node's record when
    /// the sender adopted that round via catch-up.
    pub fn tx_stats(&self) -> Option<TxStats> {
        let wl = self.workload.as_ref()?;
        let chain = self.honest_node(0).chain();
        let mut commit_round = std::collections::HashMap::new();
        let mut duplicate_commits = 0usize;
        for r in 1..=chain.tip().round {
            let Some(block) = chain.block_at(r) else {
                continue;
            };
            for tx in &block.txs {
                if commit_round.insert(tx.id(), r).is_some() {
                    duplicate_commits += 1;
                }
            }
        }
        let mut latencies = Vec::new();
        let mut committed = 0usize;
        let mut first_submit = Micros::MAX;
        let mut last_commit: Micros = 0;
        let combined = self.combined_records();
        for rec in &wl.injected {
            let Some(&round) = commit_round.get(&rec.id) else {
                continue;
            };
            committed += 1;
            let finished = combined
                .get(rec.sender)
                .and_then(|rs| rs.iter().find(|x| x.round == round))
                .map(|x| x.finished)
                .or_else(|| {
                    combined
                        .iter()
                        .flat_map(|rs| rs.iter())
                        .find(|x| x.round == round)
                        .map(|x| x.finished)
                });
            if let Some(f) = finished {
                latencies.push(f.saturating_sub(rec.submitted) as f64 / 1e6);
                first_submit = first_submit.min(rec.submitted);
                last_commit = last_commit.max(f);
            }
        }
        let tx_per_sec = if last_commit > first_submit {
            committed as f64 / ((last_commit - first_submit) as f64 / 1e6)
        } else {
            0.0
        };
        Some(TxStats {
            injected: wl.injected.len(),
            committed,
            duplicate_commits,
            tx_per_sec,
            latency: (!latencies.is_empty()).then(|| Percentiles::of(&latencies)),
        })
    }

    /// The process-wide metrics registry (gossip relay and mempool
    /// counters tick into it live; [`Simulation::publish_metrics`] folds
    /// in the per-run aggregates).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Publishes this run's aggregate reports onto the registry.
    ///
    /// Idempotent: gauges are overwritten and histograms replaced, so
    /// calling it again after more rounds simply refreshes the values —
    /// restarted nodes never double-count.
    pub fn publish_metrics(&self) {
        let p = self.pipeline_report();
        let reg = &self.registry;
        reg.gauge("pipeline.ingested").set(p.stages.ingested as i64);
        reg.gauge("pipeline.verified").set(p.stages.verified as i64);
        reg.gauge("pipeline.rejected_verify")
            .set(p.stages.rejected_verify as i64);
        reg.gauge("pipeline.emitted").set(p.stages.emitted as i64);
        reg.gauge("verify.cache_hits").set(p.cache_hits as i64);
        reg.gauge("verify.cache_misses").set(p.cache_misses as i64);
        reg.gauge("verify.unique_votes").set(p.unique_votes as i64);
        let f = self.fault_report();
        reg.gauge("faults.partitions")
            .set(f.partitions_activated as i64);
        reg.gauge("faults.restarts").set(f.restarts as i64);
        reg.gauge("recovery.timeout_escalations")
            .set(f.timeout_escalations as i64);
        reg.gauge("recovery.watchdog_catchups")
            .set(f.watchdog_catchups as i64);
        reg.gauge("recovery.fork_recoveries")
            .set(f.recoveries_completed as i64);
        reg.gauge("recovery.catchups_applied")
            .set(f.catchups_applied as i64);
        reg.gauge("net.total_bytes_sent")
            .set(self.net.total_bytes_sent() as i64);
        reg.gauge("trace.dropped").set(self.tracer.dropped() as i64);
        // Round-completion latency across all nodes and rounds, µs.
        let mut lat = Histogram::new();
        for recs in self.combined_records() {
            for r in &recs {
                lat.record(r.total());
            }
        }
        reg.histogram("round.latency_us").replace(lat);
        if let Some(t) = self.tx_stats() {
            reg.gauge("workload.injected").set(t.injected as i64);
            reg.gauge("workload.committed").set(t.committed as i64);
        }
    }

    /// Exports the recorded trace as byte-stable JSONL keyed by
    /// `(seed, schedule)`, with one per-node bandwidth summary pair
    /// (uplink/downlink byte totals) appended so `trace_report` can
    /// reproduce the paper's per-user bandwidth figure from the trace
    /// alone.
    pub fn export_trace(&self, schedule: &str) -> String {
        let mut events = self.tracer.events();
        let now = self.queue.now();
        let summary = |node: u32, label: &'static str, value: u64| TraceEvent {
            kind: SpanKind::GossipHop,
            node,
            round: 0,
            step: 0,
            label: label.into(),
            start: 0,
            end: now,
            value,
            ok: true,
            id: 0,
            cause: 0,
            peer: NO_NODE,
        };
        for i in 0..self.cfg.n_users {
            events.push(summary(i as u32, "uplink_total", self.net.bytes_sent(i)));
            events.push(summary(
                i as u32,
                "downlink_total",
                self.net.bytes_received(i),
            ));
        }
        // Network-wide per-kind byte totals, in a fixed label order. The
        // counters only accumulate while tracing, so an untraced export
        // stays the plain per-node summary pairs.
        if self.tracer.is_enabled() {
            for (label, bytes) in self.kind_bytes.summary() {
                events.push(summary(NO_NODE, label, bytes));
            }
        }
        write_jsonl(self.cfg.seed, schedule, self.tracer.dropped(), &events)
    }

    /// The invariant monitor's report, if [`SimConfig::monitor`] attached
    /// one to this run.
    pub fn monitor_report(&self) -> Option<MonitorReport> {
        self.monitor.as_ref().map(MonitorHandle::report)
    }

    /// Trace events dropped past the buffer cap (0 = complete trace).
    pub fn trace_dropped(&self) -> u64 {
        self.tracer.dropped()
    }

    // --- Internals -----------------------------------------------------------

    /// Injects the next workload payment and schedules the one after.
    ///
    /// Senders and recipients are random honest users; the amount (1–3
    /// units) doubles as the pool priority. A sender is eligible only
    /// while its conservatively tracked spendable stake covers the
    /// amount, which keeps every injected transaction applicable at
    /// whatever round it commits.
    fn inject_next_tx(&mut self, now: Micros) {
        let Some(mut wl) = self.workload.take() else {
            return;
        };
        if wl.remaining == 0 {
            self.workload = Some(wl);
            return;
        }
        let n_honest = wl.spendable.len();
        let richest = wl.spendable.iter().copied().max().unwrap_or(0);
        if richest == 0 {
            // Spendable stake exhausted: the source goes quiet early.
            wl.remaining = 0;
            self.workload = Some(wl);
            return;
        }
        // Clamp so a large draw cannot end the workload while smaller
        // payments are still affordable somewhere.
        let amount = (1 + wl.rng.gen_range_u64(3)).min(richest);
        let mut sender = None;
        for _ in 0..8 {
            let c = wl.rng.gen_range_usize(n_honest);
            if !self.crashed[c] && wl.spendable[c] >= amount {
                sender = Some(c);
                break;
            }
        }
        let sender = sender
            .or_else(|| (0..n_honest).find(|&i| !self.crashed[i] && wl.spendable[i] >= amount));
        let Some(s) = sender else {
            if (0..n_honest).any(|i| wl.spendable[i] >= amount) {
                // Eligible stake exists but its holders are down: skip
                // this tick and try again after the crash window.
                let interval = wl.interval;
                self.workload = Some(wl);
                self.queue.schedule(now + interval, Event::Inject);
            } else {
                // Spendable stake exhausted: the source goes quiet early.
                wl.remaining = 0;
                self.workload = Some(wl);
            }
            return;
        };
        let mut to = wl.rng.gen_range_usize(n_honest);
        if to == s {
            to = (to + 1) % n_honest;
        }
        let tx = Transaction::payment(
            &self.keypairs[s],
            self.keypairs[to].pk,
            amount,
            wl.nonces[s] + 1,
        );
        let submitted = match &mut self.nodes[s] {
            Slot::Honest(n) => n.submit_transaction(tx.clone()),
            Slot::Malicious(m) => m.inner_mut().submit_transaction(tx.clone()),
        };
        if let Some(msg) = submitted {
            wl.spendable[s] -= amount;
            wl.nonces[s] += 1;
            wl.remaining -= 1;
            wl.injected.push(TxRecord {
                id: tx.id(),
                sender: s,
                submitted: now,
            });
            let interval = wl.interval;
            let again = wl.remaining > 0;
            self.workload = Some(wl);
            self.dispatch(s, vec![Outgoing::Broadcast(msg)]);
            if again {
                self.queue.schedule(now + interval, Event::Inject);
            }
        } else {
            // The sender's pool refused (e.g. its unconfirmed nonce run
            // hit the per-sender cap): skip this tick, try again next.
            let interval = wl.interval;
            self.workload = Some(wl);
            self.queue.schedule(now + interval, Event::Inject);
        }
    }

    /// Lets node `i`'s relay state rotate out messages two rounds old.
    fn prune_relay(&mut self, i: usize) {
        let round = match &self.nodes[i] {
            Slot::Honest(n) => n.current_round(),
            Slot::Malicious(m) => m.inner().current_round(),
        };
        self.relay[i].prune(round);
    }

    /// Sends node-originated messages to all (or half) of its peers.
    fn dispatch(&mut self, from: usize, outgoing: Vec<Outgoing>) {
        let now = self.queue.now();
        for o in outgoing {
            match o {
                Outgoing::Broadcast(wire) => {
                    let msg = SimMsg::new(wire);
                    // Mark as seen so an echoed copy is not re-processed.
                    self.relay[from].classify(msg.id, msg.relay_slot);
                    self.forward(from, &msg, None, now);
                }
                Outgoing::Split(wire_a, wire_b) => {
                    let msg_a = SimMsg::new(wire_a);
                    let msg_b = SimMsg::new(wire_b);
                    self.relay[from].classify(msg_a.id, msg_a.relay_slot);
                    self.relay[from].classify(msg_b.id, msg_b.relay_slot);
                    let peers: Vec<usize> = self.topology.neighbors(from).to_vec();
                    for (idx, &p) in peers.iter().enumerate() {
                        let msg = if idx % 2 == 0 { &msg_a } else { &msg_b };
                        self.transmit(from, p, msg, now);
                    }
                }
            }
        }
    }

    /// Relays a message to every neighbour except the one it came from.
    fn forward(&mut self, from: usize, msg: &Arc<SimMsg>, exclude: Option<usize>, now: Micros) {
        let peers: Vec<usize> = self.topology.neighbors(from).to_vec();
        for p in peers {
            if Some(p) == exclude {
                continue;
            }
            self.transmit(from, p, msg, now);
        }
    }

    fn transmit(&mut self, from: usize, to: usize, msg: &Arc<SimMsg>, now: Micros) {
        // Pull-based bodies: a peer that already holds the content costs
        // only the announcement round-trip.
        let size = if msg.pull_based && self.relay[to].has_seen(&msg.id) {
            ANNOUNCE_SIZE.min(msg.size)
        } else {
            msg.size
        };
        if let Some(arrival) = self.net.transmit(from, to, size, now) {
            if self.tracer.is_enabled() {
                self.trace_hop(from, to, msg, size, now, arrival);
            }
            self.enqueue_prewarm(msg);
            self.queue.schedule(
                arrival,
                Event::Deliver {
                    to,
                    from,
                    msg: msg.clone(),
                },
            );
        }
    }

    /// Accumulates the per-kind byte counters and records one causally
    /// stamped gossip-hop span per protocol-message transfer the
    /// critical-path walker follows: votes, priorities, and *full*
    /// block/fork bodies (an announcement-sized exchange means the
    /// receiver already held the content, so it is not a content hop).
    /// Transactions and catch-up traffic only count bytes.
    fn trace_hop(
        &mut self,
        from: usize,
        to: usize,
        msg: &Arc<SimMsg>,
        size: usize,
        now: Micros,
        arrival: Micros,
    ) {
        let full_body = size == msg.size;
        let hop = match &msg.wire {
            WireMessage::Vote(v) => {
                self.kind_bytes.vote += size as u64;
                Some(("vote", v.round))
            }
            WireMessage::Priority(p) => {
                self.kind_bytes.priority += size as u64;
                Some(("priority", p.round))
            }
            WireMessage::Block(b) => {
                self.kind_bytes.block += size as u64;
                full_body.then_some(("block_body", b.block.round))
            }
            WireMessage::ForkProposal(f) => {
                self.kind_bytes.fork += size as u64;
                full_body.then_some(("fork_body", f.block.round))
            }
            WireMessage::Transaction(_) => {
                self.kind_bytes.tx += size as u64;
                None
            }
            WireMessage::CatchupRequest { .. } | WireMessage::CatchupResponse(_) => {
                self.kind_bytes.catchup += size as u64;
                None
            }
        };
        if let Some((label, round)) = hop {
            self.tracer
                .span(SpanKind::GossipHop, to as u32, round, now)
                .label(label)
                .id(stable_id(&msg.id))
                .peer(from as u32)
                .value(size as u64)
                .end_at(arrival);
        }
    }

    /// Queues a message for cache pre-warming by the verify pool. Each
    /// message is verified once process-wide no matter how many nodes it
    /// is in flight to; delivery later hits the cache.
    ///
    /// Determinism: jobs only populate the `(message id, seed)`-keyed
    /// cache, whose verdicts are pure functions of their key. Event order
    /// is untouched, and a job built under a stale context lands on a key
    /// no consumer asks for — wasted work, never a wrong answer.
    fn enqueue_prewarm(&mut self, msg: &Arc<SimMsg>) {
        if self.pool.workers() == 0 || !self.prewarmed.insert(msg.id) {
            return;
        }
        if let Some(job) = self.prewarm_job(&msg.wire) {
            self.pending_verify.push(job);
            if self.pending_verify.len() >= PREWARM_BATCH {
                let jobs = std::mem::take(&mut self.pending_verify);
                self.pool.verify_batch(&self.verifier, jobs);
            }
        }
    }

    /// Builds the verification job for an in-flight message, using honest
    /// node 0's chain as the context oracle. Messages whose context is not
    /// yet derivable exactly (selection seed still in the future) are
    /// skipped — the consuming node verifies those inline.
    fn prewarm_job(&mut self, wire: &WireMessage) -> Option<VerifyJob> {
        let chain = match &self.nodes[0] {
            Slot::Honest(n) => n.chain(),
            Slot::Malicious(m) => m.inner().chain(),
        };
        let tip = chain.tip().round;
        let interval = self.cfg.params.chain.seed_refresh_interval;
        let round = match wire {
            WireMessage::Vote(v) => v.round,
            WireMessage::Priority(p) => p.round,
            WireMessage::Block(b) => b.block.round,
            _ => return None,
        };
        if selection_seed_round(round, interval) > tip {
            return None;
        }
        let seed = chain.selection_seed(round);
        let weights = match self.prewarm_weights.get(&round) {
            Some(w) => w.clone(),
            None => {
                let w = Arc::new(chain.weights_for_round(round));
                self.prewarm_weights.insert(round, w.clone());
                self.prewarm_weights.retain(|&r, _| r + 8 > round);
                w
            }
        };
        Some(match wire {
            WireMessage::Vote(v) => VerifyJob::Vote {
                msg: v.clone(),
                ctx: VoteContext {
                    round,
                    seed,
                    tau: self.cfg.params.ba.tau_for(v.step == StepKind::Final),
                },
                weights,
            },
            WireMessage::Priority(p) => VerifyJob::Priority {
                msg: p.clone(),
                seed,
                weights,
                tau: self.cfg.params.tau_proposer,
            },
            WireMessage::Block(b) => VerifyJob::Block {
                msg: b.clone(),
                seed,
                weights,
                tau: self.cfg.params.tau_proposer,
            },
            _ => unreachable!("round extraction above filtered the rest"),
        })
    }

    fn reschedule_wake(&mut self, node: usize) {
        let deadline = match &self.nodes[node] {
            Slot::Honest(n) => n.next_deadline(),
            Slot::Malicious(m) => m.next_deadline(),
        };
        if let Some(d) = deadline {
            // Node deadlines are on the node's (possibly skewed) local
            // clock; the queue runs on global time.
            let d = d.saturating_sub(self.clock_skew[node]);
            if d < self.next_wake[node] {
                self.next_wake[node] = d;
                self.queue.schedule(d, Event::Wake { node });
            }
        }
    }

    /// The instant node `i`'s local clock shows at global time `now`.
    fn local_now(&self, node: usize, now: Micros) -> Micros {
        now + self.clock_skew[node]
    }

    /// Applies one scripted fault.
    fn apply_fault(&mut self, action: FaultAction, now: Micros) {
        if self.tracer.is_enabled() {
            let (label, node) = match &action {
                FaultAction::Partition(_) => ("partition", NO_NODE),
                FaultAction::Heal => ("heal", NO_NODE),
                FaultAction::Loss(_) => ("loss", NO_NODE),
                FaultAction::DelaySpike { .. } => ("delay_spike", NO_NODE),
                FaultAction::DelayClear => ("delay_clear", NO_NODE),
                FaultAction::Crash(i) => ("crash", *i as u32),
                FaultAction::Restart(i) => ("restart", *i as u32),
                FaultAction::ClockSkew { node, .. } => ("clock_skew", *node as u32),
            };
            self.tracer
                .span(SpanKind::Fault, node, 0, now)
                .label(label)
                .instant();
        }
        match action {
            FaultAction::Partition(spec) => {
                self.partitions_activated += 1;
                self.net.set_partition(Some(spec));
            }
            FaultAction::Heal => self.net.set_partition(None),
            FaultAction::Loss(prob) => self.net.set_loss_prob(prob),
            FaultAction::DelaySpike { factor, extra } => {
                self.net.set_delay_spike(Some((factor, extra)));
            }
            FaultAction::DelayClear => self.net.set_delay_spike(None),
            FaultAction::Crash(i) => self.crash_node(i),
            FaultAction::Restart(i) => self.restart_node(i, now),
            FaultAction::ClockSkew { node, skew } => {
                self.clock_skew[node] = skew;
                // The node's next deadline moved on the global clock.
                self.reschedule_wake(node);
            }
        }
    }

    /// Crashes an honest node: its durable state (chain + certificates)
    /// is snapshotted through the wire codec, everything else is lost,
    /// and it stops processing events.
    fn crash_node(&mut self, i: usize) {
        if self.crashed[i] {
            return;
        }
        let Slot::Honest(node) = &self.nodes[i] else {
            debug_assert!(false, "chaos scripts crash honest nodes only");
            return;
        };
        self.snapshots[i] = Some(node.snapshot());
        self.crashed[i] = true;
        // Pending wakes for the dead process become stale.
        self.next_wake[i] = u64::MAX;
    }

    /// Restarts a crashed node from its snapshot. The node revalidates
    /// the snapshot as it would a catch-up batch, comes back with empty
    /// volatile state (fresh relay view, empty mempool), and rejoins the
    /// round loop — fetching whatever it missed while down via §8.3
    /// catch-up.
    fn restart_node(&mut self, i: usize, now: Micros) {
        if !self.crashed[i] {
            return;
        }
        let snapshot = self.snapshots[i].take().unwrap_or_default();
        // Fold the dying node's counters into the carry before its slot
        // is overwritten, so aggregated reports keep its pre-crash
        // history without ever double-counting it.
        if let Slot::Honest(old) = &self.nodes[i] {
            let c = self.carry.entry(i).or_default();
            c.pipeline.merge(&old.pipeline_stats());
            c.records.extend_from_slice(old.records());
            c.timeout_escalations += old.timeout_escalations();
            c.watchdog_catchups += old.watchdog_catchups();
            c.recoveries_completed += old.recoveries_completed();
            c.catchups_applied += old.catchups_applied();
        }
        let alloc: Vec<_> = self
            .keypairs
            .iter()
            .map(|k| (k.pk, self.cfg.stake_per_user))
            .collect();
        let genesis = Blockchain::new(self.cfg.params.chain, alloc, GENESIS_SEED);
        let local = self.local_now(i, now);
        let mut node = Node::restore(
            self.keypairs[i].clone(),
            genesis,
            self.cfg.params,
            self.verifier.clone(),
            &snapshot,
            local,
        );
        node.payload_bytes = self.cfg.payload_bytes;
        node.block_tx_bytes = self.cfg.block_tx_bytes;
        node.set_tracer(self.tracer.clone(), i as u32);
        node.pool
            .set_metrics(PoolMetrics::registered(&self.registry));
        self.nodes[i] = Slot::Honest(Box::new(node));
        self.relay[i] = RelayState::with_metrics(RelayMetrics::registered(&self.registry));
        self.crashed[i] = false;
        self.restarts += 1;
        let outgoing = match &mut self.nodes[i] {
            Slot::Honest(n) => wrap_broadcast(n.start(local)),
            Slot::Malicious(_) => unreachable!("restored nodes are honest"),
        };
        self.dispatch(i, outgoing);
        self.reschedule_wake(i);
    }
}

fn wrap_broadcast(msgs: Vec<WireMessage>) -> Vec<Outgoing> {
    msgs.into_iter().map(Outgoing::Broadcast).collect()
}
