//! The single-threaded simulation runner: N Algorand users over a gossip
//! network in virtual time — the stand-in for the paper's 1,000-VM EC2
//! testbed, and the replay oracle the chaos/determinism gates pin.
//!
//! Population building, workload, carried counters, and report
//! aggregation live in [`crate::harness`], shared with the parallel
//! discrete-event engine ([`crate::des`]). This module owns the *serial*
//! schedule: one global event queue popped in `(time, insertion)` order.

use crate::adversary::{AdversaryShared, Outgoing};
use crate::event::{Event, EventQueue, Micros};
use crate::faults::{FaultAction, FaultEvent, FaultSchedule};
use crate::harness::{
    self, InjectStep, KindBytes, NodeCarry, Prewarmer, Slot, Workload, ANNOUNCE_SIZE, TRACE_CAP,
};
use crate::metrics::{round_stats, RoundStats};
use crate::network::{Filter, Network};
use algorand_core::{Node, PipelineVerifier, RoundRecord, VerifyPool, WireMessage};
use algorand_crypto::rng::Rng;
use algorand_crypto::Keypair;
use algorand_gossip::{RelayDecision, RelayMetrics, RelayState, Topology};
use algorand_ledger::{Blockchain, Transaction};
use algorand_obs::{
    stable_id, write_jsonl, Histogram, MonitorHandle, MonitorReport, Registry, SpanKind,
    TraceEvent, Tracer, NO_NODE,
};
use algorand_txpool::PoolMetrics;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

pub use crate::harness::{
    FaultReport, PipelineReport, SimConfig, SimMsg, TxRecord, TxStats, GENESIS_SEED,
};

/// The simulation.
pub struct Simulation {
    cfg: SimConfig,
    nodes: Vec<Slot>,
    keypairs: Vec<Keypair>,
    topology: Topology,
    relay: Vec<RelayState>,
    net: Network,
    queue: EventQueue<Arc<SimMsg>>,
    next_wake: Vec<Micros>,
    next_churn: Micros,
    churn_epoch: u64,
    verifier: Arc<PipelineVerifier>,
    pool: VerifyPool,
    /// Batch hand-off of in-flight messages to the verify pool.
    prewarm: Prewarmer,
    adversary: Arc<Mutex<AdversaryShared>>,
    workload: Option<Workload>,
    started: bool,
    /// Scripted faults, indexed by queued `Event::Fault`s.
    faults: Vec<FaultEvent>,
    /// Which nodes are currently crashed (down, not processing events).
    crashed: Vec<bool>,
    /// Durable-state snapshots of crashed nodes, for restart.
    snapshots: Vec<Option<Vec<u8>>>,
    /// Per-node signed clock skew: the node's local clock reads
    /// `now + skew` (positive runs fast, negative slow).
    clock_skew: Vec<i64>,
    restarts: usize,
    partitions_activated: usize,
    /// The process-wide metrics registry every node publishes into.
    registry: Registry,
    /// The shared trace buffer (inert unless `cfg.trace`).
    tracer: Tracer,
    /// The online invariant checker fed from the tracer's observer slot
    /// (present only when `cfg.monitor`).
    monitor: Option<MonitorHandle>,
    /// Per-kind transmitted-byte totals, exported with the trace.
    kind_bytes: KindBytes,
    /// Counters carried over from nodes replaced by crash/restart,
    /// keyed by node id.
    carry: HashMap<usize, NodeCarry>,
}

impl Simulation {
    /// Builds the simulation: deterministic keys, equal genesis stake, a
    /// weighted gossip topology, and one node per user.
    pub fn new(mut cfg: SimConfig) -> Simulation {
        cfg.apply_injected_bug();
        let keypairs = cfg.build_keypairs();
        let verifier = Arc::new(PipelineVerifier::new());
        let adversary = Arc::new(Mutex::new(AdversaryShared::default()));
        let registry = Registry::new();
        let tracer = if cfg.trace {
            Tracer::bounded(TRACE_CAP)
        } else {
            Tracer::disabled()
        };
        let monitor = (cfg.monitor && cfg.trace).then(|| {
            let handle = MonitorHandle::new(cfg.monitor_config());
            tracer.set_observer(handle.observer());
            handle
        });
        let pool_metrics = PoolMetrics::registered(&registry);
        let nodes = harness::build_slots(
            &cfg,
            &keypairs,
            &verifier,
            &adversary,
            &pool_metrics,
            |_| tracer.clone(),
        );
        let mut topo_rng = Rng::seed_from_u64(cfg.seed);
        let weights = vec![cfg.stake_per_user; cfg.n_users];
        let topology = Topology::weighted(cfg.n_users, cfg.out_degree, &weights, &mut topo_rng);
        let relay_metrics = RelayMetrics::registered(&registry);
        let relay = (0..cfg.n_users)
            .map(|_| RelayState::with_metrics(relay_metrics.clone()))
            .collect();
        let net = Network::new(cfg.n_users, cfg.net.clone());
        let workload = Workload::from_config(&cfg);
        Simulation {
            nodes,
            keypairs,
            topology,
            relay,
            net,
            queue: EventQueue::new(),
            next_wake: vec![u64::MAX; cfg.n_users],
            next_churn: if cfg.peer_churn_interval > 0 {
                cfg.peer_churn_interval
            } else {
                u64::MAX
            },
            churn_epoch: 0,
            verifier,
            pool: VerifyPool::new(cfg.verify_pool_workers),
            prewarm: Prewarmer::new(),
            adversary,
            workload,
            faults: Vec::new(),
            crashed: vec![false; cfg.n_users],
            snapshots: (0..cfg.n_users).map(|_| None).collect(),
            clock_skew: vec![0; cfg.n_users],
            restarts: 0,
            partitions_activated: 0,
            registry,
            tracer,
            monitor,
            kind_bytes: KindBytes::default(),
            carry: HashMap::new(),
            cfg,
            started: false,
        }
    }

    /// Installs a network fault filter (partition, targeted DoS).
    pub fn set_network_filter(&mut self, filter: Option<Filter>) {
        self.net.set_filter(filter);
    }

    /// Installs a scripted fault schedule: every event is queued at its
    /// exact virtual instant, interleaving deterministically with message
    /// deliveries and timer wakes. May be called before or during a run;
    /// schedules accumulate.
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        let base = self.faults.len();
        let events = schedule.into_events();
        for (k, e) in events.iter().enumerate() {
            self.queue.schedule(e.at, Event::Fault { idx: base + k });
        }
        self.faults.extend(events);
    }

    /// Whether node `i` is currently crashed.
    pub fn is_crashed(&self, i: usize) -> bool {
        self.crashed[i]
    }

    /// Submits a transaction via node `node`, gossiping it to the network
    /// exactly as a user's client would (§4).
    pub fn submit_transaction(&mut self, node: usize, tx: Transaction) {
        let msg = self.nodes[node].node_mut().submit_transaction(tx);
        if let Some(msg) = msg {
            self.dispatch(node, vec![Outgoing::Broadcast(msg)]);
        }
    }

    /// Injects an arbitrary wire message into the network at node `via`,
    /// as if an attacker-controlled peer delivered it. The receiving node
    /// processes it through the normal validation path, and the gossip
    /// relay rules decide whether it spreads.
    pub fn inject_message(&mut self, via: usize, msg: WireMessage) {
        let sim_msg = SimMsg::new(msg);
        let now = self.queue.now();
        self.queue.schedule(
            now,
            Event::Deliver {
                to: via,
                // A self-loop `from` keeps the relay from skipping a peer.
                from: via,
                msg: sim_msg,
            },
        );
    }

    /// The keypair of user `i` (deterministic; useful for crafting
    /// transactions in tests and benches).
    pub fn keypair(&self, i: usize) -> &Keypair {
        &self.keypairs[i]
    }

    /// Admits `txs` directly into every node's mempool, bypassing gossip.
    ///
    /// This models a pre-agreed workload that every deployment loads
    /// identically before round 1 — the fixture the real-process harness
    /// uses to cross-check chain digests: with identical pools at every
    /// proposer, block assembly is a pure function of the chain seed.
    pub fn preload_transactions(&mut self, txs: &[Transaction]) {
        for slot in &mut self.nodes {
            let node = slot.node_mut();
            let accounts = node.chain().accounts().clone();
            for tx in txs {
                let _ = node.pool.admit(tx.clone(), &accounts);
            }
        }
    }

    /// Starts every node at time 0.
    pub fn start(&mut self) {
        assert!(!self.started, "already started");
        self.started = true;
        for i in 0..self.nodes.len() {
            let outgoing = self.nodes[i].start(0);
            self.dispatch(i, outgoing);
            self.reschedule_wake(i);
        }
        if let Some(wl) = &self.workload {
            self.queue.schedule(wl.interval, Event::Inject);
        }
    }

    /// Runs until virtual time `t_end` or until the event queue drains.
    pub fn run_until(&mut self, t_end: Micros) {
        if !self.started {
            self.start();
        }
        while self.queue.next_time().is_some_and(|t| t <= t_end) {
            let (now, event) = self.queue.pop().expect("peeked");
            // §8.4: users periodically replace their gossip peers, which
            // also recovers anyone stranded in a disconnected component.
            if now >= self.next_churn {
                self.churn_epoch += 1;
                self.next_churn = self
                    .next_churn
                    .saturating_add(self.cfg.peer_churn_interval.max(1));
                let mut rng = Rng::seed_from_u64(self.cfg.seed ^ (self.churn_epoch << 32));
                let weights = vec![self.cfg.stake_per_user; self.cfg.n_users];
                self.topology =
                    Topology::weighted(self.cfg.n_users, self.cfg.out_degree, &weights, &mut rng);
            }
            match event {
                Event::Wake { node } => {
                    if self.crashed[node] || self.next_wake[node] > now {
                        continue; // Crashed, or stale (a newer wake exists).
                    }
                    self.next_wake[node] = u64::MAX;
                    let local = self.local_now(node, now);
                    let outgoing = self.nodes[node].on_tick(local);
                    self.dispatch(node, outgoing);
                    self.prune_relay(node);
                    self.reschedule_wake(node);
                }
                Event::Deliver { to, from, msg } => {
                    if self.crashed[to] {
                        continue; // In-flight packets to a dead process.
                    }
                    if self.cfg.bug_swallows(&msg.wire) {
                        continue; // Planted defect: ingest drops it.
                    }
                    let decision = self.relay[to].classify(msg.id, msg.relay_slot);
                    if decision == RelayDecision::Duplicate {
                        continue;
                    }
                    let now_t = self.local_now(to, now);
                    let outgoing = self.nodes[to].on_message(&msg.wire, now_t);
                    // §6: honest users discard block bodies that are not
                    // the highest-priority proposal they have seen; a
                    // transaction spreads only while its receiver still
                    // pools it (rejects and evictions die out here).
                    let discard = self.nodes[to].discards(&msg.wire, self.cfg.relay_all_blocks);
                    if decision == RelayDecision::Relay && !discard {
                        self.forward(to, &msg, Some(from), now_t);
                    }
                    self.dispatch(to, outgoing);
                    self.prune_relay(to);
                    self.reschedule_wake(to);
                }
                Event::Inject => self.inject_next_tx(now),
                Event::Fault { idx } => {
                    let action = self.faults[idx].action.clone();
                    self.apply_fault(action, now);
                }
            }
        }
    }

    /// Runs until every honest node's chain has reached `rounds` rounds,
    /// or until `t_cap` virtual time passes (whichever comes first).
    ///
    /// Progress is judged by chain height, not per-round records: a node
    /// that re-synced via catch-up has the rounds without having measured
    /// them.
    pub fn run_rounds(&mut self, rounds: u64, t_cap: Micros) {
        if !self.started {
            self.start();
        }
        loop {
            let all_done = self.nodes.iter().enumerate().all(|(i, slot)| {
                // A crashed node cannot make progress; it is not waited on.
                self.crashed[i] || slot.node().chain().tip().round >= rounds
            });
            if all_done {
                return;
            }
            // Advance in one-second slices so the completion check runs
            // periodically without scanning after every event.
            let Some(next) = self.queue.next_time() else {
                return;
            };
            if next > t_cap {
                return;
            }
            self.run_until((next + 1_000_000).min(t_cap));
        }
    }

    /// Per-honest-node round records.
    pub fn honest_records(&self) -> Vec<&[RoundRecord]> {
        self.nodes
            .iter()
            .filter_map(|s| s.honest().map(Node::records))
            .collect()
    }

    /// Per-honest-node round records *including* those a node measured
    /// before a crash/restart cycle replaced it, deduplicated by round
    /// per node (a record carried from before the crash wins over a
    /// hypothetical re-measurement after it).
    pub fn combined_records(&self) -> Vec<Vec<RoundRecord>> {
        let slots: Vec<&Slot> = self.nodes.iter().collect();
        harness::combined_records(&slots, &self.carry)
    }

    /// Aggregated stats for one round.
    pub fn round_stats(&self, round: u64) -> Option<RoundStats> {
        let combined = self.combined_records();
        let views: Vec<&[RoundRecord]> = combined.iter().map(|v| v.as_slice()).collect();
        round_stats(&views, round)
    }

    /// Immutable access to an honest node.
    pub fn honest_node(&self, i: usize) -> &Node {
        self.nodes[i].node()
    }

    /// The network (bytes accounting).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Number of distinct vote verifications performed (CPU-cost proxy).
    pub fn unique_verifications(&self) -> usize {
        self.verifier.unique_vote_verifications()
    }

    /// The shared verification stage (process-wide cache).
    pub fn verifier(&self) -> &Arc<PipelineVerifier> {
        &self.verifier
    }

    /// Aggregated staged-pipeline counters across honest nodes plus the
    /// process-wide cache, for the metrics report.
    pub fn pipeline_report(&self) -> PipelineReport {
        let slots: Vec<&Slot> = self.nodes.iter().collect();
        harness::pipeline_report(&slots, &self.carry, &self.verifier, &self.pool)
    }

    /// Fault-injection and recovery counters for this run.
    pub fn fault_report(&self) -> FaultReport {
        let slots: Vec<&Slot> = self.nodes.iter().collect();
        harness::fault_report(
            &slots,
            &self.carry,
            &self.net,
            self.partitions_activated,
            self.restarts,
        )
    }

    /// A digest of every honest node's canonical chain, for the
    /// determinism check: identical `(seed, schedule)` runs must produce
    /// identical digests.
    pub fn chain_digest(&self) -> [u8; 32] {
        let slots: Vec<&Slot> = self.nodes.iter().collect();
        harness::chain_digest(&slots)
    }

    /// The current virtual time.
    pub fn now(&self) -> Micros {
        self.queue.now()
    }

    /// The configuration this simulation runs with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The shared adversary state (tests inspect recorded equivocations).
    pub fn adversary(&self) -> Arc<Mutex<AdversaryShared>> {
        self.adversary.clone()
    }

    /// The transactions the workload has injected so far.
    pub fn injected_txs(&self) -> &[TxRecord] {
        self.workload.as_ref().map_or(&[], |wl| &wl.injected)
    }

    /// End-to-end transaction metrics for the workload (if one ran).
    pub fn tx_stats(&self) -> Option<TxStats> {
        let wl = self.workload.as_ref()?;
        Some(harness::tx_stats(
            &wl.injected,
            self.honest_node(0).chain(),
            &self.combined_records(),
        ))
    }

    /// The process-wide metrics registry (gossip relay and mempool
    /// counters tick into it live; [`Simulation::publish_metrics`] folds
    /// in the per-run aggregates).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Publishes this run's aggregate reports onto the registry.
    ///
    /// Idempotent: gauges are overwritten and histograms replaced, so
    /// calling it again after more rounds simply refreshes the values —
    /// restarted nodes never double-count.
    pub fn publish_metrics(&self) {
        let p = self.pipeline_report();
        let reg = &self.registry;
        reg.gauge("pipeline.ingested").set(p.stages.ingested as i64);
        reg.gauge("pipeline.verified").set(p.stages.verified as i64);
        reg.gauge("pipeline.rejected_verify")
            .set(p.stages.rejected_verify as i64);
        reg.gauge("pipeline.emitted").set(p.stages.emitted as i64);
        reg.gauge("verify.cache_hits").set(p.cache_hits as i64);
        reg.gauge("verify.cache_misses").set(p.cache_misses as i64);
        reg.gauge("verify.unique_votes").set(p.unique_votes as i64);
        let f = self.fault_report();
        reg.gauge("faults.partitions")
            .set(f.partitions_activated as i64);
        reg.gauge("faults.restarts").set(f.restarts as i64);
        reg.gauge("recovery.timeout_escalations")
            .set(f.timeout_escalations as i64);
        reg.gauge("recovery.watchdog_catchups")
            .set(f.watchdog_catchups as i64);
        reg.gauge("recovery.fork_recoveries")
            .set(f.recoveries_completed as i64);
        reg.gauge("recovery.catchups_applied")
            .set(f.catchups_applied as i64);
        reg.gauge("net.total_bytes_sent")
            .set(self.net.total_bytes_sent() as i64);
        reg.gauge("trace.dropped").set(self.tracer.dropped() as i64);
        // Round-completion latency across all nodes and rounds, µs.
        let mut lat = Histogram::new();
        for recs in self.combined_records() {
            for r in &recs {
                lat.record(r.total());
            }
        }
        reg.histogram("round.latency_us").replace(lat);
        if let Some(t) = self.tx_stats() {
            reg.gauge("workload.injected").set(t.injected as i64);
            reg.gauge("workload.committed").set(t.committed as i64);
        }
    }

    /// Exports the recorded trace as byte-stable JSONL keyed by
    /// `(seed, schedule)`, with one per-node bandwidth summary pair
    /// (uplink/downlink byte totals) appended so `trace_report` can
    /// reproduce the paper's per-user bandwidth figure from the trace
    /// alone.
    pub fn export_trace(&self, schedule: &str) -> String {
        let mut events = self.tracer.events();
        let now = self.queue.now();
        let summary = |node: u32, label: &'static str, value: u64| TraceEvent {
            kind: SpanKind::GossipHop,
            node,
            round: 0,
            step: 0,
            label: label.into(),
            start: 0,
            end: now,
            value,
            ok: true,
            id: 0,
            cause: 0,
            peer: NO_NODE,
        };
        for i in 0..self.cfg.n_users {
            events.push(summary(i as u32, "uplink_total", self.net.bytes_sent(i)));
            events.push(summary(
                i as u32,
                "downlink_total",
                self.net.bytes_received(i),
            ));
        }
        // Network-wide per-kind byte totals, in a fixed label order. The
        // counters only accumulate while tracing, so an untraced export
        // stays the plain per-node summary pairs.
        if self.tracer.is_enabled() {
            for (label, bytes) in self.kind_bytes.summary() {
                events.push(summary(NO_NODE, label, bytes));
            }
        }
        write_jsonl(self.cfg.seed, schedule, self.tracer.dropped(), &events)
    }

    /// The invariant monitor's report, if [`SimConfig::monitor`] attached
    /// one to this run.
    pub fn monitor_report(&self) -> Option<MonitorReport> {
        self.monitor.as_ref().map(MonitorHandle::report)
    }

    /// Trace events dropped past the buffer cap (0 = complete trace).
    pub fn trace_dropped(&self) -> u64 {
        self.tracer.dropped()
    }

    // --- Internals -----------------------------------------------------------

    /// Injects the next workload payment and schedules the one after.
    fn inject_next_tx(&mut self, now: Micros) {
        let Some(mut wl) = self.workload.take() else {
            return;
        };
        if wl.remaining == 0 {
            self.workload = Some(wl);
            return;
        }
        match wl.plan(&self.crashed) {
            InjectStep::Quiet => {
                self.workload = Some(wl);
            }
            InjectStep::Retry => {
                let interval = wl.interval;
                self.workload = Some(wl);
                self.queue.schedule(now + interval, Event::Inject);
            }
            InjectStep::Pay { sender, to, amount } => {
                let tx = wl.payment(&self.keypairs, sender, to, amount);
                let submitted = self.nodes[sender].node_mut().submit_transaction(tx.clone());
                if let Some(msg) = submitted {
                    wl.commit(
                        sender,
                        amount,
                        TxRecord {
                            id: tx.id(),
                            sender,
                            submitted: now,
                        },
                    );
                    let interval = wl.interval;
                    let again = wl.remaining > 0;
                    self.workload = Some(wl);
                    self.dispatch(sender, vec![Outgoing::Broadcast(msg)]);
                    if again {
                        self.queue.schedule(now + interval, Event::Inject);
                    }
                } else {
                    // The sender's pool refused (e.g. its unconfirmed
                    // nonce run hit the per-sender cap): skip this tick,
                    // try again next.
                    let interval = wl.interval;
                    self.workload = Some(wl);
                    self.queue.schedule(now + interval, Event::Inject);
                }
            }
        }
    }

    /// Lets node `i`'s relay state rotate out messages two rounds old —
    /// or, during a stall, older than the relay stall horizon.
    fn prune_relay(&mut self, i: usize) {
        let round = self.nodes[i].node().current_round();
        let horizon = self.cfg.params.relay_stall_horizon();
        self.relay[i].prune(round, self.queue.now(), horizon);
    }

    /// Sends node-originated messages to all (or half) of its peers.
    fn dispatch(&mut self, from: usize, outgoing: Vec<Outgoing>) {
        let now = self.queue.now();
        for o in outgoing {
            match o {
                Outgoing::Broadcast(wire) => {
                    let msg = SimMsg::new(wire);
                    // Mark as seen so an echoed copy is not re-processed.
                    self.relay[from].classify(msg.id, msg.relay_slot);
                    self.forward(from, &msg, None, now);
                }
                Outgoing::Split(wire_a, wire_b) => {
                    let msg_a = SimMsg::new(wire_a);
                    let msg_b = SimMsg::new(wire_b);
                    self.relay[from].classify(msg_a.id, msg_a.relay_slot);
                    self.relay[from].classify(msg_b.id, msg_b.relay_slot);
                    let peers: Vec<usize> = self.topology.neighbors(from).to_vec();
                    for (idx, &p) in peers.iter().enumerate() {
                        let msg = if idx % 2 == 0 { &msg_a } else { &msg_b };
                        self.transmit(from, p, msg, now);
                    }
                }
            }
        }
    }

    /// Relays a message to every neighbour except the one it came from.
    fn forward(&mut self, from: usize, msg: &Arc<SimMsg>, exclude: Option<usize>, now: Micros) {
        let peers: Vec<usize> = self.topology.neighbors(from).to_vec();
        for p in peers {
            if Some(p) == exclude {
                continue;
            }
            self.transmit(from, p, msg, now);
        }
    }

    fn transmit(&mut self, from: usize, to: usize, msg: &Arc<SimMsg>, now: Micros) {
        // Pull-based bodies: a peer that already holds the content costs
        // only the announcement round-trip.
        let size = if msg.pull_based && self.relay[to].has_seen(&msg.id) {
            ANNOUNCE_SIZE.min(msg.size)
        } else {
            msg.size
        };
        if let Some(arrival) = self.net.transmit(from, to, size, now) {
            if self.tracer.is_enabled() {
                self.trace_hop(from, to, msg, size, now, arrival);
            }
            let chain = self.nodes[0].node().chain();
            self.prewarm
                .enqueue(msg, chain, &self.cfg.params, &self.pool, &self.verifier);
            self.queue.schedule(
                arrival,
                Event::Deliver {
                    to,
                    from,
                    msg: msg.clone(),
                },
            );
        }
    }

    /// Accumulates the per-kind byte counters and records one causally
    /// stamped gossip-hop span per protocol-message transfer the
    /// critical-path walker follows: votes, priorities, and *full*
    /// block/fork bodies (an announcement-sized exchange means the
    /// receiver already held the content, so it is not a content hop).
    /// Transactions and catch-up traffic only count bytes.
    fn trace_hop(
        &mut self,
        from: usize,
        to: usize,
        msg: &Arc<SimMsg>,
        size: usize,
        now: Micros,
        arrival: Micros,
    ) {
        let full_body = size == msg.size;
        let hop = match &msg.wire {
            WireMessage::Vote(v) => {
                self.kind_bytes.vote += size as u64;
                Some(("vote", v.round))
            }
            WireMessage::Priority(p) => {
                self.kind_bytes.priority += size as u64;
                Some(("priority", p.round))
            }
            WireMessage::Block(b) => {
                self.kind_bytes.block += size as u64;
                full_body.then_some(("block_body", b.block.round))
            }
            WireMessage::ForkProposal(f) => {
                self.kind_bytes.fork += size as u64;
                full_body.then_some(("fork_body", f.block.round))
            }
            WireMessage::Transaction(_) => {
                self.kind_bytes.tx += size as u64;
                None
            }
            WireMessage::CatchupRequest { .. } | WireMessage::CatchupResponse(_) => {
                self.kind_bytes.catchup += size as u64;
                None
            }
        };
        if let Some((label, round)) = hop {
            self.tracer
                .span(SpanKind::GossipHop, to as u32, round, now)
                .label(label)
                .id(stable_id(&msg.id))
                .peer(from as u32)
                .value(size as u64)
                .end_at(arrival);
        }
    }

    fn reschedule_wake(&mut self, node: usize) {
        let deadline = self.nodes[node].next_deadline();
        if let Some(d) = deadline {
            // Node deadlines are on the node's (possibly skewed) local
            // clock; the queue runs on global time.
            let d = harness::unskewed_global(d, self.clock_skew[node]);
            if d < self.next_wake[node] {
                self.next_wake[node] = d;
                self.queue.schedule(d, Event::Wake { node });
            }
        }
    }

    /// The instant node `i`'s local clock shows at global time `now`.
    fn local_now(&self, node: usize, now: Micros) -> Micros {
        harness::skewed_local(now, self.clock_skew[node])
    }

    /// Applies one scripted fault.
    fn apply_fault(&mut self, action: FaultAction, now: Micros) {
        if self.tracer.is_enabled() {
            let (label, node) = match &action {
                FaultAction::Partition(_) => ("partition", NO_NODE),
                FaultAction::Heal => ("heal", NO_NODE),
                FaultAction::Loss(_) => ("loss", NO_NODE),
                FaultAction::DelaySpike { .. } => ("delay_spike", NO_NODE),
                FaultAction::DelayClear => ("delay_clear", NO_NODE),
                FaultAction::Crash(i) => ("crash", *i as u32),
                FaultAction::Restart(i) => ("restart", *i as u32),
                FaultAction::ClockSkew { node, .. } => ("clock_skew", *node as u32),
            };
            self.tracer
                .span(SpanKind::Fault, node, 0, now)
                .label(label)
                .instant();
        }
        match action {
            FaultAction::Partition(spec) => {
                self.partitions_activated += 1;
                self.net.set_partition(Some(spec));
            }
            FaultAction::Heal => self.net.set_partition(None),
            FaultAction::Loss(prob) => self.net.set_loss_prob(prob),
            FaultAction::DelaySpike { factor, extra } => {
                self.net.set_delay_spike(Some((factor, extra)));
            }
            FaultAction::DelayClear => self.net.set_delay_spike(None),
            FaultAction::Crash(i) => self.crash_node(i),
            FaultAction::Restart(i) => self.restart_node(i, now),
            FaultAction::ClockSkew { node, skew } => {
                self.clock_skew[node] = skew;
                // The node's next deadline moved on the global clock.
                self.reschedule_wake(node);
            }
        }
    }

    /// Crashes an honest node: its durable state (chain + certificates)
    /// is snapshotted through the wire codec, everything else is lost,
    /// and it stops processing events.
    fn crash_node(&mut self, i: usize) {
        if self.crashed[i] {
            return;
        }
        let Slot::Honest(node) = &self.nodes[i] else {
            debug_assert!(false, "chaos scripts crash honest nodes only");
            return;
        };
        self.snapshots[i] = Some(node.snapshot());
        self.crashed[i] = true;
        // Pending wakes for the dead process become stale.
        self.next_wake[i] = u64::MAX;
    }

    /// Restarts a crashed node from its snapshot. The node revalidates
    /// the snapshot as it would a catch-up batch, comes back with empty
    /// volatile state (fresh relay view, empty mempool), and rejoins the
    /// round loop — fetching whatever it missed while down via §8.3
    /// catch-up.
    fn restart_node(&mut self, i: usize, now: Micros) {
        if !self.crashed[i] {
            return;
        }
        let snapshot = self.snapshots[i].take().unwrap_or_default();
        // Fold the dying node's counters into the carry before its slot
        // is overwritten, so aggregated reports keep its pre-crash
        // history without ever double-counting it.
        if let Slot::Honest(old) = &self.nodes[i] {
            self.carry.entry(i).or_default().fold_from(old);
        }
        let alloc: Vec<_> = self
            .keypairs
            .iter()
            .map(|k| (k.pk, self.cfg.stake_per_user))
            .collect();
        let genesis = Blockchain::new(self.cfg.params.chain, alloc, GENESIS_SEED);
        let local = self.local_now(i, now);
        let mut node = Node::restore(
            self.keypairs[i].clone(),
            genesis,
            self.cfg.params,
            self.verifier.clone(),
            &snapshot,
            local,
        );
        node.payload_bytes = self.cfg.payload_bytes;
        node.block_tx_bytes = self.cfg.block_tx_bytes;
        node.set_tracer(self.tracer.clone(), i as u32);
        node.pool
            .set_metrics(PoolMetrics::registered(&self.registry));
        self.nodes[i] = Slot::Honest(Box::new(node));
        self.relay[i] = RelayState::with_metrics(RelayMetrics::registered(&self.registry));
        self.crashed[i] = false;
        self.restarts += 1;
        let outgoing = self.nodes[i].start(local);
        self.dispatch(i, outgoing);
        self.reschedule_wake(i);
    }
}
