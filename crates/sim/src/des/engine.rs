//! The conservative parallel discrete-event engine.
//!
//! # Execution model
//!
//! Virtual time advances in synchronized *windows* `[T, E)` where
//! `E = min(T + lookahead, next global event, next peer churn, t_end)`
//! and the lookahead is the network's minimum one-way delay
//! ([`crate::network::Network::min_delay`]). Because every message sent
//! at a time `t ≥ T` arrives no earlier than `t + lookahead ≥ E`, no
//! event inside a window can cause another event inside the same window
//! at a *different* node — so each node's events can be processed on any
//! worker thread without synchronization.
//!
//! A window runs in three phases:
//!
//! 1. **Extract (sequential).** Pop every event below `E` from the
//!    sharded queue in canonical `(time, class, seq)` order and assign
//!    each a monotone *order hint* from the engine-global counter.
//! 2. **Node phase (parallel).** Work units — one per honest node, plus
//!    a single unit holding *all* malicious nodes so coalition state is
//!    mutated in canonical order — are claimed by workers. Each unit
//!    processes its events in key order, touching only per-node state
//!    (protocol node, relay view, private tracer, pending wake). Sends
//!    are buffered as intents; chained timer wakes that land inside the
//!    window run immediately, inheriting their trigger's hint.
//! 3. **Barrier (sequential).** Intents are sorted by
//!    `(hint, emission index)` and replayed against the shared state in
//!    that canonical order: topology fan-out, uplink serialization,
//!    jitter/loss RNG draws, delivery scheduling (which assigns the next
//!    window's sequence numbers), gossip-hop tracing, and batched
//!    verification pre-warm via the [`VerifyPool`]. Per-node trace
//!    buffers are then drained, merged by hint, fed to the invariant
//!    monitor, and retained under the per-node budget.
//!
//! Every shared-state mutation happens in a sequential phase in an order
//! derived only from canonical keys — never from thread interleaving —
//! so for any seed the chain digests, monitor verdicts, and exported
//! traces are byte-identical at 1, 2, or N workers. The determinism gate
//! (`bench/src/bin/des_determinism.rs`) enforces exactly that.

use crate::adversary::{AdversaryShared, Outgoing};
use crate::des::queue::{OrderKey, ShardedQueue, CLASS_DELIVER, CLASS_WAKE};
use crate::event::Micros;
use crate::faults::{FaultAction, FaultEvent, FaultSchedule};
use crate::harness::{
    self, FaultReport, InjectStep, KindBytes, NodeCarry, PipelineReport, Prewarmer, SimConfig,
    SimMsg, Slot, TxRecord, TxStats, Workload, ANNOUNCE_SIZE, GENESIS_SEED, TRACE_CAP,
};
use crate::network::Network;
use algorand_core::{Node, PipelineVerifier, RoundRecord, VerifyPool, WireMessage};
use algorand_crypto::rng::Rng;
use algorand_crypto::Keypair;
use algorand_gossip::{RelayDecision, RelayMetrics, RelayState, Topology};
use algorand_ledger::Blockchain;
use algorand_obs::{
    stable_id, write_jsonl_trimmed, MonitorHandle, MonitorReport, Registry, SpanKind, TraceEvent,
    TraceObserver, Tracer, NO_NODE,
};
use algorand_txpool::PoolMetrics;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Below this many window events the parallel engine stays on the
/// calling thread: spawning workers for a handful of events costs more
/// than it saves.
const PARALLEL_THRESHOLD: usize = 192;

/// Configuration for the parallel engine.
#[derive(Clone, Debug)]
pub struct DesConfig {
    /// The shared population/workload/fault configuration.
    pub sim: SimConfig,
    /// Worker threads for the node phase (1 = run windows inline).
    /// Results are byte-identical at any value.
    pub workers: usize,
    /// Per-node cap on *retained* trace events (0 = unlimited). Events
    /// past the budget are counted as `trimmed` in the export header;
    /// the invariant monitor still observes the full stream.
    pub trace_node_budget: usize,
}

impl DesConfig {
    /// Default parallel configuration for `n` users.
    pub fn new(n: usize) -> DesConfig {
        DesConfig {
            sim: SimConfig::new(n),
            workers: 1,
            trace_node_budget: 0,
        }
    }
}

/// One queued node event.
enum DesEvent {
    Deliver { from: usize, msg: Arc<SimMsg> },
    Wake,
}

/// A global (non-node) event, handled sequentially between windows.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum GlobalKind {
    Inject,
    Fault(usize),
}

/// One event routed into a node's window inbox.
struct InEvent {
    hint: u64,
    time: Micros,
    kind: InKind,
}

enum InKind {
    Deliver { from: usize, msg: Arc<SimMsg> },
    Wake,
}

impl InEvent {
    fn class(&self) -> u8 {
        match self.kind {
            InKind::Deliver { .. } => CLASS_DELIVER,
            InKind::Wake => CLASS_WAKE,
        }
    }

    fn tiebreak(&self, node: usize) -> u64 {
        match self.kind {
            InKind::Deliver { .. } => self.hint,
            InKind::Wake => node as u64,
        }
    }
}

/// A deferred send, replayed against shared network state at the
/// barrier in `(hint, seq)` order.
struct Intent {
    hint: u64,
    seq: u64,
    time: Micros,
    from: usize,
    kind: IntentKind,
}

enum IntentKind {
    /// Gossip to every neighbour except `exclude`.
    Forward {
        msg: Arc<SimMsg>,
        exclude: Option<usize>,
    },
    /// Equivocation split: `a` to even-indexed peers, `b` to odd.
    Split { a: Arc<SimMsg>, b: Arc<SimMsg> },
}

/// All state one node's events may touch during the parallel phase.
struct NodeCell {
    id: usize,
    slot: Slot,
    relay: RelayState,
    /// This node's private trace buffer, merged canonically at barriers.
    tracer: Tracer,
    /// Earliest pending timer wake (global clock), `MAX` if none.
    next_wake: Micros,
    /// The wake time currently enqueued in the shared queue (`MAX` if
    /// none) — avoids duplicate queue entries for an unchanged wake.
    enqueued_wake: Micros,
    clock_skew: i64,
    crashed: bool,
    snapshot: Option<Vec<u8>>,
    /// Window inbox, filled by the sequential extract phase.
    inbox: Vec<InEvent>,
    /// Send intents buffered during the parallel phase.
    outbox: Vec<Intent>,
    /// Emission counter for intent ordering, monotone per window.
    out_seq: u64,
    /// Hint of the last processed event (inherited by chained wakes).
    last_hint: u64,
}

/// The parallel discrete-event simulation.
pub struct ParallelSim {
    cfg: DesConfig,
    cells: Vec<Mutex<NodeCell>>,
    keypairs: Vec<Keypair>,
    topology: Topology,
    net: Network,
    queue: ShardedQueue<DesEvent>,
    /// Global events (workload injections, scripted faults), processed
    /// sequentially between windows.
    globals: std::collections::BinaryHeap<std::cmp::Reverse<(Micros, u64, GlobalKind)>>,
    faults: Vec<FaultEvent>,
    next_churn: Micros,
    churn_epoch: u64,
    verifier: Arc<PipelineVerifier>,
    pool: VerifyPool,
    prewarm: Prewarmer,
    adversary: Arc<Mutex<AdversaryShared>>,
    workload: Option<Workload>,
    started: bool,
    restarts: usize,
    partitions_activated: usize,
    registry: Registry,
    /// Engine-owned tracer for hop/fault spans (sequential phases only).
    engine_tracer: Tracer,
    monitor: Option<MonitorHandle>,
    /// The monitor's live feed, driven manually with the merged stream.
    monitor_feed: Option<Box<dyn TraceObserver>>,
    kind_bytes: KindBytes,
    carry: HashMap<usize, NodeCarry>,
    /// Engine-global canonical order counter: event hints and delivery
    /// sequence numbers, advanced only in sequential phases.
    order: u64,
    now: Micros,
    /// Canonically merged trace, in hint order.
    retained: Vec<TraceEvent>,
    retained_per_node: Vec<usize>,
    trimmed: u64,
}

impl ParallelSim {
    /// Builds the engine: same population, topology, network, and
    /// workload construction as [`crate::runner::Simulation`], but with
    /// per-node trace buffers and a sharded queue.
    pub fn new(mut cfg: DesConfig) -> ParallelSim {
        cfg.sim.apply_injected_bug();
        let sim = &cfg.sim;
        let keypairs = sim.build_keypairs();
        let verifier = Arc::new(PipelineVerifier::new());
        let adversary = Arc::new(Mutex::new(AdversaryShared::default()));
        let registry = Registry::new();
        let trace = sim.trace;
        let monitor = (sim.monitor && trace).then(|| MonitorHandle::new(sim.monitor_config()));
        let monitor_feed = monitor.as_ref().map(MonitorHandle::observer);
        let pool_metrics = PoolMetrics::registered(&registry);
        let mut node_tracers: Vec<Tracer> = (0..sim.n_users)
            .map(|_| {
                if trace {
                    Tracer::bounded(TRACE_CAP)
                } else {
                    Tracer::disabled()
                }
            })
            .collect();
        let slots =
            harness::build_slots(sim, &keypairs, &verifier, &adversary, &pool_metrics, |i| {
                node_tracers[i].clone()
            });
        let mut topo_rng = Rng::seed_from_u64(sim.seed);
        let weights = vec![sim.stake_per_user; sim.n_users];
        let topology = Topology::weighted(sim.n_users, sim.out_degree, &weights, &mut topo_rng);
        let relay_metrics = RelayMetrics::registered(&registry);
        let cells = slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                Mutex::new(NodeCell {
                    id: i,
                    slot,
                    relay: RelayState::with_metrics(relay_metrics.clone()),
                    tracer: std::mem::take(&mut node_tracers[i]),
                    next_wake: Micros::MAX,
                    enqueued_wake: Micros::MAX,
                    clock_skew: 0,
                    crashed: false,
                    snapshot: None,
                    inbox: Vec::new(),
                    outbox: Vec::new(),
                    out_seq: 0,
                    last_hint: 0,
                })
            })
            .collect();
        let net = Network::new(sim.n_users, sim.net.clone());
        let workload = Workload::from_config(sim);
        // A few nodes per shard keeps heaps small without fragmenting.
        let n_shards = (sim.n_users / 16).clamp(1, 64);
        let n_users = sim.n_users;
        ParallelSim {
            cells,
            keypairs,
            topology,
            net,
            queue: ShardedQueue::new(n_shards),
            globals: std::collections::BinaryHeap::new(),
            faults: Vec::new(),
            next_churn: if sim.peer_churn_interval > 0 {
                sim.peer_churn_interval
            } else {
                u64::MAX
            },
            churn_epoch: 0,
            verifier,
            pool: VerifyPool::new(sim.verify_pool_workers),
            prewarm: Prewarmer::new(),
            adversary,
            workload,
            started: false,
            restarts: 0,
            partitions_activated: 0,
            registry,
            engine_tracer: if trace {
                Tracer::bounded(TRACE_CAP)
            } else {
                Tracer::disabled()
            },
            monitor,
            monitor_feed,
            kind_bytes: KindBytes::default(),
            carry: HashMap::new(),
            order: 0,
            now: 0,
            retained: Vec::new(),
            retained_per_node: vec![0; n_users],
            trimmed: 0,
            cfg,
        }
    }

    /// Installs a scripted fault schedule (accumulates, as on the serial
    /// runner).
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        let base = self.faults.len();
        let events = schedule.into_events();
        for (k, e) in events.iter().enumerate() {
            let seq = self.next_order();
            self.globals
                .push(std::cmp::Reverse((e.at, seq, GlobalKind::Fault(base + k))));
        }
        self.faults.extend(events);
    }

    /// The shared adversary state.
    pub fn adversary(&self) -> Arc<Mutex<AdversaryShared>> {
        self.adversary.clone()
    }

    /// Starts every node at time 0.
    pub fn start(&mut self) {
        assert!(!self.started, "already started");
        self.started = true;
        for i in 0..self.cells.len() {
            let hint = self.next_order();
            let outgoing = {
                let mut g = self.cells[i].lock().expect("cell");
                g.tracer.set_order_hint(hint);
                g.slot.start(0)
            };
            self.dispatch_sequential(i, outgoing, 0, hint);
            self.reschedule_sequential(i);
        }
        if let Some(wl) = &self.workload {
            let at = wl.interval;
            let seq = self.next_order();
            self.globals
                .push(std::cmp::Reverse((at, seq, GlobalKind::Inject)));
        }
    }

    /// Runs until virtual time `t_end` or until all queues drain.
    pub fn run_until(&mut self, t_end: Micros) {
        if !self.started {
            self.start();
        }
        loop {
            let next_node = self.queue.next_time();
            let next_global = self.globals.peek().map(|std::cmp::Reverse((t, _, _))| *t);
            let t = match (next_node, next_global) {
                (None, None) => break,
                (a, b) => a.unwrap_or(u64::MAX).min(b.unwrap_or(u64::MAX)),
            };
            if t > t_end {
                break;
            }
            self.now = t;
            // §8.4 peer churn: regenerate the gossip topology between
            // windows, so a window never straddles a topology change.
            while t >= self.next_churn {
                self.churn_epoch += 1;
                self.next_churn = self
                    .next_churn
                    .saturating_add(self.cfg.sim.peer_churn_interval.max(1));
                let mut rng = Rng::seed_from_u64(self.cfg.sim.seed ^ (self.churn_epoch << 32));
                let weights = vec![self.cfg.sim.stake_per_user; self.cfg.sim.n_users];
                self.topology = Topology::weighted(
                    self.cfg.sim.n_users,
                    self.cfg.sim.out_degree,
                    &weights,
                    &mut rng,
                );
            }
            // Global events at the frontier run sequentially, before any
            // node window (a fixed canonical rule on time ties).
            if next_global.is_some_and(|g| g <= next_node.unwrap_or(u64::MAX)) {
                let std::cmp::Reverse((at, _, kind)) = self.globals.pop().expect("peeked");
                match kind {
                    GlobalKind::Inject => self.inject_next_tx(at),
                    GlobalKind::Fault(idx) => {
                        let action = self.faults[idx].action.clone();
                        self.apply_fault(action, at);
                    }
                }
                continue;
            }
            // Conservative window: no event in [T, E) can schedule
            // another event below E at a different node.
            let window_end = (t + self.net.min_delay())
                .min(next_global.unwrap_or(u64::MAX))
                .min(self.next_churn)
                .min(t_end.saturating_add(1));
            self.run_window(window_end);
        }
    }

    /// Runs until every live node's chain has `rounds` rounds, or until
    /// `t_cap` virtual time passes.
    pub fn run_rounds(&mut self, rounds: u64, t_cap: Micros) {
        if !self.started {
            self.start();
        }
        loop {
            let all_done = self.cells.iter().all(|c| {
                let g = c.lock().expect("cell");
                g.crashed || g.slot.node().chain().tip().round >= rounds
            });
            if all_done {
                return;
            }
            let next_node = self.queue.next_time();
            let next_global = self.globals.peek().map(|std::cmp::Reverse((t, _, _))| *t);
            let next = match (next_node, next_global) {
                (None, None) => return,
                (a, b) => a.unwrap_or(u64::MAX).min(b.unwrap_or(u64::MAX)),
            };
            if next > t_cap {
                return;
            }
            self.run_until((next + 1_000_000).min(t_cap));
        }
    }

    // --- Window machinery ----------------------------------------------------

    /// One window: extract, parallel node phase, sequential barrier.
    fn run_window(&mut self, window_end: Micros) {
        // Phase 1 — extract: pop in canonical order, stamp hints, route.
        let popped = self.queue.pop_window(window_end);
        let mut touched: Vec<usize> = Vec::new();
        let mut n_events = 0usize;
        for (key, ev) in popped {
            let hint = self.next_order();
            n_events += 1;
            let (node, kind) = match ev {
                DesEvent::Deliver { from, msg } => (
                    key.tiebreak_node_for_deliver(),
                    InKind::Deliver { from, msg },
                ),
                DesEvent::Wake => (key.tiebreak as usize, InKind::Wake),
            };
            let mut g = self.cells[node].lock().expect("cell");
            if matches!(kind, InKind::Wake) {
                // The enqueued entry just left the queue.
                g.enqueued_wake = Micros::MAX;
            }
            if g.inbox.is_empty() {
                touched.push(node);
            }
            g.inbox.push(InEvent {
                hint,
                time: key.time,
                kind,
            });
        }
        if touched.is_empty() {
            return;
        }
        touched.sort_unstable();

        // Work units: one per honest node; all malicious nodes together,
        // so the shared coalition state mutates in canonical order.
        let n_honest = self.cfg.sim.n_users - self.cfg.sim.n_malicious;
        let mut units: Vec<Vec<usize>> = Vec::new();
        let mut malicious_unit: Vec<usize> = Vec::new();
        for &n in &touched {
            if n < n_honest {
                units.push(vec![n]);
            } else {
                malicious_unit.push(n);
            }
        }
        if !malicious_unit.is_empty() {
            units.push(malicious_unit);
        }

        // Phase 2 — node phase, parallel when it pays off.
        let ctx = UnitCtx {
            window_end,
            relay_all_blocks: self.cfg.sim.relay_all_blocks,
            ignore_catchup: self.cfg.sim.injected_bug
                == Some(crate::harness::InjectedBug::IgnoreCatchupResponses),
        };
        let cells = &self.cells;
        let workers = self.cfg.workers.max(1);
        if workers == 1 || units.len() < 2 || n_events < PARALLEL_THRESHOLD {
            for unit in &units {
                process_unit(cells, unit, &ctx);
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let units_ref = &units;
            let ctx_ref = &ctx;
            std::thread::scope(|s| {
                for _ in 0..workers.min(units.len()) - 1 {
                    s.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(unit) = units_ref.get(i) else { break };
                        process_unit(cells, unit, ctx_ref);
                    });
                }
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(unit) = units_ref.get(i) else { break };
                    process_unit(cells, unit, ctx_ref);
                }
            });
        }

        // Phase 3 — barrier: replay intents canonically, then merge
        // traces and arm wakes.
        let mut intents: Vec<Intent> = Vec::new();
        for &n in &touched {
            let mut g = self.cells[n].lock().expect("cell");
            intents.append(&mut g.outbox);
        }
        // (hint, seq) is unique: hints are per-event, and a chained wake
        // sharing its trigger's hint continues the same cell's seq run.
        intents.sort_unstable_by_key(|i| (i.hint, i.seq));
        for intent in intents {
            match intent.kind {
                IntentKind::Forward { ref msg, exclude } => {
                    let peers: Vec<usize> = self.topology.neighbors(intent.from).to_vec();
                    for p in peers {
                        if Some(p) == exclude {
                            continue;
                        }
                        self.transmit(intent.from, p, msg, intent.time, intent.hint);
                    }
                }
                IntentKind::Split { ref a, ref b } => {
                    let peers: Vec<usize> = self.topology.neighbors(intent.from).to_vec();
                    for (idx, &p) in peers.iter().enumerate() {
                        let msg = if idx % 2 == 0 { a } else { b };
                        self.transmit(intent.from, p, msg, intent.time, intent.hint);
                    }
                }
            }
        }
        for &n in &touched {
            let mut g = self.cells[n].lock().expect("cell");
            if g.next_wake < g.enqueued_wake {
                g.enqueued_wake = g.next_wake;
                let key = OrderKey {
                    time: g.next_wake,
                    class: CLASS_WAKE,
                    tiebreak: n as u64,
                };
                self.queue.schedule(n, key, DesEvent::Wake);
            }
        }
        self.flush_traces();
    }

    /// Serializes one transmission onto the shared network, tracing the
    /// hop and pre-warming the verification cache, and schedules the
    /// delivery under the next canonical sequence number.
    fn transmit(&mut self, from: usize, to: usize, msg: &Arc<SimMsg>, now: Micros, hint: u64) {
        let size = {
            let g = self.cells[to].lock().expect("cell");
            if msg.pull_based && g.relay.has_seen(&msg.id) {
                ANNOUNCE_SIZE.min(msg.size)
            } else {
                msg.size
            }
        };
        if let Some(arrival) = self.net.transmit(from, to, size, now) {
            if self.engine_tracer.is_enabled() {
                self.trace_hop(from, to, msg, size, now, arrival, hint);
            }
            {
                let g0 = self.cells[0].lock().expect("cell");
                self.prewarm.enqueue(
                    msg,
                    g0.slot.node().chain(),
                    &self.cfg.sim.params,
                    &self.pool,
                    &self.verifier,
                );
            }
            let seq = self.next_order();
            self.queue.schedule(
                to,
                OrderKey {
                    time: arrival,
                    class: CLASS_DELIVER,
                    // The low bits carry the target node so extraction
                    // can route without a payload peek; see OrderKey ext.
                    tiebreak: pack_deliver_tiebreak(seq, to),
                },
                DesEvent::Deliver {
                    from,
                    msg: msg.clone(),
                },
            );
        }
    }

    /// Per-kind byte accounting plus one causally stamped gossip-hop
    /// span per content transfer (same rules as the serial runner).
    #[allow(clippy::too_many_arguments)]
    fn trace_hop(
        &mut self,
        from: usize,
        to: usize,
        msg: &Arc<SimMsg>,
        size: usize,
        now: Micros,
        arrival: Micros,
        hint: u64,
    ) {
        let full_body = size == msg.size;
        let hop = match &msg.wire {
            WireMessage::Vote(v) => {
                self.kind_bytes.vote += size as u64;
                Some(("vote", v.round))
            }
            WireMessage::Priority(p) => {
                self.kind_bytes.priority += size as u64;
                Some(("priority", p.round))
            }
            WireMessage::Block(b) => {
                self.kind_bytes.block += size as u64;
                full_body.then_some(("block_body", b.block.round))
            }
            WireMessage::ForkProposal(f) => {
                self.kind_bytes.fork += size as u64;
                full_body.then_some(("fork_body", f.block.round))
            }
            WireMessage::Transaction(_) => {
                self.kind_bytes.tx += size as u64;
                None
            }
            WireMessage::CatchupRequest { .. } | WireMessage::CatchupResponse(_) => {
                self.kind_bytes.catchup += size as u64;
                None
            }
        };
        if let Some((label, round)) = hop {
            self.engine_tracer.set_order_hint(hint);
            self.engine_tracer
                .span(SpanKind::GossipHop, to as u32, round, now)
                .label(label)
                .id(stable_id(&msg.id))
                .peer(from as u32)
                .value(size as u64)
                .end_at(arrival);
        }
    }

    /// Drains every per-node tracer plus the engine tracer, merges by
    /// hint into one canonical stream, feeds the invariant monitor the
    /// *full* stream, and retains events under the per-node budget.
    fn flush_traces(&mut self) {
        if !self.engine_tracer.is_enabled() {
            return;
        }
        let mut batch: Vec<(u64, TraceEvent)> = Vec::new();
        for cell in &self.cells {
            let g = cell.lock().expect("cell");
            batch.extend(g.tracer.drain_with_hints());
        }
        // Engine spans last: at an equal hint, the node's own events
        // precede the hops they caused (stable sort keeps source order).
        batch.extend(self.engine_tracer.drain_with_hints());
        batch.sort_by_key(|(h, _)| *h);
        if let Some(feed) = &mut self.monitor_feed {
            for (_, ev) in &batch {
                feed.observe(ev);
            }
        }
        let budget = self.cfg.trace_node_budget;
        for (_, ev) in batch {
            let n = ev.node;
            if budget > 0 && n != NO_NODE {
                let count = &mut self.retained_per_node[n as usize];
                if *count >= budget {
                    self.trimmed += 1;
                    continue;
                }
                *count += 1;
            }
            self.retained.push(ev);
        }
    }

    // --- Sequential-phase dispatch (start, inject, restart) -----------------

    /// Immediately fans node-originated messages out onto the network —
    /// only callable from sequential phases.
    fn dispatch_sequential(
        &mut self,
        from: usize,
        outgoing: Vec<Outgoing>,
        now: Micros,
        hint: u64,
    ) {
        for o in outgoing {
            match o {
                Outgoing::Broadcast(wire) => {
                    let msg = SimMsg::new(wire);
                    self.cells[from]
                        .lock()
                        .expect("cell")
                        .relay
                        .classify(msg.id, msg.relay_slot);
                    let peers: Vec<usize> = self.topology.neighbors(from).to_vec();
                    for p in peers {
                        self.transmit(from, p, &msg, now, hint);
                    }
                }
                Outgoing::Split(wire_a, wire_b) => {
                    let msg_a = SimMsg::new(wire_a);
                    let msg_b = SimMsg::new(wire_b);
                    {
                        let mut g = self.cells[from].lock().expect("cell");
                        g.relay.classify(msg_a.id, msg_a.relay_slot);
                        g.relay.classify(msg_b.id, msg_b.relay_slot);
                    }
                    let peers: Vec<usize> = self.topology.neighbors(from).to_vec();
                    for (idx, &p) in peers.iter().enumerate() {
                        let msg = if idx % 2 == 0 { &msg_a } else { &msg_b };
                        self.transmit(from, p, msg, now, hint);
                    }
                }
            }
        }
    }

    /// Arms node `i`'s wake from its current deadline (sequential
    /// phases).
    fn reschedule_sequential(&mut self, i: usize) {
        let mut g = self.cells[i].lock().expect("cell");
        if let Some(d) = g.slot.next_deadline() {
            let d = harness::unskewed_global(d, g.clock_skew);
            if d < g.next_wake {
                g.next_wake = d;
            }
        }
        if g.next_wake < g.enqueued_wake {
            g.enqueued_wake = g.next_wake;
            let key = OrderKey {
                time: g.next_wake,
                class: CLASS_WAKE,
                tiebreak: i as u64,
            };
            drop(g);
            self.queue.schedule(i, key, DesEvent::Wake);
        }
    }

    /// Injects the next workload payment (global event).
    fn inject_next_tx(&mut self, now: Micros) {
        let Some(mut wl) = self.workload.take() else {
            return;
        };
        if wl.remaining == 0 {
            self.workload = Some(wl);
            return;
        }
        let crashed: Vec<bool> = self
            .cells
            .iter()
            .map(|c| c.lock().expect("cell").crashed)
            .collect();
        let schedule_next = |sim: &mut ParallelSim, at: Micros| {
            let seq = sim.next_order();
            sim.globals
                .push(std::cmp::Reverse((at, seq, GlobalKind::Inject)));
        };
        match wl.plan(&crashed) {
            InjectStep::Quiet => {
                self.workload = Some(wl);
            }
            InjectStep::Retry => {
                let at = now + wl.interval;
                self.workload = Some(wl);
                schedule_next(self, at);
            }
            InjectStep::Pay { sender, to, amount } => {
                let tx = wl.payment(&self.keypairs, sender, to, amount);
                let hint = self.next_order();
                let submitted = {
                    let mut g = self.cells[sender].lock().expect("cell");
                    g.tracer.set_order_hint(hint);
                    g.slot.node_mut().submit_transaction(tx.clone())
                };
                if let Some(msg) = submitted {
                    wl.commit(
                        sender,
                        amount,
                        TxRecord {
                            id: tx.id(),
                            sender,
                            submitted: now,
                        },
                    );
                    let at = now + wl.interval;
                    let again = wl.remaining > 0;
                    self.workload = Some(wl);
                    self.dispatch_sequential(sender, vec![Outgoing::Broadcast(msg)], now, hint);
                    if again {
                        schedule_next(self, at);
                    }
                } else {
                    let at = now + wl.interval;
                    self.workload = Some(wl);
                    schedule_next(self, at);
                }
            }
        }
    }

    /// Applies one scripted fault (global event).
    fn apply_fault(&mut self, action: FaultAction, now: Micros) {
        if self.engine_tracer.is_enabled() {
            let (label, node) = match &action {
                FaultAction::Partition(_) => ("partition", NO_NODE),
                FaultAction::Heal => ("heal", NO_NODE),
                FaultAction::Loss(_) => ("loss", NO_NODE),
                FaultAction::DelaySpike { .. } => ("delay_spike", NO_NODE),
                FaultAction::DelayClear => ("delay_clear", NO_NODE),
                FaultAction::Crash(i) => ("crash", *i as u32),
                FaultAction::Restart(i) => ("restart", *i as u32),
                FaultAction::ClockSkew { node, .. } => ("clock_skew", *node as u32),
            };
            let hint = self.next_order();
            self.engine_tracer.set_order_hint(hint);
            self.engine_tracer
                .span(SpanKind::Fault, node, 0, now)
                .label(label)
                .instant();
        }
        match action {
            FaultAction::Partition(spec) => {
                self.partitions_activated += 1;
                self.net.set_partition(Some(spec));
            }
            FaultAction::Heal => self.net.set_partition(None),
            FaultAction::Loss(prob) => self.net.set_loss_prob(prob),
            FaultAction::DelaySpike { factor, extra } => {
                self.net.set_delay_spike(Some((factor, extra)));
            }
            FaultAction::DelayClear => self.net.set_delay_spike(None),
            FaultAction::Crash(i) => self.crash_node(i),
            FaultAction::Restart(i) => self.restart_node(i, now),
            FaultAction::ClockSkew { node, skew } => {
                self.cells[node].lock().expect("cell").clock_skew = skew;
                self.reschedule_sequential(node);
            }
        }
    }

    fn crash_node(&mut self, i: usize) {
        let mut g = self.cells[i].lock().expect("cell");
        if g.crashed {
            return;
        }
        let Slot::Honest(node) = &g.slot else {
            debug_assert!(false, "chaos scripts crash honest nodes only");
            return;
        };
        g.snapshot = Some(node.snapshot());
        g.crashed = true;
        g.next_wake = Micros::MAX;
    }

    fn restart_node(&mut self, i: usize, now: Micros) {
        let hint = self.next_order();
        let (outgoing, local) = {
            let mut g = self.cells[i].lock().expect("cell");
            if !g.crashed {
                return;
            }
            let snapshot = g.snapshot.take().unwrap_or_default();
            if let Slot::Honest(old) = &g.slot {
                self.carry.entry(i).or_default().fold_from(old);
            }
            let alloc: Vec<_> = self
                .keypairs
                .iter()
                .map(|k| (k.pk, self.cfg.sim.stake_per_user))
                .collect();
            let genesis = Blockchain::new(self.cfg.sim.params.chain, alloc, GENESIS_SEED);
            let local = harness::skewed_local(now, g.clock_skew);
            let mut node = Node::restore(
                self.keypairs[i].clone(),
                genesis,
                self.cfg.sim.params,
                self.verifier.clone(),
                &snapshot,
                local,
            );
            node.payload_bytes = self.cfg.sim.payload_bytes;
            node.block_tx_bytes = self.cfg.sim.block_tx_bytes;
            node.set_tracer(g.tracer.clone(), i as u32);
            node.pool
                .set_metrics(PoolMetrics::registered(&self.registry));
            g.slot = Slot::Honest(Box::new(node));
            g.relay = RelayState::with_metrics(RelayMetrics::registered(&self.registry));
            g.crashed = false;
            g.tracer.set_order_hint(hint);
            let outgoing = g.slot.start(local);
            (outgoing, local)
        };
        self.restarts += 1;
        let _ = local;
        self.dispatch_sequential(i, outgoing, now, hint);
        self.reschedule_sequential(i);
    }

    fn next_order(&mut self) -> u64 {
        self.order += 1;
        self.order
    }

    // --- Results and reports -------------------------------------------------

    /// The current virtual time.
    pub fn now(&self) -> Micros {
        self.now
    }

    /// The configuration this engine runs with.
    pub fn config(&self) -> &DesConfig {
        &self.cfg
    }

    /// The network (bytes accounting).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Honest node 0's chain tip round (progress probe).
    pub fn tip_round(&self, i: usize) -> u64 {
        self.cells[i]
            .lock()
            .expect("cell")
            .slot
            .node()
            .chain()
            .tip()
            .round
    }

    /// A digest of every honest node's canonical chain — must be
    /// byte-identical for any worker count at the same seed.
    pub fn chain_digest(&self) -> [u8; 32] {
        let guards: Vec<_> = self.cells.iter().map(|c| c.lock().expect("cell")).collect();
        let slots: Vec<&Slot> = guards.iter().map(|g| &g.slot).collect();
        harness::chain_digest(&slots)
    }

    /// Per-honest-node round records including pre-crash history.
    pub fn combined_records(&self) -> Vec<Vec<RoundRecord>> {
        let guards: Vec<_> = self.cells.iter().map(|c| c.lock().expect("cell")).collect();
        let slots: Vec<&Slot> = guards.iter().map(|g| &g.slot).collect();
        harness::combined_records(&slots, &self.carry)
    }

    /// Aggregated staged-pipeline counters.
    pub fn pipeline_report(&self) -> PipelineReport {
        let guards: Vec<_> = self.cells.iter().map(|c| c.lock().expect("cell")).collect();
        let slots: Vec<&Slot> = guards.iter().map(|g| &g.slot).collect();
        harness::pipeline_report(&slots, &self.carry, &self.verifier, &self.pool)
    }

    /// Fault-injection and recovery counters.
    pub fn fault_report(&self) -> FaultReport {
        let guards: Vec<_> = self.cells.iter().map(|c| c.lock().expect("cell")).collect();
        let slots: Vec<&Slot> = guards.iter().map(|g| &g.slot).collect();
        harness::fault_report(
            &slots,
            &self.carry,
            &self.net,
            self.partitions_activated,
            self.restarts,
        )
    }

    /// End-to-end transaction metrics for the workload (if one ran).
    pub fn tx_stats(&self) -> Option<TxStats> {
        let wl = self.workload.as_ref()?;
        let combined = self.combined_records();
        let g0 = self.cells[0].lock().expect("cell");
        Some(harness::tx_stats(
            &wl.injected,
            g0.slot.node().chain(),
            &combined,
        ))
    }

    /// The transactions the workload has injected so far.
    pub fn injected_txs(&self) -> Vec<TxRecord> {
        self.workload
            .as_ref()
            .map_or_else(Vec::new, |wl| wl.injected.clone())
    }

    /// The invariant monitor's report, if one was attached. The monitor
    /// is fed the canonically merged stream, so its verdicts are
    /// worker-count independent too.
    pub fn monitor_report(&mut self) -> Option<MonitorReport> {
        self.flush_traces();
        self.monitor.as_ref().map(MonitorHandle::report)
    }

    /// Events dropped by tracer buffer caps (0 = complete stream).
    pub fn trace_dropped(&self) -> u64 {
        let mut dropped = self.engine_tracer.dropped();
        for cell in &self.cells {
            dropped += cell.lock().expect("cell").tracer.dropped();
        }
        dropped
    }

    /// Events deliberately trimmed by the per-node retention budget.
    pub fn trace_trimmed(&self) -> u64 {
        self.trimmed
    }

    /// Number of retained (exportable) trace events.
    pub fn trace_retained(&self) -> usize {
        self.retained.len()
    }

    /// The process-wide metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Exports the canonically merged trace as byte-stable JSONL, with
    /// the same bandwidth summary records as the serial runner and a
    /// `trimmed` count in the header when the per-node budget dropped
    /// events.
    pub fn export_trace(&mut self, schedule: &str) -> String {
        self.flush_traces();
        let mut events: Vec<TraceEvent> = self.retained.clone();
        let now = self.now;
        let summary = |node: u32, label: &'static str, value: u64| TraceEvent {
            kind: SpanKind::GossipHop,
            node,
            round: 0,
            step: 0,
            label: label.into(),
            start: 0,
            end: now,
            value,
            ok: true,
            id: 0,
            cause: 0,
            peer: NO_NODE,
        };
        for i in 0..self.cfg.sim.n_users {
            events.push(summary(i as u32, "uplink_total", self.net.bytes_sent(i)));
            events.push(summary(
                i as u32,
                "downlink_total",
                self.net.bytes_received(i),
            ));
        }
        if self.engine_tracer.is_enabled() {
            for (label, bytes) in self.kind_bytes.summary() {
                events.push(summary(NO_NODE, label, bytes));
            }
        }
        write_jsonl_trimmed(
            self.cfg.sim.seed,
            schedule,
            self.trace_dropped(),
            self.trimmed,
            &events,
        )
    }
}

impl OrderKey {
    /// The target node a delivery was routed to (packed into the low
    /// tiebreak bits by [`pack_deliver_tiebreak`]).
    fn tiebreak_node_for_deliver(&self) -> usize {
        (self.tiebreak & NODE_MASK) as usize
    }
}

/// Low bits of a delivery tiebreak carry the target node id so window
/// extraction can route events without inspecting payloads; high bits
/// carry the canonical sequence number, which keeps the full key
/// strictly increasing in schedule order (node ids only break ties that
/// cannot occur).
const NODE_BITS: u64 = 20;
const NODE_MASK: u64 = (1 << NODE_BITS) - 1;

fn pack_deliver_tiebreak(seq: u64, node: usize) -> u64 {
    debug_assert!((node as u64) <= NODE_MASK);
    (seq << NODE_BITS) | (node as u64 & NODE_MASK)
}

/// Read-only context shared by every work unit in one window.
struct UnitCtx {
    window_end: Micros,
    relay_all_blocks: bool,
    /// Planted defect: honest ingest swallows catch-up responses.
    ignore_catchup: bool,
}

/// Processes every inbox event of one work unit's cells in canonical
/// key order, including chained wakes that land inside the window. Only
/// per-node state is touched; sends become buffered intents.
fn process_unit(cells: &[Mutex<NodeCell>], unit: &[usize], ctx: &UnitCtx) {
    let mut guards: Vec<MutexGuard<NodeCell>> = unit
        .iter()
        .map(|&i| cells[i].lock().expect("cell"))
        .collect();
    let inboxes: Vec<Vec<InEvent>> = guards
        .iter_mut()
        .map(|g| std::mem::take(&mut g.inbox))
        .collect();
    let mut cursor = vec![0usize; guards.len()];
    loop {
        // Pick the smallest (time, class, tiebreak) among every cell's
        // next inbox entry and pending in-window wake; on an exact tie
        // between an inbox wake and the cell's own pending wake (the
        // same wake, seen twice) consume the inbox entry.
        let mut best: Option<((Micros, u8, u64), usize, bool)> = None;
        for (ci, g) in guards.iter().enumerate() {
            if let Some(e) = inboxes[ci].get(cursor[ci]) {
                let k = (e.time, e.class(), e.tiebreak(g.id));
                if best.is_none_or(|(bk, _, bl)| k < bk || (k == bk && bl)) {
                    best = Some((k, ci, false));
                }
            }
            if !g.crashed && g.next_wake < ctx.window_end {
                let k = (g.next_wake, CLASS_WAKE, g.id as u64);
                if best.is_none_or(|(bk, _, _)| k < bk) {
                    best = Some((k, ci, true));
                }
            }
        }
        let Some((_, ci, local)) = best else { break };
        let g = &mut guards[ci];
        if local {
            let t = g.next_wake;
            let hint = g.last_hint;
            run_wake(g, t, hint, false, ctx);
        } else {
            let e = &inboxes[ci][cursor[ci]];
            cursor[ci] += 1;
            match &e.kind {
                InKind::Wake => run_wake(g, e.time, e.hint, true, ctx),
                InKind::Deliver { from, msg } => run_deliver(g, e.time, e.hint, *from, msg, ctx),
            }
        }
    }
}

/// One message delivery on a node (parallel phase).
fn run_deliver(
    g: &mut NodeCell,
    time: Micros,
    hint: u64,
    from: usize,
    msg: &Arc<SimMsg>,
    ctx: &UnitCtx,
) {
    if g.crashed {
        return; // In-flight packets to a dead process.
    }
    if ctx.ignore_catchup && matches!(msg.wire, WireMessage::CatchupResponse(_)) {
        return; // Planted defect: ingest drops it.
    }
    g.last_hint = hint;
    g.tracer.set_order_hint(hint);
    let decision = g.relay.classify(msg.id, msg.relay_slot);
    if decision == RelayDecision::Duplicate {
        return;
    }
    let now_t = harness::skewed_local(time, g.clock_skew);
    let outgoing = g.slot.on_message(&msg.wire, now_t);
    // §6 discard rules, identical to the serial runner.
    let discard = g.slot.discards(&msg.wire, ctx.relay_all_blocks);
    if decision == RelayDecision::Relay && !discard {
        let seq = g.out_seq;
        g.out_seq += 1;
        g.outbox.push(Intent {
            hint,
            seq,
            // Relay-forward happens on the node's local clock, exactly
            // as on the serial runner.
            time: now_t,
            from: g.id,
            kind: IntentKind::Forward {
                msg: msg.clone(),
                exclude: Some(from),
            },
        });
    }
    buffer_outgoing(g, hint, time, outgoing);
    let round = g.slot.node().current_round();
    let horizon = g.slot.node().params().relay_stall_horizon();
    g.relay.prune(round, time, horizon);
    reschedule_local(g);
}

/// One timer wake on a node (parallel phase). `from_inbox` wakes carry
/// the staleness check; local chained wakes are exact by construction.
fn run_wake(g: &mut NodeCell, t: Micros, hint: u64, from_inbox: bool, _ctx: &UnitCtx) {
    if g.crashed {
        return;
    }
    if from_inbox && g.next_wake > t {
        return; // Stale: a newer wake supersedes this entry.
    }
    g.next_wake = Micros::MAX;
    g.last_hint = hint;
    g.tracer.set_order_hint(hint);
    let local = harness::skewed_local(t, g.clock_skew);
    let outgoing = g.slot.on_tick(local);
    buffer_outgoing(g, hint, t, outgoing);
    let round = g.slot.node().current_round();
    let horizon = g.slot.node().params().relay_stall_horizon();
    g.relay.prune(round, t, horizon);
    reschedule_local(g);
}

/// Buffers node-originated messages as send intents (the serial
/// runner's `dispatch`, deferred to the barrier). Origin-relay marking
/// is per-node state and happens here.
fn buffer_outgoing(g: &mut NodeCell, hint: u64, global_time: Micros, outgoing: Vec<Outgoing>) {
    for o in outgoing {
        match o {
            Outgoing::Broadcast(wire) => {
                let msg = SimMsg::new(wire);
                // Mark as seen so an echoed copy is not re-processed.
                g.relay.classify(msg.id, msg.relay_slot);
                let seq = g.out_seq;
                g.out_seq += 1;
                g.outbox.push(Intent {
                    hint,
                    seq,
                    time: global_time,
                    from: g.id,
                    kind: IntentKind::Forward { msg, exclude: None },
                });
            }
            Outgoing::Split(wire_a, wire_b) => {
                let a = SimMsg::new(wire_a);
                let b = SimMsg::new(wire_b);
                g.relay.classify(a.id, a.relay_slot);
                g.relay.classify(b.id, b.relay_slot);
                let seq = g.out_seq;
                g.out_seq += 1;
                g.outbox.push(Intent {
                    hint,
                    seq,
                    time: global_time,
                    from: g.id,
                    kind: IntentKind::Split { a, b },
                });
            }
        }
    }
}

/// Folds the node's next deadline into its pending wake (parallel
/// phase: cell state only; the barrier arms the shared queue).
fn reschedule_local(g: &mut NodeCell) {
    if let Some(d) = g.slot.next_deadline() {
        let d = harness::unskewed_global(d, g.clock_skew);
        if d < g.next_wake {
            g.next_wake = d;
        }
    }
}
