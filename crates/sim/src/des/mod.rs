//! Parallel discrete-event simulation core.
//!
//! [`queue`] holds the sharded future-event set with its shard-stable
//! ordering key; [`engine`] holds the conservative-lookahead window
//! engine ([`ParallelSim`]) that runs node phases in parallel while
//! keeping every result byte-identical to a single-worker run.

pub mod engine;
pub mod queue;

pub use engine::{DesConfig, ParallelSim};
pub use queue::{OrderKey, ShardedQueue, CLASS_DELIVER, CLASS_WAKE};
