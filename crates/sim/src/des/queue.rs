//! Sharded event queues with a shard-count-independent pop order.
//!
//! The parallel engine partitions future events across shards (node id
//! modulo shard count) so that scheduling and window extraction touch
//! small heaps instead of one global one. Correctness does not depend on
//! the partition: every event carries an [`OrderKey`] that is globally
//! unique and assigned only in sequential engine phases, and
//! [`ShardedQueue::pop_window`] merges the per-shard drains back into
//! exactly the order a single heap would produce. The property test
//! below (and `tests/des.rs`) pins that invariant for 1, 2, and 8
//! shards.

use crate::event::Micros;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Ordering class for deliveries: at the same instant, a message
/// delivery is processed before a timer wake (a fixed, documented rule —
/// what matters is that it is independent of shard count).
pub const CLASS_DELIVER: u8 = 0;
/// Ordering class for timer wakes.
pub const CLASS_WAKE: u8 = 1;

/// Canonical, shard-stable ordering key: `(time, class, tiebreak)`.
///
/// Delivery tiebreaks are engine-global sequence numbers handed out in
/// the sequential barrier phase (sends are serialized there in canonical
/// order); wake tiebreaks are node ids. Both are independent of how the
/// queue is sharded and of worker-thread interleaving, so the sorted pop
/// order is too.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct OrderKey {
    /// Virtual time of the event.
    pub time: Micros,
    /// [`CLASS_DELIVER`] or [`CLASS_WAKE`].
    pub class: u8,
    /// Engine-global delivery sequence number, or the waking node id.
    pub tiebreak: u64,
}

struct Entry<T> {
    key: OrderKey,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A future-event set partitioned by node across `n_shards` binary
/// heaps, with payloads stored inline (no side-table indirection).
pub struct ShardedQueue<T> {
    shards: Vec<BinaryHeap<Reverse<Entry<T>>>>,
    len: usize,
}

impl<T> ShardedQueue<T> {
    /// An empty queue over `n_shards` shards (at least 1).
    pub fn new(n_shards: usize) -> ShardedQueue<T> {
        let n = n_shards.max(1);
        ShardedQueue {
            shards: (0..n).map(|_| BinaryHeap::new()).collect(),
            len: 0,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules an event for `node` under `key`.
    pub fn schedule(&mut self, node: usize, key: OrderKey, item: T) {
        let shard = node % self.shards.len();
        self.shards[shard].push(Reverse(Entry { key, item }));
        self.len += 1;
    }

    /// The earliest pending event time across all shards.
    pub fn next_time(&self) -> Option<Micros> {
        self.shards
            .iter()
            .filter_map(|s| s.peek().map(|Reverse(e)| e.key.time))
            .min()
    }

    /// Drains every event with `time < end` from all shards and returns
    /// them sorted by [`OrderKey`] — the same sequence a single global
    /// heap would pop, whatever the shard count.
    pub fn pop_window(&mut self, end: Micros) -> Vec<(OrderKey, T)> {
        let mut out = Vec::new();
        for shard in &mut self.shards {
            while shard.peek().is_some_and(|Reverse(e)| e.key.time < end) {
                let Reverse(e) = shard.pop().expect("peeked");
                out.push((e.key, e.item));
            }
        }
        self.len -= out.len();
        // Each shard drains in key order; a final sort merges the runs.
        // Keys are globally unique, so the order is total.
        out.sort_unstable_by_key(|(k, _)| *k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algorand_crypto::rng::Rng;

    /// Builds a randomized batch of (node, key) pairs with unique keys,
    /// mimicking the engine's mix of delivery and wake events.
    fn random_batch(seed: u64, n: usize) -> Vec<(usize, OrderKey)> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let node = rng.gen_range_usize(97);
                let time = rng.gen_range_u64(1_000);
                let class = if rng.gen_range_u64(2) == 0 {
                    CLASS_DELIVER
                } else {
                    CLASS_WAKE
                };
                // Unique tiebreak makes the key total, as in the engine
                // (delivery seqs are globally unique; wakes are deduped
                // per node before scheduling).
                (
                    node,
                    OrderKey {
                        time,
                        class,
                        tiebreak: i as u64,
                    },
                )
            })
            .collect()
    }

    fn drain_with_shards(batch: &[(usize, OrderKey)], n_shards: usize) -> Vec<OrderKey> {
        let mut q = ShardedQueue::new(n_shards);
        for &(node, key) in batch {
            q.schedule(node, key, node);
        }
        let mut out = Vec::new();
        // Drain in several windows to exercise partial pops too.
        for end in [250, 500, 750, u64::MAX] {
            for (k, item) in q.pop_window(end) {
                assert_eq!(item % n_shards.max(1), k_shard(k, item, n_shards));
                out.push(k);
            }
        }
        assert!(q.is_empty());
        out
    }

    fn k_shard(_k: OrderKey, node: usize, n_shards: usize) -> usize {
        node % n_shards.max(1)
    }

    #[test]
    fn pop_order_is_identical_across_1_2_and_8_shards() {
        for seed in [7u64, 21, 1234, 9_999] {
            let batch = random_batch(seed, 500);
            let one = drain_with_shards(&batch, 1);
            let two = drain_with_shards(&batch, 2);
            let eight = drain_with_shards(&batch, 8);
            assert_eq!(one, two, "seed {seed}: 1 vs 2 shards");
            assert_eq!(one, eight, "seed {seed}: 1 vs 8 shards");
            // And the merged order is the canonical sorted order.
            let mut sorted = one.clone();
            sorted.sort();
            assert_eq!(one, sorted, "seed {seed}: canonical order");
        }
    }

    #[test]
    fn deliveries_sort_before_wakes_at_the_same_instant() {
        let mut q = ShardedQueue::new(4);
        q.schedule(
            3,
            OrderKey {
                time: 10,
                class: CLASS_WAKE,
                tiebreak: 3,
            },
            "wake",
        );
        q.schedule(
            5,
            OrderKey {
                time: 10,
                class: CLASS_DELIVER,
                tiebreak: 99,
            },
            "deliver",
        );
        let popped = q.pop_window(11);
        assert_eq!(
            popped.iter().map(|(_, s)| *s).collect::<Vec<_>>(),
            vec!["deliver", "wake"]
        );
    }

    #[test]
    fn next_time_spans_all_shards() {
        let mut q: ShardedQueue<()> = ShardedQueue::new(3);
        assert_eq!(q.next_time(), None);
        q.schedule(
            0,
            OrderKey {
                time: 50,
                class: CLASS_DELIVER,
                tiebreak: 0,
            },
            (),
        );
        q.schedule(
            2,
            OrderKey {
                time: 20,
                class: CLASS_WAKE,
                tiebreak: 2,
            },
            (),
        );
        assert_eq!(q.next_time(), Some(20));
        // Window end is exclusive.
        assert_eq!(q.pop_window(20).len(), 0);
        assert_eq!(q.pop_window(51).len(), 2);
    }
}
