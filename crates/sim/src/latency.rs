//! Inter-city network latency model (§10).
//!
//! The paper assigns each EC2 VM to one of 20 major cities and models
//! pairwise latency from inter-city ping measurements \[53\]. We derive
//! one-way latencies from great-circle distances between the same kind of
//! city set: distance over an effective propagation speed of 200,000 km/s
//! (light in fibre, with routing slack) plus a fixed per-hop overhead.
//! This produces the familiar 1–150 ms range of WonderNetwork's tables
//! without transcribing them.

use crate::event::Micros;

/// (name, latitude°, longitude°) for the 20 modelled cities.
pub const CITIES: [(&str, f64, f64); 20] = [
    ("New York", 40.7, -74.0),
    ("London", 51.5, -0.1),
    ("Tokyo", 35.7, 139.7),
    ("Sydney", -33.9, 151.2),
    ("Singapore", 1.4, 103.8),
    ("Frankfurt", 50.1, 8.7),
    ("San Francisco", 37.8, -122.4),
    ("Sao Paulo", -23.6, -46.6),
    ("Mumbai", 19.1, 72.9),
    ("Seoul", 37.6, 127.0),
    ("Moscow", 55.8, 37.6),
    ("Dubai", 25.2, 55.3),
    ("Johannesburg", -26.2, 28.0),
    ("Toronto", 43.7, -79.4),
    ("Paris", 48.9, 2.4),
    ("Amsterdam", 52.4, 4.9),
    ("Hong Kong", 22.3, 114.2),
    ("Los Angeles", 34.1, -118.2),
    ("Chicago", 41.9, -87.6),
    ("Stockholm", 59.3, 18.1),
];

/// Effective one-way propagation speed in km/s.
const PROPAGATION_KM_PER_S: f64 = 200_000.0;
/// Fixed overhead per message (routing, last mile), one way.
const BASE_OVERHEAD_US: f64 = 2_500.0;
/// Latency between two users in the same city.
const SAME_CITY_US: f64 = 1_000.0;

/// Great-circle distance between two cities in kilometres.
fn haversine_km(a: (f64, f64), b: (f64, f64)) -> f64 {
    let (lat1, lon1) = (a.0.to_radians(), a.1.to_radians());
    let (lat2, lon2) = (b.0.to_radians(), b.1.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * 6371.0 * h.sqrt().asin()
}

/// A precomputed one-way latency matrix between the modelled cities.
#[derive(Clone, Debug)]
pub struct LatencyMatrix {
    micros: Vec<Vec<Micros>>,
}

impl Default for LatencyMatrix {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyMatrix {
    /// Builds the matrix from the city table.
    pub fn new() -> LatencyMatrix {
        let n = CITIES.len();
        let mut micros = vec![vec![0u64; n]; n];
        for i in 0..n {
            for j in 0..n {
                micros[i][j] = if i == j {
                    SAME_CITY_US as u64
                } else {
                    let km = haversine_km((CITIES[i].1, CITIES[i].2), (CITIES[j].1, CITIES[j].2));
                    (km / PROPAGATION_KM_PER_S * 1e6 + BASE_OVERHEAD_US) as u64
                };
            }
        }
        LatencyMatrix { micros }
    }

    /// Number of cities.
    pub fn n_cities(&self) -> usize {
        self.micros.len()
    }

    /// One-way latency between two cities, in microseconds.
    pub fn one_way(&self, from_city: usize, to_city: usize) -> Micros {
        self.micros[from_city][to_city]
    }

    /// The smallest one-way latency over all city pairs — the lookahead
    /// contract the conservative parallel DES engine builds on: no
    /// message sent at time `t` can arrive before `t + min_one_way()`
    /// (before jitter; see [`crate::network::Network::min_delay`] for the
    /// jitter- and fault-adjusted bound).
    pub fn min_one_way(&self) -> Micros {
        self.micros
            .iter()
            .flat_map(|row| row.iter().copied())
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn city_index(name: &str) -> usize {
        CITIES.iter().position(|c| c.0 == name).unwrap()
    }

    #[test]
    fn matrix_is_symmetric_and_positive() {
        let m = LatencyMatrix::new();
        for i in 0..m.n_cities() {
            for j in 0..m.n_cities() {
                assert_eq!(m.one_way(i, j), m.one_way(j, i));
                assert!(m.one_way(i, j) >= 1_000);
            }
        }
    }

    #[test]
    fn same_city_is_fast() {
        let m = LatencyMatrix::new();
        assert_eq!(m.one_way(3, 3), 1_000);
    }

    #[test]
    fn min_one_way_is_the_same_city_latency() {
        let m = LatencyMatrix::new();
        assert_eq!(m.min_one_way(), 1_000);
        for i in 0..m.n_cities() {
            for j in 0..m.n_cities() {
                assert!(m.one_way(i, j) >= m.min_one_way());
            }
        }
    }

    #[test]
    fn plausible_known_distances() {
        let m = LatencyMatrix::new();
        let ny = city_index("New York");
        let london = city_index("London");
        let sydney = city_index("Sydney");
        // New York ↔ London: ~5,570 km → ~30 ms one way.
        let nl = m.one_way(ny, london);
        assert!((20_000..45_000).contains(&nl), "NY-London {nl}µs");
        // London ↔ Sydney: ~17,000 km → ~85-95 ms one way.
        let ls = m.one_way(london, sydney);
        assert!((70_000..120_000).contains(&ls), "London-Sydney {ls}µs");
        // Far pairs are slower than near pairs.
        assert!(ls > 2 * nl);
    }
}
