//! Analytic large-scale model for the 500,000-user experiment (Figure 6).
//!
//! At 500 processes per VM the paper's testbed is bandwidth-bound — they
//! even replace signature verification with equal-duration sleeps — so
//! per-hop event simulation adds nothing but cost. This model computes
//! round latency from the same mechanics the event simulator implements
//! explicitly:
//!
//! * gossip dissemination takes `hops × (serialization + latency)` where
//!   hops is the random-graph diameter, logarithmic in the user count
//!   (§8.4, \[45\]);
//! * each BA⋆ step is one committee-vote dissemination;
//! * the common case takes the reduction (2 steps), BinaryBA⋆ step 1, and
//!   the final step (§7: "4 interactive steps").
//!
//! Bandwidth sharing is a parameter: Figure 6's configuration divides each
//! VM's 1 Gbit/s NIC among 500 processes, a ~12.5× tighter budget than the
//! 20 Mbit/s cap of Figure 5, which is why its latencies are ~4× higher.

use algorand_ba::VoteMessage;
use algorand_core::AlgorandParams;

/// Inputs to the analytic model.
#[derive(Clone, Copy, Debug)]
pub struct EpidemicConfig {
    /// Number of users.
    pub n_users: usize,
    /// Block size in bytes.
    pub block_bytes: usize,
    /// Effective per-process bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// Mean one-way latency between peers in seconds.
    pub mean_latency_s: f64,
    /// Gossip fan-out (each hop transmits to this many peers).
    pub fanout: usize,
    /// Effective per-message transmission redundancy after dedup.
    ///
    /// A relay dials `fanout` peers but most already hold the message by
    /// the time it forwards (duplicate suppression, §4); measurements of
    /// gossip networks put the effective copies-per-node near 2.
    pub redundancy: f64,
    /// Expected committee size per step.
    pub tau_step: f64,
    /// Vote threshold fraction: a step concludes once this fraction of the
    /// committee's votes has arrived, not all of them.
    pub threshold: f64,
}

impl EpidemicConfig {
    /// The Figure 6 configuration for `n` users: 500 users/VM sharing a
    /// 1 Gbit/s NIC, paper-scale committees.
    pub fn figure6(n_users: usize) -> EpidemicConfig {
        let params = AlgorandParams::paper();
        EpidemicConfig {
            n_users,
            block_bytes: 1 << 20,
            bandwidth_bps: 1e9 / 500.0,
            mean_latency_s: 0.06,
            fanout: 8,
            redundancy: 2.0,
            tau_step: params.ba.tau_step,
            threshold: params.ba.t_step,
        }
    }

    /// Gossip hops to reach (almost) every user: the diameter of a random
    /// graph with this fan-out, `⌈ln n / ln fanout⌉` \[45\].
    pub fn hops(&self) -> f64 {
        if self.n_users <= 1 {
            return 0.0;
        }
        ((self.n_users as f64).ln() / (self.fanout as f64).ln()).ceil()
    }

    /// Time to gossip a message of `bytes` to the whole network.
    ///
    /// Per hop a relay transmits the message to `fanout` peers over its
    /// own uplink (serialization) and the last copy must still propagate
    /// (latency).
    pub fn dissemination_s(&self, bytes: usize) -> f64 {
        let tx = (bytes as f64) * 8.0 * self.redundancy / self.bandwidth_bps;
        self.hops() * (tx + self.mean_latency_s)
    }

    /// Time for one BA⋆ voting step: committee votes disseminate to all.
    ///
    /// Votes from τ members travel concurrently; the per-relay uplink
    /// must carry all τ vote copies once, so serialization is τ votes.
    pub fn step_s(&self) -> f64 {
        let vote_bytes = VoteMessage::WIRE_SIZE;
        let tx = (vote_bytes as f64) * 8.0 * self.redundancy * self.tau_step * self.threshold
            / self.bandwidth_bps;
        self.hops() * self.mean_latency_s + tx
    }

    /// Common-case round latency: proposal wait + priority gossip + block
    /// dissemination + 3 vote steps (reduction ×2, BinaryBA⋆ step 1) +
    /// the final step.
    pub fn round_latency_s(&self, params: &AlgorandParams) -> f64 {
        let wait = params.proposal_wait() as f64 / 1e6;
        let block = self.dissemination_s(self.block_bytes);
        let steps = 3.0 * self.step_s();
        let final_step = self.step_s() * (params.ba.tau_final / self.tau_step.max(1.0));
        wait + block + steps + final_step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_grow_logarithmically() {
        let h50k = EpidemicConfig::figure6(50_000).hops();
        let h500k = EpidemicConfig::figure6(500_000).hops();
        assert!(h500k > h50k);
        assert!(h500k - h50k <= 2.0, "50k→500k adds ≤2 hops");
    }

    #[test]
    fn latency_nearly_flat_in_users() {
        // The Figure 6 headline: 10× the users costs only a small constant
        // factor in latency.
        let params = AlgorandParams::paper();
        let l50k = EpidemicConfig::figure6(50_000).round_latency_s(&params);
        let l500k = EpidemicConfig::figure6(500_000).round_latency_s(&params);
        assert!(l500k < l50k * 1.4, "l50k={l50k} l500k={l500k}");
        assert!(l500k > l50k, "more users must not be faster");
    }

    #[test]
    fn figure6_regime_slower_than_figure5_regime() {
        // Figure 6's latency is ~4× Figure 5's for the same user count,
        // because 500 processes share each VM's NIC.
        let params = AlgorandParams::paper();
        let fig6 = EpidemicConfig::figure6(50_000);
        let mut fig5 = fig6;
        fig5.bandwidth_bps = 20e6;
        let l6 = fig6.round_latency_s(&params);
        let l5 = fig5.round_latency_s(&params);
        assert!(l6 > 2.0 * l5, "fig6={l6} fig5={l5}");
    }

    #[test]
    fn bigger_blocks_take_longer() {
        let params = AlgorandParams::paper();
        let mut c = EpidemicConfig::figure6(50_000);
        let l1 = c.round_latency_s(&params);
        c.block_bytes = 10 << 20;
        let l10 = c.round_latency_s(&params);
        assert!(l10 > l1 + 1.0, "l1={l1} l10={l10}");
    }
}
