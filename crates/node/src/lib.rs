//! A real Algorand node process around the sans-io core.
//!
//! The paper's §10 evaluation runs Algorand as 1,000 real processes on
//! EC2 VMs; everything in this repository up to now drove
//! [`algorand_core::Node`] from the deterministic simulator instead. This
//! crate is the first production-shaped layer: the *same* sans-io node,
//! driven by real sockets and a real clock.
//!
//! ```text
//!            ┌────────────────────────────────────────────┐
//!            │                 runtime                    │
//!            │  ┌──────────┐   events    ┌─────────────┐  │
//!  TCP ──────┼─►│ transport├────────────►│  core::Node │  │
//!  peers ◄───┼──┤ (threads)│◄────────────┤  (sans-io)  │  │
//!            │  └──────────┘   gossip    └──────┬──────┘  │
//!            │   ▲   hello/peers/status         │ agreed  │
//!            │   │                              ▼ rounds  │
//!            │  ┌┴─────────┐               ┌──────────┐   │
//!            │  │ blocksync│               │   WAL    │   │
//!            │  └──────────┘               └──────────┘   │
//!            └────────────────────────────────────────────┘
//! ```
//!
//! * [`transport`] — threaded TCP speaking the existing
//!   [`algorand_core::wire`] codec inside length-delimited frames, with
//!   static peers plus gossip-learned peer exchange and per-peer bounded
//!   send queues (backpressure drops, never blocks consensus);
//! * [`wal`] — a CRC-guarded write-ahead log of finalized
//!   `(block, certificate)` pairs and periodic
//!   [`algorand_core::Node::snapshot`] checkpoints, with truncated-tail
//!   recovery, so `kill -9` + restart replays from disk;
//! * [`blocksync`] — fetches deep history from the most advanced peer in
//!   bounded §8.3 catch-up batches after a restart or fresh join;
//! * [`config`] — the node's config file (keys, peers, genesis, WAL dir)
//!   and the deterministic key/workload derivations shared with the
//!   simulator so a localhost deployment finalizes the *same chain
//!   digest* as `sim::runner` under the same seed;
//! * [`runtime`] — the single-threaded event loop tying it together, and
//!   the `algorand-node` binary's whole substance;
//! * [`telemetry`] — the scrape client for the TELEMETRY frame (metrics
//!   exposition + flight-recorder dump served on the peer port) and the
//!   cluster-health merger behind the `cluster_health` report;
//! * [`crash`] — a panic hook that dumps the flight recorder and last
//!   WAL round to `<wal_dir>/crash.jsonl` on the way down.
//!
//! The split keeps the property the CADP formal-model line of work
//! emphasizes: the consensus core never learns whether its driver is a
//! simulator or a socket.

pub mod blocksync;
pub mod config;
pub mod crash;
pub mod frame;
pub mod runtime;
pub mod telemetry;
pub mod transport;
pub mod wal;

pub use config::NodeConfig;
pub use runtime::{RunSummary, Runtime};
pub use wal::{Wal, WalReplay};
