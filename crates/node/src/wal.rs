//! Write-ahead log of finalized rounds, with crash recovery.
//!
//! Every round the node finalizes is appended as a `(block, certificate)`
//! record; periodically the whole [`algorand_core::Node::snapshot`] is
//! appended as a checkpoint so replay cost stays bounded. Each record is
//! guarded by a CRC so a `kill -9` mid-write — the torn tail every
//! append-only log must survive — is detected and truncated away rather
//! than misread.
//!
//! On-disk framing, all integers little-endian via the repo codec:
//!
//! ```text
//! record   := [u32 payload_len][u32 crc32(payload)][payload]
//! payload  := 0x01  u64 round  block  certificate     (entry)
//!           | 0x02  snapshot-bytes                    (checkpoint)
//! ```
//!
//! Replay folds the log into a single [`algorand_core::Node::snapshot`]-
//! format buffer: start from the last intact checkpoint (or an empty
//! snapshot) and splice each later consecutive entry's pair bytes onto
//! it. The result feeds [`algorand_core::Node::restore`], which trusts
//! nothing — every certificate is re-validated — so WAL corruption can
//! shorten the recovered chain but never forge it.

use algorand_ba::Certificate;
use algorand_crypto::codec::{Reader, WriteExt};
use algorand_ledger::Block;
use algorand_obs::{Counter, HistHandle, Registry};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

const KIND_ENTRY: u8 = 1;
const KIND_CHECKPOINT: u8 = 2;

/// Largest payload `open` will believe; anything bigger is treated as a
/// corrupt length and truncated. Generous next to the 32 MiB transport
/// frame cap since checkpoints carry whole chains.
const MAX_RECORD: usize = 256 << 20;

/// Byte length of the entry-payload prefix (kind byte + `u64` round)
/// that precedes the spliceable `(block, certificate)` bytes.
const ENTRY_PREFIX: usize = 9;

/// What a [`Wal::open`] replay recovered.
#[derive(Debug)]
pub struct WalReplay {
    /// [`algorand_core::Node::snapshot`]-format bytes: the last
    /// checkpoint with every later consecutive entry spliced on. Empty
    /// chain if the log was empty or unusable.
    pub snapshot: Vec<u8>,
    /// Highest consecutive round the snapshot carries.
    pub tip: u64,
    /// Intact entry records seen (including ones a checkpoint subsumed).
    pub entries: usize,
    /// Intact checkpoint records seen.
    pub checkpoints: usize,
    /// Bytes of torn/corrupt tail discarded by truncation.
    pub truncated_bytes: u64,
}

/// Registry-backed durability metrics: append/fsync/checkpoint timings
/// and record counts. Attach with [`Wal::set_metrics`]; a bare [`Wal`]
/// (tests, tools) records nothing.
pub struct WalMetrics {
    entries: Counter,
    checkpoints: Counter,
    append_us: HistHandle,
    fsync_us: HistHandle,
    checkpoint_us: HistHandle,
}

impl WalMetrics {
    /// Registers the WAL's metric set into `registry`.
    pub fn new(registry: &Registry) -> WalMetrics {
        WalMetrics {
            entries: registry.counter("wal.entries"),
            checkpoints: registry.counter("wal.checkpoints"),
            append_us: registry.histogram("wal.append_us"),
            fsync_us: registry.histogram("wal.fsync_us"),
            checkpoint_us: registry.histogram("wal.checkpoint_us"),
        }
    }
}

/// An open write-ahead log positioned for appending.
pub struct Wal {
    file: File,
    path: PathBuf,
    metrics: Option<WalMetrics>,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, replays it, and
    /// truncates any torn tail so the file ends on a record boundary.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; corruption is not an error, it just
    /// bounds what the replay recovers.
    pub fn open(path: &Path) -> io::Result<(Wal, WalReplay)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut replay = WalReplay {
            snapshot: empty_snapshot(),
            tip: 0,
            entries: 0,
            checkpoints: 0,
            truncated_bytes: 0,
        };
        // Running snapshot body: header fields plus concatenated pairs.
        let mut finalized_through = 0u64;
        let mut pairs = 0u32;
        let mut body: Vec<u8> = Vec::new();

        let mut pos = 0usize;
        let valid_end = loop {
            if bytes.len() - pos < 8 {
                break pos; // Torn or absent header.
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
            if len == 0 || len > MAX_RECORD || bytes.len() - pos - 8 < len {
                break pos; // Corrupt length or torn payload.
            }
            let payload = &bytes[pos + 8..pos + 8 + len];
            if crc32(payload) != crc {
                break pos; // Bit rot or torn write.
            }
            match payload[0] {
                KIND_ENTRY if len > ENTRY_PREFIX => {
                    let round = u64::from_le_bytes(payload[1..ENTRY_PREFIX].try_into().unwrap());
                    replay.entries += 1;
                    if round == finalized_through + 1 {
                        body.extend_from_slice(&payload[ENTRY_PREFIX..]);
                        finalized_through = round;
                        pairs += 1;
                    }
                    // Stale (≤ checkpoint) or gapped rounds are skipped:
                    // restore can't use non-consecutive history anyway.
                }
                KIND_CHECKPOINT => {
                    // A checkpoint supersedes everything before it.
                    let snap = &payload[1..];
                    let mut r = Reader::new(snap);
                    if let (Ok(ft), Ok(n)) = (r.u64(), r.u32()) {
                        replay.checkpoints += 1;
                        finalized_through = ft;
                        pairs = n;
                        body.clear();
                        body.extend_from_slice(&snap[12..]);
                    }
                }
                _ => break pos, // Unknown kind: treat as corruption.
            }
            pos += 8 + len;
        };

        if valid_end < bytes.len() {
            replay.truncated_bytes = (bytes.len() - valid_end) as u64;
            file.set_len(valid_end as u64)?;
        }
        file.seek(SeekFrom::Start(valid_end as u64))?;

        let mut snapshot = Vec::with_capacity(12 + body.len());
        snapshot.put_u64(finalized_through);
        snapshot.put_u32(pairs);
        snapshot.extend_from_slice(&body);
        replay.snapshot = snapshot;
        replay.tip = finalized_through;

        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                metrics: None,
            },
            replay,
        ))
    }

    /// Attaches durability metrics; subsequent appends are timed.
    pub fn set_metrics(&mut self, metrics: WalMetrics) {
        self.metrics = Some(metrics);
    }

    /// Appends one finalized round and syncs it to disk.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn append_entry(
        &mut self,
        round: u64,
        block: &Block,
        cert: &Certificate,
    ) -> io::Result<()> {
        let started = Instant::now();
        let mut payload = Vec::new();
        payload.put_u8(KIND_ENTRY);
        payload.put_u64(round);
        block.encode(&mut payload);
        cert.encode(&mut payload);
        self.append_record(&payload)?;
        if let Some(m) = &self.metrics {
            m.entries.inc();
            m.append_us.record(started.elapsed().as_micros() as u64);
        }
        Ok(())
    }

    /// Appends a [`algorand_core::Node::snapshot`] checkpoint and syncs
    /// it to disk.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn append_checkpoint(&mut self, snapshot: &[u8]) -> io::Result<()> {
        let started = Instant::now();
        let mut payload = Vec::with_capacity(1 + snapshot.len());
        payload.put_u8(KIND_CHECKPOINT);
        payload.extend_from_slice(snapshot);
        self.append_record(&payload)?;
        if let Some(m) = &self.metrics {
            m.checkpoints.inc();
            m.checkpoint_us.record(started.elapsed().as_micros() as u64);
        }
        Ok(())
    }

    fn append_record(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut rec = Vec::with_capacity(8 + payload.len());
        rec.put_u32(payload.len() as u32);
        rec.put_u32(crc32(payload));
        rec.extend_from_slice(payload);
        self.file.write_all(&rec)?;
        let fsync_started = Instant::now();
        self.file.sync_data()?;
        if let Some(m) = &self.metrics {
            m.fsync_us
                .record(fsync_started.elapsed().as_micros() as u64);
        }
        Ok(())
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current log size in bytes.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn len_bytes(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

fn empty_snapshot() -> Vec<u8> {
    let mut s = Vec::with_capacity(12);
    s.put_u64(0);
    s.put_u32(0);
    s
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the ubiquitous
/// zlib/ethernet checksum, table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use algorand_ba::StepKind;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "algorand-wal-test-{}-{name}.wal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn pair(round: u64) -> (Block, Certificate) {
        let block = Block::empty(round, [round as u8; 32], &[0x11; 32]);
        let cert = Certificate {
            round,
            step: StepKind::Final,
            value: block.hash(),
            votes: Vec::new(),
        };
        (block, cert)
    }

    /// The snapshot bytes `Node::snapshot` would produce for rounds
    /// `1..=tip` of the test chain.
    fn expected_snapshot(tip: u64) -> Vec<u8> {
        let mut out = Vec::new();
        out.put_u64(tip);
        out.put_u32(tip as u32);
        for r in 1..=tip {
            let (b, c) = pair(r);
            b.encode(&mut out);
            c.encode(&mut out);
        }
        out
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn entries_replay_into_snapshot() {
        let path = tmp("entries");
        {
            let (mut wal, replay) = Wal::open(&path).unwrap();
            assert_eq!(replay.tip, 0);
            for r in 1..=3 {
                let (b, c) = pair(r);
                wal.append_entry(r, &b, &c).unwrap();
            }
        }
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.tip, 3);
        assert_eq!(replay.entries, 3);
        assert_eq!(replay.truncated_bytes, 0);
        assert_eq!(replay.snapshot, expected_snapshot(3));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_plus_later_entries_merge() {
        let path = tmp("merge");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for r in 1..=2 {
                let (b, c) = pair(r);
                wal.append_entry(r, &b, &c).unwrap();
            }
            wal.append_checkpoint(&expected_snapshot(2)).unwrap();
            for r in 3..=4 {
                let (b, c) = pair(r);
                wal.append_entry(r, &b, &c).unwrap();
            }
        }
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.tip, 4);
        assert_eq!(replay.checkpoints, 1);
        assert_eq!(replay.snapshot, expected_snapshot(4));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_survivable() {
        let path = tmp("torn");
        let intact_len;
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for r in 1..=2 {
                let (b, c) = pair(r);
                wal.append_entry(r, &b, &c).unwrap();
            }
            intact_len = wal.len_bytes().unwrap();
        }
        // Simulate a kill -9 mid-append: a partial record at the tail.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0x40, 0, 0, 0, 0xAA, 0xBB]).unwrap();
        drop(f);

        let (wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.tip, 2);
        assert_eq!(replay.truncated_bytes, 6);
        assert_eq!(replay.snapshot, expected_snapshot(2));
        assert_eq!(wal.len_bytes().unwrap(), intact_len);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_crc_truncates_from_damage_onward() {
        let path = tmp("crc");
        let record_starts: Vec<u64>;
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            let mut starts = vec![0];
            for r in 1..=3 {
                let (b, c) = pair(r);
                wal.append_entry(r, &b, &c).unwrap();
                starts.push(wal.len_bytes().unwrap());
            }
            record_starts = starts;
        }
        // Flip a payload bit inside the *second* record.
        let mut bytes = std::fs::read(&path).unwrap();
        let hit = record_starts[1] as usize + 8 + 3;
        bytes[hit] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let (wal, replay) = Wal::open(&path).unwrap();
        // Round 1 survives; rounds 2 and 3 are gone (3 would be gapped
        // even if intact, and truncation removed it anyway).
        assert_eq!(replay.tip, 1);
        assert!(replay.truncated_bytes > 0);
        assert_eq!(replay.snapshot, expected_snapshot(1));
        assert_eq!(wal.len_bytes().unwrap(), record_starts[1]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn appending_after_truncated_reopen_stays_consistent() {
        let path = tmp("reopen");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            let (b, c) = pair(1);
            wal.append_entry(1, &b, &c).unwrap();
        }
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xFF; 11]).unwrap();
        drop(f);
        {
            let (mut wal, replay) = Wal::open(&path).unwrap();
            assert_eq!(replay.tip, 1);
            let (b, c) = pair(2);
            wal.append_entry(2, &b, &c).unwrap();
        }
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.tip, 2);
        assert_eq!(replay.snapshot, expected_snapshot(2));
        std::fs::remove_file(&path).unwrap();
    }
}
