//! Length-delimited framing for the TCP transport.
//!
//! TCP is a byte stream; the wire codec wants whole messages. Every
//! frame on a peer connection is:
//!
//! ```text
//! [u32 len (LE)] [u8 kind] [payload: len-1 bytes]
//! ```
//!
//! Kinds:
//!
//! * [`HELLO`] — first frame on every connection; payload is the
//!   sender's advertised listen address (UTF-8), so an *inbound*
//!   connection can be associated with a dialable address for peer
//!   exchange.
//! * [`GOSSIP`] — payload is one [`algorand_core::WireMessage`] encoding,
//!   exactly the bytes the simulator would put on a virtual link.
//! * [`PEERS`] — payload is a list of listen addresses
//!   (`u32 count`, then length-prefixed UTF-8 strings): gossip-learned
//!   peer exchange, §4's relay discovery stand-in.
//! * [`STATUS`] — payload is a `u64` tip round; feeds
//!   [`crate::blocksync`]'s choice of catch-up server.
//!
//! The length bound is the transport's OOM defense: a malicious or
//! corrupt peer can make us read at most [`MAX_FRAME`] bytes before the
//! codec (with its own [`algorand_core::CatchupBatch`] byte bound)
//! passes judgement.

use std::io::{self, Read, Write};

/// Handshake frame carrying the sender's advertised listen address.
pub const HELLO: u8 = 1;
/// One encoded [`algorand_core::WireMessage`].
pub const GOSSIP: u8 = 2;
/// Peer-exchange frame listing known listen addresses.
pub const PEERS: u8 = 3;
/// Tip-round announcement for blocksync server selection.
pub const STATUS: u8 = 4;

/// Largest frame a peer can make us buffer (includes the kind byte).
pub const MAX_FRAME: usize = 32 << 20;

/// Writes one frame.
///
/// # Errors
///
/// Propagates I/O failures; rejects payloads over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_frame(kind, payload)?)
}

/// Encodes one frame to bytes (for handing to a send queue whole).
///
/// # Errors
///
/// Rejects payloads over [`MAX_FRAME`].
pub fn encode_frame(kind: u8, payload: &[u8]) -> io::Result<Vec<u8>> {
    let len = payload.len() + 1;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {len} bytes exceeds {MAX_FRAME}"),
        ));
    }
    let mut out = Vec::with_capacity(4 + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.push(kind);
    out.extend_from_slice(payload);
    Ok(out)
}

/// Reads one frame, blocking until it is complete.
///
/// # Errors
///
/// Propagates I/O failures (including clean EOF as
/// [`io::ErrorKind::UnexpectedEof`]); rejects zero-length and oversized
/// frames so a garbage length prefix cannot trigger a huge allocation.
pub fn read_frame(r: &mut impl Read) -> io::Result<(u8, Vec<u8>)> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} outside 1..={MAX_FRAME}"),
        ));
    }
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind)?;
    let mut payload = vec![0u8; len - 1];
    r.read_exact(&mut payload)?;
    Ok((kind[0], payload))
}

/// Encodes a [`PEERS`] payload.
pub fn encode_peers(addrs: &[String]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(addrs.len() as u32).to_le_bytes());
    for a in addrs {
        let b = a.as_bytes();
        out.extend_from_slice(&(b.len() as u32).to_le_bytes());
        out.extend_from_slice(b);
    }
    out
}

/// Decodes a [`PEERS`] payload; `None` on any malformation.
pub fn decode_peers(payload: &[u8]) -> Option<Vec<String>> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
        let s = payload.get(*pos..*pos + n)?;
        *pos += n;
        Some(s)
    };
    let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
    if count > 1024 {
        return None; // Nobody honest advertises a thousand peers here.
    }
    let mut addrs = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        if len > 256 {
            return None;
        }
        let s = std::str::from_utf8(take(&mut pos, len)?).ok()?;
        addrs.push(s.to_string());
    }
    if pos != payload.len() {
        return None;
    }
    Some(addrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, GOSSIP, b"hello gossip").unwrap();
        write_frame(&mut buf, STATUS, &7u64.to_le_bytes()).unwrap();
        let mut cur = Cursor::new(buf);
        let (k1, p1) = read_frame(&mut cur).unwrap();
        let (k2, p2) = read_frame(&mut cur).unwrap();
        assert_eq!((k1, p1.as_slice()), (GOSSIP, b"hello gossip".as_slice()));
        assert_eq!((k2, p2.as_slice()), (STATUS, 7u64.to_le_bytes().as_slice()));
        assert_eq!(
            read_frame(&mut cur).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn oversized_and_zero_lengths_rejected() {
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        assert!(read_frame(&mut Cursor::new(huge.to_vec())).is_err());
        let zero = 0u32.to_le_bytes();
        assert!(read_frame(&mut Cursor::new(zero.to_vec())).is_err());
    }

    #[test]
    fn peers_roundtrip_and_reject_garbage() {
        let addrs = vec!["127.0.0.1:9000".to_string(), "10.0.0.2:4160".to_string()];
        let enc = encode_peers(&addrs);
        assert_eq!(decode_peers(&enc).unwrap(), addrs);
        assert!(decode_peers(&enc[..enc.len() - 1]).is_none());
        assert!(decode_peers(&[0xFF; 4]).is_none());
    }
}
