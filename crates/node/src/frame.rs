//! Length-delimited framing for the TCP transport.
//!
//! TCP is a byte stream; the wire codec wants whole messages. Every
//! frame on a peer connection is:
//!
//! ```text
//! [u32 len (LE)] [u8 kind] [payload: len-1 bytes]
//! ```
//!
//! Kinds:
//!
//! * [`HELLO`] — first frame on every connection; payload is the
//!   sender's advertised listen address (UTF-8), so an *inbound*
//!   connection can be associated with a dialable address for peer
//!   exchange.
//! * [`GOSSIP`] — payload is one [`algorand_core::WireMessage`] encoding,
//!   exactly the bytes the simulator would put on a virtual link.
//! * [`PEERS`] — payload is a list of listen addresses
//!   (`u32 count`, then length-prefixed UTF-8 strings): gossip-learned
//!   peer exchange, §4's relay discovery stand-in.
//! * [`STATUS`] — payload is the sender's telemetry-bearing status (see
//!   [`encode_status`]): tip round, trace-drop and monitor-violation
//!   counts, and per-peer send-queue drop counters. A bare 8-byte `u64`
//!   tip (the v1 format) still decodes, so mixed-version deployments
//!   interoperate. Feeds [`crate::blocksync`]'s choice of catch-up
//!   server.
//! * [`TELEMETRY`] — an on-demand scrape channel. The payload's first
//!   byte is an op code ([`TEL_METRICS_REQ`] … [`TEL_FLIGHT_RESP`]); the
//!   rest is the body (empty for requests, the metrics exposition text
//!   or flight-recorder JSONL for responses). Telemetry frames are
//!   deliberately *excluded* from the transport's frame/byte counters so
//!   that scraping a node never perturbs the numbers being scraped.
//!
//! The length bound is the transport's OOM defense: a malicious or
//! corrupt peer can make us read at most [`MAX_FRAME`] bytes before the
//! codec (with its own [`algorand_core::CatchupBatch`] byte bound)
//! passes judgement.

use std::io::{self, Read, Write};

/// Handshake frame carrying the sender's advertised listen address.
pub const HELLO: u8 = 1;
/// One encoded [`algorand_core::WireMessage`].
pub const GOSSIP: u8 = 2;
/// Peer-exchange frame listing known listen addresses.
pub const PEERS: u8 = 3;
/// Tip-round announcement for blocksync server selection.
pub const STATUS: u8 = 4;
/// On-demand telemetry scrape (op byte + body; see [`TEL_METRICS_REQ`]).
pub const TELEMETRY: u8 = 5;

/// [`TELEMETRY`] op: request the metrics exposition text.
pub const TEL_METRICS_REQ: u8 = 1;
/// [`TELEMETRY`] op: response body is the exposition text.
pub const TEL_METRICS_RESP: u8 = 2;
/// [`TELEMETRY`] op: request a flight-recorder dump.
pub const TEL_FLIGHT_REQ: u8 = 3;
/// [`TELEMETRY`] op: response body is the flight-recorder JSONL.
pub const TEL_FLIGHT_RESP: u8 = 4;
/// [`TELEMETRY`] op: drain the node's bounded trace buffer from a
/// cursor. Body is a `u64` LE buffer index (see [`encode_trace_req`]);
/// an empty body means cursor 0. The buffer keeps the *first* N events
/// in stable order, so the cursor is resumable: re-requesting an old
/// cursor returns the same events, and requesting `next_cursor` from the
/// previous response continues the drain without gaps.
pub const TEL_TRACE_REQ: u8 = 5;
/// [`TELEMETRY`] op: trace-drain response. Body is
/// `u64 next_cursor | u64 total | trace JSONL chunk` (see
/// [`encode_trace_resp`]); the chunk is a complete, independently
/// parseable trace document whose events are buffer indices
/// `[cursor, next_cursor)`. `next_cursor == total` means the drain has
/// caught up with everything recorded so far.
pub const TEL_TRACE_RESP: u8 = 6;
/// [`TELEMETRY`] op: error response when a connection exceeds its
/// telemetry token bucket. Body is empty. Clients should back off;
/// opening a new connection gets a fresh bucket.
pub const TEL_THROTTLED: u8 = 7;

/// Largest frame a peer can make us buffer (includes the kind byte).
pub const MAX_FRAME: usize = 32 << 20;

/// One node's status announcement: the consensus tip plus the telemetry
/// the operator-facing health report needs from every peer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatusInfo {
    /// The sender's finalized tip round.
    pub tip: u64,
    /// Trace events the sender's tracer dropped (buffer cap).
    pub trace_dropped: u64,
    /// Invariant violations the sender's in-process monitor has counted.
    pub monitor_violations: u64,
    /// Per-peer send-queue drop counters `(advertised addr, drops)`.
    pub peer_drops: Vec<(String, u64)>,
}

/// Encodes a [`STATUS`] payload (v2):
///
/// ```text
/// u64 tip | u64 trace_dropped | u64 monitor_violations |
/// u32 n | n × (u32 len, addr bytes, u64 drops)
/// ```
pub fn encode_status(info: &StatusInfo) -> Vec<u8> {
    let mut out = Vec::with_capacity(28 + info.peer_drops.len() * 32);
    out.extend_from_slice(&info.tip.to_le_bytes());
    out.extend_from_slice(&info.trace_dropped.to_le_bytes());
    out.extend_from_slice(&info.monitor_violations.to_le_bytes());
    out.extend_from_slice(&(info.peer_drops.len() as u32).to_le_bytes());
    for (addr, drops) in &info.peer_drops {
        let b = addr.as_bytes();
        out.extend_from_slice(&(b.len() as u32).to_le_bytes());
        out.extend_from_slice(b);
        out.extend_from_slice(&drops.to_le_bytes());
    }
    out
}

/// Decodes a [`STATUS`] payload; `None` on malformation. An 8-byte
/// payload is the v1 bare-tip format and decodes with zeroed telemetry.
pub fn decode_status(payload: &[u8]) -> Option<StatusInfo> {
    if payload.len() == 8 {
        return Some(StatusInfo {
            tip: u64::from_le_bytes(payload.try_into().ok()?),
            ..StatusInfo::default()
        });
    }
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
        let s = payload.get(*pos..*pos + n)?;
        *pos += n;
        Some(s)
    };
    let u64_at = |pos: &mut usize| -> Option<u64> {
        Some(u64::from_le_bytes(take(pos, 8)?.try_into().ok()?))
    };
    let tip = u64_at(&mut pos)?;
    let trace_dropped = u64_at(&mut pos)?;
    let monitor_violations = u64_at(&mut pos)?;
    let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
    if count > 64 {
        return None; // A node holds nowhere near 64 live peers here.
    }
    let mut peer_drops = Vec::with_capacity(count);
    for _ in 0..count {
        let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        if len > 256 {
            return None;
        }
        let addr = std::str::from_utf8(take(&mut pos, len)?).ok()?.to_string();
        let drops = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
        peer_drops.push((addr, drops));
    }
    if pos != payload.len() {
        return None;
    }
    Some(StatusInfo {
        tip,
        trace_dropped,
        monitor_violations,
        peer_drops,
    })
}

/// Encodes a [`TEL_TRACE_REQ`] body: the drain cursor, LE.
pub fn encode_trace_req(cursor: u64) -> Vec<u8> {
    cursor.to_le_bytes().to_vec()
}

/// Decodes a [`TEL_TRACE_REQ`] body. Empty means cursor 0; anything
/// other than exactly 8 bytes is malformed.
pub fn decode_trace_req(body: &[u8]) -> Option<u64> {
    if body.is_empty() {
        return Some(0);
    }
    Some(u64::from_le_bytes(body.try_into().ok()?))
}

/// Encodes a [`TEL_TRACE_RESP`] body:
/// `u64 next_cursor | u64 total | trace JSONL chunk`.
pub fn encode_trace_resp(next_cursor: u64, total: u64, jsonl: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + jsonl.len());
    out.extend_from_slice(&next_cursor.to_le_bytes());
    out.extend_from_slice(&total.to_le_bytes());
    out.extend_from_slice(jsonl.as_bytes());
    out
}

/// Decodes a [`TEL_TRACE_RESP`] body into
/// `(next_cursor, total, jsonl chunk)`; `None` on malformation.
pub fn decode_trace_resp(body: &[u8]) -> Option<(u64, u64, &str)> {
    let next_cursor = u64::from_le_bytes(body.get(..8)?.try_into().ok()?);
    let total = u64::from_le_bytes(body.get(8..16)?.try_into().ok()?);
    let jsonl = std::str::from_utf8(body.get(16..)?).ok()?;
    Some((next_cursor, total, jsonl))
}

/// Writes one frame.
///
/// # Errors
///
/// Propagates I/O failures; rejects payloads over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_frame(kind, payload)?)
}

/// Encodes one frame to bytes (for handing to a send queue whole).
///
/// # Errors
///
/// Rejects payloads over [`MAX_FRAME`].
pub fn encode_frame(kind: u8, payload: &[u8]) -> io::Result<Vec<u8>> {
    let len = payload.len() + 1;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {len} bytes exceeds {MAX_FRAME}"),
        ));
    }
    let mut out = Vec::with_capacity(4 + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.push(kind);
    out.extend_from_slice(payload);
    Ok(out)
}

/// Reads one frame, blocking until it is complete.
///
/// # Errors
///
/// Propagates I/O failures (including clean EOF as
/// [`io::ErrorKind::UnexpectedEof`]); rejects zero-length and oversized
/// frames so a garbage length prefix cannot trigger a huge allocation.
pub fn read_frame(r: &mut impl Read) -> io::Result<(u8, Vec<u8>)> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} outside 1..={MAX_FRAME}"),
        ));
    }
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind)?;
    let mut payload = vec![0u8; len - 1];
    r.read_exact(&mut payload)?;
    Ok((kind[0], payload))
}

/// Encodes a [`PEERS`] payload.
pub fn encode_peers(addrs: &[String]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(addrs.len() as u32).to_le_bytes());
    for a in addrs {
        let b = a.as_bytes();
        out.extend_from_slice(&(b.len() as u32).to_le_bytes());
        out.extend_from_slice(b);
    }
    out
}

/// Decodes a [`PEERS`] payload; `None` on any malformation.
pub fn decode_peers(payload: &[u8]) -> Option<Vec<String>> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
        let s = payload.get(*pos..*pos + n)?;
        *pos += n;
        Some(s)
    };
    let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
    if count > 1024 {
        return None; // Nobody honest advertises a thousand peers here.
    }
    let mut addrs = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        if len > 256 {
            return None;
        }
        let s = std::str::from_utf8(take(&mut pos, len)?).ok()?;
        addrs.push(s.to_string());
    }
    if pos != payload.len() {
        return None;
    }
    Some(addrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, GOSSIP, b"hello gossip").unwrap();
        write_frame(&mut buf, STATUS, &7u64.to_le_bytes()).unwrap();
        let mut cur = Cursor::new(buf);
        let (k1, p1) = read_frame(&mut cur).unwrap();
        let (k2, p2) = read_frame(&mut cur).unwrap();
        assert_eq!((k1, p1.as_slice()), (GOSSIP, b"hello gossip".as_slice()));
        assert_eq!((k2, p2.as_slice()), (STATUS, 7u64.to_le_bytes().as_slice()));
        assert_eq!(
            read_frame(&mut cur).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn oversized_and_zero_lengths_rejected() {
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        assert!(read_frame(&mut Cursor::new(huge.to_vec())).is_err());
        let zero = 0u32.to_le_bytes();
        assert!(read_frame(&mut Cursor::new(zero.to_vec())).is_err());
    }

    #[test]
    fn status_v2_roundtrips() {
        let info = StatusInfo {
            tip: 17,
            trace_dropped: 3,
            monitor_violations: 1,
            peer_drops: vec![
                ("127.0.0.1:9001".to_string(), 5),
                ("127.0.0.1:9002".to_string(), 0),
            ],
        };
        let enc = encode_status(&info);
        assert_eq!(decode_status(&enc).unwrap(), info);
        // Truncation and trailing garbage are both rejected.
        assert!(decode_status(&enc[..enc.len() - 1]).is_none());
        let mut padded = enc.clone();
        padded.push(0);
        assert!(decode_status(&padded).is_none());
    }

    #[test]
    fn status_v1_bare_tip_still_decodes() {
        let info = decode_status(&41u64.to_le_bytes()).unwrap();
        assert_eq!(info.tip, 41);
        assert_eq!(info.trace_dropped, 0);
        assert_eq!(info.monitor_violations, 0);
        assert!(info.peer_drops.is_empty());
    }

    #[test]
    fn status_mixed_version_stream_decodes() {
        // A v1 node and a v2 node announce on the same stream: both
        // decode, and neither format is mistaken for the other.
        let v2 = StatusInfo {
            tip: 12,
            trace_dropped: 1,
            monitor_violations: 0,
            peer_drops: vec![("127.0.0.1:9001".to_string(), 2)],
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, STATUS, &41u64.to_le_bytes()).unwrap();
        write_frame(&mut buf, STATUS, &encode_status(&v2)).unwrap();
        write_frame(&mut buf, STATUS, &7u64.to_le_bytes()).unwrap();
        let mut cur = Cursor::new(buf);
        let mut decoded = Vec::new();
        while let Ok((kind, payload)) = read_frame(&mut cur) {
            assert_eq!(kind, STATUS);
            decoded.push(decode_status(&payload).expect("status decodes"));
        }
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[0].tip, 41);
        assert!(decoded[0].peer_drops.is_empty());
        assert_eq!(decoded[1], v2);
        assert_eq!(decoded[2].tip, 7);
        // A v2 payload with zero peers is 28 bytes, never 8: the v1
        // sniff cannot swallow it, and truncating a v2 payload down to
        // 8 bytes decodes as the (different) v1 tip rather than v2.
        let enc = encode_status(&v2);
        assert_eq!(decode_status(&enc[..8]).unwrap().tip, v2.tip);
        assert!(decode_status(&enc[..9]).is_none());
    }

    #[test]
    fn trace_drain_bodies_roundtrip() {
        assert_eq!(decode_trace_req(&encode_trace_req(17)), Some(17));
        assert_eq!(decode_trace_req(&[]), Some(0));
        assert_eq!(decode_trace_req(&[1, 2, 3]), None);
        let body = encode_trace_resp(9, 40, "{\"trace\":\"algorand\"}\n");
        let (next, total, jsonl) = decode_trace_resp(&body).unwrap();
        assert_eq!((next, total), (9, 40));
        assert!(jsonl.starts_with("{\"trace\""));
        assert!(decode_trace_resp(&body[..15]).is_none());
        // Non-UTF-8 chunk bytes are malformed.
        let mut bad = encode_trace_resp(0, 0, "");
        bad.push(0xFF);
        assert!(decode_trace_resp(&bad).is_none());
    }

    #[test]
    fn status_with_no_peers_roundtrips() {
        let info = StatusInfo {
            tip: 9,
            trace_dropped: 0,
            monitor_violations: 0,
            peer_drops: Vec::new(),
        };
        assert_eq!(decode_status(&encode_status(&info)).unwrap(), info);
    }

    #[test]
    fn peers_roundtrip_and_reject_garbage() {
        let addrs = vec!["127.0.0.1:9000".to_string(), "10.0.0.2:4160".to_string()];
        let enc = encode_peers(&addrs);
        assert_eq!(decode_peers(&enc).unwrap(), addrs);
        assert!(decode_peers(&enc[..enc.len() - 1]).is_none());
        assert!(decode_peers(&[0xFF; 4]).is_none());
    }
}
