//! The node's event loop: sockets and a wall clock driving the sans-io
//! core.
//!
//! One thread owns the [`algorand_core::Node`]; the transport's reader
//! threads feed it through a channel. Each iteration waits for the next
//! inbound frame or the core's own deadline — whichever is sooner —
//! then:
//!
//! 1. decodes and dispatches the frame (counting and attributing decode
//!    failures by message kind and byte offset),
//! 2. applies the §4 relay rules the simulator applies (content dedup,
//!    one-message-per-key, §6 discard rules) before re-gossiping,
//! 3. persists any newly agreed round to the WAL before announcing a
//!    higher tip,
//! 4. answers blocksync (STATUS tracking, catch-up requests when
//!    behind).
//!
//! The runtime is also the node's telemetry plane: one [`Registry`]
//! threads through transport, WAL, and blocksync; the trace stream fans
//! out to an in-process [`MonitorHandle`] (the same invariant checks the
//! simulator runs offline) and a [`FlightHandle`] ring; and TELEMETRY
//! frames are answered with the byte-stable metrics exposition or a
//! flight-recorder dump — on the same port peers use, no second
//! listener.
//!
//! Exit: once the chain reaches `target_round` the loop lingers a
//! configured grace period — still serving votes and catch-up batches so
//! stragglers can finish — then checkpoints, writes its digest/status/
//! trace/metrics files into the WAL directory, and returns.

use crate::blocksync::Blocksync;
use crate::config::NodeConfig;
use crate::crash::CrashContext;
use crate::frame;
use crate::transport::{Transport, TransportEvent, TransportStats};
use crate::wal::{Wal, WalMetrics};
use algorand_ba::Micros;
use algorand_core::{Node, PipelineVerifier, WireMessage};
use algorand_gossip::{RelayDecision, RelayState};
use algorand_obs::{
    expose, fanout, stable_id, write_jsonl, FlightHandle, Histogram, MonitorHandle, Registry,
    SpanKind, Tracer,
};
use std::collections::HashSet;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Trace-buffer cap when `trace = 1` (matches the simulator's default
/// order of magnitude; bounded so long runs cannot balloon).
const TRACE_CAP: usize = 200_000;

/// Flight-recorder ring size: the most recent events, kept even after
/// the main trace buffer has filled, so a crash dump always shows what
/// happened *last*.
const FLIGHT_CAP: usize = 4096;

/// Events per TELEMETRY `TRACE_DRAIN` response chunk: large enough that
/// a localnet-scale trace drains in one or two round trips, small enough
/// that a chunk stays a few MB under [`frame::MAX_FRAME`].
const TRACE_CHUNK: usize = 16_384;

/// How often we announce our tip and poll blocksync even when idle.
const STATUS_TICK: Duration = Duration::from_millis(500);

/// Longest single wait: keeps status/blocksync responsive regardless of
/// how far away the core's next deadline is.
const MAX_WAIT: Duration = Duration::from_millis(200);

/// What a completed run did, for the binary's report and the harness.
#[derive(Debug)]
pub struct RunSummary {
    /// The configured goal round (0 = none).
    pub target_round: u64,
    /// The finalized tip when the loop exited.
    pub reached_round: u64,
    /// Hex chain digest through `target_round`, if reached.
    pub digest: Option<String>,
    /// Rounds recovered from the WAL before joining the network.
    pub wal_replayed_rounds: u64,
    /// Catch-up batch entries the core applied (blocksync progress).
    pub catchups_applied: usize,
    /// Catch-up requests blocksync issued.
    pub sync_requests: u64,
    /// Frames that failed wire decoding (each logged with kind+offset).
    pub decode_failures: u64,
    /// In-process invariant-monitor violations observed on the live
    /// trace stream (0 on a healthy node).
    pub monitor_violations: u64,
    /// True if the deadline expired before the target was reached.
    pub timed_out: bool,
    /// Transport counters at exit.
    pub transport: TransportStats,
}

impl RunSummary {
    /// True when the run did what it was asked to.
    pub fn success(&self) -> bool {
        self.target_round == 0 || (!self.timed_out && self.reached_round >= self.target_round)
    }
}

/// One node process: core, WAL, transport, blocksync, telemetry.
pub struct Runtime {
    cfg: NodeConfig,
    node: Node,
    wal: Wal,
    transport: Transport,
    relay: RelayState,
    sync: Blocksync,
    registry: Registry,
    tracer: Tracer,
    monitor: MonitorHandle,
    flight: FlightHandle,
    /// Highest round already persisted to the WAL.
    walled_through: u64,
    /// Mirror of `walled_through` the crash hook can read from any
    /// thread mid-panic.
    last_wal_round: Arc<AtomicU64>,
    wal_replayed_rounds: u64,
    wal_truncated_bytes: u64,
    wal_replay_us: u64,
    decode_failures: u64,
    /// Whether the monitor-violation alert has already been appended
    /// (the hook fires on the 0 → >0 flip, once).
    violations_alerted: bool,
    /// Peers whose drop counter already crossed the alert threshold.
    alerted_peers: HashSet<String>,
    /// Lines appended to `alerts.jsonl` this life (the `node.alerts`
    /// gauge).
    alerts_emitted: u64,
    started: Instant,
}

impl Runtime {
    /// Opens the WAL (replaying any prior life), restores or creates the
    /// core node, preloads the deterministic workload, and binds the
    /// transport.
    ///
    /// # Errors
    ///
    /// Propagates WAL/transport I/O failures.
    pub fn new(cfg: NodeConfig) -> io::Result<Runtime> {
        std::fs::create_dir_all(&cfg.wal_dir)?;
        let registry = Registry::new();

        let replay_started = Instant::now();
        let (mut wal, replay) = Wal::open(&cfg.wal_dir.join("node.wal"))?;
        let wal_replay_us = replay_started.elapsed().as_micros() as u64;
        wal.set_metrics(WalMetrics::new(&registry));
        if replay.truncated_bytes > 0 {
            registry.counter("wal.torn_truncations").inc();
        }

        let params = cfg.params();
        let verifier = Arc::new(PipelineVerifier::new());
        let mut node = if replay.tip > 0 {
            Node::restore(
                cfg.keypair(),
                cfg.genesis(),
                params,
                verifier,
                &replay.snapshot,
                0,
            )
        } else {
            Node::new(cfg.keypair(), cfg.genesis(), params, verifier)
        };
        let wal_replayed_rounds = node.chain().tip().round;

        // The deterministic shared workload: every process (and the
        // simulator's reference run) admits the same transactions before
        // round 1, so block assembly is a pure function of chain state.
        // After a WAL restore the accounts state already reflects
        // committed transactions and the pool re-admits only what is
        // still pending.
        let accounts = node.chain().accounts().clone();
        for tx in cfg.workload() {
            let _ = node.pool.admit(tx, &accounts);
        }

        // Monitor and flight recorder attach to the trace stream; both
        // are created unconditionally (the crash hook needs a flight
        // handle either way), but see no events unless tracing is on.
        // The tracer attaches *after* restore, so WAL replay — a
        // re-application of already-checked rounds — is not re-audited.
        let monitor = MonitorHandle::new(cfg.monitor_config());
        let flight = FlightHandle::new(FLIGHT_CAP);
        let tracer = if cfg.trace {
            Tracer::bounded(TRACE_CAP)
        } else {
            Tracer::disabled()
        };
        if tracer.is_enabled() {
            tracer.set_observer(fanout(vec![monitor.observer(), flight.observer()]));
            node.set_tracer(tracer.clone(), cfg.index as u32);
        }

        let transport = Transport::start_with_limit(
            &cfg.listen,
            &cfg.peers,
            registry.clone(),
            cfg.telemetry_limit(),
        )?;
        // Publish the *resolved* listen address (meaningful when the
        // config asked for an ephemeral `:0` port) so a deployment
        // harness can read each process's real endpoint and hand it to
        // later-started peers.
        write_atomic(&cfg.wal_dir.join("addr"), transport.local_addr().as_bytes())?;

        Ok(Runtime {
            cfg,
            node,
            wal,
            transport,
            relay: RelayState::new(),
            sync: Blocksync::new(),
            registry,
            tracer,
            monitor,
            flight,
            walled_through: wal_replayed_rounds,
            last_wal_round: Arc::new(AtomicU64::new(wal_replayed_rounds)),
            wal_replayed_rounds,
            wal_truncated_bytes: replay.truncated_bytes,
            wal_replay_us,
            decode_failures: 0,
            violations_alerted: false,
            alerted_peers: HashSet::new(),
            alerts_emitted: 0,
            started: Instant::now(),
        })
    }

    /// What the panic hook needs: arm this with [`crate::crash::arm`]
    /// and a panicking process dumps its flight recorder to
    /// `<wal_dir>/crash.jsonl` before dying.
    pub fn crash_context(&self) -> CrashContext {
        CrashContext {
            wal_dir: self.cfg.wal_dir.clone(),
            seed: self.cfg.seed,
            flight: self.flight.clone(),
            last_wal_round: Arc::clone(&self.last_wal_round),
        }
    }

    /// The node's live registry (tests and embedding harnesses).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Microseconds since this process started — the core's clock. WAL
    /// restore happens at 0, so a restarted process's clock restarts
    /// too; canonical timestamps keep block content clock-independent.
    fn now(&self) -> Micros {
        self.started.elapsed().as_micros() as u64
    }

    /// Runs to completion (target reached + linger, or deadline).
    ///
    /// # Errors
    ///
    /// Propagates WAL and export I/O failures. Network failures are not
    /// errors — peers come and go; the deadline is the backstop.
    pub fn run(&mut self) -> io::Result<RunSummary> {
        self.await_start_barriers();
        // The consensus clock starts *after* the barriers so every
        // process opens round 1 at local time ≈ 0, wall-aligned with
        // its peers; the deadline budget is all consensus time.
        self.started = Instant::now();
        let deadline = self.started + Duration::from_secs(self.cfg.deadline_secs);
        let outputs = self.node.start(self.now());
        self.dispatch(outputs, None);

        let mut next_status = self.started;
        let mut linger_until: Option<Instant> = None;
        let timed_out = loop {
            let wall = Instant::now();
            if wall >= deadline {
                break self.target_pending();
            }
            if let Some(t) = linger_until {
                if wall >= t {
                    break false;
                }
            }

            let wait = self.next_wait(wall, next_status, deadline);
            match self.transport.recv_timeout(wait) {
                Some(TransportEvent::Gossip { from, bytes }) => self.on_gossip(from, &bytes),
                Some(TransportEvent::Status { from, info }) => {
                    self.sync.note_status(from, info.tip);
                }
                Some(TransportEvent::Telemetry { from, op, body }) => {
                    self.on_telemetry(from, op, &body);
                }
                None => {}
            }

            // Core timers (step timeouts, recovery, watchdog).
            let now = self.now();
            if self.node.next_deadline().is_some_and(|d| d <= now) {
                let outputs = self.node.on_tick(now);
                self.dispatch(outputs, None);
            }

            self.persist_new_rounds()?;
            let horizon = self.node.params().relay_stall_horizon();
            self.relay
                .prune(self.node.current_round(), self.now(), horizon);

            let wall = Instant::now();
            if wall >= next_status {
                next_status = wall + STATUS_TICK;
                self.transport.broadcast_status(&self.status_info());
                self.write_status_file()?;
                self.check_alerts()?;
            }
            if let Some(peer) = self.sync.poll(self.node.chain().tip().round, wall) {
                let req = WireMessage::CatchupRequest {
                    have: self.node.chain().tip().round,
                    tip_hash: self.node.chain().tip_hash(),
                };
                self.transport.send_gossip_to(peer, &req.encoded());
            }

            if linger_until.is_none()
                && self.cfg.target_round > 0
                && self.node.chain().tip().round >= self.cfg.target_round
            {
                linger_until = Some(Instant::now() + Duration::from_secs(self.cfg.linger_secs));
            }
        };

        self.finish(timed_out)
    }

    /// Holds consensus back until the mesh is formed (`min_peers` live
    /// connections — gossip into an empty mesh is simply lost) and the
    /// shared `start_at_ms` wall-clock instant has passed, which aligns
    /// co-hosted processes' round-1 openings to within milliseconds.
    /// Both waits are bounded; a degraded start beats no start.
    fn await_start_barriers(&self) {
        let connect_deadline = Instant::now() + Duration::from_secs(self.cfg.deadline_secs.min(30));
        while self.transport.peer_count() < self.cfg.min_peers && Instant::now() < connect_deadline
        {
            std::thread::sleep(Duration::from_millis(25));
        }
        if self.cfg.start_at_ms > 0 {
            let barrier_cap = Instant::now() + Duration::from_secs(60);
            loop {
                let now_ms = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map_or(u64::MAX, |d| d.as_millis() as u64);
                if now_ms >= self.cfg.start_at_ms || Instant::now() >= barrier_cap {
                    break;
                }
                let wait = (self.cfg.start_at_ms - now_ms).min(20);
                std::thread::sleep(Duration::from_millis(wait.max(1)));
            }
        }
    }

    fn target_pending(&self) -> bool {
        self.cfg.target_round > 0 && self.node.chain().tip().round < self.cfg.target_round
    }

    fn next_wait(&self, wall: Instant, next_status: Instant, deadline: Instant) -> Duration {
        let mut wait = MAX_WAIT;
        if let Some(d) = self.node.next_deadline() {
            let now = self.now();
            wait = wait.min(Duration::from_micros(d.saturating_sub(now)));
        }
        wait = wait.min(next_status.saturating_duration_since(wall));
        wait = wait.min(deadline.saturating_duration_since(wall));
        wait.max(Duration::from_millis(1))
    }

    /// The STATUS v2 payload: tip plus the telemetry peers alert on.
    fn status_info(&self) -> frame::StatusInfo {
        frame::StatusInfo {
            tip: self.node.chain().tip().round,
            trace_dropped: self.tracer.dropped(),
            monitor_violations: self.monitor.report().total_violations(),
            peer_drops: self.transport.peer_drop_counts(),
        }
    }

    /// Handles one inbound gossip frame end to end.
    fn on_gossip(&mut self, from: crate::transport::PeerId, bytes: &[u8]) {
        let msg = match WireMessage::decode_frame(bytes) {
            Ok(msg) => msg,
            Err(e) => {
                // The satellite payoff: a malformed frame names its
                // message kind and byte offset, attributed to a peer.
                self.decode_failures += 1;
                self.registry.counter("node.decode_failures").inc();
                eprintln!("[node {}] peer {from}: {e}", self.cfg.index);
                return;
            }
        };
        let decision = self.relay.classify(msg.message_id(), msg.relay_slot());
        if decision == RelayDecision::Duplicate {
            return;
        }
        // Arrival half of a cross-process gossip hop: an instant stamped
        // with the message's content id. The sender's matching "send"
        // instant lives in *its* trace; `obs::merge` fuses the two into
        // the simulator-shaped hop span (peer = sender, start = send).
        if self.tracer.is_enabled() {
            if let Some((label, round)) = hop_label(&msg) {
                self.tracer
                    .span(
                        SpanKind::GossipHop,
                        self.cfg.index as u32,
                        round,
                        self.now(),
                    )
                    .label(label)
                    .id(stable_id(&msg.message_id()))
                    .value(bytes.len() as u64)
                    .instant();
            }
        }
        let outputs = self.node.on_message(&msg, self.now());

        // §6 discard rules, mirrored from the simulator: losing block
        // bodies, rejected transactions, and invalid votes stop here.
        let discard = match &msg {
            WireMessage::Block(b) => !self.node.should_relay_block(b),
            WireMessage::Transaction(tx) => !self.node.should_relay_transaction(tx),
            WireMessage::Vote(v) => !self.node.should_relay_vote(v),
            // Catch-up traffic is point-to-point on this transport: the
            // requester asked *us*, and our response goes only to them.
            WireMessage::CatchupRequest { .. } | WireMessage::CatchupResponse(_) => true,
            _ => false,
        };
        if decision == RelayDecision::Relay && !discard {
            self.trace_send(&msg, bytes.len());
            self.transport.broadcast_gossip(bytes, Some(from));
        }
        self.dispatch(outputs, Some(from));
    }

    /// Send half of a cross-process gossip hop: an instant recorded at
    /// broadcast time, labeled `"send"`, carrying the message's content
    /// id, its wire size, and the deepest send-queue occupancy at that
    /// moment (`step`) — the "queue depth at send" a merged critical
    /// path attributes wire time with. Dropped by `obs::merge` once
    /// fused into receiver-side hops.
    fn trace_send(&self, msg: &WireMessage, wire_bytes: usize) {
        if !self.tracer.is_enabled() {
            return;
        }
        let Some((_, round)) = hop_label(msg) else {
            return;
        };
        let depth = self.transport.max_send_queue_depth();
        self.tracer
            .span(
                SpanKind::GossipHop,
                self.cfg.index as u32,
                round,
                self.now(),
            )
            .label("send")
            .step(depth.min(u64::from(u32::MAX)) as u32)
            .id(stable_id(&msg.message_id()))
            .value(wire_bytes as u64)
            .instant();
    }

    /// Serves one telemetry request: refresh the registry, render, and
    /// reply on the requester's own connection. TELEMETRY traffic is
    /// unmetered, so serving a scrape perturbs none of the counters it
    /// reports — two scrapes of an idle node are byte-identical.
    fn on_telemetry(&mut self, from: crate::transport::PeerId, op: u8, body: &[u8]) {
        match op {
            frame::TEL_METRICS_REQ => {
                self.publish_metrics();
                let text = expose::render(&self.registry);
                self.transport
                    .send_telemetry(from, frame::TEL_METRICS_RESP, text.as_bytes());
            }
            frame::TEL_FLIGHT_REQ => {
                // Under the crash-dump lock: a scrape racing the panic
                // hook must see a whole ring or wait, never interleave.
                let dump = crate::crash::with_dump_lock(|| {
                    self.flight.dump_jsonl(self.cfg.seed, "flight")
                });
                self.transport
                    .send_telemetry(from, frame::TEL_FLIGHT_RESP, dump.as_bytes());
            }
            frame::TEL_TRACE_REQ => {
                let cursor = frame::decode_trace_req(body).unwrap_or(0) as usize;
                let (events, total) = self.tracer.events_from(cursor, TRACE_CHUNK);
                let next = (cursor.min(total) + events.len()) as u64;
                let schedule = format!("drain node={} cursor={cursor}", self.cfg.index);
                let jsonl = write_jsonl(self.cfg.seed, &schedule, self.tracer.dropped(), &events);
                let resp = frame::encode_trace_resp(next, total as u64, &jsonl);
                self.transport
                    .send_telemetry(from, frame::TEL_TRACE_RESP, &resp);
            }
            _ => {}
        }
    }

    /// Routes core outputs: catch-up responses back to the requester,
    /// everything else to all peers (marked seen so echoes dedup).
    fn dispatch(&mut self, outputs: Vec<WireMessage>, reply_to: Option<crate::transport::PeerId>) {
        for out in outputs {
            let bytes = out.encoded();
            match (&out, reply_to) {
                (WireMessage::CatchupResponse(_), Some(peer)) => {
                    self.transport.send_gossip_to(peer, &bytes);
                }
                _ => {
                    self.relay.classify(out.message_id(), out.relay_slot());
                    self.trace_send(&out, bytes.len());
                    self.transport.broadcast_gossip(&bytes, None);
                }
            }
        }
    }

    /// Appends every newly agreed round to the WAL (and periodic
    /// checkpoints) so a `kill -9` from here on cannot lose them.
    fn persist_new_rounds(&mut self) -> io::Result<()> {
        let tip = self.node.chain().tip().round;
        while self.walled_through < tip {
            let r = self.walled_through + 1;
            let (Some(block), Some(cert)) = (
                self.node.chain().block_at(r),
                self.node.chain().certificate_at(r),
            ) else {
                break;
            };
            self.wal.append_entry(r, block, cert)?;
            self.walled_through = r;
            self.last_wal_round.store(r, Ordering::Relaxed);
            if self.cfg.checkpoint_interval > 0 && r.is_multiple_of(self.cfg.checkpoint_interval) {
                self.wal.append_checkpoint(&self.node.snapshot())?;
            }
        }
        Ok(())
    }

    /// Refreshes every derived gauge on the registry. The names mirror
    /// the simulator's exposition exactly (`pipeline.*`, `verify.*`,
    /// `recovery.*`, `round.latency_us`, …) so the same dashboards and
    /// assertions read both; transport and WAL counters are live and
    /// need no refresh. Idempotent — gauges overwrite, the histogram is
    /// replaced. Deliberately no wall-clock-derived values: an idle
    /// node's exposition must not change between scrapes.
    fn publish_metrics(&mut self) {
        let reg = &self.registry;
        let p = self.node.pipeline_stats();
        reg.gauge("pipeline.ingested").set(p.ingested as i64);
        reg.gauge("pipeline.verified").set(p.verified as i64);
        reg.gauge("pipeline.rejected_verify")
            .set(p.rejected_verify as i64);
        reg.gauge("pipeline.emitted").set(p.emitted as i64);
        let v = self.node.verifier();
        reg.gauge("verify.cache_hits").set(v.cache_hits() as i64);
        reg.gauge("verify.cache_misses")
            .set(v.cache_misses() as i64);
        reg.gauge("verify.unique_votes")
            .set(v.unique_vote_verifications() as i64);
        // No fault injection in a real process: partitions stay 0 and a
        // restart is evidenced by a non-empty WAL replay.
        reg.gauge("faults.partitions").set(0);
        reg.gauge("faults.restarts")
            .set(i64::from(self.wal_replayed_rounds > 0));
        reg.gauge("recovery.timeout_escalations")
            .set(self.node.timeout_escalations() as i64);
        reg.gauge("recovery.watchdog_catchups")
            .set(self.node.watchdog_catchups() as i64);
        reg.gauge("recovery.fork_recoveries")
            .set(self.node.recoveries_completed() as i64);
        reg.gauge("recovery.catchups_applied")
            .set(self.node.catchups_applied() as i64);
        let t = self.transport.stats();
        reg.gauge("net.total_bytes_sent").set(t.bytes_sent as i64);
        reg.gauge("trace.dropped").set(self.tracer.dropped() as i64);
        let mut lat = Histogram::new();
        for r in self.node.records() {
            lat.record(r.total());
        }
        reg.histogram("round.latency_us").replace(lat);
        reg.gauge("workload.injected").set(self.cfg.tx_count as i64);
        let tip = self.node.chain().tip().round;
        let committed: usize = (1..=tip)
            .filter_map(|r| self.node.chain().block_at(r))
            .map(|b| b.txs.len())
            .sum();
        reg.gauge("workload.committed").set(committed as i64);

        // Node-specific state the sim has no analogue for.
        reg.gauge("node.tip_round").set(tip as i64);
        reg.gauge("node.current_round")
            .set(self.node.current_round() as i64);
        let h = self.node.chain().tip_hash();
        reg.gauge("node.tip_hash64")
            .set(u64::from_le_bytes(h[..8].try_into().expect("8 bytes")) as i64);
        reg.gauge("node.walled_round")
            .set(self.walled_through as i64);
        reg.gauge("wal.replayed_rounds")
            .set(self.wal_replayed_rounds as i64);
        reg.gauge("wal.truncated_bytes")
            .set(self.wal_truncated_bytes as i64);
        reg.gauge("wal.replay_us").set(self.wal_replay_us as i64);
        reg.gauge("blocksync.requests")
            .set(self.sync.requests_sent() as i64);
        reg.gauge("blocksync.cooldown_hits")
            .set(self.sync.cooldown_hits() as i64);
        reg.gauge("monitor.violations")
            .set(self.monitor.report().total_violations() as i64);
        reg.gauge("node.alerts").set(self.alerts_emitted as i64);
        self.transport.publish();
    }

    /// The push-based alert hook, run on every status tick: appends a
    /// line to `<wal_dir>/alerts.jsonl` when the in-process monitor
    /// flips to violation, and when a peer's send-queue drop counter
    /// first crosses the configured threshold. Each condition alerts
    /// once per process life — a push channel, not a sampled gauge.
    fn check_alerts(&mut self) -> io::Result<()> {
        let violations = self.monitor.report().total_violations();
        if violations > 0 && !self.violations_alerted {
            self.violations_alerted = true;
            let line = format!(
                "{{\"alert\":\"monitor_violation\",\"violations\":{violations},\"round\":{}}}",
                self.node.current_round()
            );
            self.append_alert(&line)?;
        }
        if self.cfg.alert_peer_drops > 0 {
            for (addr, drops) in self.transport.peer_drop_counts() {
                if drops >= self.cfg.alert_peer_drops && !self.alerted_peers.contains(&addr) {
                    self.alerted_peers.insert(addr.clone());
                    let line = format!(
                        "{{\"alert\":\"peer_drops\",\"peer\":\"{addr}\",\"drops\":{drops},\
                         \"threshold\":{}}}",
                        self.cfg.alert_peer_drops
                    );
                    self.append_alert(&line)?;
                }
            }
        }
        Ok(())
    }

    fn append_alert(&mut self, line: &str) -> io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.cfg.wal_dir.join("alerts.jsonl"))?;
        f.write_all(line.as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_data()?;
        self.alerts_emitted += 1;
        eprintln!("[node {}] alert: {line}", self.cfg.index);
        Ok(())
    }

    /// Rewrites `status` in the WAL dir: one line the harness can poll.
    fn write_status_file(&self) -> io::Result<()> {
        let line = format!(
            "round={} walled={} replayed={} catchups={} peers={} decode_failures={} \
             drops={} trace_dropped={} monitor_violations={}\n",
            self.node.chain().tip().round,
            self.walled_through,
            self.wal_replayed_rounds,
            self.node.catchups_applied(),
            self.transport.peer_count(),
            self.decode_failures,
            self.transport.stats().send_drops,
            self.tracer.dropped(),
            self.monitor.report().total_violations(),
        );
        write_atomic(&self.cfg.wal_dir.join("status"), line.as_bytes())
    }

    /// Final checkpoint plus digest/status/trace/metrics exports.
    fn finish(&mut self, timed_out: bool) -> io::Result<RunSummary> {
        self.persist_new_rounds()?;
        self.wal.append_checkpoint(&self.node.snapshot())?;

        let reached = self.node.chain().tip().round;
        let digest = if self.cfg.target_round > 0 {
            self.node
                .chain()
                .digest_through(self.cfg.target_round)
                .map(|d| hex(&d))
        } else {
            None
        };
        if let Some(d) = &digest {
            write_atomic(
                &self.cfg.wal_dir.join("digest"),
                format!("{d}\n").as_bytes(),
            )?;
        }
        self.write_status_file()?;

        self.publish_metrics();
        write_atomic(
            &self.cfg.wal_dir.join("metrics.txt"),
            expose::render(&self.registry).as_bytes(),
        )?;

        if self.tracer.is_enabled() {
            let jsonl = write_jsonl(
                self.cfg.seed,
                "localnet",
                self.tracer.dropped(),
                &self.tracer.events(),
            );
            write_atomic(&self.cfg.wal_dir.join("trace.jsonl"), jsonl.as_bytes())?;
        }

        let violations = self.monitor.report().total_violations();
        if violations > 0 {
            eprintln!(
                "[node {}] monitor: {}",
                self.cfg.index,
                self.monitor.report().machine_line()
            );
        }

        let t = self.transport.stats();
        self.transport.shutdown();
        Ok(RunSummary {
            target_round: self.cfg.target_round,
            reached_round: reached,
            digest,
            wal_replayed_rounds: self.wal_replayed_rounds,
            catchups_applied: self.node.catchups_applied(),
            sync_requests: self.sync.requests_sent(),
            decode_failures: self.decode_failures,
            monitor_violations: violations,
            timed_out,
            transport: t,
        })
    }
}

/// The hop label and round for a wire message the trace plane follows —
/// the same vocabulary the simulator's hop spans use (`"vote"`,
/// `"priority"`, `"block_body"`, `"fork_body"`). Transactions and
/// catch-up traffic are not hop-traced there either.
fn hop_label(msg: &WireMessage) -> Option<(&'static str, u64)> {
    match msg {
        WireMessage::Priority(p) => Some(("priority", p.round)),
        WireMessage::Block(b) => Some(("block_body", b.block.round)),
        WireMessage::Vote(v) => Some(("vote", v.round)),
        WireMessage::ForkProposal(f) => Some(("fork_body", f.epoch)),
        _ => None,
    }
}

/// Write-then-rename so harness readers never see a half-written file.
fn write_atomic(path: &PathBuf, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)
}

/// Lowercase hex.
pub fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}
