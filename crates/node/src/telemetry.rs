//! Telemetry scrape client and cluster health reporting.
//!
//! The serving side lives in the transport/runtime (a TELEMETRY frame on
//! the ordinary peer port answers with the metrics exposition or a
//! flight-recorder dump). This module is the *consuming* side: a
//! blocking [`scrape_metrics`] / [`scrape_flight`] client that speaks
//! just enough of the framing to ask and read the answer, and the
//! [`ClusterHealth`] merger the `cluster_health` bench bin and the
//! localnet CI gate render operator reports from.
//!
//! A scraper deliberately never sends HELLO, so the scraped node treats
//! the connection as a non-protocol peer: no broadcasts arrive, nothing
//! is counted, and (the `telemetry_smoke` gate's invariant) two scrapes
//! of an idle node return byte-identical exposition text.

use crate::frame;
use algorand_obs::expose::{self, Sample};
use algorand_obs::merge::NodeTrace;
use algorand_obs::{parse_jsonl, Trace};
use std::io::{self, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One request/response exchange: connect, send the `req_op` TELEMETRY
/// frame with `body`, read frames until the matching response op
/// arrives. Returns the response payload *after* the op byte.
///
/// # Errors
///
/// I/O failures, timeout, a throttled-scrape error frame, or a
/// malformed/mismatched response.
fn scrape_raw(
    addr: &str,
    req_op: u8,
    body: &[u8],
    resp_op: u8,
    timeout: Duration,
) -> io::Result<Vec<u8>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    let mut req = Vec::with_capacity(1 + body.len());
    req.push(req_op);
    req.extend_from_slice(body);
    writer.write_all(&frame::encode_frame(frame::TELEMETRY, &req)?)?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let deadline = Instant::now() + timeout;
    loop {
        if Instant::now() >= deadline {
            return Err(io::Error::new(io::ErrorKind::TimedOut, "scrape timed out"));
        }
        let (kind, payload) = frame::read_frame(&mut reader)?;
        if kind != frame::TELEMETRY {
            // The node may push HELLO/PEERS/etc. before answering; skip
            // anything that is not a telemetry frame.
            continue;
        }
        if payload.first() == Some(&frame::TEL_THROTTLED) {
            // Waiting out a throttle would just hang until the timeout;
            // surface it so the caller can back off deliberately.
            return Err(io::Error::other("scrape throttled by node rate limit"));
        }
        if payload.first() != Some(&resp_op) {
            continue;
        }
        return Ok(payload[1..].to_vec());
    }
}

/// Text-response exchange (metrics exposition, flight dump).
fn scrape(addr: &str, req_op: u8, resp_op: u8, timeout: Duration) -> io::Result<String> {
    let payload = scrape_raw(addr, req_op, &[], resp_op, timeout)?;
    String::from_utf8(payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Scrapes a node's metrics exposition text.
///
/// # Errors
///
/// I/O failures, timeout, or a non-UTF-8 response.
pub fn scrape_metrics(addr: &str, timeout: Duration) -> io::Result<String> {
    scrape(
        addr,
        frame::TEL_METRICS_REQ,
        frame::TEL_METRICS_RESP,
        timeout,
    )
}

/// Scrapes a node's flight-recorder dump (trace JSONL).
///
/// # Errors
///
/// I/O failures, timeout, or a non-UTF-8 response.
pub fn scrape_flight(addr: &str, timeout: Duration) -> io::Result<String> {
    scrape(addr, frame::TEL_FLIGHT_REQ, frame::TEL_FLIGHT_RESP, timeout)
}

/// One trace-drain exchange: asks for the bounded trace buffer from
/// `cursor` and returns `(next_cursor, total, chunk)` where `chunk` is
/// the parsed trace JSONL the node answered with (its `schedule` names
/// the node index and cursor).
///
/// # Errors
///
/// I/O failures, timeout, or a malformed response body.
pub fn scrape_trace(addr: &str, cursor: u64, timeout: Duration) -> io::Result<(u64, u64, Trace)> {
    let body = scrape_raw(
        addr,
        frame::TEL_TRACE_REQ,
        &frame::encode_trace_req(cursor),
        frame::TEL_TRACE_RESP,
        timeout,
    )?;
    let (next, total, jsonl) = frame::decode_trace_resp(&body)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad TRACE_RESP body"))?;
    let trace = parse_jsonl(jsonl).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok((next, total, trace))
}

/// Drains a node's whole trace buffer, resuming from the returned
/// cursor until a chunk comes back empty. A live node keeps appending
/// while we drain, so this always issues at least two requests — the
/// final empty read doubles as proof the cursor protocol resumes
/// cleanly. Returns the drained trace (header from the first chunk,
/// events concatenated in buffer order).
///
/// # Errors
///
/// Any exchange failing, or a node that moves the cursor backwards.
pub fn drain_trace(addr: &str, timeout: Duration) -> io::Result<Trace> {
    let mut cursor = 0u64;
    let (mut next, _total, mut drained) = scrape_trace(addr, cursor, timeout)?;
    loop {
        if next < cursor {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trace cursor moved backwards: {cursor} -> {next}"),
            ));
        }
        if next == cursor {
            return Ok(drained);
        }
        cursor = next;
        let (n, _t, chunk) = scrape_trace(addr, cursor, timeout)?;
        next = n;
        drained.dropped = chunk.dropped;
        drained.events.extend(chunk.events);
    }
}

/// Drains every node of a cluster, pairing each drained trace with the
/// node index its drain header names. Addresses that fail to drain are
/// returned as errors alongside the successes, mirroring
/// [`ClusterHealth::collect`]'s not-fatal stance.
pub fn drain_cluster(
    addrs: &[String],
    timeout: Duration,
) -> (Vec<NodeTrace>, Vec<(String, String)>) {
    let mut traces = Vec::new();
    let mut failed = Vec::new();
    for addr in addrs {
        match drain_trace(addr, timeout) {
            Ok(trace) => {
                let node = trace
                    .schedule
                    .strip_prefix("drain node=")
                    .and_then(|rest| rest.split_whitespace().next())
                    .and_then(|n| n.parse::<u32>().ok());
                match node {
                    Some(node) => traces.push(NodeTrace {
                        node,
                        addr: addr.clone(),
                        trace,
                    }),
                    None => failed.push((
                        addr.clone(),
                        format!("drain header names no node index: {:?}", trace.schedule),
                    )),
                }
            }
            Err(e) => failed.push((addr.clone(), e.to_string())),
        }
    }
    (traces, failed)
}

/// One scraped node's digest of health-relevant samples.
#[derive(Clone, Debug)]
pub struct NodeHealth {
    /// The address scraped.
    pub addr: String,
    /// `node.tip_round`.
    pub tip: i64,
    /// `node.tip_hash64` — first 8 bytes of the tip hash, for cheap
    /// cross-node agreement checks.
    pub tip_hash64: i64,
    /// `monitor.violations` (in-process invariant monitor).
    pub monitor_violations: i64,
    /// `node.alerts` — lines the node has pushed to its `alerts.jsonl`
    /// (monitor flips, peer-drop thresholds).
    pub alerts: i64,
    /// `trace.dropped`.
    pub trace_dropped: i64,
    /// Total send-queue drops plus the deepest per-peer queue: the
    /// node's outbound pressure at scrape time.
    pub queue_pressure: i64,
    /// `pipeline.ingested`.
    pub pipeline_ingested: i64,
    /// `transport.frames_sent`.
    pub frames_sent: i64,
    /// `wal.entries`.
    pub wal_entries: i64,
    /// Every sample, for report detail lines and custom checks.
    pub samples: Vec<Sample>,
}

impl NodeHealth {
    /// Parses a scraped exposition text into a health digest.
    ///
    /// # Errors
    ///
    /// Returns the parser's description of the first malformed line.
    pub fn from_exposition(addr: &str, text: &str) -> Result<NodeHealth, String> {
        let samples = expose::parse(text)?;
        let get = |name: &str| -> i64 {
            samples
                .iter()
                .find(|s| s.name == name && s.labels.is_empty())
                .map_or(0, |s| s.value as i64)
        };
        let drops_total = get("transport.send_drops");
        let max_depth = samples
            .iter()
            .filter(|s| s.name == "transport.send_queue_depth")
            .map(|s| s.value as i64)
            .max()
            .unwrap_or(0);
        Ok(NodeHealth {
            addr: addr.to_string(),
            tip: get("node.tip_round"),
            tip_hash64: get("node.tip_hash64"),
            monitor_violations: get("monitor.violations"),
            alerts: get("node.alerts"),
            trace_dropped: get("trace.dropped"),
            queue_pressure: drops_total + max_depth,
            pipeline_ingested: get("pipeline.ingested"),
            frames_sent: get("transport.frames_sent"),
            wal_entries: get("wal.entries"),
            samples,
        })
    }

    /// "clean" when the in-process monitor has flagged nothing.
    pub fn verdict(&self) -> &'static str {
        if self.monitor_violations == 0 {
            "clean"
        } else {
            "VIOLATIONS"
        }
    }
}

/// Scraped health across a whole deployment, with round rates from a
/// second scrape pass.
#[derive(Clone, Debug)]
pub struct ClusterHealth {
    /// Per-node digests, in scrape order.
    pub nodes: Vec<NodeHealth>,
    /// Rounds/second per node between the two scrape passes (None when
    /// only one pass ran).
    pub round_rates: Option<Vec<f64>>,
    /// Addresses that failed to scrape, with the error.
    pub unreachable: Vec<(String, String)>,
}

impl ClusterHealth {
    /// Scrapes every address once. Unreachable nodes are recorded, not
    /// fatal — a health report that dies on the first sick node is
    /// useless for diagnosing it.
    pub fn collect(addrs: &[String], timeout: Duration) -> ClusterHealth {
        let mut nodes = Vec::new();
        let mut unreachable = Vec::new();
        for addr in addrs {
            match scrape_metrics(addr, timeout)
                .map_err(|e| e.to_string())
                .and_then(|text| NodeHealth::from_exposition(addr, &text))
            {
                Ok(h) => nodes.push(h),
                Err(e) => unreachable.push((addr.clone(), e)),
            }
        }
        ClusterHealth {
            nodes,
            round_rates: None,
            unreachable,
        }
    }

    /// Scrapes twice, `interval` apart, and derives per-node round rates
    /// from the tip movement.
    pub fn collect_with_rates(
        addrs: &[String],
        timeout: Duration,
        interval: Duration,
    ) -> ClusterHealth {
        let first = ClusterHealth::collect(addrs, timeout);
        std::thread::sleep(interval);
        let mut second = ClusterHealth::collect(addrs, timeout);
        let secs = interval.as_secs_f64().max(1e-9);
        second.round_rates = Some(
            second
                .nodes
                .iter()
                .map(|after| {
                    let before = first
                        .nodes
                        .iter()
                        .find(|b| b.addr == after.addr)
                        .map_or(after.tip, |b| b.tip);
                    (after.tip - before) as f64 / secs
                })
                .collect(),
        );
        second
    }

    /// Max tip minus min tip across reachable nodes (0 when fewer than
    /// two nodes answered).
    pub fn tip_spread(&self) -> i64 {
        let tips: Vec<i64> = self.nodes.iter().map(|n| n.tip).collect();
        match (tips.iter().max(), tips.iter().min()) {
            (Some(max), Some(min)) => max - min,
            _ => 0,
        }
    }

    /// True when every node at the *same* tip reports the same
    /// `tip_hash64` — nodes at different rounds legitimately differ.
    pub fn digests_agree(&self) -> bool {
        for a in &self.nodes {
            for b in &self.nodes {
                if a.tip == b.tip && a.tip_hash64 != b.tip_hash64 {
                    return false;
                }
            }
        }
        true
    }

    /// Total monitor violations across the cluster.
    pub fn total_violations(&self) -> i64 {
        self.nodes.iter().map(|n| n.monitor_violations).sum()
    }

    /// Total pushed alerts across the cluster.
    pub fn total_alerts(&self) -> i64 {
        self.nodes.iter().map(|n| n.alerts).sum()
    }

    /// The operator-facing report: one block per node, then the cluster
    /// roll-up. Deterministic for a given set of digests.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("cluster health\n==============\n");
        for (i, n) in self.nodes.iter().enumerate() {
            out.push_str(&format!(
                "node {addr}\n  tip={tip} hash64={hash:#018x} verdict={verdict}\n  \
                 pipeline.ingested={ing} transport.frames_sent={fs} wal.entries={we}\n  \
                 queue_pressure={qp} trace.dropped={td} alerts={al}\n",
                addr = n.addr,
                tip = n.tip,
                hash = n.tip_hash64 as u64,
                verdict = n.verdict(),
                ing = n.pipeline_ingested,
                fs = n.frames_sent,
                we = n.wal_entries,
                qp = n.queue_pressure,
                td = n.trace_dropped,
                al = n.alerts,
            ));
            if let Some(rates) = &self.round_rates {
                if let Some(rate) = rates.get(i) {
                    out.push_str(&format!("  round_rate={rate:.2}/s\n"));
                }
            }
        }
        for (addr, err) in &self.unreachable {
            out.push_str(&format!("node {addr}\n  UNREACHABLE: {err}\n"));
        }
        out.push_str(&format!(
            "cluster: nodes={} unreachable={} tip_spread={} digests_agree={} violations={} alerts={}\n",
            self.nodes.len(),
            self.unreachable.len(),
            self.tip_spread(),
            self.digests_agree(),
            self.total_violations(),
            self.total_alerts(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algorand_obs::{labeled, Registry};

    fn exposition(tip: i64, hash: i64, violations: i64) -> String {
        let reg = Registry::new();
        reg.gauge("node.tip_round").set(tip);
        reg.gauge("node.tip_hash64").set(hash);
        reg.gauge("monitor.violations").set(violations);
        reg.gauge("trace.dropped").set(0);
        reg.counter("transport.send_drops").add(2);
        reg.gauge(&labeled(
            "transport.send_queue_depth",
            &[("peer", "127.0.0.1:9001")],
        ))
        .set(5);
        reg.gauge("pipeline.ingested").set(100);
        reg.counter("transport.frames_sent").add(40);
        reg.counter("wal.entries").add(3);
        expose::render(&reg)
    }

    #[test]
    fn health_digest_reads_key_samples() {
        let h = NodeHealth::from_exposition("n0", &exposition(7, 0x1234, 0)).unwrap();
        assert_eq!(h.tip, 7);
        assert_eq!(h.tip_hash64, 0x1234);
        assert_eq!(h.verdict(), "clean");
        assert_eq!(h.queue_pressure, 7, "2 drops + depth 5");
        assert_eq!(h.pipeline_ingested, 100);
        assert_eq!(h.wal_entries, 3);
    }

    #[test]
    fn cluster_rollup_flags_disagreement_and_violations() {
        let mk = |addr: &str, tip, hash, v| {
            NodeHealth::from_exposition(addr, &exposition(tip, hash, v)).unwrap()
        };
        let agree = ClusterHealth {
            nodes: vec![mk("a", 5, 10, 0), mk("b", 5, 10, 0), mk("c", 4, 99, 0)],
            round_rates: None,
            unreachable: Vec::new(),
        };
        assert_eq!(agree.tip_spread(), 1);
        assert!(agree.digests_agree(), "different rounds may differ");
        assert_eq!(agree.total_violations(), 0);

        let split = ClusterHealth {
            nodes: vec![mk("a", 5, 10, 0), mk("b", 5, 11, 2)],
            round_rates: None,
            unreachable: Vec::new(),
        };
        assert!(!split.digests_agree());
        assert_eq!(split.total_violations(), 2);
        let report = split.render();
        assert!(report.contains("digests_agree=false"), "{report}");
        assert!(report.contains("verdict=VIOLATIONS"), "{report}");
    }

    #[test]
    fn unreachable_nodes_are_reported_not_fatal() {
        // Nothing listens on this port (bind+drop grabs a free one).
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let health = ClusterHealth::collect(&[addr.clone()], Duration::from_millis(200));
        assert!(health.nodes.is_empty());
        assert_eq!(health.unreachable.len(), 1);
        assert!(health.render().contains("UNREACHABLE"));
    }
}
