//! The node's config file, plus the deterministic derivations (keys,
//! genesis, workload) shared with the simulator.
//!
//! A config is a plain `key = value` file ('#' starts a comment):
//!
//! ```text
//! # identity and deployment shape
//! index = 0
//! n_users = 5
//! stake_per_user = 10
//! seed = 1
//! # networking
//! listen = 127.0.0.1:9000
//! peer = 127.0.0.1:9001
//! peer = 127.0.0.1:9002
//! # durability and lifecycle
//! wal_dir = /tmp/algorand-node-0
//! target_round = 6
//! tx_count = 24
//! ```
//!
//! The derivations mirror `sim::runner` exactly — same key-seed formula,
//! same genesis seed, same equal-stake allocation — which is what lets a
//! localhost deployment be cross-checked against the simulator's chain
//! digest for the same `seed`.

use algorand_core::AlgorandParams;
use algorand_crypto::rng::Rng;
use algorand_crypto::Keypair;
use algorand_ledger::{Blockchain, Transaction};
use algorand_obs::MonitorConfig;
use algorand_sortition::binomial::binomial_cdf;
use std::io;
use std::path::PathBuf;

/// Genesis seed shared with `sim::runner::GENESIS_SEED`.
pub const GENESIS_SEED: [u8; 32] = [0x47u8; 32];

/// Configuration for one `algorand-node` process.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// This node's index in the deployment (selects its keypair).
    pub index: usize,
    /// Total users in the deployment (all must agree).
    pub n_users: usize,
    /// Currency units per user (equal split, as in §10).
    pub stake_per_user: u64,
    /// Deployment seed: keys, genesis workload (all must agree).
    pub seed: u64,
    /// TCP listen address, e.g. `127.0.0.1:9000`.
    pub listen: String,
    /// Static peer addresses; more are learned via peer exchange.
    pub peers: Vec<String>,
    /// Directory for the WAL, status, digest, trace and metrics files.
    pub wal_dir: PathBuf,
    /// Exit (successfully) once the chain reaches this round; 0 runs
    /// until the deadline.
    pub target_round: u64,
    /// Hard wall-clock lifetime in seconds; exceeding it is a failure
    /// when `target_round` was set.
    pub deadline_secs: u64,
    /// Seconds to keep serving peers (votes already sent, catch-up
    /// batches) after reaching `target_round`, so stragglers finish.
    pub linger_secs: u64,
    /// Size of the deterministic preloaded workload (all must agree).
    pub tx_count: usize,
    /// Wait for this many live connections before starting consensus
    /// (processes launch in arbitrary order; gossip sent into an empty
    /// mesh is simply lost).
    pub min_peers: usize,
    /// Unix milliseconds before which consensus must not start (0 =
    /// start as soon as `min_peers` is met). Processes on one host
    /// share a wall clock, so this aligns their round-1 openings to
    /// within milliseconds — well inside λ_priority.
    pub start_at_ms: u64,
    /// Append a WAL checkpoint every this many rounds (0 = never).
    pub checkpoint_interval: u64,
    /// λ_priority override in milliseconds (0 keeps the scaled default).
    pub lambda_priority_ms: u64,
    /// λ_stepvar override in milliseconds (0 keeps the scaled default).
    pub lambda_stepvar_ms: u64,
    /// λ_step override in milliseconds (0 keeps the scaled default).
    pub lambda_step_ms: u64,
    /// λ_block override in milliseconds (0 keeps the scaled default).
    pub lambda_block_ms: u64,
    /// Record a bounded trace and export it on exit.
    pub trace: bool,
    /// TELEMETRY token-bucket capacity per connection (requests an idle
    /// connection may burst before throttling).
    pub telemetry_burst: u64,
    /// TELEMETRY token-bucket refill rate per connection, requests per
    /// second (0 disables rate limiting).
    pub telemetry_rate_per_s: u64,
    /// Append an alert to `<wal_dir>/alerts.jsonl` when any peer's
    /// send-queue drop counter crosses this threshold (0 disables the
    /// peer-drop alert; monitor-violation alerts are always on).
    pub alert_peer_drops: u64,
}

impl Default for NodeConfig {
    fn default() -> NodeConfig {
        NodeConfig {
            index: 0,
            n_users: 5,
            stake_per_user: 10,
            seed: 1,
            listen: "127.0.0.1:9000".into(),
            peers: Vec::new(),
            wal_dir: PathBuf::from("."),
            target_round: 0,
            deadline_secs: 120,
            linger_secs: 3,
            tx_count: 0,
            min_peers: 0,
            start_at_ms: 0,
            checkpoint_interval: 4,
            lambda_priority_ms: 0,
            lambda_stepvar_ms: 0,
            lambda_step_ms: 0,
            lambda_block_ms: 0,
            trace: false,
            telemetry_burst: 32,
            telemetry_rate_per_s: 16,
            alert_peer_drops: 0,
        }
    }
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl NodeConfig {
    /// Parses a config file.
    ///
    /// # Errors
    ///
    /// Returns an error for unreadable files, unknown keys, or
    /// unparsable values — a misconfigured node should refuse to start,
    /// not limp into a deployment it disagrees with.
    pub fn load(path: &std::path::Path) -> io::Result<NodeConfig> {
        let text = std::fs::read_to_string(path)?;
        Self::parse(&text)
    }

    /// Parses config text (see the module docs for the format).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown keys or unparsable values.
    pub fn parse(text: &str) -> io::Result<NodeConfig> {
        let mut cfg = NodeConfig::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| bad(format!("line {}: expected key = value", lineno + 1)))?;
            let (key, value) = (key.trim(), value.trim());
            let parse_u64 = |v: &str| {
                v.parse::<u64>()
                    .map_err(|_| bad(format!("line {}: bad number {v:?}", lineno + 1)))
            };
            match key {
                "index" => cfg.index = parse_u64(value)? as usize,
                "n_users" => cfg.n_users = parse_u64(value)? as usize,
                "stake_per_user" => cfg.stake_per_user = parse_u64(value)?,
                "seed" => cfg.seed = parse_u64(value)?,
                "listen" => cfg.listen = value.to_string(),
                "peer" => cfg.peers.push(value.to_string()),
                "wal_dir" => cfg.wal_dir = PathBuf::from(value),
                "target_round" => cfg.target_round = parse_u64(value)?,
                "deadline_secs" => cfg.deadline_secs = parse_u64(value)?,
                "linger_secs" => cfg.linger_secs = parse_u64(value)?,
                "tx_count" => cfg.tx_count = parse_u64(value)? as usize,
                "min_peers" => cfg.min_peers = parse_u64(value)? as usize,
                "start_at_ms" => cfg.start_at_ms = parse_u64(value)?,
                "checkpoint_interval" => cfg.checkpoint_interval = parse_u64(value)?,
                "lambda_priority_ms" => cfg.lambda_priority_ms = parse_u64(value)?,
                "lambda_stepvar_ms" => cfg.lambda_stepvar_ms = parse_u64(value)?,
                "lambda_step_ms" => cfg.lambda_step_ms = parse_u64(value)?,
                "lambda_block_ms" => cfg.lambda_block_ms = parse_u64(value)?,
                "trace" => cfg.trace = value == "true" || value == "1",
                "telemetry_burst" => cfg.telemetry_burst = parse_u64(value)?,
                "telemetry_rate_per_s" => cfg.telemetry_rate_per_s = parse_u64(value)?,
                "alert_peer_drops" => cfg.alert_peer_drops = parse_u64(value)?,
                _ => return Err(bad(format!("line {}: unknown key {key:?}", lineno + 1))),
            }
        }
        if cfg.n_users == 0 || cfg.index >= cfg.n_users {
            return Err(bad(format!(
                "index {} out of range for n_users {}",
                cfg.index, cfg.n_users
            )));
        }
        Ok(cfg)
    }

    /// Renders the config back to file syntax (what the orchestration
    /// harness writes).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut kv = |k: &str, v: String| {
            out.push_str(k);
            out.push_str(" = ");
            out.push_str(&v);
            out.push('\n');
        };
        kv("index", self.index.to_string());
        kv("n_users", self.n_users.to_string());
        kv("stake_per_user", self.stake_per_user.to_string());
        kv("seed", self.seed.to_string());
        kv("listen", self.listen.clone());
        for p in &self.peers {
            kv("peer", p.clone());
        }
        kv("wal_dir", self.wal_dir.display().to_string());
        kv("target_round", self.target_round.to_string());
        kv("deadline_secs", self.deadline_secs.to_string());
        kv("linger_secs", self.linger_secs.to_string());
        kv("tx_count", self.tx_count.to_string());
        kv("min_peers", self.min_peers.to_string());
        kv("start_at_ms", self.start_at_ms.to_string());
        kv("checkpoint_interval", self.checkpoint_interval.to_string());
        kv("lambda_priority_ms", self.lambda_priority_ms.to_string());
        kv("lambda_stepvar_ms", self.lambda_stepvar_ms.to_string());
        kv("lambda_step_ms", self.lambda_step_ms.to_string());
        kv("lambda_block_ms", self.lambda_block_ms.to_string());
        kv("trace", if self.trace { "1" } else { "0" }.to_string());
        kv("telemetry_burst", self.telemetry_burst.to_string());
        kv(
            "telemetry_rate_per_s",
            self.telemetry_rate_per_s.to_string(),
        );
        kv("alert_peer_drops", self.alert_peer_drops.to_string());
        out
    }

    /// The per-connection TELEMETRY rate limit this config implies.
    pub fn telemetry_limit(&self) -> crate::transport::TelemetryLimit {
        crate::transport::TelemetryLimit {
            burst: self.telemetry_burst.min(u32::MAX as u64) as u32,
            per_sec: self.telemetry_rate_per_s.min(u32::MAX as u64) as u32,
        }
    }

    /// The protocol parameters this deployment runs: the laptop-scaled
    /// set with canonical timestamps (required for the digest cross-check
    /// against the simulator), plus any λ overrides.
    pub fn params(&self) -> AlgorandParams {
        let mut p = AlgorandParams::scaled_with_stake(self.n_users, self.stake_per_user);
        p.canonical_timestamps = true;
        const MS: u64 = 1_000;
        if self.lambda_priority_ms > 0 {
            p.lambda_priority = self.lambda_priority_ms * MS;
        }
        if self.lambda_stepvar_ms > 0 {
            p.lambda_stepvar = self.lambda_stepvar_ms * MS;
        }
        if self.lambda_step_ms > 0 {
            p.ba.lambda_step = self.lambda_step_ms * MS;
        }
        if self.lambda_block_ms > 0 {
            p.ba.lambda_block = self.lambda_block_ms * MS;
        }
        p
    }

    /// The in-process invariant-monitor thresholds this deployment
    /// implies — the same §7.5 binomial tail bounds `sim` computes, so
    /// a live node holds its own trace stream to the exact standard the
    /// simulator holds the fleet's.
    pub fn monitor_config(&self) -> MonitorConfig {
        let total_weight = self.n_users as u64 * self.stake_per_user;
        let params = self.params();
        MonitorConfig {
            committee_hi_step: committee_upper_bound(total_weight, params.ba.tau_step),
            committee_hi_final: committee_upper_bound(total_weight, params.ba.tau_final),
            max_future_gap: algorand_core::ingest::FUTURE_ROUND_WINDOW as u32,
            max_future_buffer: algorand_core::round::FutureVotes::MAX_TOTAL as u64,
            // A deployment config has no adversary roster; all users
            // count as honest, the strictest reading.
            honest_nodes: self.n_users as u32,
        }
    }

    /// This node's keypair.
    pub fn keypair(&self) -> Keypair {
        derive_keypairs(self.seed, self.n_users).swap_remove(self.index)
    }

    /// The shared genesis chain.
    pub fn genesis(&self) -> Blockchain {
        let alloc: Vec<_> = derive_keypairs(self.seed, self.n_users)
            .iter()
            .map(|k| (k.pk, self.stake_per_user))
            .collect();
        Blockchain::new(self.params().chain, alloc, GENESIS_SEED)
    }

    /// The deterministic preloaded workload for this deployment.
    pub fn workload(&self) -> Vec<Transaction> {
        let keypairs = derive_keypairs(self.seed, self.n_users);
        workload_transactions(self.seed, &keypairs, self.stake_per_user, self.tx_count)
    }
}

/// Smallest `k` whose binomial upper tail `P[Binomial(W, τ/W) > k]`
/// falls below ~1e-12 — the §7.5 bound the monitor enforces on the
/// deduplicated committee weight of any (round, step). Mirrors
/// `sim::harness::committee_upper_bound` exactly.
fn committee_upper_bound(total_weight: u64, tau: f64) -> u64 {
    let w = total_weight.max(1);
    let p = (tau / w as f64).min(1.0);
    let mut k = (tau as u64).min(w);
    while k < w && 1.0 - binomial_cdf(k, w, p) >= 1e-12 {
        k += 1;
    }
    k
}

/// Derives the deployment's keypairs — the same formula `sim::runner`
/// uses, so process `i` here *is* user `i` there.
pub fn derive_keypairs(seed: u64, n_users: usize) -> Vec<Keypair> {
    (0..n_users)
        .map(|i| {
            let mut s = [0u8; 32];
            s[..8].copy_from_slice(&(seed ^ 0x5eed).to_le_bytes());
            s[8..16].copy_from_slice(&(i as u64 + 1).to_le_bytes());
            Keypair::from_seed(s)
        })
        .collect()
}

/// Generates the deterministic preloaded workload: `count` random
/// payments between deployment users, nonces consecutive per sender,
/// amounts conservatively bounded by genesis stake so every transaction
/// stays applicable in whatever round it commits.
///
/// Signatures are deterministic, so every process — and the simulator's
/// reference run — derives bit-identical transactions from `(seed,
/// keypairs, count)`. With identical mempools everywhere before round 1,
/// block assembly is a pure function of the chain.
pub fn workload_transactions(
    seed: u64,
    keypairs: &[Keypair],
    stake_per_user: u64,
    count: usize,
) -> Vec<Transaction> {
    let n = keypairs.len();
    let mut rng = Rng::seed_from_u64(seed ^ 0x010C_A1C0_FFEE);
    let mut nonces = vec![0u64; n];
    let mut spendable = vec![stake_per_user; n];
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let amount = 1 + rng.next_u64() % 3;
        let Some(sender) = (0..n)
            .map(|_| (rng.next_u64() % n as u64) as usize)
            .find(|&c| spendable[c] >= amount)
            .or_else(|| (0..n).find(|&i| spendable[i] >= amount))
        else {
            break; // Spendable stake exhausted.
        };
        let mut to = (rng.next_u64() % n as u64) as usize;
        if to == sender {
            to = (to + 1) % n;
        }
        nonces[sender] += 1;
        spendable[sender] -= amount;
        out.push(Transaction::payment(
            &keypairs[sender],
            keypairs[to].pk,
            amount,
            nonces[sender],
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_roundtrips_through_render() {
        let mut cfg = NodeConfig {
            index: 2,
            n_users: 5,
            listen: "127.0.0.1:9102".into(),
            peers: vec!["127.0.0.1:9100".into(), "127.0.0.1:9101".into()],
            wal_dir: PathBuf::from("/tmp/x"),
            target_round: 6,
            tx_count: 24,
            trace: true,
            ..NodeConfig::default()
        };
        cfg.lambda_priority_ms = 500;
        cfg.telemetry_burst = 4;
        cfg.telemetry_rate_per_s = 2;
        cfg.alert_peer_drops = 9;
        let parsed = NodeConfig::parse(&cfg.render()).expect("parses");
        assert_eq!(parsed.index, 2);
        assert_eq!(parsed.peers.len(), 2);
        assert_eq!(parsed.target_round, 6);
        assert_eq!(parsed.lambda_priority_ms, 500);
        assert!(parsed.trace);
        assert_eq!(parsed.telemetry_limit().burst, 4);
        assert_eq!(parsed.telemetry_limit().per_sec, 2);
        assert_eq!(parsed.alert_peer_drops, 9);
        assert_eq!(parsed.params().lambda_priority, 500_000);
        assert!(parsed.params().canonical_timestamps);
    }

    #[test]
    fn unknown_keys_and_bad_index_rejected() {
        assert!(NodeConfig::parse("frobnicate = 3").is_err());
        assert!(NodeConfig::parse("index = 7\nn_users = 5").is_err());
    }

    #[test]
    fn monitor_config_bounds_are_sane() {
        let cfg = NodeConfig::default();
        let mc = cfg.monitor_config();
        let total = cfg.n_users as u64 * cfg.stake_per_user;
        // The tail bound always admits the expected committee weight
        // and never exceeds the whole population.
        assert!(mc.committee_hi_step <= total);
        assert!(mc.committee_hi_final <= total);
        assert!(mc.committee_hi_step >= cfg.params().ba.tau_step.min(total as f64) as u64);
        assert_eq!(mc.honest_nodes, cfg.n_users as u32);
        assert!(mc.max_future_gap > 0);
    }

    #[test]
    fn workload_is_deterministic_and_admissible() {
        let kps = derive_keypairs(1, 5);
        let a = workload_transactions(1, &kps, 10, 24);
        let b = workload_transactions(1, &kps, 10, 24);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id(), y.id());
        }
        // Per-sender nonces are consecutive from 1.
        for (i, kp) in kps.iter().enumerate() {
            for (expected, tx) in (1u64..).zip(a.iter().filter(|t| t.from == kp.pk)) {
                assert_eq!(tx.nonce, expected, "sender {i}");
            }
        }
    }
}
