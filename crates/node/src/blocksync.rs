//! Blocksync: fetching deep history in bounded catch-up batches.
//!
//! Peers announce their finalized tip in STATUS frames. When ours is
//! behind the best announced tip, we send a §8.3
//! [`algorand_core::WireMessage::CatchupRequest`] to the most advanced
//! peer and let the existing [`algorand_core::CatchupBatch`] machinery —
//! bounded to a few rounds per response, every certificate re-validated
//! on receipt — walk us forward. A cooldown keeps a deeply-behind node
//! from spamming requests faster than responses can land; because each
//! response advances our tip, the next request (after the cooldown)
//! naturally asks from further along, paging through history.

use crate::transport::PeerId;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Minimum spacing between catch-up requests. Generous against a
/// localhost round-trip, small against the multi-second λ timeouts the
/// node is otherwise waiting on.
pub const REQUEST_COOLDOWN: Duration = Duration::from_millis(300);

/// Tracks peer tips and decides when (and whom) to ask for history.
pub struct Blocksync {
    tips: HashMap<PeerId, u64>,
    last_request: Option<Instant>,
    requests_sent: u64,
    cooldown_hits: u64,
}

impl Blocksync {
    /// Fresh state: no known peers, no outstanding cooldown.
    pub fn new() -> Blocksync {
        Blocksync {
            tips: HashMap::new(),
            last_request: None,
            requests_sent: 0,
            cooldown_hits: 0,
        }
    }

    /// Records a STATUS announcement.
    pub fn note_status(&mut self, peer: PeerId, tip: u64) {
        self.tips.insert(peer, tip);
    }

    /// Drops state for a dead connection (its tip is no longer
    /// reachable through that id).
    pub fn forget(&mut self, peer: PeerId) {
        self.tips.remove(&peer);
    }

    /// The best tip any peer has announced.
    pub fn best_tip(&self) -> u64 {
        self.tips.values().copied().max().unwrap_or(0)
    }

    /// If we are behind and off cooldown, the peer to ask. The caller
    /// sends `CatchupRequest { have: local_tip, tip_hash }` to it.
    pub fn poll(&mut self, local_tip: u64, now: Instant) -> Option<PeerId> {
        let (&peer, &tip) = self.tips.iter().max_by_key(|(_, &tip)| tip)?;
        if tip <= local_tip {
            return None;
        }
        if let Some(last) = self.last_request {
            if now.duration_since(last) < REQUEST_COOLDOWN {
                self.cooldown_hits += 1;
                return None;
            }
        }
        self.last_request = Some(now);
        self.requests_sent += 1;
        Some(peer)
    }

    /// Catch-up requests issued so far.
    pub fn requests_sent(&self) -> u64 {
        self.requests_sent
    }

    /// Times a request was wanted but the cooldown suppressed it — a
    /// measure of how much further behind we are than one batch.
    pub fn cooldown_hits(&self) -> u64 {
        self.cooldown_hits
    }
}

impl Default for Blocksync {
    fn default() -> Blocksync {
        Blocksync::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asks_most_advanced_peer_with_cooldown() {
        let mut bs = Blocksync::new();
        let t0 = Instant::now();
        assert_eq!(bs.poll(0, t0), None); // No peers known.

        bs.note_status(1, 3);
        bs.note_status(2, 9);
        assert_eq!(bs.poll(5, t0), Some(2));
        // Cooldown suppresses an immediate repeat…
        assert_eq!(bs.poll(5, t0 + Duration::from_millis(10)), None);
        // …but not a request after it elapses.
        assert_eq!(bs.poll(5, t0 + REQUEST_COOLDOWN), Some(2));
        // Caught up: nothing to ask.
        assert_eq!(bs.poll(9, t0 + 2 * REQUEST_COOLDOWN), None);

        bs.forget(2);
        assert_eq!(bs.best_tip(), 3);
        assert_eq!(bs.requests_sent(), 2);
        assert_eq!(bs.cooldown_hits(), 1);
    }
}
