//! `algorand-node` — run one Algorand node process from a config file.
//!
//! ```text
//! algorand-node path/to/node.conf
//! ```
//!
//! The process joins the peers named in the config, participates in
//! consensus (replaying its WAL first if one exists), and exits 0 once
//! the configured `target_round` is finalized — writing `digest`,
//! `status`, `metrics.txt` and optionally `trace.jsonl` into the WAL
//! directory. With `target_round = 0` it runs until `deadline_secs`.

use algorand_node::{NodeConfig, Runtime};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(path), None) = (args.next(), args.next()) else {
        eprintln!("usage: algorand-node <config-file>");
        return ExitCode::from(2);
    };
    let cfg = match NodeConfig::load(std::path::Path::new(&path)) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("algorand-node: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let index = cfg.index;
    let mut runtime = match Runtime::new(cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("algorand-node: startup failed: {e}");
            return ExitCode::from(1);
        }
    };
    // From here on a panic dumps the flight recorder to crash.jsonl;
    // an orderly exit (either arm of the match) disarms first.
    algorand_node::crash::arm(runtime.crash_context());
    let outcome = runtime.run();
    algorand_node::crash::disarm();
    match outcome {
        Ok(summary) => {
            println!(
                "[node {index}] round {}/{} replayed={} catchups={} sync_requests={} \
                 drops={} decode_failures={} digest={}",
                summary.reached_round,
                summary.target_round,
                summary.wal_replayed_rounds,
                summary.catchups_applied,
                summary.sync_requests,
                summary.transport.send_drops,
                summary.decode_failures,
                summary.digest.as_deref().unwrap_or("-"),
            );
            if summary.success() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("algorand-node: {e}");
            ExitCode::from(1)
        }
    }
}
