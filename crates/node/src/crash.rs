//! Crash forensics: a panic hook that dumps the flight recorder.
//!
//! A panicking node takes its in-memory trace with it — precisely the
//! evidence that explains the panic. [`arm`] installs a process-wide
//! panic hook that writes the flight recorder's ring, plus the last
//! WAL-persisted round, to `<wal_dir>/crash.jsonl` *before* the process
//! unwinds away. The dump is ordinary trace JSONL (header `schedule`
//! field `crash wal_round=<n>`), so [`algorand_obs::parse_jsonl`] and
//! every trace tool read it unchanged.
//!
//! Only panics produce a dump: `kill -9` gives the process no
//! opportunity to run anything, and the localnet CI gate asserts exactly
//! that asymmetry (SIGKILL → no `crash.jsonl`; panic → parseable dump).

use algorand_obs::FlightHandle;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// What the panic hook needs to write a dump.
#[derive(Clone)]
pub struct CrashContext {
    /// Directory the dump lands in (the node's WAL dir).
    pub wal_dir: PathBuf,
    /// Deployment seed, stamped into the dump header.
    pub seed: u64,
    /// The flight recorder to drain.
    pub flight: FlightHandle,
    /// Highest round the WAL has durably persisted; the runtime keeps
    /// this current so the dump names where replay will resume.
    pub last_wal_round: Arc<AtomicU64>,
}

/// The armed context. A `Mutex<Option<..>>` rather than a plain
/// `OnceLock<CrashContext>` so tests (and restarts within one process)
/// can re-arm; the *hook* is installed only once.
static ARMED: OnceLock<Mutex<Option<CrashContext>>> = OnceLock::new();

fn slot() -> &'static Mutex<Option<CrashContext>> {
    ARMED.get_or_init(|| Mutex::new(None))
}

/// Writes the dump for `ctx`. Called from the panic hook; also directly
/// callable so tests can exercise the exact write path.
pub fn write_crash_dump(ctx: &CrashContext) -> std::io::Result<()> {
    let schedule = format!(
        "crash wal_round={}",
        ctx.last_wal_round.load(Ordering::Relaxed)
    );
    let jsonl = ctx.flight.dump_jsonl(ctx.seed, &schedule);
    std::fs::write(ctx.wal_dir.join("crash.jsonl"), jsonl)
}

/// Arms the crash dump: installs the process-wide panic hook (first call
/// only, chaining the previous hook) and sets the active context. A
/// later call replaces the context.
pub fn arm(ctx: CrashContext) {
    *slot().lock().expect("crash slot") = Some(ctx);
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Dump first — the previous hook may abort the process.
            if let Ok(guard) = slot().lock() {
                if let Some(ctx) = guard.as_ref() {
                    let _ = write_crash_dump(ctx);
                }
            }
            previous(info);
        }));
    });
}

/// Disarms the crash dump (a cleanly finishing runtime is not a crash).
pub fn disarm() {
    *slot().lock().expect("crash slot") = None;
}

#[cfg(test)]
mod tests {
    use super::*;
    use algorand_obs::{parse_jsonl, SpanKind, Tracer};

    #[test]
    fn panic_dump_parses_and_names_the_wal_round() {
        let dir = std::env::temp_dir().join(format!("algorand-crash-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let _ = std::fs::remove_file(dir.join("crash.jsonl"));

        let flight = FlightHandle::new(64);
        let tracer = Tracer::bounded(16);
        tracer.set_observer(flight.observer());
        for i in 0..5u64 {
            tracer
                .span(SpanKind::Verify, 0, i, i)
                .label("vote")
                .instant();
        }
        let last_wal_round = Arc::new(AtomicU64::new(3));
        arm(CrashContext {
            wal_dir: dir.clone(),
            seed: 11,
            flight,
            last_wal_round,
        });

        // A caught panic still runs the hook.
        let result = std::panic::catch_unwind(|| panic!("boom for the flight recorder"));
        assert!(result.is_err());
        disarm();

        let dump = std::fs::read_to_string(dir.join("crash.jsonl")).unwrap();
        let parsed = parse_jsonl(&dump).expect("crash dump parses as a trace");
        assert_eq!(parsed.seed, 11);
        assert_eq!(parsed.schedule, "crash wal_round=3");
        assert_eq!(parsed.events.len(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
