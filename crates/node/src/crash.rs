//! Crash forensics: a panic hook that dumps the flight recorder.
//!
//! A panicking node takes its in-memory trace with it — precisely the
//! evidence that explains the panic. [`arm`] installs a process-wide
//! panic hook that writes the flight recorder's ring, plus the last
//! WAL-persisted round, to `<wal_dir>/crash.jsonl` *before* the process
//! unwinds away. The dump is ordinary trace JSONL (header `schedule`
//! field `crash wal_round=<n>`), so [`algorand_obs::parse_jsonl`] and
//! every trace tool read it unchanged.
//!
//! Only panics produce a dump: `kill -9` gives the process no
//! opportunity to run anything, and the localnet CI gate asserts exactly
//! that asymmetry (SIGKILL → no `crash.jsonl`; panic → parseable dump).

use algorand_obs::FlightHandle;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// What the panic hook needs to write a dump.
#[derive(Clone)]
pub struct CrashContext {
    /// Directory the dump lands in (the node's WAL dir).
    pub wal_dir: PathBuf,
    /// Deployment seed, stamped into the dump header.
    pub seed: u64,
    /// The flight recorder to drain.
    pub flight: FlightHandle,
    /// Highest round the WAL has durably persisted; the runtime keeps
    /// this current so the dump names where replay will resume.
    pub last_wal_round: Arc<AtomicU64>,
}

/// The armed context. A `Mutex<Option<..>>` rather than a plain
/// `OnceLock<CrashContext>` so tests (and restarts within one process)
/// can re-arm; the *hook* is installed only once.
static ARMED: OnceLock<Mutex<Option<CrashContext>>> = OnceLock::new();

fn slot() -> &'static Mutex<Option<CrashContext>> {
    ARMED.get_or_init(|| Mutex::new(None))
}

/// The process-wide dump lock: every flight-recorder drain — the panic
/// hook's crash dump *and* the runtime's TELEMETRY flight scrape — runs
/// under it, so a scrape racing a panic can never observe (or emit) a
/// half-interleaved ring. Poison-tolerant: a panic *while holding* the
/// lock must not rob the hook of its dump.
static DUMP_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` holding the dump lock. Use for any flight-recorder drain
/// that must be atomic with respect to the panic hook.
pub fn with_dump_lock<T>(f: impl FnOnce() -> T) -> T {
    let _guard = DUMP_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    f()
}

/// Writes the dump for `ctx`. Called from the panic hook; also directly
/// callable so tests can exercise the exact write path. Serialized with
/// concurrent flight scrapes via [`with_dump_lock`].
pub fn write_crash_dump(ctx: &CrashContext) -> std::io::Result<()> {
    with_dump_lock(|| {
        let schedule = format!(
            "crash wal_round={}",
            ctx.last_wal_round.load(Ordering::Relaxed)
        );
        let jsonl = ctx.flight.dump_jsonl(ctx.seed, &schedule);
        std::fs::write(ctx.wal_dir.join("crash.jsonl"), jsonl)
    })
}

/// Arms the crash dump: installs the process-wide panic hook (first call
/// only, chaining the previous hook) and sets the active context. A
/// later call replaces the context.
pub fn arm(ctx: CrashContext) {
    *slot().lock().expect("crash slot") = Some(ctx);
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Dump first — the previous hook may abort the process.
            if let Ok(guard) = slot().lock() {
                if let Some(ctx) = guard.as_ref() {
                    let _ = write_crash_dump(ctx);
                }
            }
            previous(info);
        }));
    });
}

/// Disarms the crash dump (a cleanly finishing runtime is not a crash).
pub fn disarm() {
    *slot().lock().expect("crash slot") = None;
}

#[cfg(test)]
mod tests {
    use super::*;
    use algorand_obs::{parse_jsonl, SpanKind, Tracer};

    /// The panic hook and armed context are process-global; tests that
    /// arm and panic must not interleave.
    static TEST_SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn panic_dump_parses_and_names_the_wal_round() {
        let _serial = TEST_SERIAL
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let dir = std::env::temp_dir().join(format!("algorand-crash-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let _ = std::fs::remove_file(dir.join("crash.jsonl"));

        let flight = FlightHandle::new(64);
        let tracer = Tracer::bounded(16);
        tracer.set_observer(flight.observer());
        for i in 0..5u64 {
            tracer
                .span(SpanKind::Verify, 0, i, i)
                .label("vote")
                .instant();
        }
        let last_wal_round = Arc::new(AtomicU64::new(3));
        arm(CrashContext {
            wal_dir: dir.clone(),
            seed: 11,
            flight,
            last_wal_round,
        });

        // A caught panic still runs the hook.
        let result = std::panic::catch_unwind(|| panic!("boom for the flight recorder"));
        assert!(result.is_err());
        disarm();

        let dump = std::fs::read_to_string(dir.join("crash.jsonl")).unwrap();
        let parsed = parse_jsonl(&dump).expect("crash dump parses as a trace");
        assert_eq!(parsed.seed, 11);
        assert_eq!(parsed.schedule, "crash wal_round=3");
        assert_eq!(parsed.events.len(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn panic_dump_waits_for_an_in_progress_scrape() {
        let _serial = TEST_SERIAL
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let dir =
            std::env::temp_dir().join(format!("algorand-crash-race-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let _ = std::fs::remove_file(dir.join("crash.jsonl"));

        let flight = FlightHandle::new(64);
        let tracer = Tracer::bounded(16);
        tracer.set_observer(flight.observer());
        tracer
            .span(SpanKind::Verify, 0, 1, 1)
            .label("vote")
            .instant();
        arm(CrashContext {
            wal_dir: dir.clone(),
            seed: 13,
            flight,
            last_wal_round: Arc::new(AtomicU64::new(1)),
        });

        // A "scrape" takes the dump lock and holds it while another
        // thread panics: the hook's dump must wait, never interleave.
        let (locked_tx, locked_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let scraper = std::thread::spawn(move || {
            with_dump_lock(|| {
                locked_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            });
        });
        locked_rx.recv().unwrap();
        let dump_path = dir.join("crash.jsonl");
        let panicker = std::thread::spawn(|| {
            let _ = std::panic::catch_unwind(|| panic!("boom while scraping"));
        });
        // The hook is blocked on the scrape's lock: no dump may appear.
        std::thread::sleep(std::time::Duration::from_millis(250));
        assert!(
            !dump_path.exists(),
            "crash dump written while a scrape held the dump lock"
        );
        release_tx.send(()).unwrap();
        scraper.join().unwrap();
        panicker.join().unwrap();
        disarm();

        let dump = std::fs::read_to_string(&dump_path).expect("dump after release");
        let parsed = parse_jsonl(&dump).expect("post-race dump parses");
        assert_eq!(parsed.seed, 13);
        assert_eq!(parsed.events.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
