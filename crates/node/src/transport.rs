//! Threaded TCP transport with static peers, peer exchange, per-peer
//! bounded send queues, and first-class telemetry.
//!
//! Each connection gets a reader thread (parses [`crate::frame`] frames,
//! forwards gossip and status to the runtime over a channel) and a
//! writer thread (drains a bounded queue onto the socket). The consensus
//! loop never touches a socket: sends are `try_send` onto the queue and
//! *drop* when a peer's queue is full — a slow peer costs itself
//! messages (it can recover via blocksync) rather than stalling
//! agreement, the same pressure-shedding posture the paper's gossip
//! network takes.
//!
//! Connectivity is static peers plus gossip-learned peer exchange: every
//! *outbound* connection starts with a HELLO advertising the sender's
//! listen address; an *inbound* connection becomes a **protocol peer**
//! only once that HELLO arrives (we reply with ours). Connections that
//! never say HELLO — telemetry scrapers — are served [`frame::TELEMETRY`]
//! responses but are excluded from peer counts, broadcasts, and peer
//! exchange, so observing a node cannot change its gossip behavior.
//! Peers periodically swap known-address sets, and a maintenance thread
//! keeps dialing any known address that lacks a live connection: start
//! five processes each knowing only one other and the deployment
//! converges to full connectivity.
//!
//! Metrics live in the shared [`Registry`]: total and per-kind frame and
//! byte counters each direction, lifetime connection count, and per-peer
//! send-queue drops and depth (keyed by the peer's advertised address via
//! [`obs::labeled`]). TELEMETRY frames are excluded from every counter in
//! both directions — scraping must not perturb the numbers being
//! scraped, and the `telemetry_smoke` CI gate holds exposition output
//! byte-identical across two scrapes of an idle node.

use crate::frame;
use algorand_obs::{labeled, Counter, Registry};
use std::collections::{HashMap, HashSet};
use std::io::{self, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Identifies one live connection (not a node: a reconnect gets a new id).
pub type PeerId = u64;

/// Outstanding frames a peer's send queue holds before we drop on it.
const SEND_QUEUE: usize = 1024;
/// Inbound frames buffered for the runtime before readers block (which
/// in turn backpressures the kernel socket, then the sender).
const EVENT_QUEUE: usize = 4096;
/// Maintenance cadence: redial pass every tick, peer exchange every 4th.
const MAINTENANCE_TICK: Duration = Duration::from_millis(500);

/// What the transport hands the consensus loop.
#[derive(Debug)]
pub enum TransportEvent {
    /// One encoded [`algorand_core::WireMessage`] from a peer.
    Gossip {
        /// Connection it arrived on (for reply routing and logs).
        from: PeerId,
        /// The raw wire bytes, undecoded — the runtime owns decode so
        /// failures are counted and attributed in one place.
        bytes: Vec<u8>,
    },
    /// A peer announced its status (tip round plus telemetry).
    Status {
        /// Connection it arrived on.
        from: PeerId,
        /// The decoded announcement.
        info: frame::StatusInfo,
    },
    /// A telemetry scrape request ([`frame::TEL_METRICS_REQ`],
    /// [`frame::TEL_FLIGHT_REQ`] or [`frame::TEL_TRACE_REQ`]); the
    /// runtime renders the body and answers via
    /// [`Transport::send_telemetry`].
    Telemetry {
        /// Connection the request arrived on.
        from: PeerId,
        /// The request op code.
        op: u8,
        /// The request body after the op byte (the drain cursor for
        /// [`frame::TEL_TRACE_REQ`]; empty otherwise).
        body: Vec<u8>,
    },
}

/// Per-connection TELEMETRY request rate limit: a token bucket holding
/// at most `burst` tokens, refilled at `per_sec` tokens per second.
/// Each request consumes one token; an empty bucket gets a
/// [`frame::TEL_THROTTLED`] error frame instead of service. `per_sec ==
/// 0` disables limiting. Buckets are per connection, so a multi-chunk
/// trace drain over fresh connections is never throttled by an earlier
/// scraper's appetite.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryLimit {
    /// Bucket capacity (requests an idle connection may burst).
    pub burst: u32,
    /// Sustained refill rate, tokens per second (0 = unlimited).
    pub per_sec: u32,
}

impl Default for TelemetryLimit {
    fn default() -> TelemetryLimit {
        TelemetryLimit {
            burst: 32,
            per_sec: 16,
        }
    }
}

/// The reader-thread-local token bucket backing [`TelemetryLimit`].
/// Tokens are tracked in millionths so refill math stays integral.
struct TokenBucket {
    limit: TelemetryLimit,
    micro: u64,
    last: std::time::Instant,
}

impl TokenBucket {
    fn new(limit: TelemetryLimit) -> TokenBucket {
        TokenBucket {
            limit,
            micro: u64::from(limit.burst) * 1_000_000,
            last: std::time::Instant::now(),
        }
    }

    fn try_take(&mut self) -> bool {
        if self.limit.per_sec == 0 {
            return true;
        }
        let now = std::time::Instant::now();
        let refill =
            now.duration_since(self.last).as_micros() as u64 * u64::from(self.limit.per_sec);
        self.last = now;
        self.micro = (self.micro + refill).min(u64::from(self.limit.burst) * 1_000_000);
        if self.micro >= 1_000_000 {
            self.micro -= 1_000_000;
            true
        } else {
            false
        }
    }
}

/// Monotonic counters, snapshotted for metrics export.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransportStats {
    /// Frames written to sockets (telemetry excluded).
    pub frames_sent: u64,
    /// Frames parsed off sockets (telemetry excluded).
    pub frames_received: u64,
    /// Bytes written to sockets (telemetry excluded).
    pub bytes_sent: u64,
    /// Bytes parsed off sockets (telemetry excluded).
    pub bytes_received: u64,
    /// Frames dropped because a peer's send queue was full.
    pub send_drops: u64,
    /// Protocol connections established (both directions, lifetime).
    pub connections: u64,
}

/// The wire name of a metered frame kind (`None` for TELEMETRY, which
/// is deliberately unmetered, and for unknown kinds).
fn kind_name(kind: u8) -> Option<&'static str> {
    match kind {
        frame::HELLO => Some("hello"),
        frame::GOSSIP => Some("gossip"),
        frame::PEERS => Some("peers"),
        frame::STATUS => Some("status"),
        _ => None,
    }
}

/// Registry-backed transport counters. Totals and the per-kind splits
/// are pre-registered at startup so the exposition line set is stable
/// from the first scrape.
struct Metrics {
    frames_sent: Counter,
    frames_received: Counter,
    bytes_sent: Counter,
    bytes_received: Counter,
    send_drops: Counter,
    connections: Counter,
    /// Indexed by `kind - 1` for kinds HELLO..=STATUS.
    frames_sent_kind: [Counter; 4],
    bytes_sent_kind: [Counter; 4],
    frames_received_kind: [Counter; 4],
    bytes_received_kind: [Counter; 4],
}

impl Metrics {
    fn new(registry: &Registry) -> Metrics {
        let by_kind = |base: &str| -> [Counter; 4] {
            [frame::HELLO, frame::GOSSIP, frame::PEERS, frame::STATUS].map(|k| {
                registry.counter(&labeled(base, &[("kind", kind_name(k).expect("metered"))]))
            })
        };
        Metrics {
            frames_sent: registry.counter("transport.frames_sent"),
            frames_received: registry.counter("transport.frames_received"),
            bytes_sent: registry.counter("transport.bytes_sent"),
            bytes_received: registry.counter("transport.bytes_received"),
            send_drops: registry.counter("transport.send_drops"),
            connections: registry.counter("transport.connections"),
            frames_sent_kind: by_kind("transport.frames_sent"),
            bytes_sent_kind: by_kind("transport.bytes_sent"),
            frames_received_kind: by_kind("transport.frames_received"),
            bytes_received_kind: by_kind("transport.bytes_received"),
        }
    }

    fn count_sent(&self, kind: u8, bytes: u64) {
        let Some(i) = metered_index(kind) else { return };
        self.frames_sent.inc();
        self.bytes_sent.add(bytes);
        self.frames_sent_kind[i].inc();
        self.bytes_sent_kind[i].add(bytes);
    }

    fn count_received(&self, kind: u8, bytes: u64) {
        let Some(i) = metered_index(kind) else { return };
        self.frames_received.inc();
        self.bytes_received.add(bytes);
        self.frames_received_kind[i].inc();
        self.bytes_received_kind[i].add(bytes);
    }
}

/// Per-kind counter index for metered kinds; `None` leaves the frame
/// uncounted (TELEMETRY, unknown).
fn metered_index(kind: u8) -> Option<usize> {
    (frame::HELLO..=frame::STATUS)
        .contains(&kind)
        .then(|| (kind - frame::HELLO) as usize)
}

struct Peer {
    queue: SyncSender<Arc<Vec<u8>>>,
    /// Clone of the socket so [`Transport::shutdown`] can unblock the
    /// reader thread.
    stream: TcpStream,
    /// The peer's advertised listen address, once known (at dial time
    /// for outbound, at HELLO for inbound).
    addr: Option<String>,
    /// Whether this connection spoke the peer protocol (sent or will be
    /// sent HELLO). Non-protocol connections — telemetry scrapers — get
    /// no broadcasts and don't count as peers.
    protocol: bool,
    /// Frames enqueued but not yet written (send-queue occupancy).
    depth: Arc<AtomicI64>,
    /// Per-peer send-queue drop counter, registered once the advertised
    /// address is known.
    drops: Option<Counter>,
}

struct Shared {
    advertised: String,
    registry: Registry,
    metrics: Metrics,
    peers: Mutex<HashMap<PeerId, Peer>>,
    /// Dialable listen addresses learned from config or peer exchange.
    known: Mutex<HashSet<String>>,
    /// Addresses with a dial attempt in flight.
    dialing: Mutex<HashSet<String>>,
    /// Advertised addresses with a live connection.
    connected: Mutex<HashSet<String>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    events: SyncSender<TransportEvent>,
    limit: TelemetryLimit,
}

/// The node's TCP fabric. Dropping it does *not* stop the threads; call
/// [`Transport::shutdown`].
pub struct Transport {
    shared: Arc<Shared>,
    events: Receiver<TransportEvent>,
    local_addr: String,
}

impl Transport {
    /// Binds `listen`, connects to `static_peers` (retrying forever —
    /// deployment processes start in arbitrary order), and starts the
    /// maintenance thread. Counters register into `registry`.
    ///
    /// # Errors
    ///
    /// Fails only if the listen socket cannot be bound.
    pub fn start(
        listen: &str,
        static_peers: &[String],
        registry: Registry,
    ) -> io::Result<Transport> {
        Transport::start_with_limit(listen, static_peers, registry, TelemetryLimit::default())
    }

    /// Like [`Transport::start`] with an explicit per-connection
    /// TELEMETRY rate limit.
    ///
    /// # Errors
    ///
    /// Fails only if the listen socket cannot be bound.
    pub fn start_with_limit(
        listen: &str,
        static_peers: &[String],
        registry: Registry,
        limit: TelemetryLimit,
    ) -> io::Result<Transport> {
        let listener = TcpListener::bind(listen)?;
        let local_addr = listener.local_addr()?.to_string();
        // What peers should dial back: the configured string, unless it
        // asked for an ephemeral port, in which case the resolved one.
        let advertised = if listen.ends_with(":0") {
            local_addr.clone()
        } else {
            listen.to_string()
        };
        let (events_tx, events_rx) = mpsc::sync_channel(EVENT_QUEUE);
        let metrics = Metrics::new(&registry);
        let shared = Arc::new(Shared {
            advertised,
            registry,
            metrics,
            peers: Mutex::new(HashMap::new()),
            known: Mutex::new(static_peers.iter().cloned().collect()),
            dialing: Mutex::new(HashSet::new()),
            connected: Mutex::new(HashSet::new()),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            events: events_tx,
            limit,
        });

        let accept_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))?;

        let maint_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("maintenance".into())
            .spawn(move || maintenance_loop(&maint_shared))?;

        Ok(Transport {
            shared,
            events: events_rx,
            local_addr,
        })
    }

    /// The bound listen address (resolved, e.g. with a real port for `:0`).
    pub fn local_addr(&self) -> &str {
        &self.local_addr
    }

    /// Waits up to `timeout` for the next inbound event.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<TransportEvent> {
        self.events.recv_timeout(timeout).ok()
    }

    /// Queues a gossip frame to every live protocol peer except
    /// `except`. Returns how many peers it was queued to.
    pub fn broadcast_gossip(&self, wire_bytes: &[u8], except: Option<PeerId>) -> usize {
        self.broadcast_frame(frame::GOSSIP, wire_bytes, except)
    }

    /// Queues a gossip frame to one peer (reply routing: catch-up
    /// responses go only to the requester).
    pub fn send_gossip_to(&self, peer: PeerId, wire_bytes: &[u8]) -> bool {
        let Ok(framed) = frame::encode_frame(frame::GOSSIP, wire_bytes) else {
            return false;
        };
        let framed = Arc::new(framed);
        let peers = self.shared.peers.lock().unwrap();
        peers
            .get(&peer)
            .is_some_and(|p| enqueue(&self.shared, p, &framed))
    }

    /// Queues a telemetry frame (`op` byte + `body`) to one connection —
    /// protocol peer or scraper alike. Unmetered: drops are not counted
    /// and no counter moves, so serving a scrape never perturbs metrics.
    pub fn send_telemetry(&self, peer: PeerId, op: u8, body: &[u8]) -> bool {
        send_telemetry_frame(&self.shared, peer, op, body)
    }

    /// Announces our status (tip + telemetry) to every protocol peer.
    pub fn broadcast_status(&self, info: &frame::StatusInfo) -> usize {
        self.broadcast_frame(frame::STATUS, &frame::encode_status(info), None)
    }

    fn broadcast_frame(&self, kind: u8, payload: &[u8], except: Option<PeerId>) -> usize {
        let Ok(framed) = frame::encode_frame(kind, payload) else {
            return 0;
        };
        let framed = Arc::new(framed);
        let peers = self.shared.peers.lock().unwrap();
        let mut queued = 0;
        for (&id, peer) in peers.iter() {
            if Some(id) == except || !peer.protocol {
                continue;
            }
            if enqueue(&self.shared, peer, &framed) {
                queued += 1;
            }
        }
        queued
    }

    /// Live protocol-peer count (telemetry scrapers excluded).
    pub fn peer_count(&self) -> usize {
        self.shared
            .peers
            .lock()
            .unwrap()
            .values()
            .filter(|p| p.protocol)
            .count()
    }

    /// The per-peer send-queue drop counts, by advertised address,
    /// sorted — the STATUS frame's payload.
    pub fn peer_drop_counts(&self) -> Vec<(String, u64)> {
        let peers = self.shared.peers.lock().unwrap();
        let mut out: Vec<(String, u64)> = peers
            .values()
            .filter(|p| p.protocol)
            .filter_map(|p| {
                let addr = p.addr.clone()?;
                Some((addr, p.drops.as_ref().map_or(0, Counter::get)))
            })
            .collect();
        out.sort();
        out.dedup_by(|a, b| a.0 == b.0);
        out
    }

    /// Publishes point-in-time transport gauges into the registry:
    /// `transport.peers` and per-peer `transport.send_queue_depth`.
    pub fn publish(&self) {
        let peers = self.shared.peers.lock().unwrap();
        let mut count = 0i64;
        for p in peers.values() {
            if !p.protocol {
                continue;
            }
            count += 1;
            if let Some(addr) = &p.addr {
                self.shared
                    .registry
                    .gauge(&labeled("transport.send_queue_depth", &[("peer", addr)]))
                    .set(p.depth.load(Ordering::Relaxed));
            }
        }
        self.shared.registry.gauge("transport.peers").set(count);
    }

    /// The deepest current send-queue occupancy across protocol peers:
    /// the "queue depth at send" the trace plane stamps onto outbound
    /// hop events, so a merged critical path can show how backed up the
    /// sender was when a frame was queued.
    pub fn max_send_queue_depth(&self) -> u64 {
        let peers = self.shared.peers.lock().unwrap();
        peers
            .values()
            .filter(|p| p.protocol)
            .map(|p| p.depth.load(Ordering::Relaxed).max(0) as u64)
            .max()
            .unwrap_or(0)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TransportStats {
        let m = &self.shared.metrics;
        TransportStats {
            frames_sent: m.frames_sent.get(),
            frames_received: m.frames_received.get(),
            bytes_sent: m.bytes_sent.get(),
            bytes_received: m.bytes_received.get(),
            send_drops: m.send_drops.get(),
            connections: m.connections.get(),
        }
    }

    /// Stops accepting, closes every connection, and unblocks all
    /// transport threads so they exit.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocked accept() with a throwaway connection.
        let _ = TcpStream::connect(&self.local_addr);
        let peers = self.shared.peers.lock().unwrap();
        for peer in peers.values() {
            let _ = peer.stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// Queues a telemetry frame (`op` byte + `body`) to one connection —
/// protocol peer or scraper alike. Unmetered: drops are not counted and
/// no counter moves, so serving a scrape never perturbs metrics.
fn send_telemetry_frame(shared: &Shared, peer: PeerId, op: u8, body: &[u8]) -> bool {
    let mut payload = Vec::with_capacity(1 + body.len());
    payload.push(op);
    payload.extend_from_slice(body);
    let Ok(framed) = frame::encode_frame(frame::TELEMETRY, &payload) else {
        return false;
    };
    let peers = shared.peers.lock().unwrap();
    let Some(p) = peers.get(&peer) else {
        return false;
    };
    if p.queue.try_send(Arc::new(framed)).is_ok() {
        p.depth.fetch_add(1, Ordering::Relaxed);
        true
    } else {
        false
    }
}

fn enqueue(shared: &Shared, peer: &Peer, framed: &Arc<Vec<u8>>) -> bool {
    match peer.queue.try_send(Arc::clone(framed)) {
        Ok(()) => {
            peer.depth.fetch_add(1, Ordering::Relaxed);
            true
        }
        Err(TrySendError::Full(_)) => {
            shared.metrics.send_drops.inc();
            if let Some(drops) = &peer.drops {
                drops.inc();
            }
            false
        }
        Err(TrySendError::Disconnected(_)) => false,
    }
}

/// The per-peer drop counter for an advertised address.
fn drop_counter(shared: &Shared, addr: &str) -> Counter {
    shared
        .registry
        .counter(&labeled("transport.send_drops", &[("peer", addr)]))
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let conn = listener.accept();
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Ok((stream, _)) = conn {
            spawn_connection(stream, Arc::clone(shared), None);
        }
    }
}

/// Redials missing peers every tick and runs peer exchange every fourth.
fn maintenance_loop(shared: &Arc<Shared>) {
    let mut tick = 0u64;
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(MAINTENANCE_TICK);
        tick += 1;

        let targets: Vec<String> = {
            let known = shared.known.lock().unwrap();
            let connected = shared.connected.lock().unwrap();
            let dialing = shared.dialing.lock().unwrap();
            known
                .iter()
                .filter(|a| {
                    **a != shared.advertised && !connected.contains(*a) && !dialing.contains(*a)
                })
                .cloned()
                .collect()
        };
        for addr in targets {
            shared.dialing.lock().unwrap().insert(addr.clone());
            let dial_shared = Arc::clone(shared);
            let _ = std::thread::Builder::new()
                .name(format!("dial-{addr}"))
                .spawn(move || {
                    let result = TcpStream::connect(&addr);
                    dial_shared.dialing.lock().unwrap().remove(&addr);
                    if let Ok(stream) = result {
                        spawn_connection(stream, dial_shared, Some(addr));
                    }
                });
        }

        if tick.is_multiple_of(4) {
            let mut addrs: Vec<String> = {
                let known = shared.known.lock().unwrap();
                known.iter().cloned().collect()
            };
            addrs.push(shared.advertised.clone());
            addrs.sort();
            addrs.dedup();
            let payload = frame::encode_peers(&addrs);
            if let Ok(framed) = frame::encode_frame(frame::PEERS, &payload) {
                let framed = Arc::new(framed);
                let peers = shared.peers.lock().unwrap();
                for peer in peers.values().filter(|p| p.protocol) {
                    enqueue(shared, peer, &framed);
                }
            }
        }
    }
}

/// Registers the connection and starts its reader and writer threads.
/// Outbound connections (`remote_addr` known) are protocol peers from
/// the start and lead with HELLO; inbound ones start non-protocol and
/// are promoted when their HELLO arrives.
fn spawn_connection(stream: TcpStream, shared: Arc<Shared>, remote_addr: Option<String>) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
    let outbound = remote_addr.is_some();
    let (queue_tx, queue_rx) = mpsc::sync_channel::<Arc<Vec<u8>>>(SEND_QUEUE);
    let depth = Arc::new(AtomicI64::new(0));
    if let Some(addr) = &remote_addr {
        shared.connected.lock().unwrap().insert(addr.clone());
    }

    // Outbound leads with HELLO, queued *before* the peer is visible to
    // broadcasts so it is guaranteed to be the first frame on the wire —
    // the accepting side keys protocol promotion on it.
    if outbound {
        shared.metrics.connections.inc();
        if let Ok(hello) = frame::encode_frame(frame::HELLO, shared.advertised.as_bytes()) {
            if queue_tx.try_send(Arc::new(hello)).is_ok() {
                depth.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    {
        let Ok(shutdown_half) = stream.try_clone() else {
            return;
        };
        let drops = remote_addr.as_deref().map(|a| drop_counter(&shared, a));
        let mut peers = shared.peers.lock().unwrap();
        peers.insert(
            id,
            Peer {
                queue: queue_tx.clone(),
                stream: shutdown_half,
                addr: remote_addr.clone(),
                protocol: outbound,
                depth: Arc::clone(&depth),
                drops,
            },
        );
    }

    let writer_shared = Arc::clone(&shared);
    let writer_depth = Arc::clone(&depth);
    let _ = std::thread::Builder::new()
        .name(format!("writer-{id}"))
        .spawn(move || writer_loop(write_half, &queue_rx, &writer_shared, &writer_depth));

    let reader_shared = Arc::clone(&shared);
    let _ = std::thread::Builder::new()
        .name(format!("reader-{id}"))
        .spawn(move || {
            reader_loop(stream, id, &reader_shared);
            // Reader exit means the connection is dead: deregister.
            let removed = reader_shared.peers.lock().unwrap().remove(&id);
            if let Some(addr) = removed.and_then(|p| p.addr) {
                reader_shared.connected.lock().unwrap().remove(&addr);
            }
        });
}

fn writer_loop(
    mut stream: TcpStream,
    queue: &Receiver<Arc<Vec<u8>>>,
    shared: &Shared,
    depth: &AtomicI64,
) {
    while let Ok(framed) = queue.recv() {
        if stream.write_all(&framed).is_err() {
            return;
        }
        depth.fetch_sub(1, Ordering::Relaxed);
        // framed[4] is the kind byte; TELEMETRY stays uncounted.
        shared.metrics.count_sent(framed[4], framed.len() as u64);
    }
}

fn reader_loop(stream: TcpStream, id: PeerId, shared: &Arc<Shared>) {
    let mut reader = BufReader::new(stream);
    let mut bucket = TokenBucket::new(shared.limit);
    loop {
        let Ok((kind, payload)) = frame::read_frame(&mut reader) else {
            return;
        };
        shared
            .metrics
            .count_received(kind, 5 + payload.len() as u64);
        // Anything beyond HELLO and TELEMETRY requires the connection to
        // have identified itself as a protocol peer. Outbound HELLO is
        // always the first frame, so this only rejects strangers.
        let is_protocol = shared
            .peers
            .lock()
            .unwrap()
            .get(&id)
            .is_some_and(|p| p.protocol);
        if !is_protocol && kind != frame::HELLO && kind != frame::TELEMETRY {
            return;
        }
        match kind {
            frame::HELLO => {
                let Ok(addr) = String::from_utf8(payload) else {
                    return;
                };
                let mut promoted = false;
                if let Some(peer) = shared.peers.lock().unwrap().get_mut(&id) {
                    peer.addr = Some(addr.clone());
                    if peer.drops.is_none() {
                        peer.drops = Some(drop_counter(shared, &addr));
                    }
                    if !peer.protocol {
                        peer.protocol = true;
                        promoted = true;
                        // Reply with our HELLO so the dialer learns our
                        // advertised address (and symmetric promotion
                        // holds for simultaneous dials).
                        if let Ok(hello) =
                            frame::encode_frame(frame::HELLO, shared.advertised.as_bytes())
                        {
                            if peer.queue.try_send(Arc::new(hello)).is_ok() {
                                peer.depth.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
                if promoted {
                    shared.metrics.connections.inc();
                }
                shared.connected.lock().unwrap().insert(addr.clone());
                if addr != shared.advertised {
                    shared.known.lock().unwrap().insert(addr);
                }
            }
            frame::PEERS => {
                let Some(addrs) = frame::decode_peers(&payload) else {
                    return; // Malformed peer exchange: drop the peer.
                };
                let mut known = shared.known.lock().unwrap();
                for addr in addrs {
                    if addr != shared.advertised {
                        known.insert(addr);
                    }
                }
                // The maintenance loop dials anything new next tick.
            }
            frame::GOSSIP => {
                // Blocking send: a full runtime queue backpressures this
                // connection (and, via TCP, its sender) instead of
                // ballooning memory.
                if shared
                    .events
                    .send(TransportEvent::Gossip {
                        from: id,
                        bytes: payload,
                    })
                    .is_err()
                {
                    return;
                }
            }
            frame::STATUS => {
                let Some(info) = frame::decode_status(&payload) else {
                    return; // Malformed status: drop the peer.
                };
                if shared
                    .events
                    .send(TransportEvent::Status { from: id, info })
                    .is_err()
                {
                    return;
                }
            }
            frame::TELEMETRY => {
                let Some(&op) = payload.first() else {
                    return;
                };
                if op != frame::TEL_METRICS_REQ
                    && op != frame::TEL_FLIGHT_REQ
                    && op != frame::TEL_TRACE_REQ
                {
                    return; // We serve scrapes; we never accept responses.
                }
                // Rate limit per connection: an over-budget request is
                // answered with a throttled error frame and *not*
                // forwarded; the connection stays up and earns tokens
                // back at the refill rate.
                if !bucket.try_take() {
                    send_telemetry_frame(shared, id, frame::TEL_THROTTLED, &[]);
                    continue;
                }
                if shared
                    .events
                    .send(TransportEvent::Telemetry {
                        from: id,
                        op,
                        body: payload[1..].to_vec(),
                    })
                    .is_err()
                {
                    return;
                }
            }
            _ => return, // Unknown frame kind: drop the peer.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
        for _ in 0..200 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        panic!("timed out waiting for {what}");
    }

    #[test]
    fn gossip_status_and_peer_exchange_flow() {
        // a knows b; c knows only b. Peer exchange must connect a and c.
        let a = Transport::start("127.0.0.1:0", &[], Registry::new()).unwrap();
        let b = Transport::start(
            "127.0.0.1:0",
            &[a.local_addr().to_string()],
            Registry::new(),
        )
        .unwrap();
        let c = Transport::start(
            "127.0.0.1:0",
            &[b.local_addr().to_string()],
            Registry::new(),
        )
        .unwrap();

        wait_for(|| a.peer_count() >= 2 && c.peer_count() >= 2, "full mesh");

        // Gossip from a reaches both b and c.
        assert!(a.broadcast_gossip(b"payload-one", None) >= 2);
        for (name, t) in [("b", &b), ("c", &c)] {
            let got = loop {
                match t.recv_timeout(Duration::from_secs(5)) {
                    Some(TransportEvent::Gossip { bytes, .. }) => break bytes,
                    Some(_) => continue,
                    None => panic!("no gossip at {name}"),
                }
            };
            assert_eq!(got, b"payload-one");
        }

        // Status frames carry the tip and telemetry.
        let info = frame::StatusInfo {
            tip: 41,
            trace_dropped: 2,
            monitor_violations: 0,
            peer_drops: vec![("127.0.0.1:9009".to_string(), 3)],
        };
        assert!(b.broadcast_status(&info) >= 2);
        let got = loop {
            match a.recv_timeout(Duration::from_secs(5)) {
                Some(TransportEvent::Status { info, .. }) => break info,
                Some(_) => continue,
                None => panic!("no status at a"),
            }
        };
        assert_eq!(got, info);
        assert!(a.stats().frames_received > 0);

        a.shutdown();
        b.shutdown();
        c.shutdown();
    }

    #[test]
    fn reply_goes_only_to_sender() {
        let a = Transport::start("127.0.0.1:0", &[], Registry::new()).unwrap();
        let b = Transport::start(
            "127.0.0.1:0",
            &[a.local_addr().to_string()],
            Registry::new(),
        )
        .unwrap();
        wait_for(|| a.peer_count() >= 1 && b.peer_count() >= 1, "a-b link");

        b.broadcast_gossip(b"request", None);
        let from = loop {
            match a.recv_timeout(Duration::from_secs(5)) {
                Some(TransportEvent::Gossip { from, bytes }) => {
                    assert_eq!(bytes, b"request");
                    break from;
                }
                Some(_) => continue,
                None => panic!("request not delivered"),
            }
        };
        assert!(a.send_gossip_to(from, b"response"));
        let got = loop {
            match b.recv_timeout(Duration::from_secs(5)) {
                Some(TransportEvent::Gossip { bytes, .. }) => break bytes,
                Some(_) => continue,
                None => panic!("response not delivered"),
            }
        };
        assert_eq!(got, b"response");
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn scraper_connection_is_served_but_is_not_a_peer() {
        let registry = Registry::new();
        let a = Transport::start("127.0.0.1:0", &[], registry.clone()).unwrap();

        // A raw client that never says HELLO: a telemetry scraper.
        let mut client = TcpStream::connect(a.local_addr()).unwrap();
        client
            .write_all(&frame::encode_frame(frame::TELEMETRY, &[frame::TEL_METRICS_REQ]).unwrap())
            .unwrap();

        // The runtime-side event arrives; answer it.
        let (from, op) = loop {
            match a.recv_timeout(Duration::from_secs(5)) {
                Some(TransportEvent::Telemetry { from, op, .. }) => break (from, op),
                Some(_) => continue,
                None => panic!("no telemetry request"),
            }
        };
        assert_eq!(op, frame::TEL_METRICS_REQ);
        assert!(a.send_telemetry(from, frame::TEL_METRICS_RESP, b"x 1\n"));

        let mut reader = BufReader::new(client.try_clone().unwrap());
        let (kind, payload) = frame::read_frame(&mut reader).unwrap();
        assert_eq!(kind, frame::TELEMETRY);
        assert_eq!(payload[0], frame::TEL_METRICS_RESP);
        assert_eq!(&payload[1..], b"x 1\n");

        // The scraper is not a protocol peer: no peer count, no
        // broadcasts reach it, no counters moved.
        assert_eq!(a.peer_count(), 0);
        assert_eq!(
            a.broadcast_status(&frame::StatusInfo {
                tip: 1,
                ..frame::StatusInfo::default()
            }),
            0
        );
        let stats = a.stats();
        assert_eq!(stats.frames_sent, 0, "telemetry is unmetered");
        assert_eq!(stats.frames_received, 0, "telemetry is unmetered");
        assert_eq!(stats.connections, 0, "scraper is not a connection");

        a.shutdown();
    }

    #[test]
    fn over_limit_scrapes_get_throttled_error_frames() {
        let limit = TelemetryLimit {
            burst: 2,
            per_sec: 1,
        };
        let a = Transport::start_with_limit("127.0.0.1:0", &[], Registry::new(), limit).unwrap();

        // Answer every forwarded request so the client can count
        // replies; the transport itself answers throttled ones.
        let mut client = TcpStream::connect(a.local_addr()).unwrap();
        const REQUESTS: usize = 5;
        for _ in 0..REQUESTS {
            client
                .write_all(
                    &frame::encode_frame(frame::TELEMETRY, &[frame::TEL_METRICS_REQ]).unwrap(),
                )
                .unwrap();
        }
        let mut forwarded = 0;
        while let Some(ev) = a.recv_timeout(Duration::from_millis(800)) {
            if let TransportEvent::Telemetry { from, .. } = ev {
                assert!(a.send_telemetry(from, frame::TEL_METRICS_RESP, b"x 1\n"));
                forwarded += 1;
            }
        }
        assert!(
            forwarded < REQUESTS,
            "a burst of {REQUESTS} must not all pass a burst-2 bucket"
        );
        assert!(forwarded >= 2, "the burst allowance must be served");

        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut throttled = 0;
        let mut metrics = 0;
        for _ in 0..REQUESTS {
            let (kind, payload) = frame::read_frame(&mut reader).unwrap();
            assert_eq!(kind, frame::TELEMETRY);
            match payload[0] {
                frame::TEL_THROTTLED => throttled += 1,
                frame::TEL_METRICS_RESP => metrics += 1,
                other => panic!("unexpected telemetry op {other}"),
            }
        }
        assert_eq!(metrics, forwarded);
        assert_eq!(throttled, REQUESTS - forwarded);
        assert!(throttled >= 1);
        a.shutdown();
    }

    #[test]
    fn per_peer_drop_counters_surface_by_address() {
        let reg_a = Registry::new();
        let a = Transport::start("127.0.0.1:0", &[], reg_a.clone()).unwrap();
        let b = Transport::start(
            "127.0.0.1:0",
            &[a.local_addr().to_string()],
            Registry::new(),
        )
        .unwrap();
        wait_for(|| a.peer_count() >= 1 && b.peer_count() >= 1, "a-b link");

        let drops = a.peer_drop_counts();
        assert_eq!(drops.len(), 1, "one protocol peer with a known address");
        assert_eq!(drops[0].1, 0);
        a.publish();
        let exposed = algorand_obs::expose::render(&reg_a);
        assert!(exposed.contains("transport.peers 1"), "{exposed}");
        assert!(
            exposed.contains("transport.send_queue_depth{peer="),
            "{exposed}"
        );
        a.shutdown();
        b.shutdown();
    }
}
