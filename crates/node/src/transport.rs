//! Threaded TCP transport with static peers, peer exchange, and
//! per-peer bounded send queues.
//!
//! Each connection gets a reader thread (parses [`crate::frame`] frames,
//! forwards gossip and status to the runtime over a channel) and a
//! writer thread (drains a bounded queue onto the socket). The consensus
//! loop never touches a socket: sends are `try_send` onto the queue and
//! *drop* when a peer's queue is full — a slow peer costs itself
//! messages (it can recover via blocksync) rather than stalling
//! agreement, the same pressure-shedding posture the paper's gossip
//! network takes.
//!
//! Connectivity is static peers plus gossip-learned peer exchange: every
//! connection starts with a HELLO advertising the sender's listen
//! address, peers periodically swap their known-address sets, and a
//! maintenance thread keeps dialing any known address that lacks a live
//! connection. Start five processes each knowing only one other and the
//! deployment converges to full connectivity.

use crate::frame;
use std::collections::{HashMap, HashSet};
use std::io::{self, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Identifies one live connection (not a node: a reconnect gets a new id).
pub type PeerId = u64;

/// Outstanding frames a peer's send queue holds before we drop on it.
const SEND_QUEUE: usize = 1024;
/// Inbound frames buffered for the runtime before readers block (which
/// in turn backpressures the kernel socket, then the sender).
const EVENT_QUEUE: usize = 4096;
/// Maintenance cadence: redial pass every tick, peer exchange every 4th.
const MAINTENANCE_TICK: Duration = Duration::from_millis(500);

/// What the transport hands the consensus loop.
#[derive(Debug)]
pub enum TransportEvent {
    /// One encoded [`algorand_core::WireMessage`] from a peer.
    Gossip {
        /// Connection it arrived on (for reply routing and logs).
        from: PeerId,
        /// The raw wire bytes, undecoded — the runtime owns decode so
        /// failures are counted and attributed in one place.
        bytes: Vec<u8>,
    },
    /// A peer announced its tip round.
    Status {
        /// Connection it arrived on.
        from: PeerId,
        /// The peer's finalized tip.
        tip: u64,
    },
}

/// Monotonic counters, snapshotted for metrics export.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransportStats {
    /// Frames written to sockets.
    pub frames_sent: u64,
    /// Frames parsed off sockets.
    pub frames_received: u64,
    /// Bytes written to sockets.
    pub bytes_sent: u64,
    /// Bytes parsed off sockets.
    pub bytes_received: u64,
    /// Frames dropped because a peer's send queue was full.
    pub send_drops: u64,
    /// Connections established (both directions, lifetime).
    pub connections: u64,
}

struct Peer {
    queue: SyncSender<Arc<Vec<u8>>>,
    /// Clone of the socket so [`Transport::shutdown`] can unblock the
    /// reader thread.
    stream: TcpStream,
    /// The peer's advertised listen address, once its HELLO arrives.
    addr: Option<String>,
}

struct Shared {
    advertised: String,
    peers: Mutex<HashMap<PeerId, Peer>>,
    /// Dialable listen addresses learned from config or peer exchange.
    known: Mutex<HashSet<String>>,
    /// Addresses with a dial attempt in flight.
    dialing: Mutex<HashSet<String>>,
    /// Advertised addresses with a live connection.
    connected: Mutex<HashSet<String>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    events: SyncSender<TransportEvent>,
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    send_drops: AtomicU64,
    connections: AtomicU64,
}

/// The node's TCP fabric. Dropping it does *not* stop the threads; call
/// [`Transport::shutdown`].
pub struct Transport {
    shared: Arc<Shared>,
    events: Receiver<TransportEvent>,
    local_addr: String,
}

impl Transport {
    /// Binds `listen`, connects to `static_peers` (retrying forever —
    /// deployment processes start in arbitrary order), and starts the
    /// maintenance thread.
    ///
    /// # Errors
    ///
    /// Fails only if the listen socket cannot be bound.
    pub fn start(listen: &str, static_peers: &[String]) -> io::Result<Transport> {
        let listener = TcpListener::bind(listen)?;
        let local_addr = listener.local_addr()?.to_string();
        // What peers should dial back: the configured string, unless it
        // asked for an ephemeral port, in which case the resolved one.
        let advertised = if listen.ends_with(":0") {
            local_addr.clone()
        } else {
            listen.to_string()
        };
        let (events_tx, events_rx) = mpsc::sync_channel(EVENT_QUEUE);
        let shared = Arc::new(Shared {
            advertised,
            peers: Mutex::new(HashMap::new()),
            known: Mutex::new(static_peers.iter().cloned().collect()),
            dialing: Mutex::new(HashSet::new()),
            connected: Mutex::new(HashSet::new()),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            events: events_tx,
            frames_sent: AtomicU64::new(0),
            frames_received: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            send_drops: AtomicU64::new(0),
            connections: AtomicU64::new(0),
        });

        let accept_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))?;

        let maint_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("maintenance".into())
            .spawn(move || maintenance_loop(&maint_shared))?;

        Ok(Transport {
            shared,
            events: events_rx,
            local_addr,
        })
    }

    /// The bound listen address (resolved, e.g. with a real port for `:0`).
    pub fn local_addr(&self) -> &str {
        &self.local_addr
    }

    /// Waits up to `timeout` for the next inbound event.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<TransportEvent> {
        self.events.recv_timeout(timeout).ok()
    }

    /// Queues a gossip frame to every live peer except `except`.
    /// Returns how many peers it was queued to.
    pub fn broadcast_gossip(&self, wire_bytes: &[u8], except: Option<PeerId>) -> usize {
        self.broadcast_frame(frame::GOSSIP, wire_bytes, except)
    }

    /// Queues a gossip frame to one peer (reply routing: catch-up
    /// responses go only to the requester).
    pub fn send_gossip_to(&self, peer: PeerId, wire_bytes: &[u8]) -> bool {
        let Ok(framed) = frame::encode_frame(frame::GOSSIP, wire_bytes) else {
            return false;
        };
        let framed = Arc::new(framed);
        let peers = self.shared.peers.lock().unwrap();
        peers
            .get(&peer)
            .is_some_and(|p| enqueue(&self.shared, p, &framed))
    }

    /// Announces our finalized tip to every peer.
    pub fn broadcast_status(&self, tip: u64) -> usize {
        self.broadcast_frame(frame::STATUS, &tip.to_le_bytes(), None)
    }

    fn broadcast_frame(&self, kind: u8, payload: &[u8], except: Option<PeerId>) -> usize {
        let Ok(framed) = frame::encode_frame(kind, payload) else {
            return 0;
        };
        let framed = Arc::new(framed);
        let peers = self.shared.peers.lock().unwrap();
        let mut queued = 0;
        for (&id, peer) in peers.iter() {
            if Some(id) == except {
                continue;
            }
            if enqueue(&self.shared, peer, &framed) {
                queued += 1;
            }
        }
        queued
    }

    /// Live connection count.
    pub fn peer_count(&self) -> usize {
        self.shared.peers.lock().unwrap().len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TransportStats {
        let s = &self.shared;
        TransportStats {
            frames_sent: s.frames_sent.load(Ordering::Relaxed),
            frames_received: s.frames_received.load(Ordering::Relaxed),
            bytes_sent: s.bytes_sent.load(Ordering::Relaxed),
            bytes_received: s.bytes_received.load(Ordering::Relaxed),
            send_drops: s.send_drops.load(Ordering::Relaxed),
            connections: s.connections.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, closes every connection, and unblocks all
    /// transport threads so they exit.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocked accept() with a throwaway connection.
        let _ = TcpStream::connect(&self.local_addr);
        let peers = self.shared.peers.lock().unwrap();
        for peer in peers.values() {
            let _ = peer.stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

fn enqueue(shared: &Shared, peer: &Peer, framed: &Arc<Vec<u8>>) -> bool {
    match peer.queue.try_send(Arc::clone(framed)) {
        Ok(()) => true,
        Err(TrySendError::Full(_)) => {
            shared.send_drops.fetch_add(1, Ordering::Relaxed);
            false
        }
        Err(TrySendError::Disconnected(_)) => false,
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let conn = listener.accept();
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Ok((stream, _)) = conn {
            spawn_connection(stream, Arc::clone(shared), None);
        }
    }
}

/// Redials missing peers every tick and runs peer exchange every fourth.
fn maintenance_loop(shared: &Arc<Shared>) {
    let mut tick = 0u64;
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(MAINTENANCE_TICK);
        tick += 1;

        let targets: Vec<String> = {
            let known = shared.known.lock().unwrap();
            let connected = shared.connected.lock().unwrap();
            let dialing = shared.dialing.lock().unwrap();
            known
                .iter()
                .filter(|a| {
                    **a != shared.advertised && !connected.contains(*a) && !dialing.contains(*a)
                })
                .cloned()
                .collect()
        };
        for addr in targets {
            shared.dialing.lock().unwrap().insert(addr.clone());
            let dial_shared = Arc::clone(shared);
            let _ = std::thread::Builder::new()
                .name(format!("dial-{addr}"))
                .spawn(move || {
                    let result = TcpStream::connect(&addr);
                    dial_shared.dialing.lock().unwrap().remove(&addr);
                    if let Ok(stream) = result {
                        spawn_connection(stream, dial_shared, Some(addr));
                    }
                });
        }

        if tick.is_multiple_of(4) {
            let mut addrs: Vec<String> = {
                let known = shared.known.lock().unwrap();
                known.iter().cloned().collect()
            };
            addrs.push(shared.advertised.clone());
            addrs.sort();
            addrs.dedup();
            let payload = frame::encode_peers(&addrs);
            if let Ok(framed) = frame::encode_frame(frame::PEERS, &payload) {
                let framed = Arc::new(framed);
                let peers = shared.peers.lock().unwrap();
                for peer in peers.values() {
                    enqueue(shared, peer, &framed);
                }
            }
        }
    }
}

/// Registers the connection and starts its reader and writer threads.
fn spawn_connection(stream: TcpStream, shared: Arc<Shared>, remote_addr: Option<String>) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
    shared.connections.fetch_add(1, Ordering::Relaxed);
    let (queue_tx, queue_rx) = mpsc::sync_channel::<Arc<Vec<u8>>>(SEND_QUEUE);
    if let Some(addr) = &remote_addr {
        shared.connected.lock().unwrap().insert(addr.clone());
    }
    {
        let Ok(shutdown_half) = stream.try_clone() else {
            return;
        };
        let mut peers = shared.peers.lock().unwrap();
        peers.insert(
            id,
            Peer {
                queue: queue_tx.clone(),
                stream: shutdown_half,
                addr: remote_addr.clone(),
            },
        );
    }

    // First frame on every connection: our dialable address.
    if let Ok(hello) = frame::encode_frame(frame::HELLO, shared.advertised.as_bytes()) {
        let _ = queue_tx.try_send(Arc::new(hello));
    }

    let writer_shared = Arc::clone(&shared);
    let _ = std::thread::Builder::new()
        .name(format!("writer-{id}"))
        .spawn(move || writer_loop(write_half, &queue_rx, &writer_shared));

    let reader_shared = Arc::clone(&shared);
    let _ = std::thread::Builder::new()
        .name(format!("reader-{id}"))
        .spawn(move || {
            reader_loop(stream, id, &reader_shared);
            // Reader exit means the connection is dead: deregister.
            let removed = reader_shared.peers.lock().unwrap().remove(&id);
            if let Some(addr) = removed.and_then(|p| p.addr) {
                reader_shared.connected.lock().unwrap().remove(&addr);
            }
        });
}

fn writer_loop(mut stream: TcpStream, queue: &Receiver<Arc<Vec<u8>>>, shared: &Shared) {
    while let Ok(framed) = queue.recv() {
        if stream.write_all(&framed).is_err() {
            return;
        }
        shared.frames_sent.fetch_add(1, Ordering::Relaxed);
        shared
            .bytes_sent
            .fetch_add(framed.len() as u64, Ordering::Relaxed);
    }
}

fn reader_loop(stream: TcpStream, id: PeerId, shared: &Arc<Shared>) {
    let mut reader = BufReader::new(stream);
    loop {
        let Ok((kind, payload)) = frame::read_frame(&mut reader) else {
            return;
        };
        shared.frames_received.fetch_add(1, Ordering::Relaxed);
        shared
            .bytes_received
            .fetch_add(5 + payload.len() as u64, Ordering::Relaxed);
        match kind {
            frame::HELLO => {
                let Ok(addr) = String::from_utf8(payload) else {
                    return;
                };
                if let Some(peer) = shared.peers.lock().unwrap().get_mut(&id) {
                    peer.addr = Some(addr.clone());
                }
                shared.connected.lock().unwrap().insert(addr.clone());
                if addr != shared.advertised {
                    shared.known.lock().unwrap().insert(addr);
                }
            }
            frame::PEERS => {
                let Some(addrs) = frame::decode_peers(&payload) else {
                    return; // Malformed peer exchange: drop the peer.
                };
                let mut known = shared.known.lock().unwrap();
                for addr in addrs {
                    if addr != shared.advertised {
                        known.insert(addr);
                    }
                }
                // The maintenance loop dials anything new next tick.
            }
            frame::GOSSIP => {
                // Blocking send: a full runtime queue backpressures this
                // connection (and, via TCP, its sender) instead of
                // ballooning memory.
                if shared
                    .events
                    .send(TransportEvent::Gossip {
                        from: id,
                        bytes: payload,
                    })
                    .is_err()
                {
                    return;
                }
            }
            frame::STATUS => {
                let Ok(raw) = <[u8; 8]>::try_from(payload.as_slice()) else {
                    return;
                };
                let tip = u64::from_le_bytes(raw);
                if shared
                    .events
                    .send(TransportEvent::Status { from: id, tip })
                    .is_err()
                {
                    return;
                }
            }
            _ => return, // Unknown frame kind: drop the peer.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
        for _ in 0..200 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        panic!("timed out waiting for {what}");
    }

    #[test]
    fn gossip_status_and_peer_exchange_flow() {
        // a knows b; c knows only b. Peer exchange must connect a and c.
        let a = Transport::start("127.0.0.1:0", &[]).unwrap();
        let b = Transport::start("127.0.0.1:0", &[a.local_addr().to_string()]).unwrap();
        let c = Transport::start("127.0.0.1:0", &[b.local_addr().to_string()]).unwrap();

        wait_for(|| a.peer_count() >= 2 && c.peer_count() >= 2, "full mesh");

        // Gossip from a reaches both b and c.
        assert!(a.broadcast_gossip(b"payload-one", None) >= 2);
        for (name, t) in [("b", &b), ("c", &c)] {
            let got = loop {
                match t.recv_timeout(Duration::from_secs(5)) {
                    Some(TransportEvent::Gossip { bytes, .. }) => break bytes,
                    Some(TransportEvent::Status { .. }) => continue,
                    None => panic!("no gossip at {name}"),
                }
            };
            assert_eq!(got, b"payload-one");
        }

        // Status frames carry the tip.
        assert!(b.broadcast_status(41) >= 2);
        let tip = loop {
            match a.recv_timeout(Duration::from_secs(5)) {
                Some(TransportEvent::Status { tip, .. }) => break tip,
                Some(TransportEvent::Gossip { .. }) => continue,
                None => panic!("no status at a"),
            }
        };
        assert_eq!(tip, 41);
        assert!(a.stats().frames_received > 0);

        a.shutdown();
        b.shutdown();
        c.shutdown();
    }

    #[test]
    fn reply_goes_only_to_sender() {
        let a = Transport::start("127.0.0.1:0", &[]).unwrap();
        let b = Transport::start("127.0.0.1:0", &[a.local_addr().to_string()]).unwrap();
        wait_for(|| a.peer_count() >= 1 && b.peer_count() >= 1, "a-b link");

        b.broadcast_gossip(b"request", None);
        let from = loop {
            match a.recv_timeout(Duration::from_secs(5)) {
                Some(TransportEvent::Gossip { from, bytes }) => {
                    assert_eq!(bytes, b"request");
                    break from;
                }
                Some(TransportEvent::Status { .. }) => continue,
                None => panic!("request not delivered"),
            }
        };
        assert!(a.send_gossip_to(from, b"response"));
        let got = loop {
            match b.recv_timeout(Duration::from_secs(5)) {
                Some(TransportEvent::Gossip { bytes, .. }) => break bytes,
                Some(TransportEvent::Status { .. }) => continue,
                None => panic!("response not delivered"),
            }
        };
        assert_eq!(got, b"response");
        a.shutdown();
        b.shutdown();
    }
}
