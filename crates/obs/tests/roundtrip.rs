//! JSONL round-trip property: `write_jsonl → parse_jsonl → write_jsonl`
//! must be byte-identical for arbitrary event batches — the trace file
//! format is the observability layer's only durable interface, so any
//! asymmetry between writer and parser silently corrupts offline
//! analysis (trace_report, critical_path) without failing anything.

use algorand_obs::{parse_jsonl, write_jsonl, SpanKind, TraceEvent, NO_NODE};
use std::borrow::Cow;

/// The repo-standard in-tree RNG (splitmix64): deterministic, no deps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const KINDS: [SpanKind; 9] = [
    SpanKind::Round,
    SpanKind::Proposal,
    SpanKind::BaStep,
    SpanKind::Sortition,
    SpanKind::Verify,
    SpanKind::Tally,
    SpanKind::GossipHop,
    SpanKind::Catchup,
    SpanKind::Fault,
];

/// Labels chosen to exercise the escaper: quotes, backslashes, newlines,
/// control characters, non-ASCII, and the empty string.
const LABELS: [&str; 10] = [
    "vote",
    "block_body",
    "",
    "with \"quotes\"",
    "back\\slash",
    "line\nbreak",
    "ctrl\u{01}\u{1f}chars",
    "tab\there",
    "unicode-λ⋆-ок",
    "mixed \"x\\y\"\n\u{02}",
];

fn random_event(rng: &mut Rng) -> TraceEvent {
    let start = rng.below(1 << 40);
    let node = if rng.below(10) == 0 {
        NO_NODE
    } else {
        rng.below(1000) as u32
    };
    let peer = if rng.below(3) == 0 {
        rng.below(1000) as u32
    } else {
        NO_NODE
    };
    TraceEvent {
        kind: KINDS[rng.below(KINDS.len() as u64) as usize],
        node,
        round: rng.below(1 << 20),
        step: rng.below(300) as u32,
        label: Cow::Borrowed(LABELS[rng.below(LABELS.len() as u64) as usize]),
        start,
        end: start + rng.below(1 << 30),
        value: rng.next(),
        ok: rng.below(2) == 0,
        id: if rng.below(4) == 0 { 0 } else { rng.next() },
        cause: if rng.below(4) == 0 { 0 } else { rng.next() },
        peer,
    }
}

fn assert_roundtrip(seed: u64, schedule: &str, dropped: u64, events: &[TraceEvent]) {
    let first = write_jsonl(seed, schedule, dropped, events);
    let trace = parse_jsonl(&first).expect("writer output must parse");
    assert_eq!(trace.seed, seed);
    assert_eq!(trace.schedule, schedule);
    assert_eq!(trace.dropped, dropped);
    assert_eq!(trace.events.len(), events.len());
    for (parsed, original) in trace.events.iter().zip(events) {
        assert_eq!(parsed, original, "event mutated in transit");
    }
    let second = write_jsonl(trace.seed, &trace.schedule, trace.dropped, &trace.events);
    assert_eq!(first, second, "round-trip is not byte-identical");
}

#[test]
fn randomized_batches_roundtrip_byte_identically() {
    let mut rng = Rng(0xa160_2026_0807);
    for batch in 0..50 {
        let len = rng.below(200) as usize;
        let events: Vec<TraceEvent> = (0..len).map(|_| random_event(&mut rng)).collect();
        let seed = rng.next();
        let dropped = if rng.below(3) == 0 {
            rng.below(1 << 20)
        } else {
            0
        };
        assert_roundtrip(seed, "payment-50", dropped, &events);
        let _ = batch;
    }
}

#[test]
fn empty_batch_roundtrips() {
    assert_roundtrip(0, "", 0, &[]);
    assert_roundtrip(u64::MAX, "smoke", u64::MAX, &[]);
}

#[test]
fn hostile_labels_and_schedules_roundtrip() {
    let mut rng = Rng(7);
    // Every hostile label appears at least once per batch.
    let events: Vec<TraceEvent> = LABELS
        .iter()
        .map(|label| {
            let mut ev = random_event(&mut rng);
            ev.label = Cow::Borrowed(label);
            ev
        })
        .collect();
    for schedule in LABELS {
        assert_roundtrip(23, schedule, 3, &events);
    }
}
