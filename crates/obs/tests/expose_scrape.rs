//! Exposition round-trip on a *real* scraped artifact: the checked-in
//! `results/cluster_metrics.txt` is a TELEMETRY scrape of a live
//! localnet node (archived by the `localnet` gate). Parsing it and
//! re-rendering the samples must reproduce the file byte for byte —
//! the exposition format's canonical-text promise, held against actual
//! node output rather than hand-built fixtures.

use algorand_obs::expose::{parse, render_samples};

#[test]
fn scraped_exposition_roundtrips_byte_identically() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/cluster_metrics.txt"
    );
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("missing scraped artifact {path} (regenerate with the localnet gate): {e}")
    });
    assert!(!text.is_empty(), "scraped exposition is empty");
    let samples = parse(&text).expect("scraped exposition must parse");
    assert!(
        samples.iter().any(|s| s.name == "node.tip_round"),
        "scrape lacks node.tip_round — not a node exposition?"
    );
    assert_eq!(
        render_samples(&samples),
        text,
        "parse -> render must reproduce the scraped file byte-identically"
    );
}
