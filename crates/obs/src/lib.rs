//! Dependency-free observability for the Algorand reproduction.
//!
//! Three pieces, built for a deterministic discrete-event simulation:
//!
//! - **Trace spans** ([`Tracer`], [`Span`], [`TraceEvent`]): a structured
//!   event API over the fixed [`SpanKind`] taxonomy (round, proposal, BA⋆
//!   step, sortition, verify, gossip hop, catch-up, fault). Events carry
//!   node id, round, step, and sim-time start/end, live in a bounded
//!   in-memory buffer, and export as byte-stable JSONL keyed by
//!   `(seed, schedule)` — see [`write_jsonl`] / [`parse_jsonl`].
//! - **Metrics registry** ([`Registry`]): process-wide named counters,
//!   gauges, and histograms behind cloneable typed handles. Registration
//!   is idempotent by name, so nodes recreated after a crash/restart
//!   re-attach to the same metric instead of double-counting.
//! - **Summaries** ([`Percentiles`], [`Histogram`]): the exact
//!   interpolated five-number summary used by the paper-style reports,
//!   and a constant-memory log-scale histogram (8 sub-buckets per octave,
//!   ≤ 12.5% relative error) with p50/p99 extraction and fleet merge.
//! - **Causal analysis** ([`causal`]): every causal event carries a
//!   stable `id` and a `cause` link; [`causal::critical_paths`] walks a
//!   round's certificate backward across nodes to the proposal that
//!   seeded it, with per-edge latency attribution.
//! - **Cluster merge** ([`merge`]): fuses per-process trace drains into
//!   one causal graph — clocks aligned via finalized-round anchor spans
//!   (content-hashed ids match across processes), per-node skew bounds
//!   recorded, sender/receiver hop halves fused into sim-shaped hops —
//!   so [`causal::critical_paths`] walks a live cluster's rounds across
//!   process boundaries.
//! - **Invariant monitor** ([`monitor`]): an online checker fed live
//!   from the tracer's observer slot — conflicting certificates,
//!   committee tail bounds, seed-chain validity, vote accounting, and
//!   FutureVotes staleness.
//! - **Exposition** ([`expose`]): a byte-stable plain-text metrics
//!   format (`name{labels} value`, deterministic ordering, escaped
//!   label values) with a hand-rolled round-trip parser — what the live
//!   node serves over its TELEMETRY frame.
//! - **Flight recorder** ([`flight`]): a bounded ring of the *most
//!   recent* trace events (the tracer buffer keeps the first N; crash
//!   forensics need the last N), dumpable as the same JSONL as a full
//!   trace. [`fanout`] shares the tracer's single observer slot between
//!   the monitor and the recorder.
//!
//! Everything here is write-only from the instrumented code's point of
//! view and consumes no randomness, so enabling or disabling observability
//! cannot change simulation behavior — the trace-determinism CI gate
//! asserts exactly that.

pub mod causal;
pub mod expose;
pub mod flight;
mod hist;
pub mod merge;
pub mod monitor;
mod registry;
pub mod trace;

pub use causal::{critical_paths, CausalGraph, CriticalPath, Edge, EdgeKind};
pub use expose::{labeled, Sample};
pub use flight::{FlightHandle, FlightRecorder};
pub use hist::{Histogram, Percentiles};
pub use merge::{Merged, NodeMeta, NodeTrace};
pub use monitor::{Invariant, InvariantMonitor, MonitorConfig, MonitorHandle, MonitorReport};
pub use registry::{Counter, Gauge, HistHandle, MetricSnapshot, Registry};
pub use trace::{
    fanout, parse_jsonl, span_id, stable_id, write_jsonl, write_jsonl_trimmed, Micros, Span,
    SpanKind, Trace, TraceEvent, TraceObserver, Tracer, NO_NODE,
};

#[cfg(test)]
mod edge_tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_sample_reports_exactly() {
        let mut h = Histogram::new();
        h.record(123_457);
        // The bucket floor is below the sample, but clamping into
        // [min, max] makes a one-sample histogram exact at every quantile.
        assert_eq!(h.p50(), Some(123_457));
        assert_eq!(h.p99(), Some(123_457));
        assert_eq!(h.quantile(0.0), Some(123_457));
        assert_eq!(h.quantile(1.0), Some(123_457));
        assert_eq!(h.min(), Some(123_457));
        assert_eq!(h.max(), Some(123_457));
    }

    #[test]
    fn overflow_bucket_catches_huge_values() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 60);
        h.record(5);
        assert_eq!(h.overflow_count(), 2);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(u64::MAX));
        // p99 lands in the overflow bucket, whose representative is its
        // lower bound 2^48 — clamped into the observed [min, max] range.
        assert_eq!(h.p99(), Some(1u64 << 48));
        assert_eq!(h.quantile(0.1), Some(5));
    }

    #[test]
    fn merge_combines_two_node_local_histograms() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=500u64 {
            a.record(v);
        }
        for v in 501..=1000u64 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(1000));
        assert_eq!(a.sum(), (1..=1000u128).sum::<u128>());
        let p50 = a.p50().unwrap() as f64;
        assert!((p50 - 500.0).abs() <= 500.0 / 8.0 + 1.0, "p50 {p50}");
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(42);
        let before = (a.count(), a.min(), a.max(), a.p50());
        a.merge(&Histogram::new());
        assert_eq!((a.count(), a.min(), a.max(), a.p50()), before);

        let mut empty = Histogram::new();
        let mut one = Histogram::new();
        one.record(42);
        empty.merge(&one);
        assert_eq!(empty.p50(), Some(42));
    }

    #[test]
    fn registry_histogram_merges_across_nodes() {
        let reg = Registry::new();
        let shared = reg.histogram("round.latency_us");
        let mut node_a = Histogram::new();
        node_a.record(100);
        let mut node_b = Histogram::new();
        node_b.record(300);
        shared.merge_from(&node_a);
        shared.merge_from(&node_b);
        let snap = shared.snapshot();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.min(), Some(100));
        assert_eq!(snap.max(), Some(300));
    }
}
