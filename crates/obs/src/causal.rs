//! Happens-before graph construction and critical-path extraction.
//!
//! PR 4's trace layer aggregates span durations per node; this module
//! answers the sharper §10 question: *which* message chain actually gated
//! a round's finalization. Every causal event carries a stable `id` and a
//! `cause` link (see [`crate::TraceEvent`]); walking those links backward
//! from a round's certificate reconstructs the gating chain — proposer's
//! round start, block gossip hops, reduction and BinaryBA⋆ step waits,
//! vote hops, verifies, and the final count — as a contiguous sequence of
//! timed edges whose summed durations account for the round's measured
//! finalization latency.
//!
//! Two id namespaces are in play:
//!
//! - **message ids** ([`crate::stable_id`] of the 32-byte gossip message
//!   id): stamped on gossip hops, verify verdicts, tally adds, and vote
//!   emissions (the `committee` sortition span of the emitted vote);
//! - **phase span ids** ([`crate::span_id`] over `(node, round, step,
//!   tag)`): deterministic, computable by producer and consumer alike,
//!   stamped on proposal spans ([`proposal_span_id`]) and BA⋆ step spans
//!   ([`step_span_id`]).
//!
//! The `cause` links thread them together: a concluded step's cause is
//! the gating vote's message id, a vote emission's predecessor is the
//! phase that concluded at the emission instant, a proposal span's cause
//! is the adopted block's message id, and a round span's cause is the
//! final-count step span.

use crate::trace::{span_id, Micros, SpanKind, TraceEvent};
use std::collections::HashMap;

/// Span-id namespace tag for per-node proposal phases.
pub const TAG_PROPOSAL: u8 = 1;
/// Span-id namespace tag for per-node BA⋆ step conclusions.
pub const TAG_STEP: u8 = 2;

/// The deterministic id of node's proposal phase in a round.
pub fn proposal_span_id(node: u32, round: u64) -> u64 {
    span_id(node, round, 0, TAG_PROPOSAL)
}

/// The deterministic id of a node's BA⋆ step conclusion in a round.
pub fn step_span_id(node: u32, round: u64, step: u32) -> u64 {
    span_id(node, round, step, TAG_STEP)
}

/// The latency category an edge is attributed to.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum EdgeKind {
    /// Proposal-phase time: block assembly, priority window, adoption wait.
    Proposal,
    /// A gossip hop (or intermediate relay turnaround) of a message body.
    Gossip,
    /// A verification verdict on the gating message.
    Verify,
    /// A BA⋆ step wait: from gating-vote arrival (or step entry, on
    /// timeout) to the step's conclusion, plus vote emissions.
    BaStep,
}

impl EdgeKind {
    /// The category's report name.
    pub fn as_str(self) -> &'static str {
        match self {
            EdgeKind::Proposal => "proposal",
            EdgeKind::Gossip => "gossip",
            EdgeKind::Verify => "verify",
            EdgeKind::BaStep => "ba_step",
        }
    }
}

/// One timed edge of a round's critical path.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Attribution category.
    pub kind: EdgeKind,
    /// What happened in this interval (`"vote"` hop, `"binary"` wait, …).
    pub label: String,
    /// Where the interval began (the sender, for gossip hops).
    pub from_node: u32,
    /// Where the interval ended.
    pub to_node: u32,
    /// Interval start, µs.
    pub start: Micros,
    /// Interval end, µs.
    pub end: Micros,
    /// Wire bytes carried, for gossip hops (0 otherwise).
    pub bytes: u64,
    /// Sender's send-queue depth when the hop was enqueued, for gossip
    /// hops on merged cluster traces (0 otherwise).
    pub queue_depth: u32,
}

impl Edge {
    /// The edge's latency contribution.
    pub fn duration(&self) -> Micros {
        self.end.saturating_sub(self.start)
    }
}

/// The gating chain of one round, origin → certificate, contiguous in
/// time (each edge starts where the previous one ended).
#[derive(Clone, Debug)]
pub struct CriticalPath {
    /// The round this chain finalizes.
    pub round: u64,
    /// The first node to conclude the round (the walk's anchor).
    pub finalizer: u32,
    /// Whether the anchor reached final (vs tentative) consensus.
    pub final_consensus: bool,
    /// The anchor node's round start (latency denominator).
    pub round_start: Micros,
    /// The anchor node's conclusion instant.
    pub finalized_at: Micros,
    /// The chain, in time order.
    pub edges: Vec<Edge>,
}

impl CriticalPath {
    /// The round's measured finalization latency at the anchor node.
    pub fn latency(&self) -> Micros {
        self.finalized_at.saturating_sub(self.round_start)
    }

    /// Summed edge durations (equals conclusion minus chain origin).
    pub fn attributed(&self) -> Micros {
        self.edges.iter().map(Edge::duration).sum()
    }

    /// Fraction of the measured latency the chain accounts for. Can
    /// slightly exceed 1 when the chain's origin (the proposer's round
    /// start) predates the anchor node's own round start.
    pub fn coverage(&self) -> f64 {
        if self.latency() == 0 {
            return 1.0;
        }
        self.attributed() as f64 / self.latency() as f64
    }

    /// Total µs per category, in [`EdgeKind`] order.
    pub fn attribution(&self) -> [(EdgeKind, Micros); 4] {
        let mut out = [
            (EdgeKind::Proposal, 0),
            (EdgeKind::Gossip, 0),
            (EdgeKind::Verify, 0),
            (EdgeKind::BaStep, 0),
        ];
        for e in &self.edges {
            let slot = out.iter_mut().find(|(k, _)| *k == e.kind).expect("kind");
            slot.1 += e.duration();
        }
        out
    }
}

/// A backward-walk point: the instant an activity *completed*. The edge
/// between two consecutive points takes its category from the later one.
struct Point {
    t: Micros,
    node: u32,
    from: u32,
    kind: EdgeKind,
    label: String,
    bytes: u64,
    queue_depth: u32,
}

impl Point {
    fn new(t: Micros, node: u32, from: u32, kind: EdgeKind, label: String) -> Point {
        Point {
            t,
            node,
            from,
            kind,
            label,
            bytes: 0,
            queue_depth: 0,
        }
    }
}

/// Index of a trace's causal events, ready for backward walks.
pub struct CausalGraph<'a> {
    /// BA⋆ step conclusions by phase span id.
    steps_by_id: HashMap<u64, (usize, &'a TraceEvent)>,
    /// Per (node, round): step conclusions in recording order — the
    /// recording order is the causal order within one engine, which
    /// disambiguates same-instant conclusions (catch-up replay).
    steps_seq: HashMap<(u32, u64), Vec<(usize, &'a TraceEvent)>>,
    /// Vote emissions (committee sortition spans) by vote message id.
    emissions: HashMap<u64, (usize, &'a TraceEvent)>,
    /// Per message id: first arrival hop per receiving node.
    hops: HashMap<u64, HashMap<u32, &'a TraceEvent>>,
    /// Verify verdicts by (message id, node).
    verifies: HashMap<(u64, u32), &'a TraceEvent>,
    /// Proposal phases by (node, round).
    proposals: HashMap<(u32, u64), &'a TraceEvent>,
    /// Round conclusions, in recording order.
    rounds: Vec<&'a TraceEvent>,
}

impl<'a> CausalGraph<'a> {
    /// Indexes the causally-stamped events of a trace. Events with
    /// `id == 0` (pre-causal traces, recovery-protocol engines, bandwidth
    /// summaries) are ignored except for round and proposal spans, which
    /// are keyed structurally.
    pub fn build(events: &'a [TraceEvent]) -> CausalGraph<'a> {
        let mut g = CausalGraph {
            steps_by_id: HashMap::new(),
            steps_seq: HashMap::new(),
            emissions: HashMap::new(),
            hops: HashMap::new(),
            verifies: HashMap::new(),
            proposals: HashMap::new(),
            rounds: Vec::new(),
        };
        for (idx, ev) in events.iter().enumerate() {
            match ev.kind {
                SpanKind::BaStep if ev.id != 0 => {
                    g.steps_by_id.entry(ev.id).or_insert((idx, ev));
                    g.steps_seq
                        .entry((ev.node, ev.round))
                        .or_default()
                        .push((idx, ev));
                }
                SpanKind::Sortition if ev.id != 0 && ev.label == "committee" => {
                    g.emissions.entry(ev.id).or_insert((idx, ev));
                }
                SpanKind::GossipHop if ev.id != 0 => {
                    let per_node = g.hops.entry(ev.id).or_default();
                    let slot = per_node.entry(ev.node).or_insert(ev);
                    if ev.end < slot.end {
                        *slot = ev;
                    }
                }
                SpanKind::Verify if ev.id != 0 && ev.label != "seed" => {
                    g.verifies.entry((ev.id, ev.node)).or_insert(ev);
                }
                SpanKind::Proposal => {
                    g.proposals.entry((ev.node, ev.round)).or_insert(ev);
                }
                SpanKind::Round => g.rounds.push(ev),
                _ => {}
            }
        }
        g
    }

    /// The rounds with at least one recorded conclusion, ascending.
    pub fn rounds(&self) -> Vec<u64> {
        let mut rs: Vec<u64> = self.rounds.iter().map(|ev| ev.round).collect();
        rs.sort_unstable();
        rs.dedup();
        rs
    }

    /// Walks the gating chain of `round` backward from its first
    /// conclusion. Returns `None` when the round never concluded in the
    /// trace.
    pub fn critical_path(&self, round: u64) -> Option<CriticalPath> {
        // Anchor on the earliest conclusion, preferring finalized ones.
        let anchor = self
            .rounds
            .iter()
            .filter(|ev| ev.round == round)
            .min_by_key(|ev| (!ev.ok, ev.end, ev.node))?;

        let mut pts: Vec<Point> = Vec::new();
        // Built backward: each push clamps to keep times non-increasing,
        // so the forward chain is contiguous even under defects.
        let mut push = |pts: &mut Vec<Point>, mut p: Point| {
            if let Some(last) = pts.last() {
                if p.t > last.t {
                    p.t = last.t;
                }
            }
            pts.push(p);
        };

        // The round concludes the instant its final count does; start the
        // walk at that step (falling back to the node's last step span).
        let mut cur = self
            .steps_by_id
            .get(&anchor.cause)
            .or_else(|| {
                self.steps_seq
                    .get(&(anchor.node, round))
                    .and_then(|seq| seq.last())
            })
            .copied()?;

        loop {
            let (idx, st) = cur;
            push(
                &mut pts,
                Point::new(
                    st.end,
                    st.node,
                    st.node,
                    EdgeKind::BaStep,
                    st.label.to_string(),
                ),
            );
            if st.cause == 0 {
                // Timeout conclusion: the wait spans the whole step
                // window; the predecessor concluded at the window's start.
                match self.prev_phase(st.node, round, idx) {
                    Some(prev) => cur = prev,
                    None => {
                        self.descend_proposal(st.node, round, &mut pts, &mut push);
                        break;
                    }
                }
                continue;
            }
            let Some(&(eidx, em)) = self.emissions.get(&st.cause) else {
                // Unknown gating vote (forged / untraced): attribute the
                // remainder to the step window and stop.
                push(
                    &mut pts,
                    Point::new(
                        st.start,
                        st.node,
                        st.node,
                        EdgeKind::BaStep,
                        "untraced".into(),
                    ),
                );
                break;
            };
            if em.node != st.node {
                if let Some(v) = self.verifies.get(&(st.cause, st.node)) {
                    push(
                        &mut pts,
                        Point::new(
                            v.end,
                            st.node,
                            st.node,
                            EdgeKind::Verify,
                            v.label.to_string(),
                        ),
                    );
                }
                self.walk_hops(st.cause, st.node, em.node, &mut pts, &mut push);
            }
            push(
                &mut pts,
                Point::new(em.start, em.node, em.node, EdgeKind::BaStep, "emit".into()),
            );
            match self.prev_phase(em.node, round, eidx) {
                Some(prev) => cur = prev,
                None => {
                    self.descend_proposal(em.node, round, &mut pts, &mut push);
                    break;
                }
            }
        }

        pts.reverse();
        let edges = pts
            .windows(2)
            .map(|w| Edge {
                kind: w[1].kind,
                label: w[1].label.clone(),
                from_node: w[1].from,
                to_node: w[1].node,
                start: w[0].t,
                end: w[1].t,
                bytes: w[1].bytes,
                queue_depth: w[1].queue_depth,
            })
            .collect();
        Some(CriticalPath {
            round,
            finalizer: anchor.node,
            final_consensus: anchor.ok,
            round_start: anchor.start,
            finalized_at: anchor.end,
            edges,
        })
    }

    /// The step conclusion recorded at `node` for `round` immediately
    /// before buffer index `before` — the phase whose conclusion
    /// triggered whatever happened at `before`.
    fn prev_phase(&self, node: u32, round: u64, before: usize) -> Option<(usize, &'a TraceEvent)> {
        self.steps_seq
            .get(&(node, round))?
            .iter()
            .rev()
            .find(|(i, _)| *i < before)
            .copied()
    }

    /// Backward hop chain of message `id` from `to` towards `origin`.
    fn walk_hops(
        &self,
        id: u64,
        to: u32,
        origin: u32,
        pts: &mut Vec<Point>,
        push: &mut impl FnMut(&mut Vec<Point>, Point),
    ) {
        let Some(per_node) = self.hops.get(&id) else {
            return;
        };
        let mut at = to;
        for _ in 0..per_node.len() + 1 {
            if at == origin {
                break;
            }
            let Some(h) = per_node.get(&at) else { break };
            push(
                pts,
                Point {
                    bytes: h.value,
                    queue_depth: h.step,
                    ..Point::new(h.end, h.node, h.peer, EdgeKind::Gossip, h.label.to_string())
                },
            );
            push(
                pts,
                Point::new(h.start, h.peer, h.peer, EdgeKind::Gossip, "relay".into()),
            );
            at = h.peer;
        }
    }

    /// Descends into `node`'s proposal phase: adoption wait, the adopted
    /// block's hop chain, and the proposer's round start (the chain
    /// origin).
    fn descend_proposal(
        &self,
        node: u32,
        round: u64,
        pts: &mut Vec<Point>,
        push: &mut impl FnMut(&mut Vec<Point>, Point),
    ) {
        let Some(p) = self.proposals.get(&(node, round)) else {
            return;
        };
        push(
            pts,
            Point::new(p.end, node, node, EdgeKind::Proposal, "adopt".into()),
        );
        if p.cause != 0 {
            self.walk_hops(p.cause, node, u32::MAX, pts, push);
            // Wherever the hop chain stopped is the proposer; anchor the
            // origin at its round start if its proposal span is present.
            let origin_node = pts.last().map_or(node, |pt| pt.from);
            if let Some(pp) = self.proposals.get(&(origin_node, round)) {
                push(
                    pts,
                    Point::new(
                        pp.start,
                        origin_node,
                        origin_node,
                        EdgeKind::Proposal,
                        "origin".into(),
                    ),
                );
            }
        } else {
            push(
                pts,
                Point::new(p.start, node, node, EdgeKind::Proposal, "origin".into()),
            );
        }
    }
}

/// Extracts the critical path of every concluded round in a trace.
pub fn critical_paths(events: &[TraceEvent]) -> Vec<CriticalPath> {
    let g = CausalGraph::build(events);
    g.rounds()
        .into_iter()
        .filter_map(|r| g.critical_path(r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{stable_id, Tracer, NO_NODE};

    /// A hand-built two-node round: node 0 proposes at t=0, the block
    /// reaches node 1 at t=100, both run a reduction + binary + final
    /// chain where node 1's final vote (emitted at its binary conclusion,
    /// t=300) gates node 0's final count at t=400.
    fn synthetic_round() -> Vec<crate::TraceEvent> {
        let t = Tracer::bounded(64);
        let block = stable_id(&[7u8; 32]);
        let vote = stable_id(&[9u8; 32]);
        let r = 1u64;
        // Node 1's step chain, recording order = causal order.
        t.span(SpanKind::BaStep, 1, r, 100)
            .step(u32::MAX - 1)
            .label("reduction1")
            .id(step_span_id(1, r, u32::MAX - 1))
            .end_at(200);
        t.span(SpanKind::BaStep, 1, r, 200)
            .step(1)
            .label("binary")
            .id(step_span_id(1, r, 1))
            .end_at(300);
        // Node 1 emits its final vote on concluding the binary step.
        t.span(SpanKind::Sortition, 1, r, 300)
            .label("committee")
            .id(vote)
            .value(3)
            .instant();
        // The vote hops 1 → 0 and is verified there.
        t.span(SpanKind::GossipHop, 0, r, 300)
            .label("vote")
            .id(vote)
            .peer(1)
            .end_at(380);
        t.span(SpanKind::Verify, 0, r, 380)
            .label("vote")
            .id(vote)
            .instant();
        // Node 0's final count concludes on that vote.
        t.span(SpanKind::BaStep, 0, r, 320)
            .label("final")
            .id(step_span_id(0, r, 0))
            .cause(vote)
            .end_at(400);
        // Proposal phases: node 0 proposed (own block), node 1 adopted it
        // after one hop.
        t.span(SpanKind::GossipHop, 1, r, 10)
            .label("block_body")
            .id(block)
            .peer(0)
            .end_at(100);
        t.span(SpanKind::Proposal, 0, r, 0)
            .id(proposal_span_id(0, r))
            .cause(block)
            .end_at(90);
        t.span(SpanKind::Proposal, 1, r, 0)
            .id(proposal_span_id(1, r))
            .cause(block)
            .end_at(100);
        // Node 0's round concludes with the final count.
        t.span(SpanKind::Round, 0, r, 0)
            .label("final")
            .id(block)
            .cause(step_span_id(0, r, 0))
            .ok(true)
            .end_at(400);
        t.events()
    }

    #[test]
    fn walks_certificate_back_to_the_proposal() {
        let events = synthetic_round();
        let paths = critical_paths(&events);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.round, 1);
        assert_eq!(p.finalizer, 0);
        assert!(p.final_consensus);
        assert_eq!(p.latency(), 400);
        // Contiguous: attributed == finalized_at − origin == 400 − 0.
        assert_eq!(p.attributed(), 400);
        assert!(p.coverage() >= 0.95);
        // The chain crosses: node1 proposal adoption → block hop from 0
        // → … → vote hop to 0 → final count. Origin must be node 0's
        // proposal (round start 0), end the final conclusion.
        assert_eq!(p.edges.first().unwrap().start, 0);
        assert_eq!(p.edges.last().unwrap().end, 400);
        assert!(p.edges.iter().any(|e| e.kind == EdgeKind::Gossip
            && e.label == "vote"
            && e.from_node == 1
            && e.to_node == 0));
        assert!(p
            .edges
            .iter()
            .any(|e| e.kind == EdgeKind::Gossip && e.label == "block_body"));
        assert!(p
            .edges
            .iter()
            .any(|e| e.kind == EdgeKind::BaStep && e.label == "final"));
        // Attribution sums back to the total.
        let total: u64 = p.attribution().iter().map(|(_, v)| v).sum();
        assert_eq!(total, p.attributed());
    }

    #[test]
    fn timeout_rounds_attribute_the_step_window() {
        let t = Tracer::bounded(16);
        let r = 2u64;
        t.span(SpanKind::Proposal, 0, r, 0)
            .id(proposal_span_id(0, r))
            .end_at(1_000);
        t.span(SpanKind::BaStep, 0, r, 1_000)
            .step(u32::MAX - 1)
            .label("reduction1")
            .id(step_span_id(0, r, u32::MAX - 1))
            .ok(false)
            .end_at(5_000);
        t.span(SpanKind::Round, 0, r, 0)
            .label("tentative")
            .cause(step_span_id(0, r, u32::MAX - 1))
            .ok(false)
            .end_at(5_000);
        let events = t.events();
        let paths = critical_paths(&events);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert!(!p.final_consensus);
        assert_eq!(p.attributed(), 5_000);
        let ba: Micros = p
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::BaStep)
            .map(Edge::duration)
            .sum();
        assert_eq!(ba, 4_000);
    }

    #[test]
    fn ignores_unstamped_and_summary_events() {
        let t = Tracer::bounded(16);
        // A legacy (id = 0) hop and a bandwidth summary must not index.
        t.span(SpanKind::GossipHop, 0, 1, 0)
            .label("uplink_total")
            .value(123)
            .end_at(0);
        t.span(SpanKind::BaStep, 0, 1, 0).label("binary").end_at(10);
        let events = t.events();
        let g = CausalGraph::build(&events);
        assert!(g.hops.is_empty());
        assert!(g.steps_by_id.is_empty());
        let _ = NO_NODE;
    }
}
