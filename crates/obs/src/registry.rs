//! The shared metrics registry: named counters, gauges, and histograms
//! behind cheap cloneable handles.
//!
//! One [`Registry`] serves a whole simulated deployment. Handles are
//! `Arc`-backed, so any number of nodes (or a node recreated after a
//! crash/restart) can hold the same metric: registration is idempotent —
//! asking for an existing name returns the *same* underlying metric, which
//! is what keeps restarted nodes from double-registering per-node state.
//!
//! Determinism: metrics are write-only from the instrumented code's point
//! of view — nothing in the hot path reads a metric to make a decision —
//! so attaching or detaching a registry cannot change simulation behavior.

use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that is set, not accumulated (idempotent republish).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared handle to a [`Histogram`].
#[derive(Clone, Debug, Default)]
pub struct HistHandle(Arc<Mutex<Histogram>>);

impl HistHandle {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.0.lock().expect("histogram lock").record(v);
    }

    /// Merges a node-local histogram into the shared one.
    pub fn merge_from(&self, other: &Histogram) {
        self.0.lock().expect("histogram lock").merge(other);
    }

    /// Replaces the contents (idempotent republish of an aggregate).
    pub fn replace(&self, h: Histogram) {
        *self.0.lock().expect("histogram lock") = h;
    }

    /// A snapshot copy.
    pub fn snapshot(&self) -> Histogram {
        self.0.lock().expect("histogram lock").clone()
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(HistHandle),
}

/// A point-in-time copy of one metric's value, for exposition.
#[derive(Clone, Debug)]
pub enum MetricSnapshot {
    /// A counter's current value.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A histogram's full state.
    Histogram(Histogram),
}

/// The process-wide registry mapping names to metrics.
#[derive(Clone, Default)]
pub struct Registry(Arc<Mutex<BTreeMap<String, Metric>>>);

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.0.lock().expect("registry lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} is not a counter"),
        }
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.0.lock().expect("registry lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} is not a gauge"),
        }
    }

    /// The histogram named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str) -> HistHandle {
        let mut map = self.0.lock().expect("registry lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(HistHandle::default()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} is not a histogram"),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.0.lock().expect("registry lock").len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of every registered metric, sorted by name
    /// (byte order). The exposition renderer and the node's telemetry
    /// plane build on this.
    pub fn snapshot_all(&self) -> Vec<(String, MetricSnapshot)> {
        let map = self.0.lock().expect("registry lock");
        map.iter()
            .map(|(name, metric)| {
                let snap = match metric {
                    Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                    Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                    Metric::Histogram(h) => MetricSnapshot::Histogram(h.snapshot()),
                };
                (name.clone(), snap)
            })
            .collect()
    }

    /// Renders every metric, one line each, sorted by name — the textual
    /// report the sim and benches print. Times recorded in µs are shown
    /// raw; callers choose the unit at recording time.
    pub fn render(&self) -> String {
        let map = self.0.lock().expect("registry lock");
        let mut out = String::new();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{name} = {}\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{name} = {}\n", g.get())),
                Metric::Histogram(h) => {
                    let h = h.snapshot();
                    match (h.min(), h.p50(), h.p99(), h.max()) {
                        (Some(min), Some(p50), Some(p99), Some(max)) => out.push_str(&format!(
                            "{name}: count={} min={min} p50={p50} p99={p99} max={max}\n",
                            h.count()
                        )),
                        _ => out.push_str(&format!("{name}: count=0\n")),
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_by_name() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        // Both handles hit the same metric: a restarted node re-registering
        // by name keeps accumulating instead of double-counting.
        assert_eq!(a.get(), 3);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn type_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn gauge_republish_is_idempotent() {
        let reg = Registry::new();
        let g = reg.gauge("tip");
        g.set(7);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let reg = Registry::new();
        reg.counter("b.count").add(2);
        reg.gauge("a.level").set(-1);
        reg.histogram("c.lat");
        let r1 = reg.render();
        let r2 = reg.render();
        assert_eq!(r1, r2);
        let lines: Vec<&str> = r1.lines().collect();
        assert!(lines[0].starts_with("a.level"));
        assert!(lines[1].starts_with("b.count"));
        assert!(lines[2].starts_with("c.lat: count=0"));
    }
}
